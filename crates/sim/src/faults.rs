//! Named-fault catalog: composable fault kinds with injection triggers,
//! observable symptoms, and timed-repair lifecycles.
//!
//! The raw adversary traits ([`Adversary`], [`AsyncAdversary`]) speak in
//! per-step verdicts; scenarios want to speak in *faults*: "p3 omits all
//! sends from round 5 to round 20", "p1 crashes at round 8 and restarts,
//! wiped, 10 rounds later", "p2 runs at quarter speed". A [`FaultPlan`] is
//! a list of such named [`Fault`]s and is itself an adversary on **both**
//! execution planes, so one plan drives the synchronous round engine and
//! the asynchronous event engine identically:
//!
//! ```
//! use doall_sim::{FaultKind, FaultPlan, Pid, Round};
//!
//! let plan = FaultPlan::new(vec![
//!     FaultKind::SlowQuarter(Pid::new(1)).at(Round::new(5)),
//!     FaultKind::OmitSends(Pid::new(3)).at(Round::new(5)).for_rounds(20),
//!     FaultKind::CrashRecover { pid: Pid::new(0), downtime: 10, wipe: true }
//!         .at(Round::new(8)),
//! ]);
//! assert_eq!(plan.len(), 3);
//! ```
//!
//! Each fault's lifecycle is observable: injection shows up as the fault's
//! *symptom* in the [`Trace`](crate::Trace) (a `Crash`/`Recover` event
//! pair, a `"fault:omit"` or `"fault:slow"` note), and a bounded fault
//! repairs itself at its `until` round (`"fault:slow:repaired"`, the end
//! of the omission window, the `Recover` event). Degraded-mode (`Slow*`)
//! faults cannot be imposed by an adversary — slowness is a property of
//! the process, not of its fate — so [`FaultPlan::wrap`] /
//! [`FaultPlan::wrap_async`] wrap the affected processes in the
//! [`Degraded`] / [`AsyncDegraded`] decorators; a plan with no `Slow*`
//! faults wraps every process transparently.

use serde::{Deserialize, Serialize};

use crate::adversary::{Adversary, AdversaryCtx, CrashSpec, Deliver, Fate};
use crate::asynch::{AsyncAdversary, AsyncEffects, AsyncProtocol, Time};
use crate::effects::Effects;
use crate::ids::{Pid, Round};
use crate::message::Inbox;
use crate::protocol::Protocol;

/// A named fault from the catalog, before scheduling.
///
/// Combine with [`at`](FaultKind::at) (and [`Fault::until`] /
/// [`Fault::for_rounds`]) to place it on the clock; a bare `FaultKind`
/// converts to a [`Fault`] active from round 1 with no repair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail-stop: the process crashes silently and never returns.
    Crash(Pid),
    /// Crash-recovery: the process crashes silently, then restarts
    /// `downtime` steps later — wiped to its initial state, or stale.
    CrashRecover {
        /// The victim.
        pid: Pid,
        /// Steps (rounds / time units) of downtime before the restart.
        downtime: u64,
        /// Whether the restart loses all protocol state.
        wipe: bool,
    },
    /// Degraded mode: the process acts only every `factor`-th round of the
    /// fault window (synchronous), or on every `factor`-th handler
    /// invocation (asynchronous). Enforced by the [`Degraded`] /
    /// [`AsyncDegraded`] wrappers, not by the adversary.
    Slow {
        /// The degraded process.
        pid: Pid,
        /// Slow-down factor (`1` = full speed).
        factor: u64,
    },
    /// [`Slow`](FaultKind::Slow) at quarter speed — the classic
    /// quarter-efficiency degradation.
    SlowQuarter(Pid),
    /// Send omission: every message the process sends during the fault
    /// window is silently dropped (the process itself survives and its
    /// work counts).
    OmitSends(Pid),
    /// Receive omission: every message addressed to the process during
    /// the fault window is dropped before delivery.
    OmitRecv(Pid),
}

impl FaultKind {
    /// Schedules this fault to inject at `at` (unrepaired; chain
    /// [`Fault::until`] or [`Fault::for_rounds`] to bound it).
    pub fn at(self, at: impl Into<Round>) -> Fault {
        Fault { kind: self, at: at.into(), until: None }
    }

    /// The process this fault afflicts.
    pub fn pid(&self) -> Pid {
        match *self {
            FaultKind::Crash(pid)
            | FaultKind::CrashRecover { pid, .. }
            | FaultKind::Slow { pid, .. }
            | FaultKind::SlowQuarter(pid)
            | FaultKind::OmitSends(pid)
            | FaultKind::OmitRecv(pid) => pid,
        }
    }

    /// The slow-down factor, for the `Slow*` kinds.
    fn slow_factor(&self) -> Option<u64> {
        match *self {
            FaultKind::Slow { factor, .. } => Some(factor),
            FaultKind::SlowQuarter(_) => Some(4),
            _ => None,
        }
    }

    /// Whether this kind fires once (crash-like) rather than over a window.
    fn one_shot(&self) -> bool {
        matches!(self, FaultKind::Crash(_) | FaultKind::CrashRecover { .. })
    }
}

impl From<FaultKind> for Fault {
    fn from(kind: FaultKind) -> Fault {
        Fault { kind, at: Round::ONE, until: None }
    }
}

/// A [`FaultKind`] placed on the clock: injected at `at`, repaired at
/// `until` (exclusive; `None` = never). Crash-like kinds ignore `until` —
/// their repair is the [`CrashRecover`](FaultKind::CrashRecover) downtime.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// First round (or async timestamp) at which the fault is active.
    pub at: Round,
    /// First round at which the fault is repaired, if ever.
    pub until: Option<Round>,
}

impl Fault {
    /// Bounds the fault: repaired at `until` (exclusive).
    pub fn until(mut self, until: impl Into<Round>) -> Fault {
        self.until = Some(until.into());
        self
    }

    /// Bounds the fault to `d` rounds starting at its injection round.
    pub fn for_rounds(self, d: u64) -> Fault {
        let until = self.at.saturating_add(u128::from(d));
        self.until(until)
    }

    /// Whether the fault window covers `now`.
    pub fn active(&self, now: Round) -> bool {
        now >= self.at && self.until.is_none_or(|u| now < u)
    }
}

/// A composable schedule of named faults, usable as an [`Adversary`] on
/// the synchronous plane and an [`AsyncAdversary`] on the asynchronous
/// plane. A plan with zero faults behaves bit-identically to
/// [`NoFailures`](crate::NoFailures) on both.
///
/// `Slow*` faults are enforced by wrapping the processes (see
/// [`FaultPlan::wrap`] / [`FaultPlan::wrap_async`]); all other kinds act
/// through the adversary interception points.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    spent: Vec<bool>,
}

impl FaultPlan {
    /// Builds a plan from faults (bare [`FaultKind`]s convert, active from
    /// round 1).
    pub fn new<I, F>(faults: I) -> Self
    where
        I: IntoIterator<Item = F>,
        F: Into<Fault>,
    {
        let faults: Vec<Fault> = faults.into_iter().map(Into::into).collect();
        let spent = vec![false; faults.len()];
        FaultPlan { faults, spent }
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is fault-free.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The `Slow*` windows afflicting `pid`, for the wrappers.
    fn slow_windows(&self, pid: Pid) -> Vec<SlowWindow> {
        self.faults
            .iter()
            .filter(|f| f.kind.pid() == pid)
            .filter_map(|f| {
                f.kind.slow_factor().map(|factor| SlowWindow {
                    from: f.at,
                    until: f.until.unwrap_or(Round::MAX),
                    factor,
                })
            })
            .collect()
    }

    /// Wraps synchronous processes in [`Degraded`] decorators carrying
    /// this plan's `Slow*` windows (processes without one get an empty —
    /// fully transparent — wrapper).
    pub fn wrap<P: Protocol>(&self, procs: Vec<P>) -> Vec<Degraded<P>> {
        procs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Degraded::new(p, self.slow_windows(Pid::new(i))))
            .collect()
    }

    /// Wraps asynchronous processes in [`AsyncDegraded`] decorators. Since
    /// asynchronous handlers never see the clock, a `Slow*` fault's `at` /
    /// `until` are interpreted as **handler-invocation ordinals** here
    /// (1-based), not timestamps; an unbounded fault degrades the process
    /// for the whole run.
    pub fn wrap_async<P: AsyncProtocol>(&self, procs: Vec<P>) -> Vec<AsyncDegraded<P>> {
        procs
            .into_iter()
            .enumerate()
            .map(|(i, p)| AsyncDegraded::new(p, self.slow_windows(Pid::new(i))))
            .collect()
    }

    /// The shared verdict logic of both planes: `now` is a round or an
    /// asynchronous timestamp.
    fn verdict(&mut self, now: Round, pid: Pid) -> Fate {
        for (i, f) in self.faults.iter().enumerate() {
            if f.kind.pid() != pid || now < f.at {
                continue;
            }
            if f.kind.one_shot() {
                if self.spent[i] {
                    continue;
                }
                self.spent[i] = true;
                match f.kind {
                    FaultKind::Crash(_) => return Fate::Crash(CrashSpec::silent()),
                    FaultKind::CrashRecover { downtime, wipe, .. } => {
                        // The crash lands on the step *boundary* (work
                        // counted, messages delivered): a stale restart
                        // must find the world consistent with its saved
                        // state, or a unit the process believes done
                        // could be silently lost. Mid-action recovery
                        // crashes remain expressible through a custom
                        // adversary returning `Fate::CrashRecover` with
                        // a lossy spec.
                        return Fate::CrashRecover {
                            spec: CrashSpec::after_round(),
                            downtime,
                            wipe,
                        };
                    }
                    _ => unreachable!("one_shot covers exactly the crash kinds"),
                }
            }
            if matches!(f.kind, FaultKind::OmitSends(_)) && f.active(now) {
                return Fate::Omit(Deliver::None);
            }
        }
        Fate::Survive
    }

    fn any_recv_omission(&self) -> bool {
        self.faults.iter().any(|f| matches!(f.kind, FaultKind::OmitRecv(_)))
    }

    fn drops_delivery(&self, now: Round, to: Pid) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::OmitRecv(p) if p == to) && f.active(now))
    }

    /// Rounds at which crash-like faults are due — the plan's scheduled
    /// events on either plane.
    fn next_crash_event(&self, now: Round) -> Option<Round> {
        self.faults
            .iter()
            .zip(&self.spent)
            .filter(|(f, &spent)| f.kind.one_shot() && !spent)
            .map(|(f, _)| f.at.max(now))
            .min()
    }

    /// Checks the plan against a system of `t` processes, rejecting
    /// schedules that are unsatisfiable or violate the paper's fault
    /// model: out-of-range pids, permanent crashes of **all** `t`
    /// processes (the Do-All guarantee presumes a survivor), contradictory
    /// crash fates for one pid (a recovery scheduled at or after a
    /// permanent crash can never fire), overlapping `Slow*` windows on one
    /// pid (the [`Degraded`] wrappers assume disjoint windows), and empty
    /// fault windows (`until <= at`, a fault that can never inject).
    ///
    /// Both adversary traits route their `validate` hook here, so every
    /// engine entry point ([`Engine::new`](crate::Engine::new), [`run`],
    /// [`run_async`]) refuses an invalid plan with a typed error before
    /// round 1 instead of panicking — or silently doing nothing — mid-run.
    ///
    /// [`run`]: crate::run
    /// [`run_async`]: crate::asynch::run_async
    pub fn validate(&self, t: usize) -> Result<(), FaultPlanError> {
        let mut crashed: Vec<Pid> = Vec::new();
        for f in &self.faults {
            let pid = f.kind.pid();
            if pid.index() >= t {
                return Err(FaultPlanError::PidOutOfRange { pid, t });
            }
            if !f.kind.one_shot() && f.until.is_some_and(|u| u <= f.at) {
                return Err(FaultPlanError::EmptyWindow { pid, at: f.at });
            }
            if matches!(f.kind, FaultKind::Crash(_)) && !crashed.contains(&pid) {
                crashed.push(pid);
            }
        }
        for (i, a) in self.faults.iter().enumerate() {
            for b in &self.faults[i + 1..] {
                let pid = a.kind.pid();
                if pid != b.kind.pid() {
                    continue;
                }
                // Contradictory crash fates: once a permanent crash is
                // live, any other crash-like fault scheduled at or after
                // it can never fire (nor, for a recovery, ever restart).
                let contradictory = match (&a.kind, &b.kind) {
                    (FaultKind::Crash(_), k) if k.one_shot() => a.at <= b.at,
                    (k, FaultKind::Crash(_)) if k.one_shot() => b.at <= a.at,
                    _ => false,
                };
                if contradictory {
                    return Err(FaultPlanError::ContradictoryFates { pid });
                }
                // The Degraded wrappers assume disjoint slow windows.
                if a.kind.slow_factor().is_some() && b.kind.slow_factor().is_some() {
                    let (a_until, b_until) =
                        (a.until.unwrap_or(Round::MAX), b.until.unwrap_or(Round::MAX));
                    if a.at < b_until && b.at < a_until {
                        return Err(FaultPlanError::OverlappingSlow { pid });
                    }
                }
            }
        }
        if t > 0 && crashed.len() >= t {
            return Err(FaultPlanError::AllCrashed { t });
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A fault targets a pid outside `0..t`.
    PidOutOfRange {
        /// The out-of-range victim.
        pid: Pid,
        /// The system size the plan was validated against.
        t: usize,
    },
    /// Permanent [`FaultKind::Crash`] faults cover all `t` processes — no
    /// possible survivor, violating the paper's `t - 1` fault bound.
    AllCrashed {
        /// The system size the plan was validated against.
        t: usize,
    },
    /// Two crash-like faults on one pid where a permanent crash precedes
    /// (or ties) the other, making the later fate unreachable.
    ContradictoryFates {
        /// The doubly-doomed process.
        pid: Pid,
    },
    /// Two `Slow*` windows on one pid overlap; the [`Degraded`] wrappers
    /// require disjoint windows.
    OverlappingSlow {
        /// The process with overlapping windows.
        pid: Pid,
    },
    /// A windowed fault with `until <= at` — it can never inject.
    EmptyWindow {
        /// The targeted process.
        pid: Pid,
        /// The degenerate window's start.
        at: Round,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::PidOutOfRange { pid, t } => {
                write!(f, "fault targets {pid} but the system has only {t} process(es)")
            }
            FaultPlanError::AllCrashed { t } => {
                write!(f, "plan permanently crashes all {t} process(es); the Do-All contract requires a survivor")
            }
            FaultPlanError::ContradictoryFates { pid } => {
                write!(f, "contradictory crash fates for {pid}: a permanent crash makes a later crash/recovery unreachable")
            }
            FaultPlanError::OverlappingSlow { pid } => {
                write!(
                    f,
                    "overlapping slow windows for {pid}; degraded-mode windows must be disjoint"
                )
            }
            FaultPlanError::EmptyWindow { pid, at } => {
                write!(f, "empty fault window for {pid} at round {at} (until <= at)")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl<M> Adversary<M> for FaultPlan {
    fn intercept(
        &mut self,
        round: Round,
        pid: Pid,
        _effects: &Effects<M>,
        _ctx: AdversaryCtx<'_>,
    ) -> Fate {
        self.verdict(round, pid)
    }

    fn next_event(&self, now: Round) -> Option<Round> {
        self.next_crash_event(now)
    }

    fn filters_deliveries(&self) -> bool {
        self.any_recv_omission()
    }

    fn omits_delivery(&mut self, now: Round, _from: Pid, to: Pid) -> bool {
        self.drops_delivery(now, to)
    }

    fn validate(&self, t: usize) -> Result<(), String> {
        FaultPlan::validate(self, t).map_err(|e| e.to_string())
    }
}

impl<M> AsyncAdversary<M> for FaultPlan {
    fn intercept(
        &mut self,
        time: Time,
        pid: Pid,
        _invocation: u64,
        _effects: &AsyncEffects<M>,
        _ctx: AdversaryCtx<'_>,
    ) -> Fate {
        self.verdict(time, pid)
    }

    fn scheduled_events(&self) -> Vec<(Time, Pid)> {
        self.faults.iter().filter(|f| f.kind.one_shot()).map(|f| (f.at, f.kind.pid())).collect()
    }

    fn filters_deliveries(&self) -> bool {
        self.any_recv_omission()
    }

    fn omits_delivery(&mut self, now: Time, _from: Pid, to: Pid) -> bool {
        self.drops_delivery(now, to)
    }

    fn validate(&self, t: usize) -> Result<(), String> {
        FaultPlan::validate(self, t).map_err(|e| e.to_string())
    }
}

/// One reduced-rate window of a degraded process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowWindow {
    /// First round of the window.
    pub from: Round,
    /// First round past the window ([`Round::MAX`] = never repaired).
    pub until: Round,
    /// The process acts only at rounds `r` with
    /// `(r - from) % factor == 0` inside the window.
    pub factor: u64,
}

impl SlowWindow {
    fn contains(&self, r: Round) -> bool {
        r >= self.from && r < self.until
    }

    fn on_grid(&self, r: Round) -> bool {
        r.saturating_sub(self.from).is_multiple_of(u128::from(self.factor.max(1)))
    }
}

/// Wrapper-decorator imposing degraded-mode (`Slow*`) faults on a
/// synchronous [`Protocol`]: inside a [`SlowWindow`], the inner process is
/// stepped only at every `factor`-th round of the window; messages
/// arriving at gated rounds are buffered and delivered — in arrival order,
/// ahead of the current round's — at the next permitted step. Outside all
/// windows (and for an empty window list) the wrapper is a strict
/// pass-through: same steps, same effects, bit-identical runs.
///
/// Symptoms: the first gated step of a window emits a `"fault:slow"`
/// note; the first step at or past a window's `until` emits
/// `"fault:slow:repaired"`.
#[derive(Debug)]
pub struct Degraded<P: Protocol> {
    inner: P,
    windows: Vec<SlowWindow>,
    buffered: Vec<(Pid, P::Msg)>,
    noted: Vec<bool>,
    repaired: Vec<bool>,
}

/// Cloning a wrapper clones the inner protocol *and* the degradation
/// bookkeeping (buffered messages, window cursors), so engine snapshots
/// capture mid-window state exactly.
impl<P: Protocol + Clone> Clone for Degraded<P>
where
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        Degraded {
            inner: self.inner.clone(),
            windows: self.windows.clone(),
            buffered: self.buffered.clone(),
            noted: self.noted.clone(),
            repaired: self.repaired.clone(),
        }
    }
}

impl<P: Protocol> Degraded<P> {
    /// Wraps `inner` with the given slow windows (sorted by start; they
    /// must not overlap).
    pub fn new(inner: P, mut windows: Vec<SlowWindow>) -> Self {
        windows.sort_by_key(|w| w.from);
        let n = windows.len();
        Degraded {
            inner,
            windows,
            buffered: Vec::new(),
            noted: vec![false; n],
            repaired: vec![false; n],
        }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the inner process.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn window_at(&self, r: Round) -> Option<usize> {
        self.windows.iter().position(|w| w.contains(r))
    }

    fn permitted(&self, r: Round) -> bool {
        match self.window_at(r) {
            Some(i) => self.windows[i].on_grid(r),
            None => true,
        }
    }

    /// Earliest permitted round `>= r`.
    fn next_permitted(&self, r: Round) -> Round {
        let mut r = r;
        loop {
            match self.window_at(r) {
                None => return r,
                Some(i) => {
                    let w = self.windows[i];
                    let f = u128::from(w.factor.max(1));
                    let off = r.saturating_sub(w.from);
                    let rem = off % f;
                    if rem == 0 {
                        return r;
                    }
                    let next = w.from.saturating_add(off - rem + f);
                    if next < w.until {
                        return next;
                    }
                    // Window ends before the next grid point: resume at
                    // full speed (or in the next window) at `until`.
                    r = w.until;
                }
            }
        }
    }
}

impl<P: Protocol> Protocol for Degraded<P> {
    type Msg = P::Msg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, Self::Msg>, eff: &mut Effects<Self::Msg>) {
        if let Some(i) = self.window_at(round) {
            if !self.noted[i] {
                self.noted[i] = true;
                eff.note("fault:slow");
            }
        }
        for i in 0..self.windows.len() {
            if self.noted[i] && !self.repaired[i] && round >= self.windows[i].until {
                self.repaired[i] = true;
                eff.note("fault:slow:repaired");
            }
        }
        if self.permitted(round) {
            if self.buffered.is_empty() {
                self.inner.step(round, inbox, eff);
            } else {
                let mut combined = std::mem::take(&mut self.buffered);
                combined.extend(inbox.iter().map(|(p, m)| (p, m.clone())));
                self.inner.step(round, Inbox::from_pairs(&combined), eff);
                combined.clear();
                self.buffered = combined;
            }
        } else {
            self.buffered.extend(inbox.iter().map(|(p, m)| (p, m.clone())));
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.windows.is_empty() {
            return self.inner.next_wakeup(now);
        }
        let buffered = if self.buffered.is_empty() { None } else { Some(self.next_permitted(now)) };
        let inner = self.inner.next_wakeup(now).map(|w| self.next_permitted(w.max(now)));
        match (buffered, inner) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_recover(&mut self, round: Round, wipe: bool) {
        if wipe {
            self.buffered.clear();
        }
        self.inner.on_recover(round, wipe);
    }
}

/// Wrapper-decorator imposing degraded-mode faults on an
/// [`AsyncProtocol`]: since asynchronous handlers never observe the
/// clock, gating counts **handler invocations** (messages and ticks;
/// `on_start` / `on_retirement` always pass through). Within an active
/// window — whose `from`/`until` are invocation ordinals, 1-based — only
/// every `factor`-th counted invocation reaches the inner protocol;
/// gated message batches are buffered and a tick is requested so the
/// deferred work is eventually driven. With no windows the wrapper is a
/// strict pass-through.
#[derive(Debug)]
pub struct AsyncDegraded<P: AsyncProtocol> {
    inner: P,
    windows: Vec<SlowWindow>,
    counted: u64,
    buffered: Vec<(Pid, P::Msg)>,
    inner_wants_tick: bool,
    noted: Vec<bool>,
    repaired: Vec<bool>,
}

/// Cloning a wrapper clones the inner protocol *and* the degradation
/// bookkeeping (invocation counter, buffered batches), so engine
/// snapshots capture mid-window state exactly.
impl<P: AsyncProtocol + Clone> Clone for AsyncDegraded<P>
where
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        AsyncDegraded {
            inner: self.inner.clone(),
            windows: self.windows.clone(),
            counted: self.counted,
            buffered: self.buffered.clone(),
            inner_wants_tick: self.inner_wants_tick,
            noted: self.noted.clone(),
            repaired: self.repaired.clone(),
        }
    }
}

impl<P: AsyncProtocol> AsyncDegraded<P> {
    /// Wraps `inner` with the given slow windows, measured in counted
    /// handler invocations.
    pub fn new(inner: P, mut windows: Vec<SlowWindow>) -> Self {
        windows.sort_by_key(|w| w.from);
        let n = windows.len();
        AsyncDegraded {
            inner,
            windows,
            counted: 0,
            buffered: Vec::new(),
            inner_wants_tick: false,
            noted: vec![false; n],
            repaired: vec![false; n],
        }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the inner process.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Counts this invocation and decides whether it is gated; emits
    /// lifecycle notes on window entry/exit.
    fn gate(&mut self, eff: &mut AsyncEffects<P::Msg>) -> bool {
        self.counted += 1;
        let now = Round::new(u128::from(self.counted));
        let mut gated = false;
        if let Some(i) = self.windows.iter().position(|w| w.contains(now)) {
            let w = self.windows[i];
            gated = !w.on_grid(now);
            if gated && !self.noted[i] {
                self.noted[i] = true;
                eff.note("fault:slow");
            }
        }
        for i in 0..self.windows.len() {
            if self.noted[i] && !self.repaired[i] && now >= self.windows[i].until {
                self.repaired[i] = true;
                eff.note("fault:slow:repaired");
            }
        }
        gated
    }

    /// Runs the inner handler(s) for an ungated invocation: buffered
    /// messages first (with `current` folded in), then a deferred tick.
    fn flush(&mut self, current: Option<Inbox<'_, P::Msg>>, eff: &mut AsyncEffects<P::Msg>) {
        if self.buffered.is_empty() {
            if let Some(inbox) = current {
                self.inner.on_messages(inbox, eff);
            }
        } else {
            let mut combined = std::mem::take(&mut self.buffered);
            if let Some(inbox) = current {
                combined.extend(inbox.iter().map(|(p, m)| (p, m.clone())));
            }
            self.inner.on_messages(Inbox::from_pairs(&combined), eff);
            combined.clear();
            self.buffered = combined;
        }
        if self.inner_wants_tick {
            self.inner_wants_tick = false;
            self.inner.on_tick(eff);
        }
        // Remember whether the inner protocol (re-)requested a tick; the
        // effects instance is shared, so the engine schedules it for us.
        self.inner_wants_tick = eff.wants_tick();
    }
}

impl<P: AsyncProtocol> AsyncProtocol for AsyncDegraded<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, eff: &mut AsyncEffects<Self::Msg>) {
        self.inner.on_start(eff);
        self.inner_wants_tick = self.inner_wants_tick || eff.wants_tick();
    }

    fn on_messages(&mut self, inbox: Inbox<'_, Self::Msg>, eff: &mut AsyncEffects<Self::Msg>) {
        if self.windows.is_empty() {
            self.inner.on_messages(inbox, eff);
            return;
        }
        if self.gate(eff) {
            self.buffered.extend(inbox.iter().map(|(p, m)| (p, m.clone())));
            eff.continue_later();
        } else {
            self.flush(Some(inbox), eff);
        }
    }

    fn on_retirement(&mut self, retired: Pid, eff: &mut AsyncEffects<Self::Msg>) {
        self.inner.on_retirement(retired, eff);
        // OR, don't overwrite: a pending deferred tick desire must
        // survive an interleaved retirement report.
        self.inner_wants_tick = self.inner_wants_tick || eff.wants_tick();
    }

    fn on_tick(&mut self, eff: &mut AsyncEffects<Self::Msg>) {
        if self.windows.is_empty() {
            self.inner.on_tick(eff);
            return;
        }
        if self.gate(eff) {
            eff.continue_later();
        } else {
            self.flush(None, eff);
        }
    }

    fn on_recover(&mut self, wipe: bool, eff: &mut AsyncEffects<Self::Msg>) {
        // Control-plane invocation: never counted or gated — a degraded
        // process still restarts on time; only its protocol work is slow.
        if wipe {
            self.buffered.clear();
            self.inner_wants_tick = false;
        }
        self.inner.on_recover(wipe, eff);
        self.inner_wants_tick = eff.wants_tick() || self.inner_wants_tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_builders_compose() {
        let f = FaultKind::OmitSends(Pid::new(3)).at(Round::new(5)).for_rounds(10);
        assert_eq!(f.until, Some(Round::new(15)));
        assert!(!f.active(Round::new(4)));
        assert!(f.active(Round::new(5)));
        assert!(f.active(Round::new(14)));
        assert!(!f.active(Round::new(15)));
        let bare: Fault = FaultKind::Crash(Pid::new(0)).into();
        assert_eq!(bare.at, Round::ONE);
        assert_eq!(bare.until, None);
    }

    #[test]
    fn empty_plan_is_no_failures() {
        let mut plan = FaultPlan::default();
        assert!(plan.is_empty());
        let eff: Effects<()> = Effects::new();
        let alive = [true, true];
        let ctx = AdversaryCtx::new(&alive, 0);
        assert_eq!(
            Adversary::<()>::intercept(&mut plan, Round::ONE, Pid::new(0), &eff, ctx),
            Fate::Survive
        );
        assert_eq!(Adversary::<()>::next_event(&plan, Round::ZERO), None);
        assert!(!Adversary::<()>::filters_deliveries(&plan));
        assert!(AsyncAdversary::<()>::scheduled_events(&plan).is_empty());
    }

    #[test]
    fn crash_faults_fire_once_at_or_after_their_round() {
        let mut plan = FaultPlan::new(vec![FaultKind::Crash(Pid::new(1)).at(Round::new(5))]);
        assert_eq!(plan.verdict(Round::new(4), Pid::new(1)), Fate::Survive);
        assert_eq!(plan.verdict(Round::new(5), Pid::new(0)), Fate::Survive);
        assert!(matches!(plan.verdict(Round::new(6), Pid::new(1)), Fate::Crash(_)));
        // One-shot: a second interception survives.
        assert_eq!(plan.verdict(Round::new(7), Pid::new(1)), Fate::Survive);
        assert_eq!(
            <FaultPlan as Adversary<()>>::next_event(&plan, Round::ZERO),
            None,
            "spent crash schedules no further events"
        );
    }

    #[test]
    fn omit_sends_is_windowed_and_survivable() {
        let mut plan =
            FaultPlan::new(vec![FaultKind::OmitSends(Pid::new(2)).at(Round::new(3)).until(6u64)]);
        assert_eq!(plan.verdict(Round::new(2), Pid::new(2)), Fate::Survive);
        assert_eq!(plan.verdict(Round::new(3), Pid::new(2)), Fate::Omit(Deliver::None));
        assert_eq!(plan.verdict(Round::new(5), Pid::new(2)), Fate::Omit(Deliver::None));
        assert_eq!(plan.verdict(Round::new(6), Pid::new(2)), Fate::Survive);
    }

    #[test]
    fn recv_omission_filters_by_recipient_and_window() {
        let mut plan =
            FaultPlan::new(vec![FaultKind::OmitRecv(Pid::new(1)).at(Round::new(2)).until(4u64)]);
        assert!(Adversary::<()>::filters_deliveries(&plan));
        assert!(!Adversary::<()>::omits_delivery(
            &mut plan,
            Round::new(1),
            Pid::new(0),
            Pid::new(1)
        ));
        assert!(Adversary::<()>::omits_delivery(
            &mut plan,
            Round::new(2),
            Pid::new(0),
            Pid::new(1)
        ));
        assert!(!Adversary::<()>::omits_delivery(
            &mut plan,
            Round::new(2),
            Pid::new(0),
            Pid::new(2)
        ));
        assert!(!Adversary::<()>::omits_delivery(
            &mut plan,
            Round::new(4),
            Pid::new(0),
            Pid::new(1)
        ));
    }

    #[test]
    fn crash_recover_verdict_carries_downtime_and_wipe() {
        let mut plan = FaultPlan::new(vec![FaultKind::CrashRecover {
            pid: Pid::new(0),
            downtime: 7,
            wipe: true,
        }
        .at(Round::new(2))]);
        match plan.verdict(Round::new(2), Pid::new(0)) {
            Fate::CrashRecover { downtime, wipe, .. } => {
                assert_eq!(downtime, 7);
                assert!(wipe);
            }
            other => panic!("expected CrashRecover, got {other:?}"),
        }
        assert_eq!(
            AsyncAdversary::<()>::scheduled_events(&plan),
            vec![(Round::new(2), Pid::new(0))]
        );
    }

    #[test]
    fn slow_windows_collect_per_pid() {
        let plan = FaultPlan::new(vec![
            FaultKind::SlowQuarter(Pid::new(1)).at(Round::new(5)).until(25u64),
            FaultKind::Slow { pid: Pid::new(1), factor: 2 }.at(Round::new(30)),
            FaultKind::OmitSends(Pid::new(1)).at(Round::new(2)),
        ]);
        let ws = plan.slow_windows(Pid::new(1));
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].factor, 4);
        assert_eq!(ws[1].until, Round::MAX);
        assert!(plan.slow_windows(Pid::new(0)).is_empty());
    }

    #[test]
    fn next_permitted_respects_grid_and_window_end() {
        struct Nop;
        #[derive(Clone, Debug)]
        struct M;
        impl crate::message::Classify for M {}
        impl Protocol for Nop {
            type Msg = M;
            fn step(&mut self, _: Round, _: Inbox<'_, M>, _: &mut Effects<M>) {}
            fn next_wakeup(&self, _: Round) -> Option<Round> {
                None
            }
        }
        let d = Degraded::new(
            Nop,
            vec![SlowWindow { from: Round::new(10), until: Round::new(20), factor: 4 }],
        );
        assert_eq!(d.next_permitted(Round::new(5)), Round::new(5));
        assert_eq!(d.next_permitted(Round::new(10)), Round::new(10));
        assert_eq!(d.next_permitted(Round::new(11)), Round::new(14));
        assert_eq!(d.next_permitted(Round::new(15)), Round::new(18));
        // Next grid point (22) lies past the window: resume at `until`.
        assert_eq!(d.next_permitted(Round::new(19)), Round::new(20));
        assert!(d.permitted(Round::new(14)));
        assert!(!d.permitted(Round::new(13)));
        assert!(d.permitted(Round::new(21)));
    }
}
