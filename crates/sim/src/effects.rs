//! The per-round output of a protocol step.

use std::ops::Range;

use crate::ids::{Pid, Unit};

/// The recipient set of one send operation.
///
/// The paper's protocols are broadcast-dominated, and every broadcast they
/// perform targets a *contiguous* pid range (a group, the higher-numbered
/// members of a group, "everyone else"). Storing the range instead of one
/// address per recipient is what makes a `k`-recipient broadcast cost O(1)
/// to record, store and deliver — the payload is never cloned per
/// recipient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recipients {
    /// A single process.
    One(Pid),
    /// The contiguous zero-based pid span `lo..hi` (half-open, non-empty).
    Span {
        /// First recipient index.
        lo: usize,
        /// One past the last recipient index.
        hi: usize,
    },
}

impl Recipients {
    /// Number of recipients.
    pub fn len(self) -> usize {
        match self {
            Recipients::One(_) => 1,
            Recipients::Span { lo, hi } => hi - lo,
        }
    }

    /// Whether the set is empty (never true for ops recorded by
    /// [`Effects`]; [`Effects::multicast`] drops empty ranges).
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Whether `p` is a recipient.
    pub fn contains(self, p: Pid) -> bool {
        match self {
            Recipients::One(q) => q == p,
            Recipients::Span { lo, hi } => (lo..hi).contains(&p.index()),
        }
    }

    /// Iterates over the recipients in ascending pid order (for `One`, the
    /// single recipient).
    pub fn iter(self) -> impl DoubleEndedIterator<Item = Pid> + Clone {
        let (lo, hi) = match self {
            Recipients::One(p) => (p.index(), p.index() + 1),
            Recipients::Span { lo, hi } => (lo, hi),
        };
        (lo..hi).map(Pid::new)
    }
}

/// One recorded send operation: a payload stored **once**, plus its
/// recipient set. A broadcast to `k` recipients is one `SendOp`, not `k`
/// queued messages — message *counts* stay per-recipient (the paper's
/// measure), storage and delivery are per-op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendOp<M> {
    /// Who receives the payload.
    pub to: Recipients,
    /// The payload, shared by every recipient of this op.
    pub payload: M,
}

/// The shared send-op recording buffer behind both the synchronous
/// [`Effects`] and the asynchronous
/// [`AsyncEffects`](crate::asynch::AsyncEffects): ops store their payload
/// once, span multicasts are recorded in O(1), and arbitrary recipient
/// iterators are coalesced into maximal contiguous runs. The per-message
/// count (`sent`) is maintained incrementally so both planes report
/// per-recipient message totals in O(1).
#[derive(Debug)]
pub(crate) struct SendBuf<M> {
    ops: Vec<SendOp<M>>,
    /// Total number of point-to-point messages across `ops` (the sum of
    /// the ops' recipient counts).
    sent: usize,
}

impl<M> Default for SendBuf<M> {
    fn default() -> Self {
        SendBuf { ops: Vec::new(), sent: 0 }
    }
}

impl<M> SendBuf<M> {
    /// Clears the recorded ops while retaining the buffer's capacity.
    pub(crate) fn clear(&mut self) {
        self.ops.clear();
        self.sent = 0;
    }

    /// Records a unicast.
    pub(crate) fn one(&mut self, to: Pid, payload: M) {
        self.sent += 1;
        self.ops.push(SendOp { to: Recipients::One(to), payload });
    }

    /// Records a contiguous-range broadcast as one op (payload stored
    /// once). Empty ranges record nothing.
    pub(crate) fn span(&mut self, to: Range<usize>, payload: M) {
        if to.is_empty() {
            return;
        }
        self.sent += to.len();
        self.ops.push(SendOp { to: Recipients::Span { lo: to.start, hi: to.end }, payload });
    }

    /// Records a broadcast to an arbitrary pid iterator, coalescing
    /// consecutive ascending runs into spans (one clone per extra run).
    pub(crate) fn coalesced<I>(&mut self, to: I, payload: M)
    where
        I: IntoIterator<Item = Pid>,
        M: Clone,
    {
        let mut payload = Some(payload);
        coalesce_runs(to, |run, last| {
            let m = if last {
                payload.take().expect("taken only on the final run")
            } else {
                payload.as_ref().expect("present until the final run").clone()
            };
            self.span(run, m);
        });
    }

    /// The recorded ops, in send order.
    pub(crate) fn ops(&self) -> &[SendOp<M>] {
        &self.ops
    }

    /// Total point-to-point messages recorded (a `k`-recipient op counts
    /// `k`) — O(1).
    pub(crate) fn count(&self) -> usize {
        self.sent
    }

    /// Whether nothing has been recorded.
    pub(crate) fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Moves the recorded ops out, leaving the capacity in place.
    pub(crate) fn drain(&mut self) -> std::vec::Drain<'_, SendOp<M>> {
        self.sent = 0;
        self.ops.drain(..)
    }
}

/// Everything a process decided to do during one round.
///
/// The engine hands an empty `Effects` to [`Protocol::step`] each round; the
/// protocol records its actions on it. The synchronous model of the paper
/// allows, per round, **at most one unit of work** plus **one round of
/// communication** (any number of messages, e.g. a broadcast to a whole
/// group); [`Effects::perform`] enforces the work rule.
///
/// Sends are recorded as [`SendOp`]s: [`Effects::send`] queues a unicast,
/// [`Effects::multicast`] a contiguous-range broadcast in O(1), and
/// [`Effects::broadcast`] accepts an arbitrary pid iterator, coalescing
/// consecutive runs into spans (a contiguous iterator costs one op and zero
/// payload clones).
///
/// The engine recycles a single scratch instance across all processes and
/// rounds ([`Effects::reset`] clears it while keeping its buffers), so the
/// steady-state hot loop performs no allocation beyond what the protocol's
/// own sends require the first time a high-water mark is reached.
///
/// [`Protocol::step`]: crate::Protocol::step
#[derive(Debug)]
pub struct Effects<M> {
    work: Option<Unit>,
    sends: SendBuf<M>,
    notes: Vec<&'static str>,
    terminated: bool,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects { work: None, sends: SendBuf::default(), notes: Vec::new(), terminated: false }
    }
}

impl<M> Effects<M> {
    /// Creates an empty set of effects (the idle round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all recorded actions while retaining the send/note buffers,
    /// so one scratch instance can be recycled round after round without
    /// reallocating.
    pub fn reset(&mut self) {
        self.work = None;
        self.sends.clear();
        self.notes.clear();
        self.terminated = false;
    }

    /// Performs one unit of work this round.
    ///
    /// # Panics
    ///
    /// Panics if a unit was already performed this round: the model permits
    /// one unit of work per process per round.
    pub fn perform(&mut self, unit: Unit) {
        assert!(
            self.work.is_none(),
            "model violation: at most one unit of work per round (attempted {unit} after {})",
            self.work.expect("just checked"),
        );
        self.work = Some(unit);
    }

    /// Sends `payload` to a single recipient.
    pub fn send(&mut self, to: Pid, payload: M) {
        self.sends.one(to, payload);
    }

    /// Broadcasts `payload` to the contiguous pid range `to` — one payload,
    /// one op, O(1) regardless of the range's width. Empty ranges record
    /// nothing.
    ///
    /// This is the paper's broadcast primitive: checkpoints go to groups
    /// and group suffixes, which are contiguous by construction. Recipients
    /// equal to the sender are the caller's responsibility to exclude; the
    /// engine delivers self-addressed messages like any other.
    pub fn multicast(&mut self, to: Range<usize>, payload: M) {
        self.sends.span(to, payload);
    }

    /// Broadcasts `payload` to every listed recipient (one round, many
    /// messages), coalescing consecutive ascending runs into spans: a
    /// contiguous iterator records a single op without cloning the payload;
    /// an arbitrary one costs one op (and one clone) per contiguous run.
    ///
    /// Prefer [`Effects::multicast`] when the recipient set is already a
    /// range.
    pub fn broadcast<I>(&mut self, to: I, payload: M)
    where
        I: IntoIterator<Item = Pid>,
        M: Clone,
    {
        self.sends.coalesced(to, payload);
    }

    /// Broadcasts `payload` to every pid of `to` except `skip` — the
    /// "everyone but me" pattern — as at most two span ops (one payload
    /// clone only when `skip` actually splits the range).
    pub fn multicast_except(&mut self, to: Range<usize>, skip: usize, payload: M)
    where
        M: Clone,
    {
        let left = to.start..skip.min(to.end);
        let right = (skip + 1).max(to.start)..to.end;
        if left.is_empty() {
            self.multicast(right, payload);
        } else if right.is_empty() {
            self.multicast(left, payload);
        } else {
            self.multicast(left, payload.clone());
            self.multicast(right, payload);
        }
    }

    /// Marks the process as terminated (retired voluntarily) at the end of
    /// this round. Messages sent in the same round still go out.
    pub fn terminate(&mut self) {
        self.terminated = true;
    }

    /// Records a structured annotation on the trace (e.g. `"activate"`).
    ///
    /// Notes are invisible to other processes; they exist so tests and
    /// invariant checkers can observe protocol-internal transitions such as
    /// "process j became active" (Lemmas 2.2, 2.7 and 3.4 are assertions
    /// about those transitions).
    pub fn note(&mut self, tag: &'static str) {
        self.notes.push(tag);
    }

    /// The unit of work performed this round, if any.
    pub fn work(&self) -> Option<Unit> {
        self.work
    }

    /// The send operations queued this round, in send order.
    pub fn sends(&self) -> &[SendOp<M>] {
        self.sends.ops()
    }

    /// Total number of point-to-point messages queued this round (a
    /// `k`-recipient op counts `k`) — O(1), maintained incrementally.
    pub fn send_count(&self) -> usize {
        self.sends.count()
    }

    /// The trace annotations recorded this round.
    pub fn notes(&self) -> &[&'static str] {
        &self.notes
    }

    /// Whether the process terminated this round.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Whether this round was a pure no-op.
    pub fn is_idle(&self) -> bool {
        self.work.is_none() && self.sends.is_empty() && !self.terminated
    }

    /// Moves this round's send ops out, leaving the buffer's capacity in
    /// place for the next round.
    pub(crate) fn drain_sends(&mut self) -> std::vec::Drain<'_, SendOp<M>> {
        self.sends.drain()
    }
}

/// Splits a pid iterator into maximal consecutive ascending runs, calling
/// `emit(run, is_last)` for each — the coalescing behind
/// [`SendBuf::coalesced`], which in turn backs [`Effects::broadcast`] and
/// its asynchronous counterpart
/// [`AsyncEffects::broadcast`](crate::asynch::AsyncEffects::broadcast).
pub(crate) fn coalesce_runs<I, F>(to: I, mut emit: F)
where
    I: IntoIterator<Item = Pid>,
    F: FnMut(Range<usize>, bool),
{
    let mut it = to.into_iter();
    let Some(first) = it.next() else { return };
    let (mut lo, mut hi) = (first.index(), first.index() + 1);
    for p in it {
        if p.index() == hi {
            hi += 1;
        } else {
            emit(lo..hi, false);
            lo = p.index();
            hi = lo + 1;
        }
    }
    emit(lo..hi, true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_effects_report_idle() {
        let eff: Effects<()> = Effects::new();
        assert!(eff.is_idle());
        assert!(eff.work().is_none());
        assert!(eff.sends().is_empty());
        assert_eq!(eff.send_count(), 0);
    }

    #[test]
    fn perform_records_the_unit() {
        let mut eff: Effects<()> = Effects::new();
        eff.perform(Unit::new(4));
        assert_eq!(eff.work(), Some(Unit::new(4)));
        assert!(!eff.is_idle());
    }

    #[test]
    #[should_panic(expected = "at most one unit of work per round")]
    fn two_units_in_one_round_violate_the_model() {
        let mut eff: Effects<()> = Effects::new();
        eff.perform(Unit::new(1));
        eff.perform(Unit::new(2));
    }

    #[test]
    fn multicast_stores_one_op_counting_every_recipient() {
        let mut eff: Effects<u8> = Effects::new();
        eff.multicast(1..4, 9);
        assert_eq!(eff.sends().len(), 1, "one op, not one per recipient");
        assert_eq!(eff.send_count(), 3, "counts stay per-recipient");
        assert_eq!(eff.sends()[0].to, Recipients::Span { lo: 1, hi: 4 });
        let to: Vec<usize> = eff.sends()[0].to.iter().map(Pid::index).collect();
        assert_eq!(to, vec![1, 2, 3]);
    }

    #[test]
    fn empty_multicast_records_nothing() {
        let mut eff: Effects<u8> = Effects::new();
        eff.multicast(4..4, 1);
        assert!(eff.is_idle());
        assert_eq!(eff.send_count(), 0);
    }

    #[test]
    fn broadcast_coalesces_a_contiguous_iterator_into_one_span() {
        let mut eff: Effects<u8> = Effects::new();
        eff.broadcast(Pid::range(1, 4), 9);
        assert_eq!(eff.sends().len(), 1);
        assert_eq!(eff.sends()[0].to, Recipients::Span { lo: 1, hi: 4 });
        assert_eq!(eff.send_count(), 3);
    }

    #[test]
    fn broadcast_splits_noncontiguous_recipients_into_runs() {
        // 0, 1, then a gap, then 5, 6, 7 — two spans.
        let pids = [0, 1, 5, 6, 7].into_iter().map(Pid::new);
        let mut eff: Effects<u8> = Effects::new();
        eff.broadcast(pids, 3);
        assert_eq!(eff.sends().len(), 2);
        assert_eq!(eff.sends()[0].to, Recipients::Span { lo: 0, hi: 2 });
        assert_eq!(eff.sends()[1].to, Recipients::Span { lo: 5, hi: 8 });
        assert_eq!(eff.send_count(), 5);
    }

    #[test]
    fn broadcast_of_nothing_is_idle() {
        let mut eff: Effects<u8> = Effects::new();
        eff.broadcast(Pid::range(3, 3), 1);
        assert!(eff.is_idle());
    }

    #[test]
    fn recipients_len_contains_and_iter_agree() {
        let one = Recipients::One(Pid::new(7));
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        assert!(one.contains(Pid::new(7)));
        assert!(!one.contains(Pid::new(8)));
        assert_eq!(one.iter().collect::<Vec<_>>(), vec![Pid::new(7)]);

        let span = Recipients::Span { lo: 2, hi: 5 };
        assert_eq!(span.len(), 3);
        assert!(span.contains(Pid::new(2)));
        assert!(span.contains(Pid::new(4)));
        assert!(!span.contains(Pid::new(5)));
        assert_eq!(span.iter().count(), 3);
    }

    #[test]
    fn termination_is_not_idle() {
        let mut eff: Effects<()> = Effects::new();
        eff.terminate();
        assert!(!eff.is_idle());
        assert!(eff.is_terminated());
    }

    #[test]
    fn reset_clears_every_recorded_action() {
        let mut eff: Effects<u8> = Effects::new();
        eff.perform(Unit::new(1));
        eff.send(Pid::new(1), 7);
        eff.note("x");
        eff.terminate();
        eff.reset();
        assert!(eff.is_idle());
        assert_eq!(eff.send_count(), 0);
        assert!(eff.notes().is_empty());
        assert!(!eff.is_terminated());
        // The one-unit-per-round rule restarts after a reset.
        eff.perform(Unit::new(2));
        assert_eq!(eff.work(), Some(Unit::new(2)));
    }

    #[test]
    fn notes_accumulate() {
        let mut eff: Effects<()> = Effects::new();
        eff.note("activate");
        eff.note("full_checkpoint");
        assert_eq!(eff.notes(), ["activate", "full_checkpoint"]);
    }
}
