//! The per-round output of a protocol step.

use crate::ids::{Pid, Unit};

/// Everything a process decided to do during one round.
///
/// The engine hands an empty `Effects` to [`Protocol::step`] each round; the
/// protocol records its actions on it. The synchronous model of the paper
/// allows, per round, **at most one unit of work** plus **one round of
/// communication** (any number of messages, e.g. a broadcast to a whole
/// group); [`Effects::perform`] enforces the work rule.
///
/// The engine recycles a single scratch instance across all processes and
/// rounds ([`Effects::reset`] clears it while keeping its buffers), so the
/// steady-state hot loop performs no allocation beyond what the protocol's
/// own sends require the first time a high-water mark is reached.
///
/// [`Protocol::step`]: crate::Protocol::step
#[derive(Debug)]
pub struct Effects<M> {
    work: Option<Unit>,
    sends: Vec<(Pid, M)>,
    notes: Vec<&'static str>,
    terminated: bool,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects { work: None, sends: Vec::new(), notes: Vec::new(), terminated: false }
    }
}

impl<M> Effects<M> {
    /// Creates an empty set of effects (the idle round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all recorded actions while retaining the send/note buffers,
    /// so one scratch instance can be recycled round after round without
    /// reallocating.
    pub fn reset(&mut self) {
        self.work = None;
        self.sends.clear();
        self.notes.clear();
        self.terminated = false;
    }

    /// Performs one unit of work this round.
    ///
    /// # Panics
    ///
    /// Panics if a unit was already performed this round: the model permits
    /// one unit of work per process per round.
    pub fn perform(&mut self, unit: Unit) {
        assert!(
            self.work.is_none(),
            "model violation: at most one unit of work per round (attempted {unit} after {})",
            self.work.expect("just checked"),
        );
        self.work = Some(unit);
    }

    /// Sends `payload` to a single recipient.
    pub fn send(&mut self, to: Pid, payload: M) {
        self.sends.push((to, payload));
    }

    /// Broadcasts `payload` to every listed recipient (one round, many
    /// messages — the paper's broadcast primitive).
    ///
    /// Recipients equal to the sender are the caller's responsibility to
    /// exclude; the engine delivers self-addressed messages like any other.
    pub fn broadcast<I>(&mut self, to: I, payload: M)
    where
        I: IntoIterator<Item = Pid>,
        M: Clone,
    {
        for pid in to {
            self.sends.push((pid, payload.clone()));
        }
    }

    /// Marks the process as terminated (retired voluntarily) at the end of
    /// this round. Messages sent in the same round still go out.
    pub fn terminate(&mut self) {
        self.terminated = true;
    }

    /// Records a structured annotation on the trace (e.g. `"activate"`).
    ///
    /// Notes are invisible to other processes; they exist so tests and
    /// invariant checkers can observe protocol-internal transitions such as
    /// "process j became active" (Lemmas 2.2, 2.7 and 3.4 are assertions
    /// about those transitions).
    pub fn note(&mut self, tag: &'static str) {
        self.notes.push(tag);
    }

    /// The unit of work performed this round, if any.
    pub fn work(&self) -> Option<Unit> {
        self.work
    }

    /// The messages queued for sending this round, in send order.
    pub fn sends(&self) -> &[(Pid, M)] {
        &self.sends
    }

    /// The trace annotations recorded this round.
    pub fn notes(&self) -> &[&'static str] {
        &self.notes
    }

    /// Whether the process terminated this round.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Whether this round was a pure no-op.
    pub fn is_idle(&self) -> bool {
        self.work.is_none() && self.sends.is_empty() && !self.terminated
    }

    /// Moves this round's sends out, leaving the buffer's capacity in place
    /// for the next round.
    pub(crate) fn drain_sends(&mut self) -> std::vec::Drain<'_, (Pid, M)> {
        self.sends.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_effects_report_idle() {
        let eff: Effects<()> = Effects::new();
        assert!(eff.is_idle());
        assert!(eff.work().is_none());
        assert!(eff.sends().is_empty());
    }

    #[test]
    fn perform_records_the_unit() {
        let mut eff: Effects<()> = Effects::new();
        eff.perform(Unit::new(4));
        assert_eq!(eff.work(), Some(Unit::new(4)));
        assert!(!eff.is_idle());
    }

    #[test]
    #[should_panic(expected = "at most one unit of work per round")]
    fn two_units_in_one_round_violate_the_model() {
        let mut eff: Effects<()> = Effects::new();
        eff.perform(Unit::new(1));
        eff.perform(Unit::new(2));
    }

    #[test]
    fn broadcast_fans_out_in_order() {
        let mut eff: Effects<u8> = Effects::new();
        eff.broadcast(Pid::range(1, 4), 9);
        let to: Vec<usize> = eff.sends().iter().map(|(p, _)| p.index()).collect();
        assert_eq!(to, vec![1, 2, 3]);
    }

    #[test]
    fn termination_is_not_idle() {
        let mut eff: Effects<()> = Effects::new();
        eff.terminate();
        assert!(!eff.is_idle());
        assert!(eff.is_terminated());
    }

    #[test]
    fn reset_clears_every_recorded_action() {
        let mut eff: Effects<u8> = Effects::new();
        eff.perform(Unit::new(1));
        eff.send(Pid::new(1), 7);
        eff.note("x");
        eff.terminate();
        eff.reset();
        assert!(eff.is_idle());
        assert!(eff.notes().is_empty());
        assert!(!eff.is_terminated());
        // The one-unit-per-round rule restarts after a reset.
        eff.perform(Unit::new(2));
        assert_eq!(eff.work(), Some(Unit::new(2)));
    }

    #[test]
    fn notes_accumulate() {
        let mut eff: Effects<()> = Effects::new();
        eff.note("activate");
        eff.note("full_checkpoint");
        assert_eq!(eff.notes(), ["activate", "full_checkpoint"]);
    }
}
