//! Work / message / time accounting — the paper's three complexity measures.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::ids::{Round, Unit};

/// Counters for the paper's complexity measures.
///
/// * **work** — units performed, *including multiplicity* (a unit redone by
///   a later process counts again);
/// * **messages** — point-to-point messages sent. A broadcast to `k`
///   recipients counts `k`. For a process that crashes mid-broadcast, only
///   the delivered subset counts (the rest never left the process);
/// * **rounds** — the round by which every process has retired;
/// * **effort** — work + messages (the quantity the paper optimizes).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Metrics {
    /// Total units of work performed, counting repetitions.
    pub work_total: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Message counts broken down by [`Classify`](crate::Classify) class.
    pub messages_by_class: BTreeMap<&'static str, u64>,
    /// The round by which all processes had retired (crashed or
    /// terminated); equivalently the last executed round of the run.
    pub rounds: Round,
    /// Number of processes that crashed.
    pub crashes: u32,
    /// Number of processes that terminated voluntarily.
    pub terminations: u32,
    /// Messages that arrived at already-retired recipients (sent but never
    /// processed). Included in `messages`.
    pub dead_letters: u64,
    /// Messages suppressed by omission faults (send- or receive-side).
    /// These never left (or never reached) a process, so they are **not**
    /// included in `messages`.
    pub omissions: u64,
    /// Number of crash-recovery restarts (a process may recover at most
    /// once per [`Fate::CrashRecover`](crate::Fate::CrashRecover) verdict,
    /// but may crash and recover repeatedly over a run).
    pub recoveries: u32,
    /// Per-unit multiplicities, indexed by `unit - 1`.
    pub work_by_unit: Vec<u32>,
}

impl Metrics {
    /// Creates zeroed metrics for an `n`-unit workload.
    pub fn new(n: usize) -> Self {
        Metrics { work_by_unit: vec![0; n], ..Default::default() }
    }

    /// The paper's *effort* measure: work plus messages.
    pub fn effort(&self) -> u64 {
        self.work_total + self.messages
    }

    /// Whether every unit `1..=n` was performed at least once.
    pub fn all_work_done(&self) -> bool {
        self.work_by_unit.iter().all(|&c| c > 0)
    }

    /// Units that were never performed (should be empty whenever at least
    /// one process survives — the paper's correctness condition).
    pub fn missing_units(&self) -> Vec<Unit> {
        self.work_by_unit
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| Unit::new(i + 1))
            .collect()
    }

    /// Units performed more than once, with their multiplicities.
    pub fn redone_units(&self) -> Vec<(Unit, u32)> {
        self.work_by_unit
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 1)
            .map(|(i, &c)| (Unit::new(i + 1), c))
            .collect()
    }

    /// Total *wasted* work: performances beyond the first per unit.
    pub fn wasted_work(&self) -> u64 {
        self.work_by_unit.iter().map(|&c| u64::from(c.saturating_sub(1))).sum()
    }

    pub(crate) fn record_work(&mut self, unit: Unit) {
        self.work_total += 1;
        let idx = unit.zero_based();
        if idx >= self.work_by_unit.len() {
            self.work_by_unit.resize(idx + 1, 0);
        }
        self.work_by_unit[idx] += 1;
    }

    /// Bulk counter for span sends: one map lookup per *op*, not per
    /// recipient, while the counted values stay per-recipient (a
    /// `k`-recipient broadcast still counts `k`). Per-message call sites
    /// (the async plane's per-recipient reference scheduler) pass `k = 1`.
    pub(crate) fn record_messages(&mut self, class: &'static str, k: u64) {
        if k == 0 {
            return;
        }
        self.messages += k;
        *self.messages_by_class.entry(class).or_insert(0) += k;
    }

    /// Folds a lane-local effect ledger into this one and zeroes the lane:
    /// message totals, per-class counts, and send-omission suppressions.
    /// Addition is commutative, so folding lanes in ascending-pid lane
    /// order yields exactly the counters the sequential engine accumulates
    /// pid by pid. Work, crash/termination, and round counters are *not*
    /// folded here — the engine accounts those on its own phases.
    pub(crate) fn fold_effects(&mut self, lane: &mut Metrics) {
        self.messages += lane.messages;
        self.omissions += lane.omissions;
        for (class, k) in &lane.messages_by_class {
            *self.messages_by_class.entry(class).or_insert(0) += k;
        }
        lane.messages = 0;
        lane.omissions = 0;
        lane.messages_by_class.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_is_work_plus_messages() {
        let mut m = Metrics::new(3);
        m.record_work(Unit::new(1));
        m.record_work(Unit::new(1));
        m.record_messages("ordinary", 1);
        assert_eq!(m.work_total, 2);
        assert_eq!(m.messages, 1);
        assert_eq!(m.effort(), 3);
    }

    #[test]
    fn completion_and_missing_units() {
        let mut m = Metrics::new(3);
        m.record_work(Unit::new(1));
        m.record_work(Unit::new(3));
        assert!(!m.all_work_done());
        assert_eq!(m.missing_units(), vec![Unit::new(2)]);
        m.record_work(Unit::new(2));
        assert!(m.all_work_done());
        assert!(m.missing_units().is_empty());
    }

    #[test]
    fn wasted_work_counts_repeats_only() {
        let mut m = Metrics::new(2);
        m.record_work(Unit::new(1));
        m.record_work(Unit::new(1));
        m.record_work(Unit::new(1));
        m.record_work(Unit::new(2));
        assert_eq!(m.wasted_work(), 2);
        assert_eq!(m.redone_units(), vec![(Unit::new(1), 3)]);
    }

    #[test]
    fn class_breakdown_sums_to_total() {
        let mut m = Metrics::new(0);
        m.record_messages("ordinary", 1);
        m.record_messages("ordinary", 1);
        m.record_messages("go_ahead", 1);
        assert_eq!(m.messages, 3);
        assert_eq!(m.messages_by_class["ordinary"], 2);
        assert_eq!(m.messages_by_class["go_ahead"], 1);
        let sum: u64 = m.messages_by_class.values().sum();
        assert_eq!(sum, m.messages);
    }

    #[test]
    fn bulk_recording_matches_per_message_recording() {
        let mut bulk = Metrics::new(0);
        bulk.record_messages("ordinary", 5);
        bulk.record_messages("go_ahead", 2);
        let mut one_by_one = Metrics::new(0);
        for _ in 0..5 {
            one_by_one.record_messages("ordinary", 1);
        }
        for _ in 0..2 {
            one_by_one.record_messages("go_ahead", 1);
        }
        assert_eq!(bulk, one_by_one);
        // A zero-recipient record must not create a map entry.
        bulk.record_messages("phantom", 0);
        assert!(!bulk.messages_by_class.contains_key("phantom"));
        assert_eq!(bulk.messages, 7);
    }

    #[test]
    fn work_by_unit_grows_on_demand() {
        let mut m = Metrics::new(1);
        m.record_work(Unit::new(5));
        assert_eq!(m.work_by_unit.len(), 5);
        assert_eq!(m.work_by_unit[4], 1);
    }
}
