//! # doall-sim
//!
//! A deterministic simulator for the synchronous, crash-prone,
//! message-passing model of Dwork, Halpern & Waarts, *Performing Work
//! Efficiently in the Presence of Faults* (PODC 1992).
//!
//! The model: `t` processes numbered `0..t-1` proceed in lockstep rounds.
//! Per round a process may perform **one unit of work** and **one round of
//! communication** (any number of messages); messages sent in round `r`
//! arrive at the start of round `r + 1`. Processes fail only by crashing,
//! possibly *mid-broadcast* — in which case an adversary-chosen subset of
//! the recipients receives the message.
//!
//! The engine measures the paper's three complexity parameters exactly:
//! work performed (with multiplicity), messages sent, and rounds elapsed.
//! Because the engine *is* the model (rather than an approximation of a
//! testbed), measured values can be compared directly against the paper's
//! theorem bounds.
//!
//! ## Quick tour
//!
//! * implement [`Protocol`] for your per-process state machine;
//! * pick an [`Adversary`] (from [`NoFailures`] to scripted worst cases);
//! * call [`run`] and inspect the [`Report`].
//!
//! ```
//! use doall_sim::{run, NoFailures, RunConfig, Protocol, Effects, Inbox, Classify, Round, Unit};
//!
//! /// Every process performs one unit and stops.
//! struct OneUnit(usize);
//!
//! #[derive(Clone, Debug)]
//! struct NoMsg;
//! impl Classify for NoMsg {}
//!
//! impl Protocol for OneUnit {
//!     type Msg = NoMsg;
//!     fn step(&mut self, _: Round, _: Inbox<'_, NoMsg>, eff: &mut Effects<NoMsg>) {
//!         eff.perform(Unit::new(self.0 + 1));
//!         eff.terminate();
//!     }
//!     fn next_wakeup(&self, now: Round) -> Option<Round> { Some(now) }
//! }
//!
//! let procs = (0..4).map(OneUnit).collect();
//! let report = run(procs, NoFailures, RunConfig::new(4, 10))?;
//! assert!(report.metrics.all_work_done());
//! assert_eq!(report.metrics.rounds, 1u64);
//! # Ok::<(), doall_sim::RunError>(())
//! ```
//!
//! The [`asynch`] module provides the event-driven asynchronous engine —
//! adversary-seeded message delays plus a retirement detector (§2.1 of the
//! paper) — as a full peer of this round engine: in-flight payloads live
//! once in an op arena, same-timestamp deliveries batch into the same
//! borrowing [`Inbox`] views, and faults come from a pluggable
//! [`asynch::AsyncAdversary`] speaking the [`Fate`]/[`CrashSpec`]/
//! [`Deliver`] vocabulary above.
//!
//! Both planes go beyond fail-stop: adversaries can impose crash-recovery
//! (a crashed process restarts, stale or wiped), send/receive omission,
//! and — via the [`Degraded`]/[`AsyncDegraded`] wrappers — degraded-mode
//! slowdown. The [`faults`] module packages all of these as a named-fault
//! catalog ([`FaultKind`]/[`FaultPlan`]) usable on either plane.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod adversary;
mod effects;
mod engine;
mod ids;
mod liveset;
mod message;
mod metrics;
mod protocol;
mod trace;

pub mod asynch;
pub mod chaos;
pub mod faults;
pub mod invariants;

pub use adversary::{
    Adversary, AdversaryCtx, AliveView, CrashSchedule, CrashSpec, Deliver, Fate, NoFailures,
    RandomCrashes, Trigger, TriggerAdversary, TriggerRule,
};
pub use effects::{Effects, Recipients, SendOp};
pub use engine::{
    run, run_returning, Engine, EngineSnapshot, MemBudget, Report, RunConfig, RunError,
    StallDiagnosis, Status,
};
pub use faults::{
    AsyncDegraded, Degraded, Fault, FaultKind, FaultPlan, FaultPlanError, SlowWindow,
};
pub use ids::{Pid, Round, Unit};
pub use liveset::LiveSet;
pub use message::{Classify, Inbox, InboxIter};
pub use metrics::Metrics;
pub use protocol::Protocol;
pub use trace::{Event, Trace};
