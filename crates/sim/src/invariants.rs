//! Trace-based checkers for the paper's structural invariants.
//!
//! Protocols A, B and C all guarantee that **at most one process is active
//! at a time** and that a process becomes active **only after every
//! lower-numbered (A, B) or more-knowledgeable (C) process has retired**
//! (Lemmas 2.2, 2.7 and 3.4(d)). Protocol implementations emit an
//! `"activate"` note when a process takes over; these checkers replay a
//! recorded [`Trace`] and verify the claims for the given execution.

use crate::ids::{Pid, Round};
use crate::trace::{Event, Trace};

/// A violation found by a checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Round at which the violation is visible.
    pub round: Round,
    /// Human-readable description.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "round {}: {}", self.round, self.what)
    }
}

/// Checks that activation periods never overlap: once process `q` emits
/// `"activate"`, the previously-activated process must already have retired
/// (Lemmas 2.2, 2.7(b), 3.4(d)).
///
/// Returns all violations found (empty = invariant holds on this trace).
pub fn check_single_active(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut current: Option<(Pid, Round)> = None;
    let mut retired: std::collections::BTreeSet<Pid> = std::collections::BTreeSet::new();

    for event in trace.events() {
        match event {
            Event::Note { round, pid, tag } if *tag == "activate" => {
                if let Some((prev, _)) = current {
                    if prev != *pid && !retired.contains(&prev) {
                        violations.push(Violation {
                            round: *round,
                            what: format!(
                                "{pid} activated while {prev} was still active and unretired"
                            ),
                        });
                    }
                }
                current = Some((*pid, *round));
            }
            Event::Crash { pid, .. } | Event::Terminate { pid, .. } => {
                retired.insert(*pid);
            }
            _ => {}
        }
    }
    violations
}

/// Checks that every `"activate"` by process `j` happens only after all
/// processes `i < j` have retired — the takeover discipline of Protocols A
/// and B (Lemmas 2.2 and 2.7(b)). Not applicable to Protocol C, whose
/// takeover order follows knowledge, not process number.
pub fn check_activation_order(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut retired: std::collections::BTreeSet<Pid> = std::collections::BTreeSet::new();

    for event in trace.events() {
        match event {
            Event::Note { round, pid, tag } if *tag == "activate" => {
                for lower in Pid::range(0, pid.index()) {
                    if !retired.contains(&lower) {
                        violations.push(Violation {
                            round: *round,
                            what: format!("{pid} activated before {lower} retired"),
                        });
                    }
                }
            }
            Event::Crash { pid, .. } | Event::Terminate { pid, .. } => {
                retired.insert(*pid);
            }
            _ => {}
        }
    }
    violations
}

/// Checks that work units are performed by *at most one process per round*
/// and that only one process performs work in any given round — the paper's
/// sequential protocols (A, B, C) interleave work of different processes
/// only across activation handoffs. Protocol D is parallel, so this checker
/// does not apply to it.
pub fn check_sequential_work(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut last: Option<(Round, Pid)> = None;
    for event in trace.events() {
        if let Event::Work { round, pid, .. } = event {
            if let Some((r, p)) = last {
                if r == *round && p != *pid {
                    violations.push(Violation {
                        round: *round,
                        what: format!("both {p} and {pid} performed work in the same round"),
                    });
                }
            }
            last = Some((*round, *pid));
        }
    }
    violations
}

/// Checks that no process acts (works, sends, or activates) after its own
/// retirement — a sanity check on the engine itself. A
/// [`Recover`](Event::Recover) un-retires its process: actions after the
/// recovery are legitimate again.
pub fn check_no_zombie_actions(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut retired_at: std::collections::BTreeMap<Pid, Round> = std::collections::BTreeMap::new();
    for event in trace.events() {
        let (pid, round) = match event {
            Event::Crash { pid, round } | Event::Terminate { pid, round } => {
                retired_at.insert(*pid, *round);
                continue;
            }
            Event::Recover { pid, .. } => {
                retired_at.remove(pid);
                continue;
            }
            Event::Work { pid, round, .. } => (*pid, *round),
            Event::Send { from, round, .. } => (*from, *round),
            Event::Note { pid, round, .. } => (*pid, *round),
            // A notice is the detector acting on the observer, not the
            // observer acting; retired observers never receive one anyway.
            Event::Notice { .. } => continue,
        };
        if let Some(&r) = retired_at.get(&pid) {
            if round > r {
                violations.push(Violation {
                    round,
                    what: format!("{pid} acted at round {round} after retiring at round {r}"),
                });
            }
        }
    }
    violations
}

/// Checks the recovery-silence guarantee: a process crashed with a
/// [`CrashRecover`](crate::Fate::CrashRecover) fate must not act — work,
/// send, or note — strictly between its [`Crash`](Event::Crash) and the
/// matching [`Recover`](Event::Recover). This is
/// [`check_no_zombie_actions`] specialized to the downtime window, but it
/// also flags a `Recover` for a process that never crashed.
pub fn check_recovery_silence(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut down_since: std::collections::BTreeMap<Pid, Round> = std::collections::BTreeMap::new();
    for event in trace.events() {
        let (pid, round) = match event {
            Event::Crash { pid, round } => {
                down_since.insert(*pid, *round);
                continue;
            }
            Event::Recover { pid, round } => {
                if down_since.remove(pid).is_none() {
                    violations.push(Violation {
                        round: *round,
                        what: format!("{pid} recovered without a preceding crash"),
                    });
                }
                continue;
            }
            Event::Terminate { pid, .. } => {
                down_since.remove(pid);
                continue;
            }
            Event::Work { pid, round, .. } => (*pid, *round),
            Event::Send { from, round, .. } => (*from, *round),
            Event::Note { pid, round, .. } => (*pid, *round),
            Event::Notice { .. } => continue,
        };
        if let Some(&since) = down_since.get(&pid) {
            if round > since {
                violations.push(Violation {
                    round,
                    what: format!("{pid} acted at round {round} while down since round {since}"),
                });
            }
        }
    }
    violations
}

/// Checks that a degraded process respects its rate: within the window
/// `[from, until)`, `pid` may act (work or send) only at rounds `r` with
/// `(r - from) % factor == 0` — a slow-by-`factor` process never steps
/// faster than every `factor`-th round.
pub fn check_degraded_rate(
    trace: &Trace,
    pid: Pid,
    from: Round,
    until: Round,
    factor: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for event in trace.events() {
        let (p, round) = match event {
            Event::Work { pid: p, round, .. } => (*p, *round),
            Event::Send { from: p, round, .. } => (*p, *round),
            _ => continue,
        };
        if p == pid
            && round >= from
            && round < until
            && round.saturating_sub(from) % u128::from(factor) != 0
        {
            violations.push(Violation {
                round,
                what: format!(
                    "{pid} acted at round {round}, off its 1/{factor} grid anchored at {from}"
                ),
            });
        }
    }
    violations
}

/// Checks the Do-All retirement discipline: no process may *voluntarily*
/// terminate before all `n` work units have been performed at least once
/// (by anyone). The paper's protocols retire a process only once the
/// remaining work is provably covered — a termination while units are
/// still untouched is exactly the bug shape where a protocol "forgets"
/// a crashed process's chunk. Crashes are exempt: only
/// [`Terminate`](Event::Terminate) events are held to the discipline.
///
/// Intended for the paper's Do-All protocols (A–D and their async
/// variants). Deliberately fault-intolerant baselines (e.g. a spread
/// that never re-covers crashed peers' chunks) fail it by design.
pub fn check_termination_after_completion(trace: &Trace, n: usize) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut done = vec![false; n];
    let mut remaining = n;
    // A round's work is simultaneous in the model, so a retirement is
    // judged against everything performed up to *and including* its own
    // round: buffer each round's retirements and flush them only once the
    // trace moves past that round (rounds are nondecreasing in a trace).
    let mut pending: Vec<(Round, Pid)> = Vec::new();
    for event in trace.events() {
        let round = match event {
            Event::Work { round, .. } | Event::Terminate { round, .. } => *round,
            _ => continue,
        };
        if pending.first().is_some_and(|&(r, _)| r < round) {
            for (r, pid) in pending.drain(..) {
                if remaining > 0 {
                    violations.push(Violation {
                        round: r,
                        what: format!(
                            "{pid} terminated with {remaining} of {n} unit(s) never performed"
                        ),
                    });
                }
            }
        }
        match event {
            Event::Work { unit, .. } => {
                let idx = unit.zero_based();
                if idx < n && !done[idx] {
                    done[idx] = true;
                    remaining -= 1;
                }
            }
            Event::Terminate { round, pid } => pending.push((*round, *pid)),
            _ => {}
        }
    }
    if remaining > 0 {
        for (r, pid) in pending {
            violations.push(Violation {
                round: r,
                what: format!("{pid} terminated with {remaining} of {n} unit(s) never performed"),
            });
        }
    }
    violations
}

/// Checks the asynchronous retirement detector's *soundness* claim: a
/// [`Notice`](Event::Notice) about process `p` must never precede `p`'s
/// own retirement event — the detector may be arbitrarily slow, but it
/// never accuses a live process (the property the §2.1 asynchronous
/// variant's correctness rests on).
pub fn check_detector_soundness(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut retired: std::collections::BTreeSet<Pid> = std::collections::BTreeSet::new();
    for event in trace.events() {
        match event {
            Event::Crash { pid, .. } | Event::Terminate { pid, .. } => {
                retired.insert(*pid);
            }
            // A recovered process is alive again: accusing it from here on
            // (until it re-retires) is a soundness violation.
            Event::Recover { pid, .. } => {
                retired.remove(pid);
            }
            Event::Notice { round, observer, retired: accused } if !retired.contains(accused) => {
                violations.push(Violation {
                    round: *round,
                    what: format!("detector accused live process {accused} to observer {observer}"),
                });
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Unit;

    fn trace(events: Vec<Event>) -> Trace {
        let mut t = Trace::new();
        for e in events {
            // Re-use the crate-internal push via a helper: Trace only
            // exposes push to the crate, which this test module is part of.
            t_push(&mut t, e);
        }
        t
    }

    fn t_push(t: &mut Trace, e: Event) {
        // Same-crate access to the pub(crate) method.
        t.push(e);
    }

    #[test]
    fn overlapping_activations_are_flagged() {
        let tr = trace(vec![
            Event::Note { round: Round::new(1), pid: Pid::new(0), tag: "activate" },
            Event::Note { round: Round::new(5), pid: Pid::new(1), tag: "activate" },
        ]);
        let v = check_single_active(&tr);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("still active"));
    }

    #[test]
    fn handoff_after_retirement_is_clean() {
        let tr = trace(vec![
            Event::Note { round: Round::new(1), pid: Pid::new(0), tag: "activate" },
            Event::Crash { round: Round::new(4), pid: Pid::new(0) },
            Event::Note { round: Round::new(9), pid: Pid::new(1), tag: "activate" },
        ]);
        assert!(check_single_active(&tr).is_empty());
        assert!(check_activation_order(&tr).is_empty());
    }

    #[test]
    fn activation_order_requires_all_lower_retired() {
        let tr = trace(vec![
            Event::Note { round: Round::new(1), pid: Pid::new(0), tag: "activate" },
            Event::Crash { round: Round::new(4), pid: Pid::new(0) },
            // p2 activates while p1 never retired.
            Event::Note { round: Round::new(9), pid: Pid::new(2), tag: "activate" },
        ]);
        let v = check_activation_order(&tr);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("before p1 retired"));
    }

    #[test]
    fn parallel_work_in_one_round_is_flagged() {
        let tr = trace(vec![
            Event::Work { round: Round::new(3), pid: Pid::new(0), unit: Unit::new(1) },
            Event::Work { round: Round::new(3), pid: Pid::new(1), unit: Unit::new(2) },
        ]);
        assert_eq!(check_sequential_work(&tr).len(), 1);
    }

    #[test]
    fn zombie_actions_are_flagged() {
        let tr = trace(vec![
            Event::Crash { round: Round::new(2), pid: Pid::new(0) },
            Event::Work { round: Round::new(3), pid: Pid::new(0), unit: Unit::new(1) },
        ]);
        let v = check_no_zombie_actions(&tr);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn premature_notice_is_a_soundness_violation() {
        let tr = trace(vec![
            Event::Notice { round: Round::new(3), observer: Pid::new(1), retired: Pid::new(0) },
            Event::Crash { round: Round::new(4), pid: Pid::new(0) },
        ]);
        let v = check_detector_soundness(&tr);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("accused live process p0"));
    }

    #[test]
    fn notice_after_retirement_is_sound() {
        let tr = trace(vec![
            Event::Terminate { round: Round::new(2), pid: Pid::new(0) },
            Event::Notice { round: Round::new(5), observer: Pid::new(1), retired: Pid::new(0) },
        ]);
        assert!(check_detector_soundness(&tr).is_empty());
        // A notice is not a zombie action by the observer.
        assert!(check_no_zombie_actions(&tr).is_empty());
    }

    #[test]
    fn recovery_unretires_for_zombie_and_detector_checks() {
        let tr = trace(vec![
            Event::Crash { round: Round::new(2), pid: Pid::new(0) },
            Event::Recover { round: Round::new(5), pid: Pid::new(0) },
            Event::Work { round: Round::new(6), pid: Pid::new(0), unit: Unit::new(1) },
            // Accusing the recovered (live-again) process is unsound.
            Event::Notice { round: Round::new(7), observer: Pid::new(1), retired: Pid::new(0) },
        ]);
        assert!(check_no_zombie_actions(&tr).is_empty());
        let v = check_detector_soundness(&tr);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("accused live process p0"));
    }

    #[test]
    fn action_during_downtime_is_flagged() {
        let tr = trace(vec![
            Event::Crash { round: Round::new(2), pid: Pid::new(0) },
            Event::Work { round: Round::new(3), pid: Pid::new(0), unit: Unit::new(1) },
            Event::Recover { round: Round::new(5), pid: Pid::new(0) },
            Event::Work { round: Round::new(5), pid: Pid::new(0), unit: Unit::new(2) },
        ]);
        let v = check_recovery_silence(&tr);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("while down since round 2"));
    }

    #[test]
    fn recovery_without_crash_is_flagged() {
        let tr = trace(vec![Event::Recover { round: Round::new(5), pid: Pid::new(3) }]);
        let v = check_recovery_silence(&tr);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("without a preceding crash"));
    }

    #[test]
    fn degraded_rate_flags_off_grid_actions_only() {
        let tr = trace(vec![
            // On-grid at rounds 10 and 14 (factor 4, anchored at 10).
            Event::Work { round: Round::new(10), pid: Pid::new(0), unit: Unit::new(1) },
            Event::Work { round: Round::new(14), pid: Pid::new(0), unit: Unit::new(2) },
            // Off-grid at round 12.
            Event::Send { round: Round::new(12), from: Pid::new(0), to: Pid::new(1), class: "m" },
            // Other processes and rounds outside the window are exempt.
            Event::Work { round: Round::new(12), pid: Pid::new(1), unit: Unit::new(3) },
            Event::Work { round: Round::new(99), pid: Pid::new(0), unit: Unit::new(4) },
        ]);
        let v = check_degraded_rate(&tr, Pid::new(0), Round::new(10), Round::new(20), 4);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].round, Round::new(12));
    }

    #[test]
    fn early_termination_is_flagged_but_crash_is_exempt() {
        let tr = trace(vec![
            Event::Work { round: Round::new(1), pid: Pid::new(0), unit: Unit::new(1) },
            // p1 crashes with u2 untouched: exempt.
            Event::Crash { round: Round::new(2), pid: Pid::new(1) },
            // p0 terminates with u2 untouched: the forgotten-chunk bug.
            Event::Terminate { round: Round::new(3), pid: Pid::new(0) },
        ]);
        let v = check_termination_after_completion(&tr, 2);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("p0 terminated with 1 of 2"));

        let complete = trace(vec![
            Event::Work { round: Round::new(1), pid: Pid::new(0), unit: Unit::new(1) },
            Event::Work { round: Round::new(2), pid: Pid::new(0), unit: Unit::new(2) },
            Event::Terminate { round: Round::new(2), pid: Pid::new(0) },
        ]);
        assert!(check_termination_after_completion(&complete, 2).is_empty());

        // Same-round simultaneity: p0's retirement is recorded before p1's
        // final unit, but the round's work is simultaneous, so it counts.
        let simultaneous = trace(vec![
            Event::Work { round: Round::new(1), pid: Pid::new(0), unit: Unit::new(1) },
            Event::Terminate { round: Round::new(1), pid: Pid::new(0) },
            Event::Work { round: Round::new(1), pid: Pid::new(1), unit: Unit::new(2) },
            Event::Terminate { round: Round::new(1), pid: Pid::new(1) },
        ]);
        assert!(check_termination_after_completion(&simultaneous, 2).is_empty());
    }

    #[test]
    fn clean_trace_passes_everything() {
        let tr = trace(vec![
            Event::Note { round: Round::new(1), pid: Pid::new(0), tag: "activate" },
            Event::Work { round: Round::new(1), pid: Pid::new(0), unit: Unit::new(1) },
            Event::Send {
                round: Round::new(2),
                from: Pid::new(0),
                to: Pid::new(1),
                class: "ordinary",
            },
            Event::Terminate { round: Round::new(3), pid: Pid::new(0) },
            Event::Note { round: Round::new(8), pid: Pid::new(1), tag: "activate" },
            Event::Terminate { round: Round::new(9), pid: Pid::new(1) },
        ]);
        assert!(check_single_active(&tr).is_empty());
        assert!(check_activation_order(&tr).is_empty());
        assert!(check_sequential_work(&tr).is_empty());
        assert!(check_no_zombie_actions(&tr).is_empty());
    }
}
