//! Execution traces: the raw material for invariant checking.

use serde::Serialize;

use crate::ids::{Pid, Round, Unit};

/// One observable event of an execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Event {
    /// A process performed a unit of work.
    Work {
        /// Round of the event.
        round: Round,
        /// Acting process.
        pid: Pid,
        /// The unit performed.
        unit: Unit,
    },
    /// A message left a process (post-adversary: suppressed sends of a
    /// crashing process are not traced).
    Send {
        /// Round of the event.
        round: Round,
        /// Sender.
        from: Pid,
        /// Recipient.
        to: Pid,
        /// Message class (see [`Classify`](crate::Classify)).
        class: &'static str,
    },
    /// A process crashed.
    Crash {
        /// Round of the event.
        round: Round,
        /// The victim.
        pid: Pid,
    },
    /// A process terminated voluntarily.
    Terminate {
        /// Round of the event.
        round: Round,
        /// The terminating process.
        pid: Pid,
    },
    /// The asynchronous plane's retirement detector informed `observer`
    /// that `retired` has crashed or terminated. Only the event-driven
    /// engine emits this; the detector-soundness checker
    /// ([`check_detector_soundness`](crate::invariants::check_detector_soundness))
    /// verifies that no notice ever precedes the retirement it reports.
    Notice {
        /// Timestamp of the delivery (the async plane records its logical
        /// time in the round field).
        round: Round,
        /// The process being informed.
        observer: Pid,
        /// The process reported as retired.
        retired: Pid,
    },
    /// A protocol-internal annotation (see
    /// [`Effects::note`](crate::Effects::note)), e.g. `"activate"`.
    Note {
        /// Round of the event.
        round: Round,
        /// The annotating process.
        pid: Pid,
        /// The annotation tag.
        tag: &'static str,
    },
    /// A previously crashed process restarted after its scheduled downtime
    /// (see [`Fate::CrashRecover`](crate::Fate::CrashRecover)). From this
    /// event on, the process is alive again and may act; the
    /// recovery-silence checker
    /// ([`check_recovery_silence`](crate::invariants::check_recovery_silence))
    /// verifies that nothing happened in between.
    Recover {
        /// Round (or async timestamp) of the restart.
        round: Round,
        /// The recovering process.
        pid: Pid,
    },
}

impl Event {
    /// The round at which the event occurred.
    pub fn round(&self) -> Round {
        match self {
            Event::Work { round, .. }
            | Event::Send { round, .. }
            | Event::Crash { round, .. }
            | Event::Terminate { round, .. }
            | Event::Notice { round, .. }
            | Event::Note { round, .. }
            | Event::Recover { round, .. } => *round,
        }
    }
}

/// An ordered log of [`Event`]s.
///
/// Recording is optional (see
/// [`RunConfig::record_trace`](crate::RunConfig::record_trace)); long
/// experiment sweeps disable it, tests enable it and feed the trace to the
/// checkers in [`invariants`](crate::invariants).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over events of a given note tag.
    pub fn notes<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = (Round, Pid)> + 'a {
        self.events.iter().filter_map(move |e| match e {
            Event::Note { round, pid, tag: t } if *t == tag => Some((*round, *pid)),
            _ => None,
        })
    }

    /// The round at which `pid` retired (crashed or terminated), if it did.
    pub fn retirement_round(&self, pid: Pid) -> Option<Round> {
        self.events.iter().find_map(|e| match e {
            Event::Crash { round, pid: p } | Event::Terminate { round, pid: p } if *p == pid => {
                Some(*round)
            }
            _ => None,
        })
    }

    pub(crate) fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Moves every event of `other` onto the end of this trace, leaving
    /// `other` empty with its capacity intact — the deterministic fold of
    /// lane-local traces at the engine's round barrier (lanes cover
    /// ascending pid chunks, so folding in lane order reproduces the
    /// sequential engine's event order exactly).
    pub(crate) fn append(&mut self, other: &mut Trace) {
        self.events.append(&mut other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_orders_and_filters_notes() {
        let mut t = Trace::new();
        t.push(Event::Note { round: Round::new(1), pid: Pid::new(0), tag: "activate" });
        t.push(Event::Work { round: Round::new(2), pid: Pid::new(0), unit: Unit::new(1) });
        t.push(Event::Note { round: Round::new(9), pid: Pid::new(1), tag: "activate" });
        let activations: Vec<_> = t.notes("activate").collect();
        assert_eq!(activations, vec![(Round::new(1), Pid::new(0)), (Round::new(9), Pid::new(1))]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn retirement_round_finds_first_retirement_event() {
        let mut t = Trace::new();
        t.push(Event::Crash { round: Round::new(4), pid: Pid::new(2) });
        t.push(Event::Terminate { round: Round::new(6), pid: Pid::new(1) });
        assert_eq!(t.retirement_round(Pid::new(2)), Some(Round::new(4)));
        assert_eq!(t.retirement_round(Pid::new(1)), Some(Round::new(6)));
        assert_eq!(t.retirement_round(Pid::new(0)), None);
    }

    #[test]
    fn event_round_accessor_covers_all_variants() {
        let events = [
            Event::Work { round: Round::new(1), pid: Pid::new(0), unit: Unit::new(1) },
            Event::Send { round: Round::new(2), from: Pid::new(0), to: Pid::new(1), class: "m" },
            Event::Crash { round: Round::new(3), pid: Pid::new(0) },
            Event::Terminate { round: Round::new(4), pid: Pid::new(1) },
            Event::Note { round: Round::new(5), pid: Pid::new(1), tag: "x" },
            Event::Notice { round: Round::new(6), observer: Pid::new(1), retired: Pid::new(0) },
            Event::Recover { round: Round::new(7), pid: Pid::new(0) },
        ];
        let rounds: Vec<Round> = events.iter().map(Event::round).collect();
        assert_eq!(rounds, (1u64..=7).map(Round::from).collect::<Vec<_>>());
    }
}
