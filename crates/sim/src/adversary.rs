//! Fault adversaries: fail-stop crashes, crash-recovery, and omission.
//!
//! The paper's bounds are worst-case over all crash schedules in which a
//! process may fail at any moment — in particular *in the middle of a
//! broadcast*, in which case "some subset of the processes receive the
//! message" (§2.1). The [`Adversary`] trait captures exactly this power:
//! each executed round, after a process has chosen its actions but before
//! they take effect, the adversary decides whether the process survives the
//! round, and if not, which of its outgoing messages escape.
//!
//! Beyond the paper's fail-stop model, the same interception point carries
//! the richer fault vocabulary of [`Fate`]: [`Fate::Omit`] suppresses a
//! subset of one step's outgoing messages while the process lives on, and
//! [`Fate::CrashRecover`] schedules the victim to restart after a downtime.
//! Receive-side omission uses the separate
//! [`omits_delivery`](Adversary::omits_delivery) hook, consulted at
//! delivery time. The catalog layer in [`faults`](crate::faults) composes
//! all of these from named [`FaultKind`](crate::FaultKind)s.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::effects::Effects;
use crate::ids::{Pid, Round};
use crate::liveset::LiveSet;

/// The live-set view inside an [`AdversaryCtx`]: either a borrowed
/// `&[bool]` slice (tests, the asynchronous engine, standalone harnesses)
/// or the synchronous engine's compressed [`LiveSet`]. Both answer
/// membership in O(1); adversaries query through
/// [`is_alive`](AliveView::is_alive) and never see the representation.
#[derive(Clone, Copy, Debug)]
pub enum AliveView<'a> {
    /// A dense boolean slice, indexed by pid.
    Slice(&'a [bool]),
    /// The engine's compressed live set.
    Set(&'a LiveSet),
}

impl AliveView<'_> {
    /// Whether `pid` has neither crashed nor terminated.
    pub fn is_alive(&self, pid: Pid) -> bool {
        match self {
            AliveView::Slice(s) => s.get(pid.index()).copied().unwrap_or(false),
            AliveView::Set(l) => l.contains(pid.index()),
        }
    }
}

/// What happens to a process's actions in one atomic step (a synchronous
/// round, or one asynchronous handler invocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fate {
    /// The process survives the step; all effects are applied.
    Survive,
    /// The process crashes during this step and never returns.
    Crash(CrashSpec),
    /// The process survives, but only the outgoing messages the filter
    /// lets through actually leave; the rest are silently dropped
    /// (send-omission). Work, notes, and termination all still apply, and
    /// suppressed messages count toward
    /// [`Metrics::omissions`](crate::Metrics::omissions), not
    /// [`Metrics::messages`](crate::Metrics::messages).
    Omit(Deliver),
    /// The process crashes exactly as with [`Fate::Crash`], but restarts
    /// `downtime` steps later (at least one): the engine re-marks it alive,
    /// calls the protocol's recovery hook, and traces an
    /// [`Event::Recover`](crate::Event::Recover). With `wipe`, the
    /// protocol resets to its initial state; otherwise it resumes from the
    /// state it crashed with (stale — it has seen none of the traffic
    /// delivered while it was down).
    CrashRecover {
        /// How the crash itself unfolds (delivery filter + work
        /// accounting), identical to [`Fate::Crash`]'s spec.
        spec: CrashSpec,
        /// Steps (rounds or time units) until the restart; clamped to a
        /// minimum of 1 so a "recovery" can never happen within the
        /// crashing step itself.
        downtime: u64,
        /// Whether the restart loses all protocol state.
        wipe: bool,
    },
}

/// Fine-grained description of a mid-round crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Which of the round's outgoing messages are actually sent.
    pub deliver: Deliver,
    /// Whether the unit of work performed this round (if any) completes
    /// before the crash. The paper's work-optimality argument hinges on the
    /// scenario where a process "fails immediately after performing a unit
    /// of work, before reporting it": that is `count_work: true` with
    /// `deliver: Deliver::None` on the following round's checkpoint.
    pub count_work: bool,
}

impl CrashSpec {
    /// Crash before anything this round takes effect.
    pub const fn silent() -> Self {
        CrashSpec { deliver: Deliver::None, count_work: false }
    }

    /// Crash after completing this round's work and sends (the process dies
    /// between rounds).
    pub const fn after_round() -> Self {
        CrashSpec { deliver: Deliver::All, count_work: true }
    }

    /// Crash mid-broadcast: the first `k` messages (in send order) escape.
    pub const fn prefix(k: usize) -> Self {
        CrashSpec { deliver: Deliver::Prefix(k), count_work: true }
    }

    /// Crash mid-broadcast with an arbitrary surviving subset.
    pub fn subset<I: IntoIterator<Item = Pid>>(recipients: I) -> Self {
        CrashSpec { deliver: Deliver::Subset(recipients.into_iter().collect()), count_work: true }
    }
}

impl Default for CrashSpec {
    fn default() -> Self {
        CrashSpec::silent()
    }
}

/// Which outgoing messages survive a mid-round crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Deliver {
    /// Every message goes out (crash happens after the send completes).
    All,
    /// Nothing goes out.
    None,
    /// The first `k` messages in send order go out.
    Prefix(usize),
    /// Exactly the messages addressed to this set go out.
    Subset(BTreeSet<Pid>),
}

impl Deliver {
    /// Whether the `idx`-th outgoing message (addressed to `to`) escapes.
    pub fn lets_through(&self, idx: usize, to: Pid) -> bool {
        match self {
            Deliver::All => true,
            Deliver::None => false,
            Deliver::Prefix(k) => idx < *k,
            Deliver::Subset(set) => set.contains(&to),
        }
    }
}

/// Read-only view of the engine state an adversary may consult.
///
/// The engine maintains the live-set incrementally and hands out a borrowed
/// view per intercept, so constructing a context is free and
/// [`alive_count`](AdversaryCtx::alive_count) is O(1) — adversaries that
/// consult it every round (e.g. [`RandomCrashes`] sparing the last
/// survivor) add no per-round scan.
#[derive(Clone, Copy, Debug)]
pub struct AdversaryCtx<'a> {
    /// Number of processes in the system.
    pub t: usize,
    /// Live-set membership view (a pid is absent once it has crashed or
    /// terminated); see [`AliveView`].
    pub alive: AliveView<'a>,
    /// Number of live processes, maintained incrementally by the engine
    /// (use [`AdversaryCtx::new`] to compute it from a slice).
    pub live: usize,
    /// Crashes inflicted so far.
    pub crashes: u32,
}

impl<'a> AdversaryCtx<'a> {
    /// Builds a context from an alive slice, counting the live processes.
    ///
    /// The engine constructs contexts directly from its incremental
    /// counters; this constructor is for tests and standalone harnesses.
    pub fn new(alive: &'a [bool], crashes: u32) -> Self {
        AdversaryCtx {
            t: alive.len(),
            alive: AliveView::Slice(alive),
            live: alive.iter().filter(|a| **a).count(),
            crashes,
        }
    }

    /// Whether `pid` has neither crashed nor terminated.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.alive.is_alive(pid)
    }

    /// Number of processes that have neither crashed nor terminated.
    pub fn alive_count(&self) -> usize {
        self.live
    }
}

/// A fault adversary for the synchronous plane.
///
/// Implementations decide, per stepped process, whether the process
/// survives the round. They see the process's proposed [`Effects`] — so
/// they can crash a process precisely when it performs its `k`-th unit of
/// work, or split a particular broadcast — and the set of still-alive
/// processes.
///
/// # Shared fault contract (synchronous and asynchronous planes)
///
/// Both this trait and
/// [`AsyncAdversary`](crate::asynch::AsyncAdversary) rule once per
/// **atomic step** — a round here, a handler invocation there — and every
/// verdict means the same thing on both planes: the [`Deliver`] filter in
/// a [`Fate::Crash`], [`Fate::Omit`], or [`Fate::CrashRecover`] applies to
/// *that step's* outgoing messages, indexed **in send order** (`Prefix`
/// truncates at a message boundary, `Subset` selects recipients), and
/// `count_work` decides whether the step's work units count. Downtimes and
/// omission windows are measured in the plane's own clock (rounds vs.
/// event timestamps). Receive-side omission is symmetric too:
/// [`omits_delivery`](Adversary::omits_delivery) is consulted once per
/// (message, recipient) at the moment of delivery.
///
/// # Interception contract
///
/// The sparse-stepping engine does **not** step (or intercept) a process
/// whose round is provably a no-op: empty inbox, not yet due per its
/// wakeup, and no adversary event scheduled. An adversary that wants to
/// rule on *idle* processes must therefore announce its active rounds via
/// [`next_event`](Adversary::next_event) — on any round `next_event`
/// names, every alive process is stepped and intercepted exactly as in a
/// dense engine. Adversaries that only react to visible activity (work,
/// sends, notes) need nothing: a skipped step has no effects to react to.
pub trait Adversary<M> {
    /// Decides the fate of `pid`'s round-`round` actions.
    fn intercept(
        &mut self,
        round: Round,
        pid: Pid,
        effects: &Effects<M>,
        ctx: AdversaryCtx<'_>,
    ) -> Fate;

    /// The earliest round `>= now` at which this adversary may act on an
    /// otherwise idle process or system, or `None` if it only reacts to
    /// process activity. This is load-bearing twice: it bounds the
    /// engine's fast-forward jumps, and it forces dense stepping (every
    /// alive process intercepted) on the rounds it names — the default
    /// `None` means idle processes may never face [`intercept`]
    /// (see the trait-level interception contract).
    /// Returning `Some(now)` unconditionally disables both optimizations.
    ///
    /// [`intercept`]: Adversary::intercept
    fn next_event(&self, _now: Round) -> Option<Round> {
        None
    }

    /// Whether this adversary may suppress deliveries (receive-side
    /// omission). The engine only pays the per-delivery
    /// [`omits_delivery`](Adversary::omits_delivery) consultation when
    /// this returns `true`; the default `false` keeps the fault-free
    /// delivery path untouched.
    fn filters_deliveries(&self) -> bool {
        false
    }

    /// Receive-side omission: whether the message from `from` to `to`,
    /// about to be delivered at round `now`, is dropped before `to` sees
    /// it. Consulted exactly once per (message, recipient) and only when
    /// [`filters_deliveries`](Adversary::filters_deliveries) is `true`;
    /// dropped messages count toward
    /// [`Metrics::omissions`](crate::Metrics::omissions) (they were sent,
    /// so they remain in `messages`, but they are not dead letters).
    fn omits_delivery(&mut self, _now: Round, _from: Pid, _to: Pid) -> bool {
        false
    }

    /// Checks the adversary's schedule against a system of `t` processes,
    /// before round 1. An `Err` aborts the run with
    /// [`RunError::InvalidAdversary`](crate::RunError::InvalidAdversary)
    /// instead of a mid-run panic or a silently unsatisfiable schedule.
    /// [`FaultPlan`](crate::faults::FaultPlan) overrides this to reject
    /// plans that permanently crash all `t` processes, target out-of-range
    /// pids, or schedule contradictory fates (see
    /// [`FaultPlan::validate`](crate::faults::FaultPlan::validate)); the
    /// default accepts everything.
    fn validate(&self, _t: usize) -> Result<(), String> {
        Ok(())
    }
}

impl<M> Adversary<M> for Box<dyn Adversary<M>> {
    fn intercept(
        &mut self,
        round: Round,
        pid: Pid,
        effects: &Effects<M>,
        ctx: AdversaryCtx<'_>,
    ) -> Fate {
        (**self).intercept(round, pid, effects, ctx)
    }

    fn next_event(&self, now: Round) -> Option<Round> {
        (**self).next_event(now)
    }

    fn filters_deliveries(&self) -> bool {
        (**self).filters_deliveries()
    }

    fn omits_delivery(&mut self, now: Round, from: Pid, to: Pid) -> bool {
        (**self).omits_delivery(now, from, to)
    }

    fn validate(&self, t: usize) -> Result<(), String> {
        (**self).validate(t)
    }
}

/// The failure-free adversary.
///
/// # Examples
///
/// ```
/// use doall_sim::{NoFailures, Adversary, Effects, Fate, Pid, AdversaryCtx, Round};
///
/// let mut adv = NoFailures;
/// let eff: Effects<()> = Effects::new();
/// let alive = [true, true];
/// let ctx = AdversaryCtx::new(&alive, 0);
/// assert_eq!(ctx.alive_count(), 2);
/// assert_eq!(adv.intercept(Round::new(1), Pid::new(0), &eff, ctx), Fate::Survive);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFailures;

impl<M> Adversary<M> for NoFailures {
    fn intercept(&mut self, _: Round, _: Pid, _: &Effects<M>, _: AdversaryCtx<'_>) -> Fate {
        Fate::Survive
    }
}

/// Crashes given processes at given rounds, with per-crash delivery control.
///
/// # Examples
///
/// ```
/// use doall_sim::{CrashSchedule, CrashSpec, Pid};
///
/// let schedule = CrashSchedule::new()
///     .crash_at(Pid::new(0), 10, CrashSpec::silent())
///     .crash_at(Pid::new(1), 25, CrashSpec::prefix(2));
/// assert_eq!(schedule.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CrashSchedule {
    by_round: BTreeMap<Round, Vec<(Pid, CrashSpec)>>,
    count: usize,
}

impl CrashSchedule {
    /// An empty schedule (equivalent to [`NoFailures`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `pid` to crash during round `round` (`u64` values and bare
    /// literals convert; pass a [`Round`] to schedule deep-idle crashes
    /// beyond the 64-bit horizon).
    ///
    /// If the process is already retired by then, the entry is ignored at
    /// run time.
    pub fn crash_at(mut self, pid: Pid, round: impl Into<Round>, spec: CrashSpec) -> Self {
        self.by_round.entry(round.into()).or_default().push((pid, spec));
        self.count += 1;
        self
    }

    /// Number of scheduled crash entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl<M> Adversary<M> for CrashSchedule {
    fn intercept(
        &mut self,
        round: Round,
        pid: Pid,
        _effects: &Effects<M>,
        _ctx: AdversaryCtx<'_>,
    ) -> Fate {
        if let Some(entries) = self.by_round.get(&round) {
            if let Some((_, spec)) = entries.iter().find(|(p, _)| *p == pid) {
                return Fate::Crash(spec.clone());
            }
        }
        Fate::Survive
    }

    fn next_event(&self, now: Round) -> Option<Round> {
        self.by_round.range(now..).next().map(|(r, _)| *r)
    }
}

/// Seeded random crash adversary.
///
/// Each alive process crashes with probability `p_per_round` at each
/// executed round, up to `max_crashes` total (use `t - 1` to preserve the
/// paper's "at least one survivor" premise). With `partial_delivery`, a
/// crashing broadcaster delivers a random prefix of its messages.
///
/// Randomness comes from a seeded [`SmallRng`], so runs are reproducible.
#[derive(Clone, Debug)]
pub struct RandomCrashes {
    rng: SmallRng,
    p_per_round: f64,
    max_crashes: u32,
    partial_delivery: bool,
    inflicted: u32,
    saw_lone_survivor: bool,
}

impl RandomCrashes {
    /// Creates a random adversary with the given per-round crash
    /// probability and total crash budget.
    ///
    /// # Panics
    ///
    /// Panics if `p_per_round` is not within `[0.0, 1.0]`.
    pub fn new(seed: u64, p_per_round: f64, max_crashes: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_per_round),
            "crash probability must be in [0, 1], got {p_per_round}"
        );
        RandomCrashes {
            rng: SmallRng::seed_from_u64(seed),
            p_per_round,
            max_crashes,
            partial_delivery: true,
            inflicted: 0,
            saw_lone_survivor: false,
        }
    }

    /// Disables mid-broadcast partial delivery (crashes then happen cleanly
    /// between rounds).
    pub fn clean_crashes(mut self) -> Self {
        self.partial_delivery = false;
        self
    }
}

impl<M> Adversary<M> for RandomCrashes {
    fn intercept(
        &mut self,
        _round: Round,
        _pid: Pid,
        effects: &Effects<M>,
        ctx: AdversaryCtx<'_>,
    ) -> Fate {
        if ctx.alive_count() <= 1 {
            self.saw_lone_survivor = true;
            return Fate::Survive;
        }
        if ctx.crashes >= self.max_crashes || self.inflicted >= self.max_crashes {
            return Fate::Survive;
        }
        if self.rng.gen_bool(self.p_per_round) {
            // `send_count` counts per-recipient messages (a span op counts
            // its width), so the prefix distribution is identical to the
            // old per-recipient representation.
            let spec = if self.partial_delivery && effects.send_count() > 0 {
                let k = self.rng.gen_range(0..=effects.send_count());
                CrashSpec { deliver: Deliver::Prefix(k), count_work: self.rng.gen_bool(0.5) }
            } else {
                CrashSpec::silent()
            };
            self.inflicted += 1;
            return Fate::Crash(spec);
        }
        Fate::Survive
    }

    fn next_event(&self, now: Round) -> Option<Round> {
        // Random crashes can strike any round; fast-forwarding would skip
        // coin flips and change the distribution, so forbid it while
        // crashes remain possible. Once the budget is spent (or a lone
        // survivor remains), no further crash can happen and idle rounds
        // may be skipped again — essential for Protocol C, whose stragglers
        // wait exponentially long deadlines.
        if self.p_per_round > 0.0 && self.inflicted < self.max_crashes && !self.saw_lone_survivor {
            Some(now)
        } else {
            None
        }
    }
}

/// A condition on which a [`TriggerAdversary`] rule fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Fires at the given round.
    AtRound(Round),
    /// Fires when the process performs its `nth` unit of work (1-based,
    /// counted per process).
    NthWorkBy {
        /// The watched process.
        pid: Pid,
        /// Which work performance triggers (1-based).
        nth: u64,
    },
    /// Fires when the process executes its `nth` *sending* round (1-based):
    /// checkpoints, reports, polls — any round with at least one outgoing
    /// message.
    NthSendRoundBy {
        /// The watched process.
        pid: Pid,
        /// Which sending round triggers (1-based).
        nth: u64,
    },
    /// Fires the `nth` time any process emits the given trace note
    /// (1-based). Protocols emit notes such as `"activate"`; this lets an
    /// adversary kill, say, the third process ever to become active.
    NthNote {
        /// The watched annotation tag.
        tag: &'static str,
        /// Which occurrence triggers, counted across all processes.
        nth: u64,
    },
}

/// A rule: when `trigger` fires, crash the process it fired on.
#[derive(Clone, Debug)]
pub struct TriggerRule {
    /// Condition to watch for.
    pub trigger: Trigger,
    /// Target override: crash this process instead of the one that tripped
    /// the trigger (useful with [`Trigger::AtRound`]).
    pub target: Option<Pid>,
    /// How the crash unfolds.
    pub spec: CrashSpec,
}

/// Composable behavioural adversary: a list of one-shot rules.
///
/// This is how the worst-case schedules from the paper's proofs are
/// expressed: "crash the active process right after it completes a chunk
/// but deliver the full-checkpoint to only half the next group", etc.
///
/// # Examples
///
/// ```
/// use doall_sim::{TriggerAdversary, TriggerRule, Trigger, CrashSpec, Pid};
///
/// // Kill process 0 immediately after its 5th unit of work, unreported.
/// let adv = TriggerAdversary::new(vec![TriggerRule {
///     trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth: 5 },
///     target: None,
///     spec: CrashSpec { deliver: doall_sim::Deliver::None, count_work: true },
/// }]);
/// assert_eq!(adv.remaining_rules(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TriggerAdversary {
    rules: Vec<(TriggerRule, bool)>, // (rule, spent)
    work_counts: BTreeMap<Pid, u64>,
    send_round_counts: BTreeMap<Pid, u64>,
    note_counts: BTreeMap<&'static str, u64>,
}

impl TriggerAdversary {
    /// Creates an adversary from a list of one-shot rules.
    pub fn new(rules: Vec<TriggerRule>) -> Self {
        TriggerAdversary {
            rules: rules.into_iter().map(|r| (r, false)).collect(),
            work_counts: BTreeMap::new(),
            send_round_counts: BTreeMap::new(),
            note_counts: BTreeMap::new(),
        }
    }

    /// Number of rules that have not fired yet.
    pub fn remaining_rules(&self) -> usize {
        self.rules.iter().filter(|(_, spent)| !spent).count()
    }
}

impl<M> Adversary<M> for TriggerAdversary {
    fn intercept(
        &mut self,
        round: Round,
        pid: Pid,
        effects: &Effects<M>,
        _ctx: AdversaryCtx<'_>,
    ) -> Fate {
        // Update observation counters for this (pid, round).
        let work_count = if effects.work().is_some() {
            let c = self.work_counts.entry(pid).or_insert(0);
            *c += 1;
            *c
        } else {
            *self.work_counts.get(&pid).unwrap_or(&0)
        };
        let send_count = if !effects.sends().is_empty() {
            let c = self.send_round_counts.entry(pid).or_insert(0);
            *c += 1;
            *c
        } else {
            *self.send_round_counts.get(&pid).unwrap_or(&0)
        };
        let mut fired_notes: Vec<(&'static str, u64)> = Vec::new();
        for note in effects.notes() {
            let c = self.note_counts.entry(note).or_insert(0);
            *c += 1;
            fired_notes.push((note, *c));
        }

        for (rule, spent) in &mut self.rules {
            if *spent {
                continue;
            }
            let tripped = match &rule.trigger {
                Trigger::AtRound(r) => *r == round && rule.target.is_none_or(|t| t == pid),
                Trigger::NthWorkBy { pid: p, nth } => {
                    *p == pid && effects.work().is_some() && work_count == *nth
                }
                Trigger::NthSendRoundBy { pid: p, nth } => {
                    *p == pid && !effects.sends().is_empty() && send_count == *nth
                }
                Trigger::NthNote { tag, nth } => {
                    fired_notes.iter().any(|(t, c)| t == tag && c == nth)
                }
            };
            if tripped {
                let victim_is_me = rule.target.is_none_or(|t| t == pid);
                if victim_is_me {
                    *spent = true;
                    return Fate::Crash(rule.spec.clone());
                }
            }
        }
        Fate::Survive
    }

    fn next_event(&self, now: Round) -> Option<Round> {
        self.rules
            .iter()
            .filter(|(_, spent)| !spent)
            .filter_map(|(r, _)| match r.trigger {
                Trigger::AtRound(rd) if rd >= now => Some(rd),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Unit;

    fn ctx(alive: &[bool]) -> AdversaryCtx<'_> {
        AdversaryCtx::new(alive, 0)
    }

    #[test]
    fn deliver_prefix_counts_in_send_order() {
        let d = Deliver::Prefix(2);
        assert!(d.lets_through(0, Pid::new(9)));
        assert!(d.lets_through(1, Pid::new(0)));
        assert!(!d.lets_through(2, Pid::new(1)));
    }

    #[test]
    fn deliver_subset_matches_recipients() {
        let d = Deliver::Subset([Pid::new(3)].into_iter().collect());
        assert!(d.lets_through(0, Pid::new(3)));
        assert!(!d.lets_through(0, Pid::new(4)));
    }

    #[test]
    fn schedule_fires_only_on_its_round_and_pid() {
        let mut s = CrashSchedule::new().crash_at(Pid::new(1), 5, CrashSpec::silent());
        let eff: Effects<()> = Effects::new();
        let alive = [true, true];
        assert_eq!(s.intercept(Round::new(4), Pid::new(1), &eff, ctx(&alive)), Fate::Survive);
        assert_eq!(s.intercept(Round::new(5), Pid::new(0), &eff, ctx(&alive)), Fate::Survive);
        assert!(matches!(
            s.intercept(Round::new(5), Pid::new(1), &eff, ctx(&alive)),
            Fate::Crash(_)
        ));
    }

    #[test]
    fn schedule_next_event_is_first_scheduled_round() {
        let s = CrashSchedule::new().crash_at(Pid::new(0), 30, CrashSpec::silent()).crash_at(
            Pid::new(1),
            12,
            CrashSpec::silent(),
        );
        assert_eq!(
            <CrashSchedule as Adversary<()>>::next_event(&s, Round::ZERO),
            Some(Round::new(12))
        );
        assert_eq!(
            <CrashSchedule as Adversary<()>>::next_event(&s, Round::new(13)),
            Some(Round::new(30))
        );
        assert_eq!(<CrashSchedule as Adversary<()>>::next_event(&s, Round::new(31)), None);
    }

    #[test]
    fn random_adversary_respects_budget() {
        let mut adv = RandomCrashes::new(42, 1.0, 0);
        let eff: Effects<()> = Effects::new();
        let alive = [true, true, true];
        // p = 1.0 but budget 0: never crashes.
        assert_eq!(adv.intercept(Round::new(1), Pid::new(0), &eff, ctx(&alive)), Fate::Survive);
    }

    #[test]
    fn random_adversary_spares_last_survivor() {
        let mut adv = RandomCrashes::new(7, 1.0, 10);
        let eff: Effects<()> = Effects::new();
        let alive = [true, false, false];
        assert_eq!(adv.intercept(Round::new(1), Pid::new(0), &eff, ctx(&alive)), Fate::Survive);
    }

    #[test]
    fn random_adversary_is_deterministic_per_seed() {
        let run = |seed| {
            let mut adv = RandomCrashes::new(seed, 0.5, 100);
            let eff: Effects<()> = Effects::new();
            let alive = [true; 4];
            (1u64..50)
                .map(|r| {
                    let fate = adv.intercept(Round::from(r), Pid::new(0), &eff, ctx(&alive));
                    matches!(fate, Fate::Crash(_))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should differ somewhere");
    }

    #[test]
    fn trigger_nth_work_fires_exactly_once() {
        let mut adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth: 2 },
            target: None,
            spec: CrashSpec::silent(),
        }]);
        let alive = [true, true];
        let mut working: Effects<()> = Effects::new();
        working.perform(Unit::new(1));
        assert_eq!(adv.intercept(Round::new(1), Pid::new(0), &working, ctx(&alive)), Fate::Survive);
        let mut working2: Effects<()> = Effects::new();
        working2.perform(Unit::new(2));
        assert!(matches!(
            adv.intercept(Round::new(2), Pid::new(0), &working2, ctx(&alive)),
            Fate::Crash(_)
        ));
        assert_eq!(adv.remaining_rules(), 0);
    }

    #[test]
    fn trigger_note_counts_across_processes() {
        let mut adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthNote { tag: "activate", nth: 2 },
            target: None,
            spec: CrashSpec::silent(),
        }]);
        let alive = [true, true, true];
        let mut e1: Effects<()> = Effects::new();
        e1.note("activate");
        assert_eq!(adv.intercept(Round::new(3), Pid::new(1), &e1, ctx(&alive)), Fate::Survive);
        let mut e2: Effects<()> = Effects::new();
        e2.note("activate");
        assert!(matches!(
            adv.intercept(Round::new(9), Pid::new(2), &e2, ctx(&alive)),
            Fate::Crash(_)
        ));
    }

    #[test]
    fn at_round_trigger_reports_next_event() {
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::AtRound(Round::new(44)),
            target: Some(Pid::new(1)),
            spec: CrashSpec::silent(),
        }]);
        assert_eq!(
            <TriggerAdversary as Adversary<()>>::next_event(&adv, Round::new(10)),
            Some(Round::new(44))
        );
    }
}
