//! Chaos harness: seeded random fault-plan generation, greedy
//! auto-shrinking of failing cases, and a replayable repro codec.
//!
//! The pieces compose into a property-based campaign against the engines:
//!
//! 1. [`ChaosCase::generate`] draws a random — but always *valid* (see
//!    [`FaultPlan::validate`]) — fault plan under budget constraints: the
//!    plan never permanently crashes all `t` processes, schedules at most
//!    one crash-kind fault per process, and keeps degraded-mode windows
//!    disjoint.
//! 2. A driver runs every protocol on both execution planes against the
//!    generated plan and applies the invariant checkers
//!    ([`invariants`](crate::invariants)) plus the Do-All contract
//!    ([`contract_violations`]).
//! 3. On failure, [`shrink`] greedily minimises the case — dropping
//!    faults, halving the system, narrowing windows, pulling injection
//!    times earlier — while the caller-supplied oracle keeps failing.
//! 4. The minimal case round-trips through the textual [`Repro`] codec,
//!    so a failure seen once replays forever from a committed seed file.
//!
//! Everything here is deterministic per seed: same seed, same plan; same
//! shrink decisions; same repro bytes.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::faults::{Fault, FaultKind, FaultPlan};
use crate::ids::{Pid, Round};
use crate::metrics::Metrics;

/// Budget constraints for [`ChaosCase::generate`].
///
/// The defaults describe a small, dense storm: up to 6 faults of every
/// kind inside the first 40 time-steps, windows up to 20 steps, downtimes
/// up to 15.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ChaosConfig {
    /// Number of processes cases are generated for.
    pub t: usize,
    /// Number of work units.
    pub n: usize,
    /// Upper bound on the number of faults per plan (at least one is
    /// always attempted).
    pub max_faults: usize,
    /// Faults inject within `1..=horizon` (sync rounds / async times).
    pub horizon: u64,
    /// Maximum length of windowed faults (slow / omission windows).
    pub max_window: u64,
    /// Maximum crash-recovery downtime.
    pub max_downtime: u64,
    /// Allow permanent [`FaultKind::Crash`] faults.
    pub crashes: bool,
    /// Allow [`FaultKind::CrashRecover`] faults.
    pub recoveries: bool,
    /// Allow [`FaultKind::Slow`] degraded-mode windows.
    pub slowdowns: bool,
    /// Allow [`FaultKind::OmitSends`] / [`FaultKind::OmitRecv`] windows.
    pub omissions: bool,
}

impl ChaosConfig {
    /// A default budget for a `t`-process, `n`-unit system with every
    /// fault kind enabled.
    pub fn new(t: usize, n: usize) -> Self {
        ChaosConfig {
            t,
            n,
            max_faults: 6,
            horizon: 40,
            max_window: 20,
            max_downtime: 15,
            crashes: true,
            recoveries: true,
            slowdowns: true,
            omissions: true,
        }
    }

    /// Restricts the plan to fail-stop crashes only (the paper's model).
    pub fn crashes_only(mut self) -> Self {
        self.recoveries = false;
        self.slowdowns = false;
        self.omissions = false;
        self
    }
}

/// One generated chaos case: a system shape plus the fault plan thrown at
/// it. The `seed` is carried along purely as provenance — replaying the
/// case uses the explicit `faults`, so a shrunk case (whose faults no
/// longer match its seed) still replays exactly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ChaosCase {
    /// The seed the original (pre-shrink) case was generated from.
    pub seed: u64,
    /// Number of processes.
    pub t: usize,
    /// Number of work units.
    pub n: usize,
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl ChaosCase {
    /// Generates a random fault plan under `cfg`'s budget. The result
    /// always passes [`FaultPlan::validate`] for `cfg.t` processes: at
    /// most `t - 1` permanent crashes, at most one crash-kind fault per
    /// process, disjoint slow windows, non-empty fault windows.
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosCase {
        let mut faults: Vec<Fault> = Vec::new();
        if cfg.t > 0 {
            let mut rng = SmallRng::seed_from_u64(seed);
            // Per-pid bookkeeping that mirrors the validator's rules.
            let mut crash_kind_on = vec![false; cfg.t];
            let mut permanent_crashes = 0usize;
            let mut slow_spans: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cfg.t];

            let mut menu: Vec<u8> = Vec::new();
            if cfg.crashes {
                menu.push(0);
            }
            if cfg.recoveries {
                menu.push(1);
            }
            if cfg.slowdowns {
                menu.push(2);
            }
            if cfg.omissions {
                menu.push(3);
                menu.push(4);
            }

            let target = rng.gen_range(1..=cfg.max_faults.max(1));
            let horizon = cfg.horizon.max(1);
            let mut attempts = 0usize;
            while !menu.is_empty() && faults.len() < target && attempts < target * 8 {
                attempts += 1;
                let pid = Pid::new(rng.gen_range(0..cfg.t));
                let at = rng.gen_range(1..=horizon);
                match menu[rng.gen_range(0..menu.len())] {
                    0 => {
                        // Permanent crash: one crash-kind fault per pid,
                        // and always leave at least one process alive.
                        if crash_kind_on[pid.index()] || permanent_crashes + 1 >= cfg.t {
                            continue;
                        }
                        crash_kind_on[pid.index()] = true;
                        permanent_crashes += 1;
                        faults.push(FaultKind::Crash(pid).at(at));
                    }
                    1 => {
                        if crash_kind_on[pid.index()] {
                            continue;
                        }
                        crash_kind_on[pid.index()] = true;
                        let downtime = rng.gen_range(1..=cfg.max_downtime.max(1));
                        let wipe = rng.gen_bool(0.5);
                        faults.push(FaultKind::CrashRecover { pid, downtime, wipe }.at(at));
                    }
                    2 => {
                        // Slow window: must not overlap another slow
                        // window on the same pid (the Degraded wrappers
                        // require disjoint windows).
                        let len = rng.gen_range(2..=cfg.max_window.max(2));
                        let until = at.saturating_add(len);
                        let spans = &mut slow_spans[pid.index()];
                        if spans.iter().any(|&(lo, hi)| at < hi && lo < until) {
                            continue;
                        }
                        spans.push((at, until));
                        let factor = rng.gen_range(2..=6);
                        faults.push(FaultKind::Slow { pid, factor }.at(at).until(until));
                    }
                    kind => {
                        let len = rng.gen_range(1..=cfg.max_window.max(1));
                        let until = at.saturating_add(len);
                        let fault = if kind == 3 {
                            FaultKind::OmitSends(pid)
                        } else {
                            FaultKind::OmitRecv(pid)
                        };
                        faults.push(fault.at(at).until(until));
                    }
                }
            }
        }
        let case = ChaosCase { seed, t: cfg.t, n: cfg.n, faults };
        debug_assert!(
            case.plan().validate(cfg.t).is_ok(),
            "generator produced an invalid plan from seed {seed}"
        );
        case
    }

    /// Builds the executable [`FaultPlan`] for this case.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.faults.clone())
    }
}

/// Greedily minimises a failing chaos case.
///
/// `fails` is the reproduction oracle: it must return `true` exactly when
/// the candidate case still exhibits the failure being chased. The oracle
/// owns *all* execution concerns — in particular it must return `false`
/// (not panic) for shapes it cannot run: a `t` no protocol constructor
/// accepts, or a plan its engine rejects as
/// [`InvalidAdversary`](crate::RunError::InvalidAdversary). `shrink` only
/// ever adopts a candidate the oracle confirms, so the result is always a
/// failing case no larger than the input.
///
/// Reduction passes, iterated to a fixpoint:
///
/// 1. **drop** — remove faults one at a time;
/// 2. **halve the system** — `t /= 2` (discarding faults on removed pids)
///    and `n /= 2`;
/// 3. **narrow** — halve fault-window lengths, then slide injection times
///    toward round 1 (window lengths preserved).
///
/// Every pass is deterministic, so a shrink of the same case with the
/// same oracle reproduces the same minimum.
pub fn shrink<F>(case: &ChaosCase, mut fails: F) -> ChaosCase
where
    F: FnMut(&ChaosCase) -> bool,
{
    let mut best = case.clone();
    loop {
        let mut improved = false;

        // Pass 1: drop single faults.
        let mut i = 0;
        while i < best.faults.len() {
            let mut cand = best.clone();
            cand.faults.remove(i);
            if fails(&cand) {
                best = cand;
                improved = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: halve the system shape.
        while best.t >= 2 {
            let smaller = best.t / 2;
            let mut cand = best.clone();
            cand.t = smaller;
            cand.faults.retain(|f| f.kind.pid().index() < smaller);
            if fails(&cand) {
                best = cand;
                improved = true;
            } else {
                break;
            }
        }
        while best.n >= 2 {
            let mut cand = best.clone();
            cand.n = best.n / 2;
            if fails(&cand) {
                best = cand;
                improved = true;
            } else {
                break;
            }
        }

        // Pass 3: narrow windows, then pull injection times earlier.
        for i in 0..best.faults.len() {
            loop {
                let f = &best.faults[i];
                let Some(until) = f.until else { break };
                let len = until.saturating_sub(f.at);
                if len <= 1 {
                    break;
                }
                let mut cand = best.clone();
                cand.faults[i].until = Some(f.at.saturating_add(len / 2));
                if fails(&cand) {
                    best = cand;
                    improved = true;
                } else {
                    break;
                }
            }
            loop {
                let f = &best.faults[i];
                let at = f.at;
                if at <= Round::ONE {
                    break;
                }
                let earlier = Round::new(at.get().div_ceil(2));
                if earlier >= at {
                    break;
                }
                let delta = at - earlier;
                let mut cand = best.clone();
                cand.faults[i].at = earlier;
                if let Some(u) = cand.faults[i].until {
                    cand.faults[i].until = Some(Round::new(u.get() - delta));
                }
                if fails(&cand) {
                    best = cand;
                    improved = true;
                } else {
                    break;
                }
            }
        }

        if !improved {
            return best;
        }
    }
}

/// Checks the Do-All effectiveness contract on a finished run: if at
/// least one process terminated normally (`survivors > 0`), every one of
/// the `n` work units must have been performed at least once. Returns the
/// violations found (empty = contract holds).
///
/// The companion trace-level check — no process may *terminate* before
/// global completion — is
/// [`check_termination_after_completion`](crate::invariants::check_termination_after_completion).
pub fn contract_violations(survivors: usize, metrics: &Metrics) -> Vec<String> {
    let mut violations = Vec::new();
    if survivors > 0 && !metrics.all_work_done() {
        let done = metrics.work_by_unit.iter().filter(|&&c| c > 0).count();
        violations.push(format!(
            "{survivors} survivor(s) terminated but only {done}/{} unit(s) were ever performed",
            metrics.work_by_unit.len()
        ));
    }
    violations
}

/// Which execution plane a repro replays on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Plane {
    /// The synchronous round engine ([`run`](crate::run)).
    Sync,
    /// The asynchronous event engine
    /// ([`run_async`](crate::asynch::run_async)).
    Async,
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plane::Sync => write!(f, "sync"),
            Plane::Async => write!(f, "async"),
        }
    }
}

/// A replayable failure: the case, plus which protocol and plane it
/// failed on. Serialises to a stable, human-auditable text format:
///
/// ```text
/// # doall-chaos-repro v1
/// seed = 7
/// protocol = B
/// plane = sync
/// t = 4
/// n = 32
/// fault = crash p0 @1
/// fault = crash_recover p1 @8 downtime=10 wipe
/// fault = slow p2 @5..25 factor=4
/// fault = omit_send p3 @5..20
/// ```
///
/// One-shot faults carry `@at`; windowed faults carry `@at..until`
/// (exclusive) or `@at..` when never repaired.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Repro {
    /// Protocol label the failure was observed on (e.g. `"B"`).
    pub protocol: String,
    /// Execution plane the failure was observed on.
    pub plane: Plane,
    /// The (usually shrunk) failing case.
    pub case: ChaosCase,
}

impl Repro {
    /// Renders the repro in the `doall-chaos-repro v1` text format.
    pub fn emit(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# doall-chaos-repro v1\n");
        let _ = writeln!(out, "seed = {}", self.case.seed);
        let _ = writeln!(out, "protocol = {}", self.protocol);
        let _ = writeln!(out, "plane = {}", self.plane);
        let _ = writeln!(out, "t = {}", self.case.t);
        let _ = writeln!(out, "n = {}", self.case.n);
        for fault in &self.case.faults {
            let _ = writeln!(out, "fault = {}", emit_fault(fault));
        }
        out
    }

    /// Parses the `doall-chaos-repro v1` text format.
    ///
    /// # Errors
    ///
    /// [`ReproError`] pinpointing the offending line.
    pub fn parse(text: &str) -> Result<Repro, ReproError> {
        let mut header = false;
        let mut seed: Option<u64> = None;
        let mut protocol: Option<String> = None;
        let mut plane: Option<Plane> = None;
        let mut t: Option<usize> = None;
        let mut n: Option<usize> = None;
        let mut faults: Vec<Fault> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let no = idx + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if comment.trim().starts_with("doall-chaos-repro") {
                    if comment.trim() != "doall-chaos-repro v1" {
                        return Err(ReproError::at(no, "unsupported repro version"));
                    }
                    header = true;
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ReproError::at(no, "expected `key = value`"));
            };
            let value = value.trim();
            match key.trim() {
                "seed" => seed = Some(parse_num(value, no, "seed")?),
                "protocol" => protocol = Some(value.to_string()),
                "plane" => {
                    plane = Some(match value {
                        "sync" => Plane::Sync,
                        "async" => Plane::Async,
                        _ => return Err(ReproError::at(no, "plane must be `sync` or `async`")),
                    });
                }
                "t" => t = Some(parse_num(value, no, "t")?),
                "n" => n = Some(parse_num(value, no, "n")?),
                "fault" => faults.push(parse_fault(value, no)?),
                other => {
                    return Err(ReproError::at(no, format!("unknown key `{other}`")));
                }
            }
        }
        if !header {
            return Err(ReproError::at(0, "missing `# doall-chaos-repro v1` header"));
        }
        let require = |what: &str, line: usize| ReproError::at(line, format!("missing `{what}`"));
        Ok(Repro {
            protocol: protocol.ok_or_else(|| require("protocol", 0))?,
            plane: plane.ok_or_else(|| require("plane", 0))?,
            case: ChaosCase {
                seed: seed.ok_or_else(|| require("seed", 0))?,
                t: t.ok_or_else(|| require("t", 0))?,
                n: n.ok_or_else(|| require("n", 0))?,
                faults,
            },
        })
    }
}

/// A syntax or consistency error in a chaos repro file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReproError {
    /// 1-based line of the error (0 = whole-file problem).
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl ReproError {
    fn at(line: usize, what: impl Into<String>) -> ReproError {
        ReproError { line, what: what.into() }
    }
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "chaos repro: {}", self.what)
        } else {
            write!(f, "chaos repro line {}: {}", self.line, self.what)
        }
    }
}

impl std::error::Error for ReproError {}

fn emit_fault(fault: &Fault) -> String {
    let window = || match fault.until {
        Some(until) => format!("@{}..{}", fault.at.get(), until.get()),
        None => format!("@{}..", fault.at.get()),
    };
    match fault.kind {
        FaultKind::Crash(pid) => format!("crash {pid} @{}", fault.at.get()),
        FaultKind::CrashRecover { pid, downtime, wipe } => {
            let state = if wipe { "wipe" } else { "stale" };
            format!("crash_recover {pid} @{} downtime={downtime} {state}", fault.at.get())
        }
        FaultKind::Slow { pid, factor } => format!("slow {pid} {} factor={factor}", window()),
        FaultKind::SlowQuarter(pid) => format!("slow_quarter {pid} {}", window()),
        FaultKind::OmitSends(pid) => format!("omit_send {pid} {}", window()),
        FaultKind::OmitRecv(pid) => format!("omit_recv {pid} {}", window()),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, ReproError> {
    s.parse().map_err(|_| ReproError::at(line, format!("bad {what} value `{s}`")))
}

fn parse_pid(tok: &str, line: usize) -> Result<Pid, ReproError> {
    let idx = tok
        .strip_prefix('p')
        .and_then(|d| d.parse::<usize>().ok())
        .ok_or_else(|| ReproError::at(line, format!("bad pid `{tok}` (expected `p<index>`)")))?;
    Ok(Pid::new(idx))
}

/// Parses `@N` (one-shot) or `@A..B` / `@A..` (windowed).
fn parse_schedule(tok: &str, line: usize) -> Result<(Round, Option<Round>), ReproError> {
    let body = tok
        .strip_prefix('@')
        .ok_or_else(|| ReproError::at(line, format!("bad schedule `{tok}` (expected `@...`)")))?;
    let bad = || ReproError::at(line, format!("bad schedule `{tok}`"));
    match body.split_once("..") {
        None => Ok((Round::new(body.parse::<u128>().map_err(|_| bad())?), None)),
        Some((at, "")) => Ok((Round::new(at.parse::<u128>().map_err(|_| bad())?), None)),
        Some((at, until)) => Ok((
            Round::new(at.parse::<u128>().map_err(|_| bad())?),
            Some(Round::new(until.parse::<u128>().map_err(|_| bad())?)),
        )),
    }
}

fn parse_fault(s: &str, line: usize) -> Result<Fault, ReproError> {
    let mut toks = s.split_whitespace();
    let bad = |what: &str| ReproError::at(line, format!("bad fault `{s}`: {what}"));
    let kind_tok = toks.next().ok_or_else(|| bad("empty"))?;
    let pid = parse_pid(toks.next().ok_or_else(|| bad("missing pid"))?, line)?;
    let (at, until) = parse_schedule(toks.next().ok_or_else(|| bad("missing schedule"))?, line)?;
    let mut downtime: Option<u64> = None;
    let mut factor: Option<u64> = None;
    let mut wipe: Option<bool> = None;
    for tok in toks {
        if let Some(v) = tok.strip_prefix("downtime=") {
            downtime = Some(parse_num(v, line, "downtime")?);
        } else if let Some(v) = tok.strip_prefix("factor=") {
            factor = Some(parse_num(v, line, "factor")?);
        } else if tok == "wipe" {
            wipe = Some(true);
        } else if tok == "stale" {
            wipe = Some(false);
        } else {
            return Err(bad(&format!("unknown token `{tok}`")));
        }
    }
    let kind = match kind_tok {
        "crash" => FaultKind::Crash(pid),
        "crash_recover" => FaultKind::CrashRecover {
            pid,
            downtime: downtime.ok_or_else(|| bad("missing downtime="))?,
            wipe: wipe.ok_or_else(|| bad("missing wipe/stale"))?,
        },
        "slow" => FaultKind::Slow { pid, factor: factor.ok_or_else(|| bad("missing factor="))? },
        "slow_quarter" => FaultKind::SlowQuarter(pid),
        "omit_send" => FaultKind::OmitSends(pid),
        "omit_recv" => FaultKind::OmitRecv(pid),
        other => return Err(bad(&format!("unknown kind `{other}`"))),
    };
    Ok(Fault { kind, at, until })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let cfg = ChaosConfig::new(8, 64);
        for seed in 0..200 {
            let a = ChaosCase::generate(seed, &cfg);
            let b = ChaosCase::generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.faults.is_empty() || a.t == 0, "seed {seed} generated no faults");
            a.plan().validate(cfg.t).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for f in &a.faults {
                assert!(f.at >= Round::ONE && f.at <= cfg.horizon, "seed {seed}: {f:?}");
            }
        }
    }

    #[test]
    fn crashes_only_budget_respects_survivor_floor() {
        let cfg = ChaosConfig { max_faults: 50, ..ChaosConfig::new(3, 16) }.crashes_only();
        for seed in 0..100 {
            let case = ChaosCase::generate(seed, &cfg);
            let crashes =
                case.faults.iter().filter(|f| matches!(f.kind, FaultKind::Crash(_))).count();
            assert!(crashes <= 2, "seed {seed} crashed too many: {case:?}");
            case.plan().validate(cfg.t).unwrap();
        }
    }

    #[test]
    fn shrink_finds_the_single_guilty_fault() {
        // Oracle: the failure reproduces iff the plan crashes p0 (at any
        // time) — the classic "protocol forgets p0's chunk" bug shape.
        let cfg = ChaosConfig::new(8, 64);
        let case = (0..500)
            .map(|seed| ChaosCase::generate(seed, &cfg))
            .find(|c| {
                c.faults.len() >= 3
                    && c.faults.iter().any(|f| f.kind == FaultKind::Crash(Pid::new(0)))
            })
            .expect("some seed generates a multi-fault plan crashing p0");
        let fails = |c: &ChaosCase| {
            c.t >= 1
                && c.faults
                    .iter()
                    .any(|f| matches!(f.kind, FaultKind::Crash(p) if p == Pid::new(0)))
        };
        assert!(fails(&case));
        let min = shrink(&case, fails);
        assert_eq!(min.faults.len(), 1, "not minimal: {min:?}");
        assert_eq!(min.faults[0].kind, FaultKind::Crash(Pid::new(0)));
        assert_eq!(min.faults[0].at, Round::ONE, "injection time not minimised: {min:?}");
        assert_eq!(min.t, 1, "system size not minimised: {min:?}");
        assert_eq!(min.n, 1, "workload not minimised: {min:?}");
        // Shrinking is deterministic.
        assert_eq!(min, shrink(&case, fails));
    }

    #[test]
    fn shrink_respects_oracle_shape_constraints() {
        // Oracle only accepts perfect-square t (like Protocol A/B
        // constructors): halving 16 -> 8 must be rejected, leaving t = 16
        // ... except 4 and 1 are squares reached via two halvings — which
        // the pass structure forbids (it halves stepwise and stops at the
        // first non-failing candidate).
        let case = ChaosCase {
            seed: 1,
            t: 16,
            n: 4,
            faults: vec![FaultKind::Crash(Pid::new(0)).at(1u64)],
        };
        let is_square = |t: usize| (1..=t).any(|k| k * k == t);
        let fails = |c: &ChaosCase| is_square(c.t) && !c.faults.is_empty();
        let min = shrink(&case, fails);
        assert_eq!(min.t, 16);
        assert_eq!(min.faults.len(), 1);
    }

    #[test]
    fn repro_roundtrips_every_fault_kind() {
        let case = ChaosCase {
            seed: 7,
            t: 16,
            n: 256,
            faults: vec![
                FaultKind::Crash(Pid::new(3)).at(5u64),
                FaultKind::CrashRecover { pid: Pid::new(1), downtime: 10, wipe: true }.at(8u64),
                FaultKind::CrashRecover { pid: Pid::new(2), downtime: 3, wipe: false }.at(9u64),
                FaultKind::Slow { pid: Pid::new(4), factor: 4 }.at(5u64).until(25u64),
                FaultKind::SlowQuarter(Pid::new(5)).at(2u64).until(9u64),
                FaultKind::OmitSends(Pid::new(6)).at(5u64).until(20u64),
                FaultKind::OmitRecv(Pid::new(7)).at(5u64),
            ],
        };
        let repro = Repro { protocol: "B".to_string(), plane: Plane::Sync, case };
        let text = repro.emit();
        assert!(text.starts_with("# doall-chaos-repro v1\n"));
        let parsed = Repro::parse(&text).unwrap();
        assert_eq!(parsed, repro);
        // Emit is stable under roundtrip.
        assert_eq!(parsed.emit(), text);
    }

    #[test]
    fn repro_parser_rejects_garbage() {
        assert!(Repro::parse("").unwrap_err().what.contains("header"));
        let missing = "# doall-chaos-repro v1\nseed = 1\nplane = sync\nt = 2\nn = 2\n";
        assert!(Repro::parse(missing).unwrap_err().what.contains("protocol"));
        let bad_fault = "# doall-chaos-repro v1\nseed = 1\nprotocol = A\nplane = sync\nt = 2\nn = 2\nfault = crash q1 @2\n";
        let err = Repro::parse(bad_fault).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.what.contains("pid"));
        let bad_plane = "# doall-chaos-repro v1\nplane = diagonal\n";
        assert!(Repro::parse(bad_plane).unwrap_err().what.contains("plane"));
    }

    #[test]
    fn contract_flags_missing_work_only_with_survivors() {
        let mut metrics = Metrics::new(4);
        metrics.record_work(crate::ids::Unit::new(1));
        // No survivor: crashing everyone excuses unfinished work.
        assert!(contract_violations(0, &metrics).is_empty());
        // A survivor with unfinished work is a contract violation.
        let v = contract_violations(2, &metrics);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("1/4"), "unexpected message: {v:?}");
        for u in 2..=4 {
            metrics.record_work(crate::ids::Unit::new(u));
        }
        assert!(contract_violations(2, &metrics).is_empty());
    }
}
