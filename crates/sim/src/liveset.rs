//! Compressed live/retired process sets.
//!
//! The message plane already stores broadcasts as *spans* rather than
//! per-recipient envelopes; [`LiveSet`] extends the same idea to liveness.
//! It is a hybrid of two representations kept deliberately asymmetric:
//!
//! * a **bitset** (`⌈t/64⌉` words) answering membership and count queries
//!   in O(1) — the delivery index intersects every span with the live set
//!   once per recipient, so this is the hot query path;
//! * a lazily rebuilt **run list** (maximal `[lo, hi)` intervals of live
//!   pids) driving pid-order iteration in O(live + runs) — after a mass
//!   extinction leaves one survivor in a `t = 2^17` system, the per-round
//!   due-scan walks one run of length one instead of 2048 bitset words.
//!
//! Mutations touch only the bitset (O(1) per pid, O(span/64) for a bulk
//! span kill) and mark the run list dirty; the runs are rebuilt from the
//! words on the next iteration after a mutation, so quiet stretches — the
//! common case, since the live set only moves on retirement, revival, and
//! recovery — iterate at interval-set speed with no rebuild at all.

use serde::{Deserialize, Serialize};

/// The set of live process indices, over a fixed universe `0..t`.
///
/// # Examples
///
/// ```
/// use doall_sim::LiveSet;
///
/// let mut live = LiveSet::new(10);
/// assert_eq!(live.len(), 10);
/// live.remove(3);
/// assert!(!live.contains(3));
/// assert_eq!(live.kill_span(5, 8), 3);
/// assert_eq!(live.iter().collect::<Vec<_>>(), vec![0, 1, 2, 4, 8, 9]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveSet {
    t: usize,
    words: Vec<u64>,
    len: usize,
    /// Maximal half-open runs of live pids, valid only when `!dirty`.
    runs: Vec<(u32, u32)>,
    dirty: bool,
}

impl LiveSet {
    /// A set with every pid in `0..t` live.
    pub fn new(t: usize) -> Self {
        let mut words = vec![u64::MAX; t.div_ceil(64)];
        if !t.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (t % 64)) - 1;
            }
        }
        let runs = if t > 0 { vec![(0, t as u32)] } else { Vec::new() };
        LiveSet { t, words, len: t, runs, dirty: false }
    }

    /// Size of the universe (`t`), not the number of live members.
    pub fn universe(&self) -> usize {
        self.t
    }

    /// Number of live pids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pid is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `idx` is live. O(1).
    pub fn contains(&self, idx: usize) -> bool {
        idx < self.t && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Removes `idx`; returns whether it was live. O(1).
    pub fn remove(&mut self, idx: usize) -> bool {
        let mask = 1u64 << (idx % 64);
        let w = &mut self.words[idx / 64];
        if *w & mask == 0 {
            return false;
        }
        *w &= !mask;
        self.len -= 1;
        self.dirty = true;
        true
    }

    /// Inserts `idx` (a crash-recovery revival); returns whether it was
    /// previously absent. O(1).
    pub fn insert(&mut self, idx: usize) -> bool {
        let mask = 1u64 << (idx % 64);
        let w = &mut self.words[idx / 64];
        if *w & mask != 0 {
            return false;
        }
        *w |= mask;
        self.len += 1;
        self.dirty = true;
        true
    }

    /// Kills every live pid in `[lo, hi)` in one pass over `⌈span/64⌉`
    /// words (no per-pid work); returns how many were live.
    pub fn kill_span(&mut self, lo: usize, hi: usize) -> u64 {
        let hi = hi.min(self.t);
        if lo >= hi {
            return 0;
        }
        let mut removed: u32 = 0;
        let (wlo, whi) = (lo / 64, (hi - 1) / 64);
        for wi in wlo..=whi {
            let mut mask = u64::MAX;
            if wi == wlo {
                mask &= u64::MAX << (lo % 64);
            }
            if wi == whi && !hi.is_multiple_of(64) {
                mask &= (1u64 << (hi % 64)) - 1;
            }
            let hit = self.words[wi] & mask;
            removed += hit.count_ones();
            self.words[wi] &= !mask;
        }
        if removed > 0 {
            self.len -= removed as usize;
            self.dirty = true;
        }
        u64::from(removed)
    }

    /// Number of live pids in `[lo, hi)`, by popcount over the span's
    /// words.
    pub fn count_span(&self, lo: usize, hi: usize) -> usize {
        let hi = hi.min(self.t);
        if lo >= hi {
            return 0;
        }
        let (wlo, whi) = (lo / 64, (hi - 1) / 64);
        let mut count = 0u32;
        for wi in wlo..=whi {
            let mut mask = u64::MAX;
            if wi == wlo {
                mask &= u64::MAX << (lo % 64);
            }
            if wi == whi && !hi.is_multiple_of(64) {
                mask &= (1u64 << (hi % 64)) - 1;
            }
            count += (self.words[wi] & mask).count_ones();
        }
        count as usize
    }

    /// Rebuilds the run list from the bitset if any mutation happened
    /// since the last rebuild.
    fn ensure_runs(&mut self) {
        if !self.dirty {
            return;
        }
        self.runs.clear();
        let mut open: Option<u32> = None;
        for (wi, &w) in self.words.iter().enumerate() {
            if w == 0 {
                if let Some(lo) = open.take() {
                    self.runs.push((lo, (wi * 64) as u32));
                }
                continue;
            }
            if w == u64::MAX {
                if open.is_none() {
                    open = Some((wi * 64) as u32);
                }
                continue;
            }
            let base = (wi * 64) as u32;
            let mut bit = 0u32;
            while bit < 64 {
                if w & (1u64 << bit) != 0 {
                    if open.is_none() {
                        open = Some(base + bit);
                    }
                    bit += 1;
                } else {
                    if let Some(lo) = open.take() {
                        self.runs.push((lo, base + bit));
                    }
                    bit += 1;
                }
            }
        }
        if let Some(lo) = open {
            self.runs.push((lo, self.t as u32));
        }
        self.dirty = false;
    }

    /// Iterates the live pids in pid order, in O(live + runs) after an
    /// amortized O(t/64) rebuild on the first iteration following a
    /// mutation. Requires `&mut self` for the lazy rebuild; cold callers
    /// holding only `&self` can use [`ones`](LiveSet::ones).
    pub fn iter(&mut self) -> impl Iterator<Item = usize> + '_ {
        self.ensure_runs();
        self.runs.iter().flat_map(|&(lo, hi)| lo as usize..hi as usize)
    }

    /// The maximal runs of live pids, pid-ordered (rebuilds lazily).
    pub fn runs(&mut self) -> &[(u32, u32)] {
        self.ensure_runs();
        &self.runs
    }

    /// Iterates the live pids straight off the bitset, in O(t/64); for
    /// cold paths (diagnostics) that only hold `&self`.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().filter(|(_, &w)| w != 0).flat_map(|(wi, &w)| {
            (0..64).filter(move |b| w & (1u64 << b) != 0).map(move |b| wi * 64 + b)
        })
    }

    /// Iterates the live pids in `[lo, hi)` in ascending pid order, in
    /// O(span/64 + live-in-span), holding only `&self` — the shard-range
    /// due-scan: each delivery shard walks its own pid range concurrently
    /// while the set is shared read-only across worker threads.
    pub fn ones_range(&self, lo: usize, hi: usize) -> impl Iterator<Item = usize> + '_ {
        let hi = hi.min(self.t);
        let lo = lo.min(hi);
        let wlo = lo / 64;
        let whi = hi.div_ceil(64);
        self.words[wlo..whi].iter().enumerate().flat_map(move |(o, &w)| {
            let base = (wlo + o) * 64;
            let mut w = w;
            if base < lo {
                w &= u64::MAX << (lo - base);
            }
            if base + 64 > hi {
                w &= u64::MAX >> (base + 64 - hi);
            }
            (0..64).filter(move |b| w & (1u64 << b) != 0).map(move |b| base + b)
        })
    }

    /// Bytes held by this set (words plus the run list), for the memory
    /// probe.
    pub fn bytes(&self) -> u64 {
        (self.words.capacity() * std::mem::size_of::<u64>()
            + self.runs.capacity() * std::mem::size_of::<(u32, u32)>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_set_is_one_run() {
        let mut s = LiveSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.runs(), &[(0, 130)]);
        assert!(s.contains(0) && s.contains(129) && !s.contains(130));
    }

    #[test]
    fn empty_universe_is_empty() {
        let mut s = LiveSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.ones().count(), 0);
    }

    #[test]
    fn remove_and_insert_roundtrip() {
        let mut s = LiveSet::new(65);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 64);
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 65);
        assert_eq!(s.runs(), &[(0, 65)]);
    }

    #[test]
    fn runs_split_around_holes() {
        let mut s = LiveSet::new(10);
        s.remove(3);
        s.remove(4);
        s.remove(9);
        assert_eq!(s.runs(), &[(0, 3), (5, 9)]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 5, 6, 7, 8]);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 1, 2, 5, 6, 7, 8]);
    }

    #[test]
    fn kill_span_crosses_word_boundaries() {
        let mut s = LiveSet::new(200);
        assert_eq!(s.kill_span(1, 199), 198);
        assert_eq!(s.len(), 2);
        assert_eq!(s.runs(), &[(0, 1), (199, 200)]);
        // Idempotent: nothing left to kill.
        assert_eq!(s.kill_span(0, 200), 2);
        assert!(s.is_empty());
        assert_eq!(s.kill_span(0, 200), 0);
    }

    #[test]
    fn kill_span_clamps_and_counts_only_live() {
        let mut s = LiveSet::new(64);
        s.remove(10);
        assert_eq!(s.kill_span(8, 12), 3);
        assert_eq!(s.kill_span(60, 1000), 4);
        assert_eq!(s.len(), 56);
        assert_eq!(s.count_span(0, 64), s.len());
    }

    #[test]
    fn count_span_matches_iteration() {
        let mut s = LiveSet::new(150);
        for i in (0..150).step_by(3) {
            s.remove(i);
        }
        for lo in [0usize, 1, 63, 64, 65, 100] {
            for hi in [lo, lo + 1, 128, 150, 400] {
                let expect = s.clone().iter().filter(|&i| i >= lo && i < hi).count();
                assert_eq!(s.count_span(lo, hi), expect, "span {lo}..{hi}");
            }
        }
    }

    #[test]
    fn ones_range_matches_filtered_iteration() {
        let mut s = LiveSet::new(200);
        for i in (0..200).step_by(7) {
            s.remove(i);
        }
        for lo in [0usize, 1, 63, 64, 65, 100, 199, 200] {
            for hi in [lo, lo + 1, 64, 128, 200, 400] {
                let expect: Vec<usize> = s.ones().filter(|&i| i >= lo && i < hi).collect();
                let got: Vec<usize> = s.ones_range(lo, hi).collect();
                assert_eq!(got, expect, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn mass_extinction_leaves_tiny_runs() {
        let mut s = LiveSet::new(1 << 17);
        assert_eq!(s.kill_span(1, 1 << 17), (1 << 17) - 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.runs(), &[(0, 1)]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0]);
    }
}
