//! Event-driven asynchronous engine with a retirement detector.
//!
//! §2.1 of the paper observes that Protocol A "can be easily modified to
//! run in a completely asynchronous system equipped with a failure
//! detection mechanism": instead of waiting for the deadline `DD(j)`,
//! process `j` waits until it has been *informed* that processes
//! `0, …, j−1` crashed or terminated. This module provides that system:
//!
//! * messages experience arbitrary finite, adversary-seeded delays;
//! * a **retirement detector** eventually informs every alive process of
//!   every retirement (crash *or* voluntary termination), and is *sound*:
//!   it never accuses a process that has not retired. (The paper's text
//!   speaks of being "informed that processes 1, …, j−1 crashed **or
//!   terminated**", which is why the detector reports retirement rather
//!   than just crashes — see DESIGN.md §6.7.)
//!
//! Time is not a meaningful complexity measure here; the engine reports
//! work and message counts, which is exactly what the paper claims carries
//! over from the synchronous analysis.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::effects::{coalesce_runs, Recipients, SendOp};
use crate::ids::{Pid, Unit};
use crate::message::Classify;
use crate::metrics::Metrics;

/// Logical timestamp of the asynchronous scheduler.
pub type Time = u64;

/// Actions recorded by an asynchronous event handler.
///
/// Unlike the synchronous [`Effects`](crate::Effects), a handler may
/// perform *several* units of work at once: asynchronous time is untimed,
/// so there is no per-round work budget to enforce.
#[derive(Debug)]
pub struct AsyncEffects<M> {
    work: Vec<Unit>,
    /// Send ops, payload stored once per op (see [`SendOp`]); the engine
    /// expands recipients only when scheduling the per-recipient delivery
    /// events (each of which owns its payload, since they fire at
    /// independent times).
    sends: Vec<SendOp<M>>,
    notes: Vec<&'static str>,
    terminated: bool,
    tick: bool,
}

impl<M> Default for AsyncEffects<M> {
    fn default() -> Self {
        AsyncEffects {
            work: Vec::new(),
            sends: Vec::new(),
            notes: Vec::new(),
            terminated: false,
            tick: false,
        }
    }
}

impl<M> AsyncEffects<M> {
    /// Clears all recorded actions while retaining the buffers, so the
    /// engine can recycle one scratch instance across handler invocations
    /// without allocating per event.
    pub fn reset(&mut self) {
        self.work.clear();
        self.sends.clear();
        self.notes.clear();
        self.terminated = false;
        self.tick = false;
    }

    /// Performs a unit of work.
    pub fn perform(&mut self, unit: Unit) {
        self.work.push(unit);
    }

    /// Sends `payload` to `to` (delivery is delayed by the scheduler).
    pub fn send(&mut self, to: Pid, payload: M) {
        self.sends.push(SendOp { to: Recipients::One(to), payload });
    }

    /// Broadcasts `payload` to the contiguous pid range `to` in O(1) —
    /// the payload is stored once. Empty ranges record nothing.
    pub fn multicast(&mut self, to: std::ops::Range<usize>, payload: M) {
        if to.is_empty() {
            return;
        }
        self.sends.push(SendOp { to: Recipients::Span { lo: to.start, hi: to.end }, payload });
    }

    /// Broadcasts `payload` to every recipient, coalescing consecutive
    /// ascending runs into spans (same coalescer as
    /// [`Effects::broadcast`](crate::Effects::broadcast)).
    pub fn broadcast<I>(&mut self, to: I, payload: M)
    where
        I: IntoIterator<Item = Pid>,
        M: Clone,
    {
        let mut payload = Some(payload);
        coalesce_runs(to, |run, last| {
            let m = if last {
                payload.take().expect("taken only on the final run")
            } else {
                payload.as_ref().expect("present until the final run").clone()
            };
            self.multicast(run, m);
        });
    }

    /// Terminates this process after the handler returns.
    pub fn terminate(&mut self) {
        self.terminated = true;
    }

    /// Records a trace annotation (e.g. `"activate"`).
    pub fn note(&mut self, tag: &'static str) {
        self.notes.push(tag);
    }

    /// Requests a [`AsyncProtocol::on_tick`] callback one time-step later,
    /// so that a long local computation (e.g. an active process working
    /// through its schedule) runs one operation per event and remains
    /// interruptible by crashes and message deliveries.
    pub fn continue_later(&mut self) {
        self.tick = true;
    }
}

/// A per-process asynchronous protocol.
pub trait AsyncProtocol {
    /// Message payload type.
    type Msg: Clone + fmt::Debug + Classify;

    /// Invoked once at the start of the execution.
    fn on_start(&mut self, eff: &mut AsyncEffects<Self::Msg>);

    /// Invoked when a message arrives.
    fn on_message(&mut self, from: Pid, payload: &Self::Msg, eff: &mut AsyncEffects<Self::Msg>);

    /// Invoked when the retirement detector reports that `retired` has
    /// crashed or terminated. Reports are sound and eventually complete,
    /// but arbitrarily delayed; each retirement is reported exactly once
    /// per observer.
    fn on_retirement(&mut self, retired: Pid, eff: &mut AsyncEffects<Self::Msg>);

    /// Invoked after a previous handler called
    /// [`AsyncEffects::continue_later`]. Default: no-op.
    fn on_tick(&mut self, eff: &mut AsyncEffects<Self::Msg>) {
        let _ = eff;
    }
}

/// Crash instructions for the asynchronous engine: process `pid` crashes
/// during its `nth` handler invocation (1-based), delivering only the first
/// `deliver_prefix` messages of that handler.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncCrash {
    /// The victim.
    pub pid: Pid,
    /// Which handler invocation the crash interrupts (1-based).
    pub on_invocation: u64,
    /// How many of that handler's outgoing messages escape.
    pub deliver_prefix: usize,
    /// Whether the handler's work units count as performed.
    pub count_work: bool,
}

/// Configuration of an asynchronous run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// Number of work units (pre-sizes metrics).
    pub n: usize,
    /// Seed for delay randomness (runs are reproducible per seed).
    pub seed: u64,
    /// Maximum message / detector-notice delay (delays are uniform in
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// Safety cap on handler invocations.
    pub max_events: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig { n: 0, seed: 0, max_delay: 5, max_events: 10_000_000 }
    }
}

/// Result of an asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncReport {
    /// Work / message counters (rounds field holds the final timestamp).
    pub metrics: Metrics,
    /// Which processes terminated normally.
    pub terminated: Vec<bool>,
    /// Which processes crashed.
    pub crashed: Vec<bool>,
    /// Activation notes observed, in order.
    pub notes: Vec<(Time, Pid, &'static str)>,
}

impl AsyncReport {
    /// Whether at least one process terminated normally.
    pub fn has_survivor(&self) -> bool {
        self.terminated.iter().any(|&t| t)
    }
}

/// Errors from the asynchronous engine.
#[derive(Debug)]
pub enum AsyncRunError {
    /// The handler-invocation cap was exceeded.
    EventLimit {
        /// The configured cap.
        limit: u64,
    },
    /// Live, unterminated processes remain but no events are pending.
    Stalled {
        /// Processes still alive and unterminated.
        alive: Vec<Pid>,
    },
}

impl fmt::Display for AsyncRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncRunError::EventLimit { limit } => write!(f, "event limit of {limit} exceeded"),
            AsyncRunError::Stalled { alive } => {
                write!(f, "stalled with processes {alive:?} alive and no pending events")
            }
        }
    }
}

impl std::error::Error for AsyncRunError {}

#[derive(Debug)]
enum Ev<M> {
    Start(Pid),
    Deliver { to: Pid, from: Pid, payload: M },
    Notice { observer: Pid, retired: Pid },
    Tick(Pid),
}

/// Timestamp-ordered event queue with slot recycling: consumed events
/// return their store slot to a free list, so memory is bounded by the
/// maximum number of *in-flight* events rather than growing by one slot
/// per event ever scheduled.
struct EventQueue<M> {
    heap: BinaryHeap<Reverse<(Time, u64, usize)>>,
    store: Vec<Option<Ev<M>>>,
    free: Vec<usize>,
    seq: u64,
}

impl<M> EventQueue<M> {
    fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), store: Vec::new(), free: Vec::new(), seq: 0 }
    }

    fn push(&mut self, time: Time, ev: Ev<M>) {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.store[idx] = Some(ev);
                idx
            }
            None => {
                self.store.push(Some(ev));
                self.store.len() - 1
            }
        };
        self.heap.push(Reverse((time, self.seq, idx)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, Ev<M>)> {
        let Reverse((now, _, idx)) = self.heap.pop()?;
        let ev = self.store[idx].take().expect("event consumed twice");
        self.free.push(idx);
        Some((now, ev))
    }
}

/// Runs an asynchronous execution until all processes retire.
///
/// Events (start signals, message deliveries, detector notices) are
/// processed in timestamp order; each delivery is delayed by a seeded
/// uniform amount in `1..=max_delay`. When a process retires, the detector
/// schedules a notice to every alive process.
///
/// # Errors
///
/// [`AsyncRunError::EventLimit`] if the invocation cap is exceeded;
/// [`AsyncRunError::Stalled`] if live processes remain with nothing
/// pending (a protocol bug — in a correct protocol some process always
/// eventually acts).
pub fn run_async<P: AsyncProtocol>(
    mut procs: Vec<P>,
    crashes: Vec<AsyncCrash>,
    cfg: AsyncConfig,
) -> Result<AsyncReport, AsyncRunError> {
    let t = procs.len();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut queue: EventQueue<P::Msg> = EventQueue::new();

    for pid in 0..t {
        queue.push(0, Ev::Start(Pid::new(pid)));
    }

    // Bucket the crash instructions by victim so the per-event lookup scans
    // only that process's entries instead of the whole list.
    let mut crash_by_pid: Vec<Vec<AsyncCrash>> = vec![Vec::new(); t];
    for c in crashes {
        if c.pid.index() < t {
            crash_by_pid[c.pid.index()].push(c);
        }
    }

    let mut metrics = Metrics::new(cfg.n);
    let mut terminated = vec![false; t];
    let mut crashed = vec![false; t];
    let mut invocations = vec![0u64; t];
    let mut notes: Vec<(Time, Pid, &'static str)> = Vec::new();
    let mut handled: u64 = 0;
    // One scratch effects instance, recycled across every handler call.
    let mut eff: AsyncEffects<P::Msg> = AsyncEffects::default();

    while let Some((now, ev)) = queue.pop() {
        eff.reset();
        let pid = match ev {
            Ev::Start(pid) => {
                if crashed[pid.index()] || terminated[pid.index()] {
                    continue;
                }
                procs[pid.index()].on_start(&mut eff);
                pid
            }
            Ev::Deliver { to, from, payload } => {
                if crashed[to.index()] || terminated[to.index()] {
                    metrics.dead_letters += 1;
                    continue;
                }
                procs[to.index()].on_message(from, &payload, &mut eff);
                to
            }
            Ev::Notice { observer, retired } => {
                if crashed[observer.index()] || terminated[observer.index()] {
                    continue;
                }
                procs[observer.index()].on_retirement(retired, &mut eff);
                observer
            }
            Ev::Tick(pid) => {
                if crashed[pid.index()] || terminated[pid.index()] {
                    continue;
                }
                procs[pid.index()].on_tick(&mut eff);
                pid
            }
        };

        handled += 1;
        if handled > cfg.max_events {
            return Err(AsyncRunError::EventLimit { limit: cfg.max_events });
        }
        invocations[pid.index()] += 1;

        let crash =
            crash_by_pid[pid.index()].iter().find(|c| c.on_invocation == invocations[pid.index()]);

        for tag in eff.notes.drain(..) {
            notes.push((now, pid, tag));
        }
        let count_work = crash.is_none_or(|c| c.count_work);
        if count_work {
            for unit in &eff.work {
                metrics.record_work(*unit);
            }
        }
        let deliver_upto = crash.map_or(usize::MAX, |c| c.deliver_prefix);
        let crashed_now = crash.is_some();
        // Expand ops into per-recipient delivery events; `i` indexes
        // messages in send order (spans expand ascending), so the crash
        // prefix semantics match the synchronous engine's. Each event owns
        // its payload (they fire at independent times): a k-recipient op
        // costs k − 1 clones plus one move, like the per-recipient
        // representation did.
        let mut i = 0usize;
        'ops: for op in eff.sends.drain(..) {
            let len = op.to.len();
            let mut payload = Some(op.payload);
            for (j, to) in op.to.iter().enumerate() {
                if i >= deliver_upto {
                    break 'ops;
                }
                let m = if j + 1 == len {
                    payload.take().expect("taken only for the final recipient")
                } else {
                    payload.as_ref().expect("present until the final recipient").clone()
                };
                metrics.record_message(m.class());
                let delay = rng.gen_range(1..=cfg.max_delay.max(1));
                queue.push(now + delay, Ev::Deliver { to, from: pid, payload: m });
                i += 1;
            }
        }

        if eff.tick && !crashed_now && !eff.terminated {
            queue.push(now + 1, Ev::Tick(pid));
        }

        let retired_now = if crashed_now {
            crashed[pid.index()] = true;
            metrics.crashes += 1;
            true
        } else if eff.terminated {
            terminated[pid.index()] = true;
            metrics.terminations += 1;
            true
        } else {
            false
        };

        if retired_now {
            // Retirement detector: eventually (and soundly) inform everyone.
            for obs in 0..t {
                if obs != pid.index() && !crashed[obs] && !terminated[obs] {
                    let delay = rng.gen_range(1..=cfg.max_delay.max(1));
                    queue.push(now + delay, Ev::Notice { observer: Pid::new(obs), retired: pid });
                }
            }
        }

        metrics.rounds = now;
        if (0..t).all(|i| crashed[i] || terminated[i]) {
            return Ok(AsyncReport { metrics, terminated, crashed, notes });
        }
    }

    let alive = (0..t).filter(|&i| !crashed[i] && !terminated[i]).map(Pid::new).collect::<Vec<_>>();
    if alive.is_empty() {
        Ok(AsyncReport { metrics, terminated, crashed, notes })
    } else {
        Err(AsyncRunError::Stalled { alive })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Ball;
    impl Classify for Ball {
        fn class(&self) -> &'static str {
            "ball"
        }
    }

    /// p0 sends a ball to p1; whoever holds the ball terminates; p1
    /// terminates on detecting p0's retirement too (exercises notices).
    struct Player {
        me: usize,
    }

    impl AsyncProtocol for Player {
        type Msg = Ball;

        fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
            if self.me == 0 {
                eff.perform(Unit::new(1));
                eff.send(Pid::new(1), Ball);
                eff.terminate();
            }
        }

        fn on_message(&mut self, _from: Pid, _: &Ball, eff: &mut AsyncEffects<Ball>) {
            eff.perform(Unit::new(2));
            eff.terminate();
        }

        fn on_retirement(&mut self, _retired: Pid, eff: &mut AsyncEffects<Ball>) {
            eff.note("saw_retirement");
        }
    }

    #[test]
    fn async_round_trip_completes() {
        let procs = vec![Player { me: 0 }, Player { me: 1 }];
        let report =
            run_async(procs, Vec::new(), AsyncConfig { n: 2, ..Default::default() }).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.messages, 1);
        assert!(report.has_survivor());
    }

    #[test]
    fn async_crash_suppresses_sends_and_work() {
        let procs = vec![Player { me: 0 }, Player { me: 1 }];
        let crash =
            AsyncCrash { pid: Pid::new(0), on_invocation: 1, deliver_prefix: 0, count_work: false };
        let err =
            run_async(procs, vec![crash], AsyncConfig { n: 2, ..Default::default() }).unwrap_err();
        // p1 never hears anything except the retirement notice, which in
        // this toy protocol does not terminate it -> the run stalls.
        match err {
            AsyncRunError::Stalled { alive } => assert_eq!(alive, vec![Pid::new(1)]),
            other => panic!("expected stall, got {other}"),
        }
    }

    #[test]
    fn async_is_deterministic_per_seed() {
        let mk = || vec![Player { me: 0 }, Player { me: 1 }];
        let cfg = AsyncConfig { n: 2, seed: 11, max_delay: 9, ..Default::default() };
        let a = run_async(mk(), Vec::new(), cfg.clone()).unwrap();
        let b = run_async(mk(), Vec::new(), cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn detector_notices_reach_survivors() {
        // p0 terminates immediately; p1 gets a retirement notice.
        struct Quitter {
            me: usize,
            noticed: bool,
        }
        impl AsyncProtocol for Quitter {
            type Msg = Ball;
            fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
                if self.me == 0 {
                    eff.terminate();
                }
            }
            fn on_message(&mut self, _: Pid, _: &Ball, _: &mut AsyncEffects<Ball>) {}
            fn on_retirement(&mut self, _: Pid, eff: &mut AsyncEffects<Ball>) {
                self.noticed = true;
                eff.note("noticed");
                eff.terminate();
            }
        }
        let procs = vec![Quitter { me: 0, noticed: false }, Quitter { me: 1, noticed: false }];
        let report = run_async(procs, Vec::new(), AsyncConfig::default()).unwrap();
        assert!(report.notes.iter().any(|(_, p, tag)| *p == Pid::new(1) && *tag == "noticed"));
        assert_eq!(report.terminated, vec![true, true]);
    }
}
