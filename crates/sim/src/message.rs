//! Message envelopes and classification.

use std::fmt;

use crate::ids::{Pid, Round};

/// A message in flight, with its routing metadata.
///
/// Messages sent during round `r` are delivered at the start of round
/// `r + 1` — the standard synchronous model used by the paper ("in one
/// time unit a process can ... perform one round of communication").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender of the message.
    pub from: Pid,
    /// Recipient of the message.
    pub to: Pid,
    /// The round during which the message was sent.
    pub sent_at: Round,
    /// The protocol-level payload.
    pub payload: M,
}

impl<M: fmt::Display> fmt::Display for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} @r{}: {}", self.from, self.to, self.sent_at, self.payload)
    }
}

/// Classification of protocol messages for per-kind metrics.
///
/// The paper distinguishes *ordinary* messages from `go ahead` messages
/// (Protocol B) and from `Are you alive?` polls and their responses
/// (Protocol C); Theorems 2.8 and 3.8 count them separately. Implement this
/// on your payload type so [`Metrics`](crate::Metrics) can report the
/// breakdown.
///
/// # Examples
///
/// ```
/// use doall_sim::Classify;
///
/// #[derive(Clone, Debug)]
/// enum Msg { Checkpoint, GoAhead }
///
/// impl Classify for Msg {
///     fn class(&self) -> &'static str {
///         match self {
///             Msg::Checkpoint => "ordinary",
///             Msg::GoAhead => "go_ahead",
///         }
///     }
/// }
///
/// assert_eq!(Msg::GoAhead.class(), "go_ahead");
/// ```
pub trait Classify {
    /// A short, stable label for this message's kind.
    fn class(&self) -> &'static str {
        "msg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Ping;

    impl fmt::Display for Ping {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "ping")
        }
    }

    impl Classify for Ping {}

    #[test]
    fn default_class_is_msg() {
        assert_eq!(Ping.class(), "msg");
    }

    #[test]
    fn envelope_display_mentions_route_and_round() {
        let env = Envelope { from: Pid::new(1), to: Pid::new(2), sent_at: 7, payload: Ping };
        assert_eq!(env.to_string(), "p1 -> p2 @r7: ping");
    }
}
