//! Message classification and the borrowing per-round inbox view.

use crate::effects::Recipients;
use crate::ids::Pid;

/// One send operation in flight between rounds: the sender, the recipient
/// set, and the payload stored **once** for the whole set. This is the
/// engine's in-flight representation — a `k`-recipient broadcast occupies
/// one `FlightOp`, not `k` expanded envelopes.
#[derive(Clone, Debug)]
pub(crate) struct FlightOp<M> {
    /// Sender of the operation.
    pub(crate) from: Pid,
    /// Recipient set.
    pub(crate) to: Recipients,
    /// The payload, shared by every recipient.
    pub(crate) payload: M,
}

#[derive(Debug)]
enum Repr<'a, M> {
    /// The engines' CSR-style index: `ids` are indices into `ops` — the
    /// operations addressed to one recipient, in delivery order (the
    /// synchronous engine: send order, which is sender-pid order; the
    /// asynchronous engine: arrival order within a timestamp).
    Csr { ids: &'a [u32], ops: &'a [FlightOp<M>] },
    /// Explicit `(sender, payload)` pairs — the constructor used by tests
    /// and by protocols that embed another protocol (e.g. the §5
    /// Byzantine-agreement reduction translating its inbox for an inner
    /// work protocol).
    Pairs(&'a [(Pid, M)]),
}

/// A process's inbox for one round: a borrowed view over the engine's
/// in-flight operations, iterated as `(sender, &payload)` pairs in sender
/// order. The payload is **never cloned per recipient** — every recipient
/// of a broadcast reads the same stored payload.
///
/// `Inbox` is `Copy`, so it can be passed down through helper methods
/// freely.
///
/// # Examples
///
/// ```
/// use doall_sim::{Inbox, Pid};
///
/// let pairs = [(Pid::new(2), "hello"), (Pid::new(5), "world")];
/// let inbox = Inbox::from_pairs(&pairs);
/// assert_eq!(inbox.len(), 2);
/// let froms: Vec<usize> = inbox.iter().map(|(from, _)| from.index()).collect();
/// assert_eq!(froms, vec![2, 5]);
/// assert_eq!(inbox.iter().next(), Some((Pid::new(2), &"hello")));
/// ```
#[derive(Debug)]
pub struct Inbox<'a, M> {
    repr: Repr<'a, M>,
}

impl<M> Clone for Inbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for Inbox<'_, M> {}

impl<M> Clone for Repr<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for Repr<'_, M> {}

impl<'a, M> Inbox<'a, M> {
    /// The empty inbox.
    pub fn empty() -> Self {
        Inbox { repr: Repr::Pairs(&[]) }
    }

    /// An inbox over explicit `(sender, payload)` pairs, delivered in the
    /// given order.
    pub fn from_pairs(pairs: &'a [(Pid, M)]) -> Self {
        Inbox { repr: Repr::Pairs(pairs) }
    }

    /// The engine's view: op ids into the round's in-flight table.
    pub(crate) fn csr(ids: &'a [u32], ops: &'a [FlightOp<M>]) -> Self {
        Inbox { repr: Repr::Csr { ids, ops } }
    }

    /// Number of messages delivered this round.
    pub fn len(&self) -> usize {
        match self.repr {
            Repr::Csr { ids, .. } => ids.len(),
            Repr::Pairs(pairs) => pairs.len(),
        }
    }

    /// Whether no message was delivered this round.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the delivered messages as `(sender, &payload)`, in
    /// delivery order. On the synchronous engine that is sender-pid
    /// order, then send order within a sender; on the asynchronous
    /// engine's batched inboxes it is arrival (schedule) order, in which
    /// senders may interleave arbitrarily.
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            repr: match self.repr {
                Repr::Csr { ids, ops } => IterRepr::Csr { ids: ids.iter(), ops },
                Repr::Pairs(pairs) => IterRepr::Pairs(pairs.iter()),
            },
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = (Pid, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = (Pid, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

enum IterRepr<'a, M> {
    Csr { ids: std::slice::Iter<'a, u32>, ops: &'a [FlightOp<M>] },
    Pairs(std::slice::Iter<'a, (Pid, M)>),
}

/// Iterator over an [`Inbox`], yielding `(sender, &payload)`.
pub struct InboxIter<'a, M> {
    repr: IterRepr<'a, M>,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (Pid, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.repr {
            IterRepr::Csr { ids, ops } => ids.next().map(|&id| {
                let op = &ops[id as usize];
                (op.from, &op.payload)
            }),
            IterRepr::Pairs(pairs) => pairs.next().map(|(from, payload)| (*from, payload)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.repr {
            IterRepr::Csr { ids, .. } => ids.size_hint(),
            IterRepr::Pairs(pairs) => pairs.size_hint(),
        }
    }
}

impl<M> ExactSizeIterator for InboxIter<'_, M> {}

/// Classification of protocol messages for per-kind metrics.
///
/// The paper distinguishes *ordinary* messages from `go ahead` messages
/// (Protocol B) and from `Are you alive?` polls and their responses
/// (Protocol C); Theorems 2.8 and 3.8 count them separately. Implement this
/// on your payload type so [`Metrics`](crate::Metrics) can report the
/// breakdown.
///
/// # Examples
///
/// ```
/// use doall_sim::Classify;
///
/// #[derive(Clone, Debug)]
/// enum Msg { Checkpoint, GoAhead }
///
/// impl Classify for Msg {
///     fn class(&self) -> &'static str {
///         match self {
///             Msg::Checkpoint => "ordinary",
///             Msg::GoAhead => "go_ahead",
///         }
///     }
/// }
///
/// assert_eq!(Msg::GoAhead.class(), "go_ahead");
/// ```
pub trait Classify {
    /// A short, stable label for this message's kind.
    fn class(&self) -> &'static str {
        "msg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::Recipients;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Ping(u8);

    impl Classify for Ping {}

    #[test]
    fn default_class_is_msg() {
        assert_eq!(Ping(0).class(), "msg");
    }

    #[test]
    fn empty_inbox_is_empty() {
        let inbox: Inbox<'_, Ping> = Inbox::empty();
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
        assert_eq!(inbox.iter().count(), 0);
    }

    #[test]
    fn csr_inbox_resolves_ops_without_cloning_payloads() {
        // Two ops: a unicast from p0 and a 3-wide span from p2; the inbox
        // of a recipient of both lists them in op order.
        let ops = vec![
            FlightOp { from: Pid::new(0), to: Recipients::One(Pid::new(4)), payload: Ping(1) },
            FlightOp { from: Pid::new(2), to: Recipients::Span { lo: 3, hi: 6 }, payload: Ping(2) },
        ];
        let ids = [0u32, 1u32];
        let inbox = Inbox::csr(&ids, &ops);
        assert_eq!(inbox.len(), 2);
        let got: Vec<(usize, u8)> = inbox.iter().map(|(from, m)| (from.index(), m.0)).collect();
        assert_eq!(got, vec![(0, 1), (2, 2)]);
        // The payload references point into the op table itself.
        let (_, payload) = inbox.iter().nth(1).unwrap();
        assert!(std::ptr::eq(payload, &ops[1].payload));
    }

    #[test]
    fn inbox_is_copy_and_reiterable() {
        let pairs = [(Pid::new(1), Ping(9))];
        let inbox = Inbox::from_pairs(&pairs);
        let copy = inbox;
        assert_eq!(inbox.iter().count(), 1);
        assert_eq!(copy.iter().count(), 1);
        for (from, m) in &copy {
            assert_eq!(from, Pid::new(1));
            assert_eq!(*m, Ping(9));
        }
    }
}
