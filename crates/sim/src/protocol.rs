//! The trait implemented by every protocol under simulation.

use std::fmt;

use crate::effects::Effects;
use crate::ids::Round;
use crate::message::{Classify, Inbox};

/// A per-process protocol state machine driven by the synchronous engine.
///
/// One value of the implementing type exists per process. Each *executed*
/// round, the engine calls [`step`](Protocol::step) on every process that is
/// still alive and unterminated, passing the messages delivered this round
/// (those sent during the previous round) as a borrowing [`Inbox`] view.
///
/// # Quiescence contract
///
/// The engine may **skip** a process's step in any round where its inbox
/// is empty, it is not yet due per [`next_wakeup`](Protocol::next_wakeup),
/// and the adversary has no event scheduled — and may **fast-forward** the
/// clock entirely over rounds in which this holds for every process and no
/// messages are in flight. For this to be sound, `step` must be a pure
/// no-op whenever the inbox is empty and `round` is earlier than the round
/// most recently reported by `next_wakeup`, and `next_wakeup` must name the
/// same absolute round regardless of when it is asked (the engine caches
/// its answer until the process next steps). All timing decisions must
/// therefore be derived from the absolute `round` argument (deadlines),
/// never from counting `step` invocations. Protocol C relies on this: its
/// deadlines are `Θ(K (n+t) 2^{n+t})` rounds long — wide-clock territory —
/// and simulating them round-by-round would be infeasible.
pub trait Protocol {
    /// The message payload exchanged by this protocol.
    type Msg: Clone + fmt::Debug + Classify;

    /// Executes one synchronous round.
    ///
    /// `inbox` holds the messages delivered at the start of this round,
    /// iterated as `(sender, &payload)` in sender order (deterministic).
    /// Record all actions on `eff`.
    fn step(&mut self, round: Round, inbox: Inbox<'_, Self::Msg>, eff: &mut Effects<Self::Msg>);

    /// The earliest round `>= now` at which this process may act without
    /// first receiving a message, or `None` if it is purely reactive.
    ///
    /// Used only for fast-forwarding; returning `Some(now)` every time is
    /// always correct (it merely disables the optimization for this
    /// process).
    fn next_wakeup(&self, now: Round) -> Option<Round>;

    /// Called when the engine restarts this process after a
    /// [`Fate::CrashRecover`](crate::Fate::CrashRecover) downtime, at
    /// `round` — before any step. With `wipe`, the process lost all state
    /// and must reset to its initial configuration; without it, the state
    /// is exactly what it was at the crash (stale: everything delivered in
    /// between was lost). Implementations must leave the process in a
    /// configuration from which [`next_wakeup`](Protocol::next_wakeup) is
    /// meaningful — the engine re-queries it right after this call. The
    /// default keeps the stale state untouched, which is always safe for
    /// protocols whose progress claims tolerate silent periods.
    fn on_recover(&mut self, round: Round, wipe: bool) {
        let _ = (round, wipe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Pid;

    #[derive(Clone, Debug)]
    struct Tick;
    impl Classify for Tick {}

    /// A trivial protocol: sends one message to its successor at its wakeup
    /// round, then terminates.
    struct OneShot {
        me: Pid,
        t: usize,
        fire_at: Round,
        fired: bool,
    }

    impl Protocol for OneShot {
        type Msg = Tick;

        fn step(&mut self, round: Round, _inbox: Inbox<'_, Tick>, eff: &mut Effects<Tick>) {
            if !self.fired && round >= self.fire_at {
                let succ = Pid::new((self.me.index() + 1) % self.t);
                eff.send(succ, Tick);
                eff.terminate();
                self.fired = true;
            }
        }

        fn next_wakeup(&self, now: Round) -> Option<Round> {
            if self.fired {
                None
            } else {
                Some(self.fire_at.max(now))
            }
        }
    }

    #[test]
    fn one_shot_is_quiescent_before_wakeup() {
        let mut p = OneShot { me: Pid::new(0), t: 2, fire_at: Round::new(10), fired: false };
        let mut eff = Effects::new();
        p.step(Round::new(5), Inbox::empty(), &mut eff);
        assert!(eff.is_idle());
        assert_eq!(p.next_wakeup(Round::new(6)), Some(Round::new(10)));
    }

    #[test]
    fn one_shot_fires_at_wakeup() {
        let mut p = OneShot { me: Pid::new(1), t: 2, fire_at: Round::new(10), fired: false };
        let mut eff = Effects::new();
        p.step(Round::new(10), Inbox::empty(), &mut eff);
        assert_eq!(eff.send_count(), 1);
        assert!(eff.is_terminated());
        assert_eq!(p.next_wakeup(Round::new(11)), None);
    }
}
