//! The synchronous round engine.

use std::collections::BTreeMap;
use std::fmt;
use std::num::NonZeroUsize;

use serde::{Deserialize, Serialize};

use crate::adversary::{Adversary, AdversaryCtx, AliveView, Fate};
use crate::effects::{Effects, Recipients};
use crate::ids::{Pid, Round};
use crate::liveset::LiveSet;
use crate::message::{Classify, FlightOp, Inbox};
use crate::metrics::Metrics;
use crate::protocol::Protocol;
use crate::trace::{Event, Trace};

/// Final status of a process after a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Still alive when the run ended (only possible on error results).
    Alive,
    /// Crashed during the given round.
    Crashed(Round),
    /// Terminated voluntarily during the given round.
    Terminated(Round),
}

impl Status {
    /// Whether the process retired (crashed or terminated).
    pub fn is_retired(&self) -> bool {
        !matches!(self, Status::Alive)
    }

    /// Whether the process survived to normal termination.
    pub fn is_terminated(&self) -> bool {
        matches!(self, Status::Terminated(_))
    }

    /// The retirement round, if retired.
    pub fn round(&self) -> Option<Round> {
        match self {
            Status::Alive => None,
            Status::Crashed(r) | Status::Terminated(r) => Some(*r),
        }
    }
}

/// Configuration of a synchronous run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of work units (pre-sizes the per-unit multiplicity table).
    pub n: usize,
    /// Hard cap on the number of rounds; exceeding it is an error
    /// ([`RunError::RoundLimit`]). Protects against protocol bugs; set it
    /// above the protocol's proven time bound.
    pub max_rounds: Round,
    /// Whether to record a full [`Trace`] (tests: yes; large sweeps: no).
    pub record_trace: bool,
    /// Watchdog window: the maximum number of consecutive *executed* rounds
    /// tolerated without observable progress (a delivery to a live process,
    /// a unit of work, a retirement, or a live-set change) before the run
    /// is aborted with [`RunError::Stalled`]. Rounds skipped by the sparse
    /// fast-forward are provably quiescent and never count against the
    /// window, so deep-idle protocols (Protocol C's `2^k`-round waits) are
    /// not false positives. `None` disables the watchdog.
    pub stall_window: Option<u64>,
    /// Number of shards for parallel stepping (`None` or `Some(1)` = the
    /// sequential engine). Sharding splits each round's due list into
    /// contiguous pid ranges stepped on scoped worker threads; the
    /// adversary, metrics, trace, and message queueing all run on the merge
    /// thread in pid order, so a sharded run is **bit-identical** to the
    /// sequential one (`tests/shard_differential.rs`) — sharding is purely
    /// a wall-clock knob. [`RunConfig::new`] seeds this from the
    /// `DOALL_ENGINE_SHARDS` environment variable when set.
    pub shards: Option<NonZeroUsize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            n: 0,
            max_rounds: Round::new(10_000_000),
            record_trace: false,
            stall_window: None,
            shards: None,
        }
    }
}

/// Shard-count default from the `DOALL_ENGINE_SHARDS` environment variable
/// (unset, empty, `0`, or unparsable all mean "sequential"). Read per call
/// rather than cached so tests can vary the variable within one process.
fn env_shards() -> Option<NonZeroUsize> {
    std::env::var("DOALL_ENGINE_SHARDS").ok().and_then(|v| v.trim().parse().ok())
}

impl RunConfig {
    /// Convenience constructor for an `n`-unit workload with a round cap
    /// (`u64` values and bare literals convert; pass a [`Round`] for wide
    /// caps such as [`Round::MAX`]). The shard count defaults to the
    /// `DOALL_ENGINE_SHARDS` environment variable (sequential when unset),
    /// so an entire binary can be switched to sharded stepping without
    /// touching call sites; [`with_shards`](RunConfig::with_shards) wins
    /// over the environment.
    pub fn new(n: usize, max_rounds: impl Into<Round>) -> Self {
        RunConfig { n, max_rounds: max_rounds.into(), shards: env_shards(), ..RunConfig::default() }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Arms the livelock watchdog (see [`RunConfig::stall_window`]).
    pub fn with_stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// Sets the shard count for parallel stepping (`0` and `1` both mean
    /// sequential; see [`RunConfig::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = NonZeroUsize::new(shards);
        self
    }
}

/// Outcome of a completed run: every process retired.
///
/// Two reports compare equal when their *semantic* outcome matches —
/// metrics, trace, and statuses. The [`mem`](Report::mem) probe is
/// excluded from equality: buffer high-water marks depend on allocation
/// history (shard count, snapshot/resume, capacity growth), not on the
/// simulated execution, and differential tests assert semantic identity.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Work / message / round counters.
    pub metrics: Metrics,
    /// Event log (empty unless [`RunConfig::record_trace`] was set).
    pub trace: Trace,
    /// Final per-process statuses, indexed by pid.
    pub statuses: Vec<Status>,
    /// Peak memory held by the engine and workload (see [`MemBudget`]).
    pub mem: MemBudget,
    /// Number of rounds the engine actually *executed* (one per internal
    /// `advance` call). On fast-forward-heavy runs this is
    /// astronomically smaller than [`Metrics::rounds`] — the simulated
    /// clock — and is the correct denominator for wall-clock rates.
    /// Excluded from equality alongside `mem`: it measures host effort,
    /// not simulated outcome.
    pub executed_rounds: u64,
}

impl PartialEq for Report {
    fn eq(&self, other: &Self) -> bool {
        self.metrics == other.metrics
            && self.trace == other.trace
            && self.statuses == other.statuses
    }
}

impl Eq for Report {}

/// Peak memory accounting for a run, measured exactly from the engine's own
/// table capacities (no allocator hooks): the engine observes its buffers
/// once per executed round and keeps the high-water mark. Payload heap data
/// inside messages and protocol states is *not* chased — `proc_bytes` is
/// the shallow struct size — so the probe is exact for the engine's SoA
/// tables and a documented lower bound for protocols that heap-allocate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemBudget {
    /// Per-process SoA columns: the process-state table, the live set, and
    /// the delivery index's pid-indexed columns. This is the scale-axis
    /// number: it must stay ≤ 32 bytes × t regardless of n or round count.
    pub soa_bytes: u64,
    /// Peak transient state: in-flight send ops, the delivery index's
    /// per-delivery entries, the due list, and shard lanes. Proportional
    /// to per-round traffic, not to `t`.
    pub flight_bytes: u64,
    /// Workload-proportional ledgers: the per-unit work multiplicity table
    /// and the recorded trace.
    pub ledger_bytes: u64,
    /// Shallow protocol state: `size_of::<P>() × t`.
    pub proc_bytes: u64,
}

impl MemBudget {
    /// Peak bytes held by the engine proper (SoA columns + transients),
    /// excluding protocol state and ledgers.
    pub fn engine_bytes(&self) -> u64 {
        self.soa_bytes + self.flight_bytes
    }

    /// Total peak across all four pools.
    pub fn total_bytes(&self) -> u64 {
        self.soa_bytes + self.flight_bytes + self.ledger_bytes + self.proc_bytes
    }
}

impl Report {
    /// Processes that terminated normally (the survivors).
    ///
    /// Allocates; hot callers that only iterate or count should use
    /// [`survivors_iter`](Report::survivors_iter) or
    /// [`survivor_count`](Report::survivor_count).
    pub fn survivors(&self) -> Vec<Pid> {
        self.survivors_iter().collect()
    }

    /// Iterates over the processes that terminated normally, in pid order,
    /// without building an intermediate `Vec`.
    pub fn survivors_iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_terminated())
            .map(|(i, _)| Pid::new(i))
    }

    /// Number of processes that terminated normally.
    pub fn survivor_count(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_terminated()).count()
    }

    /// Whether at least one process survived — the premise of the paper's
    /// correctness guarantee.
    pub fn has_survivor(&self) -> bool {
        self.statuses.iter().any(Status::is_terminated)
    }
}

/// Watchdog report attached to abnormal exits: who is stuck, since when,
/// and what (if anything) is still in flight. Produced by the progress
/// monitor when it aborts a stalled run ([`RunError::Stalled`]) and to
/// classify [`RunError::RoundLimit`] exits, which previously timed out
/// with nothing but a metrics dump.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct StallDiagnosis {
    /// Round at which the diagnosis was taken.
    pub round: Round,
    /// Last round with observable progress ([`Round::ZERO`] if none ever).
    pub last_progress: Round,
    /// Processes still alive — the stall suspects.
    pub stalled: Vec<Pid>,
    /// Cached next wakeup of each stalled process (`None` = purely
    /// reactive: it will never act unless a message arrives).
    pub wakeups: Vec<(Pid, Option<Round>)>,
    /// Send ops still in flight (due for delivery next executed round).
    pub pending_ops: usize,
    /// Crash-recoveries scheduled but not yet fired.
    pub pending_revivals: usize,
}

impl fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at round {}, last progress at round {}: {} process(es) stalled",
            self.round,
            self.last_progress,
            self.stalled.len()
        )?;
        for (i, (pid, wake)) in self.wakeups.iter().take(8).enumerate() {
            let sep = if i == 0 { " [" } else { ", " };
            match wake {
                Some(w) => write!(f, "{sep}{pid}: wakes {w}")?,
                None => write!(f, "{sep}{pid}: reactive")?,
            }
        }
        if !self.wakeups.is_empty() {
            if self.wakeups.len() > 8 {
                write!(f, ", +{} more]", self.wakeups.len() - 8)?;
            } else {
                write!(f, "]")?;
            }
        }
        write!(
            f,
            "; {} op(s) in flight, {} revival(s) pending",
            self.pending_ops, self.pending_revivals
        )
    }
}

/// Why a run failed to complete.
#[derive(Debug)]
pub enum RunError {
    /// The configured round cap was exceeded (likely a protocol bug or an
    /// undersized cap).
    RoundLimit {
        /// The cap that was exceeded.
        limit: Round,
        /// Metrics at the moment the run was abandoned.
        metrics: Box<Metrics>,
        /// Who was still alive and what they were waiting on.
        diagnosis: Box<StallDiagnosis>,
    },
    /// No messages in flight, no process due to wake, no adversary event —
    /// but some processes are still alive. The protocol livelocked.
    Deadlock {
        /// Round at which the deadlock was detected.
        round: Round,
        /// Processes still alive.
        alive: Vec<Pid>,
        /// Metrics at the moment of deadlock.
        metrics: Box<Metrics>,
    },
    /// The watchdog aborted the run: [`RunConfig::stall_window`] consecutive
    /// executed rounds passed with no delivery, no work, no retirement, and
    /// no live-set change. Unlike [`RunError::Deadlock`] (provably nothing
    /// can ever happen) this is a heuristic livelock verdict: processes are
    /// executing but none of it is observable progress.
    Stalled {
        /// Round at which the watchdog fired.
        round: Round,
        /// The configured window that was exhausted.
        window: u64,
        /// Who is stuck and what they were waiting on.
        diagnosis: Box<StallDiagnosis>,
        /// Metrics at the moment the run was abandoned.
        metrics: Box<Metrics>,
    },
    /// The adversary's fault schedule is self-contradictory or unsurvivable
    /// (see [`Adversary::validate`]); the run was refused before round 1.
    InvalidAdversary {
        /// Why the schedule was rejected.
        reason: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RoundLimit { limit, diagnosis, .. } => {
                write!(
                    f,
                    "round limit of {limit} exceeded before all processes retired ({diagnosis})"
                )
            }
            RunError::Deadlock { round, alive, .. } => {
                write!(f, "deadlock at round {round}: processes {alive:?} alive but nothing can ever happen")
            }
            RunError::Stalled { round, window, diagnosis, .. } => {
                write!(f, "watchdog: no progress for {window} executed round(s) as of round {round} ({diagnosis})")
            }
            RunError::InvalidAdversary { reason } => {
                write!(f, "invalid adversary schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Runs a synchronous execution until every process retires.
///
/// Processes are identified by their index in `procs`. Rounds are numbered
/// from 1. Each executed round:
///
/// 1. messages sent in the previous round are delivered (to alive
///    recipients; the rest become dead letters);
/// 2. every alive process [`step`](Protocol::step)s, in pid order, against
///    the state as of the start of the round;
/// 3. the [`Adversary`] rules on each process's fate; surviving effects are
///    applied, crashing processes deliver only the subset the adversary
///    allows.
///
/// Rounds in which provably nothing can happen are skipped in O(1) (see
/// the quiescence contract on [`Protocol`]); skipped rounds still advance
/// the round counter, so time metrics are unaffected.
///
/// # Errors
///
/// Returns [`RunError::RoundLimit`] if the cap is exceeded and
/// [`RunError::Deadlock`] if live processes can never act again.
///
/// # Examples
///
/// ```
/// use doall_sim::{run, NoFailures, RunConfig, Protocol, Effects, Inbox, Classify, Round};
///
/// #[derive(Clone, Debug)]
/// struct Nop;
/// impl Classify for Nop {}
///
/// struct Quit;
/// impl Protocol for Quit {
///     type Msg = Nop;
///     fn step(&mut self, _: Round, _: Inbox<'_, Nop>, eff: &mut Effects<Nop>) {
///         eff.terminate();
///     }
///     fn next_wakeup(&self, now: Round) -> Option<Round> { Some(now) }
/// }
///
/// let report = run(vec![Quit, Quit], NoFailures, RunConfig::default())?;
/// assert_eq!(report.metrics.rounds, 1u64);
/// assert_eq!(report.survivors().len(), 2);
/// # Ok::<(), doall_sim::RunError>(())
/// ```
pub fn run<P, A>(procs: Vec<P>, adversary: A, cfg: RunConfig) -> Result<Report, RunError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
{
    run_returning(procs, adversary, cfg).map(|(report, _)| report)
}

/// Per-round delivery index over the in-flight op table, in CSR style:
/// recipient `p`'s inbox is `index[offset[p] .. cursor[p]]`, a list of op
/// ids (the fill cursor ends exactly at the inbox's end, so no separate
/// count column is stored). All scratch is recycled round to round; the
/// `stamp` array holds the build *epoch* that last touched each slot — a
/// `u32` generation counter rather than the 128-bit round — replacing any
/// O(t) per-round reset: only recipients actually addressed this round
/// cost anything, and the pid-indexed columns total 12 bytes per process.
/// On the (once per 2³² builds) epoch wrap the stamps are bulk-reset, so
/// a stale stamp can never alias a fresh epoch.
struct DeliveryIndex {
    epoch: u32,
    stamp: Vec<u32>,
    offset: Vec<u32>,
    cursor: Vec<u32>,
    index: Vec<u32>,
    touched: Vec<u32>,
    /// Per-(message, recipient) receive-omission verdicts, in pending-op
    /// iteration order; recycled scratch for
    /// [`build_filtered`](DeliveryIndex::build_filtered).
    omit: Vec<bool>,
    /// Per-shard touched lists for
    /// [`build_parallel`](DeliveryIndex::build_parallel); the sequential
    /// builds use the global `touched` list and clear these.
    shard_touched: Vec<Vec<u32>>,
}

impl DeliveryIndex {
    fn new(t: usize) -> Self {
        DeliveryIndex {
            epoch: 0,
            stamp: vec![0; t],
            offset: vec![0; t],
            cursor: vec![0; t],
            index: Vec::new(),
            touched: Vec::new(),
            omit: Vec::new(),
            shard_touched: Vec::new(),
        }
    }

    /// Starts a new build generation; handles the u32 wrap exactly.
    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Turns the per-recipient tallies accumulated in `cursor` into CSR
    /// offsets and resets each cursor to its inbox start, sizing `index`
    /// for the fill pass.
    fn finish_counts(&mut self) {
        let mut cum: u32 = 0;
        for &i in &self.touched {
            let i = i as usize;
            let count = self.cursor[i];
            self.offset[i] = cum;
            self.cursor[i] = cum;
            cum += count;
        }
        self.index.clear();
        self.index.resize(cum as usize, 0);
    }

    /// Builds the index for this round from the in-flight ops, intersecting
    /// every span with the live set: dead recipients never enter the index
    /// (they are tallied as dead letters), so delivery work is proportional
    /// to *live* deliveries plus ops. Returns the dead-letter count.
    fn build<M>(&mut self, pending: &[FlightOp<M>], live: &LiveSet) -> u64 {
        self.next_epoch();
        self.touched.clear();
        self.shard_touched.iter_mut().for_each(Vec::clear);
        let mut dead: u64 = 0;
        for op in pending {
            for p in op.to.iter() {
                let i = p.index();
                if live.contains(i) {
                    if self.stamp[i] != self.epoch {
                        self.stamp[i] = self.epoch;
                        self.cursor[i] = 0;
                        self.touched.push(i as u32);
                    }
                    self.cursor[i] += 1;
                } else {
                    dead += 1;
                }
            }
        }
        self.finish_counts();
        for (id, op) in pending.iter().enumerate() {
            for p in op.to.iter() {
                let i = p.index();
                if live.contains(i) {
                    self.index[self.cursor[i] as usize] = id as u32;
                    self.cursor[i] += 1;
                }
            }
        }
        dead
    }

    /// Builds the index in parallel by contiguous recipient range: each of
    /// `shards` worker threads counts and fills the inboxes of its own pid
    /// range (`chunk = ⌈t/shards⌉` pids), with one prefix-sum over the
    /// shard boundaries between the two passes. Span recipients are
    /// intersected with each shard's range in O(1) per op, and dead-letter
    /// tallies are accumulated per shard and summed — every recipient
    /// belongs to exactly one shard, so nothing is double-counted.
    ///
    /// When `routes` is given (the two-phase exchange: last round's step
    /// lanes bucketed their emitted ops by destination shard), shard `k`
    /// scans only the op ids routed to it, in ascending op-id order;
    /// otherwise every shard scans the whole op table. Either way, each
    /// recipient's inbox lists op ids in ascending order — exactly the
    /// order the sequential [`build`](DeliveryIndex::build) produces — so
    /// inbox iteration, and therefore every protocol step, is
    /// bit-identical to the sequential engine's. Returns the dead-letter
    /// count.
    fn build_parallel<M: Sync>(
        &mut self,
        pending: &[FlightOp<M>],
        live: &LiveSet,
        routes: Option<&[Vec<u32>]>,
        shards: usize,
    ) -> u64 {
        self.next_epoch();
        self.touched.clear();
        let t = self.stamp.len();
        let chunk = t.div_ceil(shards);
        if self.shard_touched.len() < shards {
            self.shard_touched.resize_with(shards, Vec::new);
        }
        let epoch = self.epoch;
        let mut deads = vec![0u64; shards];
        let mut totals = vec![0u32; shards];

        // Pass 1: count, per recipient range. Each worker owns its range's
        // slices of the stamp/cursor columns.
        {
            let mut stamp_rest = self.stamp.as_mut_slice();
            let mut cursor_rest = self.cursor.as_mut_slice();
            let mut touched_it = self.shard_touched.iter_mut();
            let mut dead_it = deads.iter_mut();
            let mut total_it = totals.iter_mut();
            std::thread::scope(|scope| {
                for k in 0..shards {
                    let lo = (k * chunk).min(t);
                    let hi = ((k + 1) * chunk).min(t);
                    let (stamp, rest) = std::mem::take(&mut stamp_rest).split_at_mut(hi - lo);
                    stamp_rest = rest;
                    let (cursor, rest) = std::mem::take(&mut cursor_rest).split_at_mut(hi - lo);
                    cursor_rest = rest;
                    let touched = touched_it.next().expect("sized above");
                    let dead = dead_it.next().expect("sized above");
                    let total = total_it.next().expect("sized above");
                    let ops = routes.map(|r| r[k].as_slice());
                    scope.spawn(move || {
                        touched.clear();
                        let mut count_one = |i: usize| {
                            if live.contains(i) {
                                let j = i - lo;
                                if stamp[j] != epoch {
                                    stamp[j] = epoch;
                                    cursor[j] = 0;
                                    touched.push(i as u32);
                                }
                                cursor[j] += 1;
                                *total += 1;
                            } else {
                                *dead += 1;
                            }
                        };
                        let mut scan = |op: &FlightOp<M>| match op.to {
                            Recipients::One(p) => {
                                let i = p.index();
                                if i >= lo && i < hi {
                                    count_one(i);
                                }
                            }
                            Recipients::Span { lo: slo, hi: shi } => {
                                for i in slo.max(lo)..shi.min(hi) {
                                    count_one(i);
                                }
                            }
                        };
                        match ops {
                            Some(ids) => ids.iter().for_each(|&id| scan(&pending[id as usize])),
                            None => pending.iter().for_each(&mut scan),
                        }
                    });
                }
            });
        }

        // Prefix-sum over the shard boundaries, then size the id table.
        let grand: u32 = totals.iter().sum();
        self.index.clear();
        self.index.resize(grand as usize, 0);

        // Pass 2: offsets + fill, per recipient range, each worker writing
        // its own contiguous segment of the id table.
        {
            let mut stamp_rest = self.stamp.as_slice();
            let mut offset_rest = self.offset.as_mut_slice();
            let mut cursor_rest = self.cursor.as_mut_slice();
            let mut index_rest = self.index.as_mut_slice();
            let mut touched_it = self.shard_touched.iter();
            let mut seg_start: u32 = 0;
            std::thread::scope(|scope| {
                for k in 0..shards {
                    let lo = (k * chunk).min(t);
                    let hi = ((k + 1) * chunk).min(t);
                    let (stamp, rest) = stamp_rest.split_at(hi - lo);
                    stamp_rest = rest;
                    let (offset, rest) = std::mem::take(&mut offset_rest).split_at_mut(hi - lo);
                    offset_rest = rest;
                    let (cursor, rest) = std::mem::take(&mut cursor_rest).split_at_mut(hi - lo);
                    cursor_rest = rest;
                    let (seg, rest) =
                        std::mem::take(&mut index_rest).split_at_mut(totals[k] as usize);
                    index_rest = rest;
                    let touched = touched_it.next().expect("sized above");
                    let base = seg_start;
                    seg_start += totals[k];
                    let ops = routes.map(|r| r[k].as_slice());
                    scope.spawn(move || {
                        // Counts → absolute CSR offsets within this shard's
                        // segment (offsets are global; `seg` is base-relative).
                        let mut cum = base;
                        for &i in touched {
                            let j = i as usize - lo;
                            let count = cursor[j];
                            offset[j] = cum;
                            cursor[j] = cum;
                            cum += count;
                        }
                        let mut fill_one = |i: usize, id: u32| {
                            let j = i - lo;
                            if stamp[j] == epoch {
                                seg[(cursor[j] - base) as usize] = id;
                                cursor[j] += 1;
                            }
                        };
                        let mut fill = |id: u32| match pending[id as usize].to {
                            Recipients::One(p) => {
                                let i = p.index();
                                if i >= lo && i < hi {
                                    fill_one(i, id);
                                }
                            }
                            Recipients::Span { lo: slo, hi: shi } => {
                                for i in slo.max(lo)..shi.min(hi) {
                                    fill_one(i, id);
                                }
                            }
                        };
                        match ops {
                            Some(ids) => ids.iter().for_each(|&id| fill(id)),
                            None => (0..pending.len() as u32).for_each(&mut fill),
                        }
                    });
                }
            });
        }
        deads.iter().sum()
    }

    /// Whether the most recent build addressed at least one live recipient
    /// (the watchdog's "a delivery happened" signal), regardless of which
    /// build path produced it.
    fn delivered(&self) -> bool {
        !self.touched.is_empty() || self.shard_touched.iter().any(|s| !s.is_empty())
    }

    /// Whether recipient `i` was addressed by a live delivery in the most
    /// recent build. Callers must additionally know that a build happened
    /// *this round* (the engine's `have_inbox` guard): the epoch only
    /// distinguishes builds from each other.
    fn has_inbox(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// The inbox of recipient `i` for the most recent build (empty if
    /// nothing was addressed to it).
    fn inbox<'a, M>(&'a self, i: usize, ops: &'a [FlightOp<M>]) -> Inbox<'a, M> {
        if self.stamp[i] == self.epoch {
            let lo = self.offset[i] as usize;
            let hi = self.cursor[i] as usize;
            Inbox::csr(&self.index[lo..hi], ops)
        } else {
            Inbox::empty()
        }
    }

    /// [`build`](DeliveryIndex::build) with a receive-omission filter: the
    /// adversary is consulted exactly once per (message, recipient) — in
    /// the first pass, with the verdicts replayed from scratch in the
    /// second — and suppressed deliveries never enter the index. Dead
    /// recipients are classified first (a message to a retired process is
    /// a dead letter, never an omission). When `trace` is given, each
    /// suppressed delivery leaves a `"fault:omit"` note at the recipient —
    /// the receive-omission symptom. Returns (dead letters, omitted).
    fn build_filtered<M, A: Adversary<M>>(
        &mut self,
        round: Round,
        pending: &[FlightOp<M>],
        live: &LiveSet,
        adversary: &mut A,
        mut trace: Option<&mut Trace>,
    ) -> (u64, u64) {
        self.next_epoch();
        self.touched.clear();
        self.shard_touched.iter_mut().for_each(Vec::clear);
        self.omit.clear();
        let mut dead: u64 = 0;
        let mut omitted: u64 = 0;
        for op in pending {
            for p in op.to.iter() {
                let i = p.index();
                if !live.contains(i) {
                    dead += 1;
                    self.omit.push(false);
                    continue;
                }
                let drop = adversary.omits_delivery(round, op.from, p);
                self.omit.push(drop);
                if drop {
                    omitted += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(Event::Note { round, pid: p, tag: "fault:omit" });
                    }
                    continue;
                }
                if self.stamp[i] != self.epoch {
                    self.stamp[i] = self.epoch;
                    self.cursor[i] = 0;
                    self.touched.push(i as u32);
                }
                self.cursor[i] += 1;
            }
        }
        self.finish_counts();
        let mut k = 0usize;
        for (id, op) in pending.iter().enumerate() {
            for p in op.to.iter() {
                let i = p.index();
                let drop = self.omit[k];
                k += 1;
                if live.contains(i) && !drop {
                    self.index[self.cursor[i] as usize] = id as u32;
                    self.cursor[i] += 1;
                }
            }
        }
        (dead, omitted)
    }

    /// Bytes in the pid-indexed columns (counted against the SoA budget).
    fn soa_bytes(&self) -> u64 {
        ((self.stamp.capacity() + self.offset.capacity() + self.cursor.capacity())
            * std::mem::size_of::<u32>()) as u64
    }

    /// Bytes in the per-delivery scratch (counted as flight state).
    fn flight_bytes(&self) -> u64 {
        (self.index.capacity() * 4
            + self.touched.capacity() * 4
            + self.shard_touched.iter().map(|s| s.capacity() * 4).sum::<usize>()
            + self.omit.capacity()) as u64
    }
}

/// Status code bits in [`ProcSet::meta`]: process is alive.
const PS_ALIVE: u8 = 0;
/// Status code bits: process crashed (retirement round in its slot).
const PS_CRASHED: u8 = 1;
/// Status code bits: process terminated (retirement round in its slot).
const PS_TERMINATED: u8 = 2;
/// Mask of the status code bits.
const PS_CODE: u8 = 0b011;
/// Flag bit: an alive process's slot holds a cached wakeup round.
const PS_WAKE: u8 = 0b100;

/// Struct-of-arrays per-process engine state: one metadata byte (status
/// code plus a wakeup-present flag) and one 128-bit slot per process. The
/// slot is a union keyed by the metadata — for an alive process it caches
/// the next spontaneous wakeup round (valid only when [`PS_WAKE`] is set,
/// so a saturated `Round::MAX` deadline needs no out-of-band sentinel);
/// for a retired process it records the retirement round. 17 bytes per
/// process replace the former parallel `Vec<Status>` + `Vec<bool>` +
/// `Vec<u32>` + two `Vec<Option<...>>` columns (≈ 57 bytes with `Option`
/// padding), which is what moves `t = 10^6` systems comfortably under the
/// 32-byte/process engine budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ProcSet {
    meta: Vec<u8>,
    slot: Vec<u128>,
}

impl ProcSet {
    /// Builds the table with every process alive and the given initial
    /// wakeup cache.
    fn from_wakeups(wakeups: impl Iterator<Item = Option<Round>>) -> Self {
        let mut meta = Vec::new();
        let mut slot = Vec::new();
        for w in wakeups {
            match w {
                Some(r) => {
                    meta.push(PS_ALIVE | PS_WAKE);
                    slot.push(r.get());
                }
                None => {
                    meta.push(PS_ALIVE);
                    slot.push(0);
                }
            }
        }
        ProcSet { meta, slot }
    }

    /// The cached wakeup of an alive process (`None` = purely reactive).
    fn wakeup(&self, idx: usize) -> Option<Round> {
        (self.meta[idx] & PS_WAKE != 0).then(|| Round::new(self.slot[idx]))
    }

    /// Whether an alive process's cached wakeup is due at `round`.
    fn wakeup_due(&self, idx: usize, round: Round) -> bool {
        self.meta[idx] & PS_WAKE != 0 && self.slot[idx] <= round.get()
    }

    /// Replaces an alive process's cached wakeup.
    fn set_wakeup(&mut self, idx: usize, wake: Option<Round>) {
        match wake {
            Some(r) => {
                self.meta[idx] |= PS_WAKE;
                self.slot[idx] = r.get();
            }
            None => {
                self.meta[idx] &= !PS_WAKE;
            }
        }
    }

    /// Retires a process, recording the retirement round in its slot.
    fn retire(&mut self, idx: usize, terminated: bool, round: Round) {
        self.meta[idx] = if terminated { PS_TERMINATED } else { PS_CRASHED };
        self.slot[idx] = round.get();
    }

    /// Returns a crashed process to life (crash-recovery revival); the
    /// caller refreshes the wakeup cache afterwards.
    fn revive(&mut self, idx: usize) {
        self.meta[idx] = PS_ALIVE;
        self.slot[idx] = 0;
    }

    /// The process's [`Status`] as the report vocabulary sees it.
    fn status(&self, idx: usize) -> Status {
        match self.meta[idx] & PS_CODE {
            PS_CRASHED => Status::Crashed(Round::new(self.slot[idx])),
            PS_TERMINATED => Status::Terminated(Round::new(self.slot[idx])),
            _ => Status::Alive,
        }
    }

    /// Materializes the per-process status column for a [`Report`].
    fn statuses(&self) -> Vec<Status> {
        (0..self.meta.len()).map(|i| self.status(i)).collect()
    }

    /// Bytes held by the table, for the memory probe.
    fn bytes(&self) -> u64 {
        (self.meta.capacity() + self.slot.capacity() * std::mem::size_of::<u128>()) as u64
    }
}

/// Per-shard scratch for parallel stepping: the shard's slice of the due
/// list, one recycled [`Effects`] buffer per due process, the post-step
/// wakeup candidates, and — for the parallel effect-application phase —
/// the lane-local sinks: an adversary fate per due process, a thread-local
/// [`Metrics`] ledger, a thread-local [`Trace`], the lane's fragment of
/// next round's in-flight ops, the destination-shard routing buckets of
/// the two-phase exchange, and the units of work performed. Lanes are
/// long-lived (capacity survives across rounds); only the portion covering
/// this round's chunk is touched.
struct Lane<M> {
    due: Vec<u32>,
    eff: Vec<Effects<M>>,
    wake: Vec<Option<Round>>,
    fate: Vec<Fate>,
    ledger: Metrics,
    trace: Trace,
    out: Vec<FlightOp<M>>,
    route: Vec<Vec<u32>>,
    work_units: Vec<u32>,
    work_max: u32,
}

impl<M> Default for Lane<M> {
    fn default() -> Self {
        Lane {
            due: Vec::new(),
            eff: Vec::new(),
            wake: Vec::new(),
            fate: Vec::new(),
            ledger: Metrics::default(),
            trace: Trace::new(),
            out: Vec::new(),
            route: Vec::new(),
            work_units: Vec::new(),
            work_max: 0,
        }
    }
}

impl<M: Classify + Clone> Lane<M> {
    /// Applies this lane's fated effects into the lane-local sinks —
    /// message counting, tracing, outbound queueing with destination-shard
    /// routing, work-unit collection — plus the surviving processes'
    /// wakeup-cache refresh on the lane's own slices of the process table.
    /// Runs on a worker thread; determinism comes from the fold: lanes
    /// cover ascending pid chunks, so concatenating the lane sinks in lane
    /// order reproduces the sequential engine's effect order exactly. All
    /// rulings that *other* processes can observe (retirement, live-set
    /// movement, crash counters, the adversary's own state) were already
    /// applied on the merge thread in pid order by the fate pass.
    fn apply(
        &mut self,
        round: Round,
        record: bool,
        route_chunk: Option<usize>,
        lane_lo: usize,
        meta: &mut [u8],
        slot: &mut [u128],
    ) {
        self.work_units.clear();
        self.work_max = 0;
        for di in 0..self.due.len() {
            let idx = self.due[di] as usize;
            let pid = Pid::new(idx);
            let eff = &mut self.eff[di];
            let fate = &self.fate[di];
            if record {
                for tag in eff.notes() {
                    self.trace.push(Event::Note { round, pid, tag });
                }
            }
            let count_work = match fate {
                Fate::Survive | Fate::Omit(_) => true,
                Fate::Crash(spec) | Fate::CrashRecover { spec, .. } => spec.count_work,
            };
            if count_work {
                if let Some(unit) = eff.work() {
                    let u = unit.zero_based() as u32;
                    self.work_units.push(u);
                    self.work_max = self.work_max.max(u);
                    if record {
                        self.trace.push(Event::Work { round, pid, unit });
                    }
                }
            }
            // The omission ledger reads must precede the `Outbound` borrow
            // of the ledger.
            let (total, before) = match fate {
                Fate::Omit(_) => (eff.send_count() as u64, self.ledger.messages),
                _ => (0, 0),
            };
            let mut out = Outbound {
                metrics: &mut self.ledger,
                trace: &mut self.trace,
                record,
                next_pending: &mut self.out,
                round,
                route: route_chunk.map(|chunk| (&mut self.route, chunk)),
            };
            match fate {
                Fate::Survive => {
                    let terminated = eff.is_terminated();
                    for op in eff.drain_sends() {
                        out.deliver(pid, op.to, op.payload);
                    }
                    if terminated {
                        if record {
                            self.trace.push(Event::Terminate { round, pid });
                        }
                    } else {
                        set_wakeup_raw(meta, slot, idx - lane_lo, self.wake[di]);
                    }
                }
                Fate::Omit(filter) => {
                    let terminated = eff.is_terminated();
                    out.deliver_crash_subset(pid, eff, filter);
                    let suppressed = total - (self.ledger.messages - before);
                    self.ledger.omissions += suppressed;
                    if record && suppressed > 0 {
                        self.trace.push(Event::Note { round, pid, tag: "fault:omit" });
                    }
                    if terminated {
                        if record {
                            self.trace.push(Event::Terminate { round, pid });
                        }
                    } else {
                        set_wakeup_raw(meta, slot, idx - lane_lo, self.wake[di]);
                    }
                }
                Fate::Crash(spec) | Fate::CrashRecover { spec, .. } => {
                    out.deliver_crash_subset(pid, eff, &spec.deliver);
                    if record {
                        self.trace.push(Event::Crash { round, pid });
                    }
                }
            }
        }
    }

    /// Shallow bytes held by this lane's buffers.
    fn bytes(&self) -> u64 {
        (self.due.capacity() * 4
            + self.eff.capacity() * std::mem::size_of::<Effects<M>>()
            + self.wake.capacity() * std::mem::size_of::<Option<Round>>()
            + self.fate.capacity() * std::mem::size_of::<Fate>()
            + self.out.capacity() * std::mem::size_of::<FlightOp<M>>()
            + self.route.iter().map(|r| r.capacity() * 4).sum::<usize>()
            + self.work_units.capacity() * 4) as u64
    }
}

/// Minimum live processes *per shard* before the due-scan forks worker
/// threads: below this, one pass over the bitset beats the spawn cost.
/// A threshold only picks the code path — both paths produce the identical
/// ascending due list — so it can never affect results.
const PAR_SCAN_MIN: usize = 4096;

/// Minimum work recordings in a round before the per-unit multiplicity
/// table is updated by range-sharded workers rather than one pass. Like
/// [`PAR_SCAN_MIN`], path selection only.
const PAR_WORK_MIN: usize = 4096;

/// [`ProcSet::set_wakeup`] on the raw column slices a lane borrows for its
/// contiguous pid chunk (`j` is chunk-relative).
fn set_wakeup_raw(meta: &mut [u8], slot: &mut [u128], j: usize, wake: Option<Round>) {
    match wake {
        Some(r) => {
            meta[j] |= PS_WAKE;
            slot[j] = r.get();
        }
        None => {
            meta[j] &= !PS_WAKE;
        }
    }
}

/// Like [`run`], but also hands back the final per-process protocol states,
/// for protocols whose outcome lives in process state (e.g. the decision
/// value of a Byzantine-agreement process).
///
/// # Errors
///
/// As [`run`].
pub fn run_returning<P, A>(
    procs: Vec<P>,
    adversary: A,
    cfg: RunConfig,
) -> Result<(Report, Vec<P>), RunError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
{
    let mut engine = Engine::new(procs, adversary, cfg)?;
    engine.run_until(None)?;
    Ok(engine.into_report())
}

/// A checkpoint of a paused [`Engine`]: everything the run's future depends
/// on — protocol states, the adversary (including any consumed-fault or RNG
/// state), in-flight send ops, the live set, the wakeup cache, metrics,
/// trace, and the 128-bit [`Round`] clock. Resuming via
/// [`Engine::resume`] continues the run **bit-identically** to one that was
/// never interrupted (see `tests/snapshot_differential.rs`).
///
/// The snapshot owns its data (it is deep-cloned out of the engine), so it
/// remains valid after the original engine advances or is dropped. All
/// component types derive `Serialize`/`Deserialize`; with a real serde
/// implementation in the workspace (see `vendor/README.md`) a snapshot can
/// be persisted wholesale, provided `P`, `A`, and the message type also
/// serialize.
#[derive(Serialize, Deserialize)]
pub struct EngineSnapshot<P: Protocol, A> {
    procs: Vec<P>,
    adversary: A,
    cfg: RunConfig,
    round: Round,
    pset: ProcSet,
    live: LiveSet,
    metrics: Metrics,
    trace: Trace,
    pending: Vec<FlightOp<P::Msg>>,
    revive: BTreeMap<u32, (Round, bool)>,
    next_revive: Option<Round>,
    last_progress: Round,
    stall_streak: u64,
    finished: bool,
    mem: MemBudget,
    #[serde(default)]
    executed_rounds: u64,
}

impl<P, A> EngineSnapshot<P, A>
where
    P: Protocol,
{
    /// The round boundary this snapshot was taken at.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Metrics accumulated up to the snapshot point.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl<P, A> Clone for EngineSnapshot<P, A>
where
    P: Protocol + Clone,
    P::Msg: Clone,
    A: Clone,
{
    fn clone(&self) -> Self {
        EngineSnapshot {
            procs: self.procs.clone(),
            adversary: self.adversary.clone(),
            cfg: self.cfg.clone(),
            round: self.round,
            pset: self.pset.clone(),
            live: self.live.clone(),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            pending: self.pending.clone(),
            revive: self.revive.clone(),
            next_revive: self.next_revive,
            last_progress: self.last_progress,
            stall_streak: self.stall_streak,
            finished: self.finished,
            mem: self.mem,
            executed_rounds: self.executed_rounds,
        }
    }
}

/// The synchronous round engine as a resumable state machine.
///
/// [`run`] and [`run_returning`] drive an `Engine` to completion in one
/// call; constructing one directly buys three extra capabilities:
///
/// * **Incremental execution** — [`run_until`](Engine::run_until) pauses at
///   a round boundary, so a caller can interleave simulation with
///   inspection ([`round`](Engine::round), [`metrics`](Engine::metrics)).
/// * **Checkpoint/restore** — [`snapshot`](Engine::snapshot) captures the
///   complete run state at any pause point and [`resume`](Engine::resume)
///   reconstructs an engine that continues bit-identically; scratch
///   buffers (the delivery index, effect buffers) are rebuilt fresh, which
///   is safe because the round clock is strictly monotone and the delivery
///   index's stamps can only match rounds they were built in.
/// * **Watchdog** — with [`RunConfig::stall_window`] set, the engine
///   monitors observable progress every executed round and aborts livelocks
///   with a [`StallDiagnosis`] instead of burning the round budget.
///
/// Each executed round runs the same phases as the classic loop: revivals,
/// delivery, stepping with adversary interception, retirement bookkeeping,
/// then a sparse fast-forward over provably idle rounds.
pub struct Engine<P: Protocol, A: Adversary<P::Msg>> {
    procs: Vec<P>,
    adversary: A,
    cfg: RunConfig,
    // Struct-of-arrays per-process state: status + retirement round +
    // cached wakeup, one byte and one slot per process (see [`ProcSet`]).
    // The wakeup cache holds the earliest round each alive process may act
    // spontaneously (absent = purely reactive, `Round::MAX` = a deadline
    // saturated past the horizon, which fires *at* the horizon). A process
    // is *stepped* only when it is due, has an inbox, or the adversary has
    // an event scheduled this round — by the quiescence contract on
    // [`Protocol`], the skipped invocations were provably no-ops. The
    // cache is refreshed after every step (the only moments process state
    // can change), so entries for untouched processes stay valid and the
    // fast-forward jump reads the minimum straight off this table.
    pset: ProcSet,
    // The compressed live set: bitset membership plus lazily rebuilt
    // maximal runs. Replaces both the old `Vec<bool>` mirror and the
    // compacting `order` list — the per-round due-scan walks the runs in
    // pid order, so a mass extinction leaving a handful of survivors costs
    // O(survivors) per round from the very next round, with no compaction
    // heuristics.
    live: LiveSet,
    metrics: Metrics,
    trace: Trace,
    record: bool,
    // In-flight send ops awaiting delivery at `round`. Part of snapshots:
    // messages cross a round boundary, so a checkpoint without them would
    // silently drop a whole round of traffic.
    pending: Vec<FlightOp<P::Msg>>,
    round: Round,
    // Crash-recovery bookkeeping, sparse: scheduled restart round (and
    // whether state is wiped) per process crashed via
    // [`Fate::CrashRecover`], keyed by pid. `next_revive` caches the
    // minimum so the common (no recoveries pending) round costs one
    // comparison; O(recovering) space instead of a t-length column.
    revive: BTreeMap<u32, (Round, bool)>,
    next_revive: Option<Round>,
    // Watchdog state: last round with observable progress and the length
    // of the current no-progress streak of executed rounds.
    last_progress: Round,
    stall_streak: u64,
    finished: bool,
    // Resolved shard count (≥ 1; from `RunConfig::shards`).
    shards: usize,
    // Rounds actually executed (one per `advance` call); the fast-forward
    // jumps the 128-bit clock but not this counter. Snapshotted, so a
    // resumed run reports the same total as an uninterrupted one.
    executed_rounds: u64,
    // Peak-memory probe, observed once per executed round.
    mem: MemBudget,
    // Scratch buffers, allocated once and recycled every round; excluded
    // from snapshots and rebuilt on resume. In steady state the loop
    // performs no allocation: `eff` is reset (not rebuilt), the two op
    // buffers swap roles each round, the due list and shard lanes are
    // refilled in place, and the delivery index grows only to the
    // high-water mark of per-round live deliveries. The in-flight buffers
    // hold send *ops* (payload stored once per broadcast), never
    // per-recipient envelopes.
    due: Vec<u32>,
    eff: Effects<P::Msg>,
    lanes: Vec<Lane<P::Msg>>,
    next_pending: Vec<FlightOp<P::Msg>>,
    delivery: DeliveryIndex,
    // Two-phase-exchange routing: per-destination-shard op-id lists over
    // `pending`, built by last round's lanes (phase one) and consumed by
    // the parallel inbox build (phase two). `routes_valid` is false
    // whenever `pending` was produced by a path that did not route (the
    // sequential settle path, or a resume) — the parallel build then
    // falls back to scanning the whole op table, with identical results.
    routes: Vec<Vec<u32>>,
    routes_valid: bool,
    // Per-shard due-list fragments for the parallel due-scan.
    scan: Vec<Vec<u32>>,
}

impl<P, A> Engine<P, A>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
{
    /// Builds an engine over `procs` (pid = index) paused before round 1.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidAdversary`] if the adversary rejects the
    /// system shape (see [`Adversary::validate`]).
    pub fn new(procs: Vec<P>, adversary: A, cfg: RunConfig) -> Result<Self, RunError> {
        if let Err(reason) = adversary.validate(procs.len()) {
            return Err(RunError::InvalidAdversary { reason });
        }
        let t = procs.len();
        let pset = ProcSet::from_wakeups(
            procs.iter().map(|p| p.next_wakeup(Round::ONE).map(|w| w.max(Round::ONE))),
        );
        let shards = cfg.shards.map_or(1, NonZeroUsize::get);
        let mem =
            MemBudget { proc_bytes: (t * std::mem::size_of::<P>()) as u64, ..MemBudget::default() };
        Ok(Engine {
            pset,
            live: LiveSet::new(t),
            metrics: Metrics::new(cfg.n),
            trace: Trace::new(),
            record: cfg.record_trace,
            pending: Vec::new(),
            round: Round::ONE,
            revive: BTreeMap::new(),
            next_revive: None,
            last_progress: Round::ZERO,
            stall_streak: 0,
            finished: false,
            shards,
            executed_rounds: 0,
            mem,
            due: Vec::new(),
            eff: Effects::new(),
            lanes: Vec::new(),
            next_pending: Vec::new(),
            delivery: DeliveryIndex::new(t),
            routes: Vec::new(),
            routes_valid: false,
            scan: Vec::new(),
            procs,
            adversary,
            cfg,
        })
    }

    /// The round the engine is paused at (the next round to execute, or
    /// the final round once [`is_finished`](Engine::is_finished)).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Whether every process has retired (the run is complete).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Runs until completion or, if `stop` is given, pauses at the first
    /// round boundary at or past `stop` (the sparse fast-forward may jump
    /// the clock past `stop`; the pause lands on the next *visited*
    /// boundary, so pausing never changes which rounds execute). Returns
    /// `true` when the run completed, `false` when it paused.
    ///
    /// # Errors
    ///
    /// As [`run`], plus [`RunError::Stalled`] when the watchdog is armed.
    pub fn run_until(&mut self, stop: Option<Round>) -> Result<bool, RunError> {
        while !self.finished {
            if stop.is_some_and(|s| self.round >= s) {
                return Ok(false);
            }
            self.advance()?;
        }
        Ok(true)
    }

    /// Deep-copies the complete run state into an owned [`EngineSnapshot`].
    pub fn snapshot(&self) -> EngineSnapshot<P, A>
    where
        P: Clone,
        P::Msg: Clone,
        A: Clone,
    {
        EngineSnapshot {
            procs: self.procs.clone(),
            adversary: self.adversary.clone(),
            cfg: self.cfg.clone(),
            round: self.round,
            pset: self.pset.clone(),
            live: self.live.clone(),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            pending: self.pending.clone(),
            revive: self.revive.clone(),
            next_revive: self.next_revive,
            last_progress: self.last_progress,
            stall_streak: self.stall_streak,
            finished: self.finished,
            mem: self.mem,
            executed_rounds: self.executed_rounds,
        }
    }

    /// Reconstructs an engine from a snapshot. Scratch state (delivery
    /// index, effect buffers) is rebuilt empty; stale-stamp reasoning makes
    /// that equivalent to the buffers the original engine carried (stamps
    /// only ever match the round they were built in, and the clock is
    /// strictly monotone). The continuation is bit-identical to the
    /// uninterrupted run.
    pub fn resume(snapshot: EngineSnapshot<P, A>) -> Self {
        let t = snapshot.procs.len();
        let shards = snapshot.cfg.shards.map_or(1, NonZeroUsize::get);
        Engine {
            record: snapshot.cfg.record_trace,
            procs: snapshot.procs,
            adversary: snapshot.adversary,
            cfg: snapshot.cfg,
            round: snapshot.round,
            pset: snapshot.pset,
            live: snapshot.live,
            metrics: snapshot.metrics,
            trace: snapshot.trace,
            pending: snapshot.pending,
            revive: snapshot.revive,
            next_revive: snapshot.next_revive,
            last_progress: snapshot.last_progress,
            stall_streak: snapshot.stall_streak,
            finished: snapshot.finished,
            shards,
            executed_rounds: snapshot.executed_rounds,
            mem: snapshot.mem,
            due: Vec::new(),
            eff: Effects::new(),
            lanes: Vec::new(),
            next_pending: Vec::new(),
            delivery: DeliveryIndex::new(t),
            routes: Vec::new(),
            routes_valid: false,
            scan: Vec::new(),
        }
    }

    /// Consumes the engine into its [`Report`] and final protocol states.
    /// Meaningful once [`is_finished`](Engine::is_finished); on an
    /// unfinished engine it reports the state as of the pause point
    /// (statuses of still-running processes read [`Status::Alive`]).
    pub fn into_report(mut self) -> (Report, Vec<P>) {
        self.observe_mem();
        (
            Report {
                metrics: self.metrics,
                trace: self.trace,
                statuses: self.pset.statuses(),
                mem: self.mem,
                executed_rounds: self.executed_rounds,
            },
            self.procs,
        )
    }

    /// The watchdog's view of the paused engine: who is alive, what they
    /// are waiting on, and what is in flight.
    fn diagnosis(&self) -> StallDiagnosis {
        let stalled: Vec<Pid> = self.live.ones().map(Pid::new).collect();
        let wakeups = stalled.iter().map(|&p| (p, self.pset.wakeup(p.index()))).collect();
        StallDiagnosis {
            round: self.round,
            last_progress: self.last_progress,
            stalled,
            wakeups,
            pending_ops: self.pending.len(),
            pending_revivals: self.revive.len(),
        }
    }

    /// Folds the current buffer footprint into the peak-memory probe:
    /// per-process SoA columns (recomputed — they are stable at t), and the
    /// high-water mark of transient flight state and ledgers.
    fn observe_mem(&mut self) {
        self.mem.soa_bytes = self.pset.bytes() + self.live.bytes() + self.delivery.soa_bytes();
        let flight = self.delivery.flight_bytes()
            + ((self.pending.capacity() + self.next_pending.capacity())
                * std::mem::size_of::<FlightOp<P::Msg>>()) as u64
            + (self.due.capacity() * 4) as u64
            + self.lanes.iter().map(Lane::bytes).sum::<u64>()
            + (self.routes.iter().map(|r| r.capacity() * 4).sum::<usize>()) as u64
            + (self.scan.iter().map(|s| s.capacity() * 4).sum::<usize>()) as u64
            + (self.revive.len() * std::mem::size_of::<(u32, Round, bool)>()) as u64;
        self.mem.flight_bytes = self.mem.flight_bytes.max(flight);
        let ledger = (self.metrics.work_by_unit.capacity() * std::mem::size_of::<u32>()) as u64
            + std::mem::size_of_val(self.trace.events()) as u64;
        self.mem.ledger_bytes = self.mem.ledger_bytes.max(ledger);
    }

    fn round_limit(&self) -> RunError {
        RunError::RoundLimit {
            limit: self.cfg.max_rounds,
            metrics: Box::new(self.metrics.clone()),
            diagnosis: Box::new(self.diagnosis()),
        }
    }

    /// Executes one round (plus any sparse fast-forward that follows it),
    /// leaving the engine paused at the next round boundary.
    fn advance(&mut self) -> Result<(), RunError> {
        let round = self.round;
        if round > self.cfg.max_rounds {
            return Err(self.round_limit());
        }
        self.executed_rounds += 1;

        // Progress baseline for the watchdog: any retirement, recovery, or
        // unit of work moves one of these counters.
        let work0 = self.metrics.work_total;
        let crashes0 = self.metrics.crashes;
        let terminations0 = self.metrics.terminations;
        let recoveries0 = self.metrics.recoveries;

        // 0. Restart processes whose recovery downtime has elapsed — before
        //    delivery, so messages arriving this very round are received.
        if self.next_revive.is_some_and(|r| r <= round) {
            let ready: Vec<(u32, bool)> = self
                .revive
                .iter()
                .filter(|&(_, &(at, _))| at <= round)
                .map(|(&i, &(_, wipe))| (i, wipe))
                .collect();
            for (i, wipe) in ready {
                self.revive.remove(&i);
                let idx = i as usize;
                self.pset.revive(idx);
                self.live.insert(idx);
                self.metrics.recoveries += 1;
                self.procs[idx].on_recover(round, wipe);
                let wake = self.procs[idx].next_wakeup(round).map(|w| w.max(round));
                self.pset.set_wakeup(idx, wake);
                if self.record {
                    self.trace.push(Event::Recover { round, pid: Pid::new(idx) });
                }
            }
            self.next_revive = self.revive.values().map(|&(at, _)| at).min();
        }

        // 1. Deliver last round's messages: index the in-flight ops by live
        //    recipient; spans are intersected with the live set and dead
        //    recipients become dead letters without ever materializing.
        let have_inbox = !self.pending.is_empty();
        if have_inbox {
            if self.adversary.filters_deliveries() {
                let (dead, omitted) = self.delivery.build_filtered(
                    round,
                    &self.pending,
                    &self.live,
                    &mut self.adversary,
                    self.record.then_some(&mut self.trace),
                );
                self.metrics.dead_letters += dead;
                self.metrics.omissions += omitted;
            } else if self.shards > 1 && self.pending.len() >= self.shards {
                // Sharded inbox build, consuming last round's
                // destination-shard routes when the lanes produced them.
                let routes = (self.routes_valid && self.routes.len() >= self.shards)
                    .then(|| &self.routes[..self.shards]);
                self.metrics.dead_letters +=
                    self.delivery.build_parallel(&self.pending, &self.live, routes, self.shards);
            } else {
                self.metrics.dead_letters += self.delivery.build(&self.pending, &self.live);
            }
        }
        // A delivery to at least one live, non-omitted recipient counts as
        // observable progress for the watchdog.
        let delivered = have_inbox && self.delivery.delivered();

        // An adversary event scheduled for this very round (e.g. a crash of
        // an otherwise idle process) disables sparse stepping for the
        // round: every alive process must face `intercept`, exactly as in
        // the dense engine. Adversaries that may act any round (random
        // crashes with budget left) return `Some(now)` and keep the dense
        // behaviour bit-for-bit.
        let adv_due = self.adversary.next_event(round).is_some_and(|r| r <= round);

        // 2. Due-scan: the set of processes stepped this round is fully
        //    determined at the round boundary (live ∧ (adversary event ∨
        //    inbox ∨ wakeup due)), and a fate ruling only ever affects the
        //    stepped process itself — so the list can be collected up front
        //    and, when sharding, stepped on worker threads without changing
        //    which processes run or what they observe.
        self.due.clear();
        if self.shards > 1 && self.live.len() >= self.shards * PAR_SCAN_MIN {
            // Range-sharded scan: worker k walks the live pids of its own
            // contiguous pid range; concatenating the fragments in range
            // order yields exactly the ascending due list the sequential
            // scan produces.
            let t = self.procs.len();
            let chunk = t.div_ceil(self.shards);
            if self.scan.len() < self.shards {
                self.scan.resize_with(self.shards, Vec::new);
            }
            {
                let pset = &self.pset;
                let delivery = &self.delivery;
                let live = &self.live;
                std::thread::scope(|scope| {
                    for (k, frag) in self.scan.iter_mut().enumerate().take(self.shards) {
                        let lo = (k * chunk).min(t);
                        let hi = ((k + 1) * chunk).min(t);
                        scope.spawn(move || {
                            frag.clear();
                            for i in live.ones_range(lo, hi) {
                                if adv_due
                                    || (have_inbox && delivery.has_inbox(i))
                                    || pset.wakeup_due(i, round)
                                {
                                    frag.push(i as u32);
                                }
                            }
                        });
                    }
                });
            }
            for k in 0..self.shards {
                let frag = &mut self.scan[k];
                self.due.append(frag);
            }
        } else {
            let pset = &self.pset;
            let delivery = &self.delivery;
            let due = &mut self.due;
            for i in self.live.iter() {
                if adv_due || (have_inbox && delivery.has_inbox(i)) || pset.wakeup_due(i, round) {
                    due.push(i as u32);
                }
            }
        }

        // 3. Step every due process and let the adversary rule on it. The
        //    sharded path steps disjoint contiguous chunks in parallel and
        //    then settles in pid order on this thread; the sequential path
        //    interleaves step and settle per process. Both produce
        //    bit-identical traces, metrics, and message order.
        let next = round.saturating_add(1);
        if self.shards > 1 && self.due.len() >= self.shards {
            // Route ops by destination shard only when next round's inbox
            // build can be sharded too (a filtering adversary forces the
            // sequential filtered build, which scans the whole table).
            let route_ops = !self.adversary.filters_deliveries();
            let mut lanes = std::mem::take(&mut self.lanes);
            if lanes.len() < self.shards {
                lanes.resize_with(self.shards, Lane::default);
            }
            let (s, len) = (self.shards, self.due.len());
            for (k, lane) in lanes.iter_mut().enumerate() {
                lane.due.clear();
                lane.fate.clear();
                if k < s {
                    lane.due.extend_from_slice(&self.due[k * len / s..(k + 1) * len / s]);
                }
                let chunk = lane.due.len();
                if lane.eff.len() < chunk {
                    lane.eff.resize_with(chunk, Effects::new);
                }
                if lane.wake.len() < chunk {
                    lane.wake.resize(chunk, None);
                }
                if lane.route.len() < s {
                    lane.route.resize_with(s, Vec::new);
                }
            }
            self.step_shards(&mut lanes, round, have_inbox);
            self.rule_fates(&mut lanes, round);
            self.apply_lanes(&mut lanes, round, route_ops);
            self.fold_lanes(&mut lanes, route_ops);
            self.apply_work(&mut lanes);
            self.lanes = lanes;
        } else {
            self.routes_valid = false;
            let mut eff = std::mem::replace(&mut self.eff, Effects::new());
            for di in 0..self.due.len() {
                let idx = self.due[di] as usize;
                eff.reset();
                let inbox = if have_inbox && self.delivery.has_inbox(idx) {
                    self.delivery.inbox(idx, &self.pending)
                } else {
                    Inbox::empty()
                };
                self.procs[idx].step(round, inbox, &mut eff);
                self.settle(round, Pid::new(idx), &mut eff);
                // The step may have changed this process's timing state;
                // refresh its cached wakeup (retired slots are never read).
                if self.live.contains(idx) {
                    let wake = self.procs[idx].next_wakeup(next).map(|w| w.max(next));
                    self.pset.set_wakeup(idx, wake);
                }
            }
            self.eff = eff;
        }

        self.observe_mem();

        // Did everyone retire? (A scheduled revival is not retirement.)
        if self.live.is_empty() && self.revive.is_empty() {
            self.metrics.rounds = round;
            self.finished = true;
            return Ok(());
        }

        // Swap the op buffers: last round's deliveries become the new
        // scratch, this round's sends become the in-flight set.
        std::mem::swap(&mut self.pending, &mut self.next_pending);
        self.next_pending.clear();

        // Watchdog: an executed round with no delivery, no work, and no
        // live-set movement extends the no-progress streak; exhausting the
        // window is a livelock verdict. Fast-forwarded rounds (below) are
        // provably quiescent and never counted.
        let progress = delivered
            || self.metrics.work_total != work0
            || self.metrics.crashes != crashes0
            || self.metrics.terminations != terminations0
            || self.metrics.recoveries != recoveries0;
        if progress {
            self.last_progress = round;
            self.stall_streak = 0;
        } else {
            self.stall_streak += 1;
            if let Some(window) = self.cfg.stall_window {
                if self.stall_streak > window {
                    return Err(RunError::Stalled {
                        round,
                        window,
                        diagnosis: Box::new(self.diagnosis()),
                        metrics: Box::new(self.metrics.clone()),
                    });
                }
            }
        }

        // Sparse fast-forward through provably idle rounds: with nothing in
        // flight, jump the clock straight to the earliest cached wakeup or
        // scheduled adversary event — one O(live) scan per jump, however
        // astronomically far the target lies (Protocol C's silent waiting
        // phases cost exactly one jump each on the 128-bit clock). A
        // saturated wakeup (`Round::MAX`) is a legal target: a deadline
        // past the representable horizon fires *at* the horizon, exactly
        // as the old 64-bit clock fired saturated deadlines at `u64::MAX`.
        let advanced = if self.pending.is_empty() {
            let wake = {
                let pset = &self.pset;
                self.live.iter().filter_map(|i| pset.wakeup(i)).map(|w| w.max(next)).min()
            };
            let adv = self.adversary.next_event(next).map(|r| r.max(next));
            let rev = self.next_revive.map(|r| r.max(next));
            match [wake, adv, rev].into_iter().flatten().min() {
                Some(target) => target,
                None => {
                    let alive = self.live.ones().map(Pid::new).collect();
                    return Err(RunError::Deadlock {
                        round,
                        alive,
                        metrics: Box::new(self.metrics.clone()),
                    });
                }
            }
        } else {
            next
        };
        if advanced == round {
            // Live processes remain but the clock cannot advance past the
            // horizon: report the cap rather than spinning at Round::MAX.
            return Err(self.round_limit());
        }
        self.round = advanced;
        Ok(())
    }

    /// Steps the lanes' due chunks on scoped worker threads. Shard threads
    /// touch only disjoint `&mut [P]` slices of the process table (the due
    /// list is ascending, so successive chunks split off successive slice
    /// tails) plus shared read-only views of the delivery index and the
    /// in-flight ops; every engine-state mutation — adversary ruling,
    /// metrics, trace, outbound queueing — happens afterwards on the merge
    /// thread, in [`settle`](Engine::settle). Each worker also precomputes
    /// its processes' post-step wakeups; the merge thread installs them
    /// only for processes the adversary leaves alive.
    fn step_shards(&mut self, lanes: &mut [Lane<P::Msg>], round: Round, have_inbox: bool) {
        let next = round.saturating_add(1);
        let delivery = &self.delivery;
        let pending = &self.pending[..];
        let mut rest = self.procs.as_mut_slice();
        let mut base = 0usize;
        std::thread::scope(|scope| {
            for lane in lanes.iter_mut() {
                if lane.due.is_empty() {
                    continue;
                }
                let lo = lane.due[0] as usize;
                let hi = *lane.due.last().expect("nonempty chunk") as usize + 1;
                let tail = std::mem::take(&mut rest);
                let (_, tail) = tail.split_at_mut(lo - base);
                let (chunk, tail) = tail.split_at_mut(hi - lo);
                rest = tail;
                base = hi;
                scope.spawn(move || {
                    for (i, &p) in lane.due.iter().enumerate() {
                        let idx = p as usize;
                        let eff = &mut lane.eff[i];
                        eff.reset();
                        let inbox = if have_inbox && delivery.has_inbox(idx) {
                            delivery.inbox(idx, pending)
                        } else {
                            Inbox::empty()
                        };
                        let proc = &mut chunk[idx - lo];
                        proc.step(round, inbox, eff);
                        lane.wake[i] = proc.next_wakeup(next).map(|w| w.max(next));
                    }
                });
            }
        });
    }

    /// The adversary rules on every stepped process, strictly in ascending
    /// pid order on the merge thread — the one irreducibly sequential
    /// phase of the parallel pipeline. [`Adversary::intercept`] is stateful
    /// (RNG draws, budget consumption) and its [`AdversaryCtx`] exposes the
    /// live set and crash counter *as of earlier rulings this round*, so
    /// interleaving it with anything would change what adversaries observe.
    /// Everything the ctx of a later pid can see — retirement, live-set
    /// movement, the crash/termination counters, recovery scheduling — is
    /// applied here, immediately per ruling; everything it cannot see
    /// (message ledgers, traces, outbound queues, the work table, wakeup
    /// caches) is deferred to the parallel [`Lane::apply`] phase.
    fn rule_fates(&mut self, lanes: &mut [Lane<P::Msg>], round: Round) {
        for lane in lanes.iter_mut() {
            for di in 0..lane.due.len() {
                let idx = lane.due[di] as usize;
                let pid = Pid::new(idx);
                let ctx = AdversaryCtx {
                    t: self.procs.len(),
                    alive: AliveView::Set(&self.live),
                    live: self.live.len(),
                    crashes: self.metrics.crashes,
                };
                let fate = self.adversary.intercept(round, pid, &lane.eff[di], ctx);
                match &fate {
                    Fate::Survive | Fate::Omit(_) => {
                        if lane.eff[di].is_terminated() {
                            self.pset.retire(idx, true, round);
                            self.live.remove(idx);
                            self.metrics.terminations += 1;
                        }
                    }
                    Fate::Crash(_) => {
                        self.pset.retire(idx, false, round);
                        self.live.remove(idx);
                        self.metrics.crashes += 1;
                    }
                    Fate::CrashRecover { downtime, wipe, .. } => {
                        self.pset.retire(idx, false, round);
                        self.live.remove(idx);
                        self.metrics.crashes += 1;
                        let at = round.saturating_add(u128::from((*downtime).max(1)));
                        self.revive.insert(idx as u32, (at, *wipe));
                        self.next_revive = Some(self.next_revive.map_or(at, |r| r.min(at)));
                    }
                }
                lane.fate.push(fate);
            }
        }
    }

    /// Applies every lane's fated effects in parallel (phase one of the
    /// two-phase exchange): each worker owns its lane plus its contiguous
    /// slices of the process-state columns, writing message counts, trace
    /// events, outbound ops, destination-shard routes, and work units into
    /// lane-local sinks. See [`Lane::apply`].
    fn apply_lanes(&mut self, lanes: &mut [Lane<P::Msg>], round: Round, route_ops: bool) {
        let t = self.procs.len();
        let route_chunk = route_ops.then(|| t.div_ceil(self.shards));
        let record = self.record;
        let mut meta_rest = self.pset.meta.as_mut_slice();
        let mut slot_rest = self.pset.slot.as_mut_slice();
        let mut base = 0usize;
        std::thread::scope(|scope| {
            for lane in lanes.iter_mut() {
                if lane.due.is_empty() {
                    continue;
                }
                let lo = lane.due[0] as usize;
                let hi = *lane.due.last().expect("nonempty chunk") as usize + 1;
                let (_, tail) = std::mem::take(&mut meta_rest).split_at_mut(lo - base);
                let (meta, tail) = tail.split_at_mut(hi - lo);
                meta_rest = tail;
                let (_, tail) = std::mem::take(&mut slot_rest).split_at_mut(lo - base);
                let (slot, tail) = tail.split_at_mut(hi - lo);
                slot_rest = tail;
                base = hi;
                scope.spawn(move || lane.apply(round, record, route_chunk, lo, meta, slot));
            }
        });
    }

    /// Folds the lane-local sinks into the engine ledgers at the round
    /// barrier, in ascending lane order (phase two of the exchange). Lanes
    /// cover ascending pid chunks and each sink preserves its lane's
    /// emission order, so lane-order concatenation reproduces the
    /// sequential engine's op table, trace, and counters exactly; the
    /// routed op ids are rebased from lane-local to global as they land.
    fn fold_lanes(&mut self, lanes: &mut [Lane<P::Msg>], route_ops: bool) {
        if route_ops {
            if self.routes.len() < self.shards {
                self.routes.resize_with(self.shards, Vec::new);
            }
            self.routes.iter_mut().for_each(Vec::clear);
        }
        for lane in lanes.iter_mut() {
            let base = self.next_pending.len() as u32;
            self.next_pending.append(&mut lane.out);
            if route_ops {
                for (k, bucket) in lane.route.iter_mut().enumerate() {
                    self.routes[k].extend(bucket.drain(..).map(|i| i + base));
                }
            }
            self.metrics.fold_effects(&mut lane.ledger);
            self.metrics.work_total += lane.work_units.len() as u64;
            if self.record {
                self.trace.append(&mut lane.trace);
            }
        }
        self.routes_valid = route_ops;
    }

    /// Applies the lanes' collected work units to the per-unit multiplicity
    /// table — the giant-cell Amdahl term (one random-access increment per
    /// unit of work per round). Above [`PAR_WORK_MIN`] recordings the table
    /// is split into contiguous unit ranges, each worker streaming over
    /// *all* lanes' units and incrementing only its own range: increments
    /// are commutative, so the resulting table is exactly the sequential
    /// engine's.
    fn apply_work(&mut self, lanes: &mut [Lane<P::Msg>]) {
        let total: usize = lanes.iter().map(|l| l.work_units.len()).sum();
        if total == 0 {
            return;
        }
        let needed = lanes
            .iter()
            .filter(|l| !l.work_units.is_empty())
            .map(|l| l.work_max as usize + 1)
            .max()
            .unwrap_or(0);
        if self.metrics.work_by_unit.len() < needed {
            self.metrics.work_by_unit.resize(needed, 0);
        }
        let table = &mut self.metrics.work_by_unit;
        if total >= PAR_WORK_MIN && self.shards > 1 {
            let chunk = table.len().div_ceil(self.shards);
            let lanes = &*lanes;
            let mut rest = table.as_mut_slice();
            let mut seg_lo = 0usize;
            std::thread::scope(|scope| {
                while !rest.is_empty() {
                    let take = chunk.min(rest.len());
                    let (seg, tail) = std::mem::take(&mut rest).split_at_mut(take);
                    rest = tail;
                    let lo = seg_lo;
                    seg_lo += take;
                    scope.spawn(move || {
                        let hi = lo + seg.len();
                        for lane in lanes {
                            for &u in &lane.work_units {
                                let u = u as usize;
                                if u >= lo && u < hi {
                                    seg[u - lo] += 1;
                                }
                            }
                        }
                    });
                }
            });
        } else {
            for lane in lanes.iter() {
                for &u in &lane.work_units {
                    table[u as usize] += 1;
                }
            }
        }
        for lane in lanes.iter_mut() {
            lane.work_units.clear();
        }
    }

    /// Applies the adversary's ruling to one stepped process: intercept,
    /// fate application, metrics, tracing, and outbound queueing — the
    /// sequential tail of a step. Always runs on the merge thread in
    /// ascending pid order, which is what keeps sharded runs bit-identical
    /// to sequential ones: adversary RNG draws, trace events, and message
    /// queue order all replay the sequential engine's exactly.
    fn settle(&mut self, round: Round, pid: Pid, eff: &mut Effects<P::Msg>) {
        let idx = pid.index();
        let ctx = AdversaryCtx {
            t: self.procs.len(),
            alive: AliveView::Set(&self.live),
            live: self.live.len(),
            crashes: self.metrics.crashes,
        };
        let fate = self.adversary.intercept(round, pid, eff, ctx);
        // Copy out the recovery schedule (if any) before the match below
        // borrows `fate`'s crash spec.
        let recover_plan = match fate {
            Fate::CrashRecover { downtime, wipe, .. } => Some((downtime.max(1), wipe)),
            _ => None,
        };

        if self.record {
            for tag in eff.notes() {
                self.trace.push(Event::Note { round, pid, tag });
            }
        }

        match fate {
            Fate::Survive => {
                if let Some(unit) = eff.work() {
                    self.metrics.record_work(unit);
                    if self.record {
                        self.trace.push(Event::Work { round, pid, unit });
                    }
                }
                let terminated = eff.is_terminated();
                let mut out = Outbound {
                    metrics: &mut self.metrics,
                    trace: &mut self.trace,
                    record: self.record,
                    next_pending: &mut self.next_pending,
                    round,
                    route: None,
                };
                for op in eff.drain_sends() {
                    out.deliver(pid, op.to, op.payload);
                }
                if terminated {
                    self.pset.retire(idx, true, round);
                    self.live.remove(idx);
                    self.metrics.terminations += 1;
                    if self.record {
                        self.trace.push(Event::Terminate { round, pid });
                    }
                }
            }
            Fate::Omit(ref filter) => {
                // Send-omission: the process survives and everything but
                // the filtered sends applies.
                if let Some(unit) = eff.work() {
                    self.metrics.record_work(unit);
                    if self.record {
                        self.trace.push(Event::Work { round, pid, unit });
                    }
                }
                let terminated = eff.is_terminated();
                let total = eff.send_count() as u64;
                let before = self.metrics.messages;
                let mut out = Outbound {
                    metrics: &mut self.metrics,
                    trace: &mut self.trace,
                    record: self.record,
                    next_pending: &mut self.next_pending,
                    round,
                    route: None,
                };
                out.deliver_crash_subset(pid, eff, filter);
                let suppressed = total - (self.metrics.messages - before);
                self.metrics.omissions += suppressed;
                if self.record && suppressed > 0 {
                    self.trace.push(Event::Note { round, pid, tag: "fault:omit" });
                }
                if terminated {
                    self.pset.retire(idx, true, round);
                    self.live.remove(idx);
                    self.metrics.terminations += 1;
                    if self.record {
                        self.trace.push(Event::Terminate { round, pid });
                    }
                }
            }
            Fate::Crash(ref spec) | Fate::CrashRecover { ref spec, .. } => {
                if spec.count_work {
                    if let Some(unit) = eff.work() {
                        self.metrics.record_work(unit);
                        if self.record {
                            self.trace.push(Event::Work { round, pid, unit });
                        }
                    }
                }
                let mut out = Outbound {
                    metrics: &mut self.metrics,
                    trace: &mut self.trace,
                    record: self.record,
                    next_pending: &mut self.next_pending,
                    round,
                    route: None,
                };
                out.deliver_crash_subset(pid, eff, &spec.deliver);
                self.pset.retire(idx, false, round);
                self.live.remove(idx);
                self.metrics.crashes += 1;
                if self.record {
                    self.trace.push(Event::Crash { round, pid });
                }
                if let Some((downtime, wipe)) = recover_plan {
                    let at = round.saturating_add(u128::from(downtime));
                    self.revive.insert(idx as u32, (at, wipe));
                    self.next_revive = Some(self.next_revive.map_or(at, |r| r.min(at)));
                }
            }
        }
    }
}

/// The per-round outbound-delivery context: everything queueing a send op
/// needs (counters, optional tracing, the next-round in-flight buffer, and
/// — on the parallel path — the destination-shard routing buckets of the
/// two-phase exchange).
struct Outbound<'a, M> {
    metrics: &'a mut Metrics,
    trace: &'a mut Trace,
    record: bool,
    next_pending: &'a mut Vec<FlightOp<M>>,
    round: Round,
    /// `(buckets, chunk)`: each queued op's id is appended to the bucket of
    /// every destination shard its recipients intersect (shard = pid /
    /// chunk, with `chunk = ⌈t/shards⌉` matching
    /// [`DeliveryIndex::build_parallel`]). `None` on the sequential path.
    route: Option<(&'a mut Vec<Vec<u32>>, usize)>,
}

impl<M: Classify> Outbound<'_, M> {
    /// Queues one surviving send op: bulk message accounting (O(1) per op)
    /// plus per-recipient trace events when tracing is on.
    fn deliver(&mut self, from: Pid, to: Recipients, payload: M) {
        self.metrics.record_messages(payload.class(), to.len() as u64);
        if self.record {
            for recipient in to.iter() {
                self.trace.push(Event::Send {
                    round: self.round,
                    from,
                    to: recipient,
                    class: payload.class(),
                });
            }
        }
        if let Some((buckets, chunk)) = self.route.as_mut() {
            let id = self.next_pending.len() as u32;
            let (lo, hi) = match to {
                Recipients::One(p) => (p.index(), p.index() + 1),
                Recipients::Span { lo, hi } => (lo, hi),
            };
            if hi > lo {
                for k in lo / *chunk..=(hi - 1) / *chunk {
                    buckets[k].push(id);
                }
            }
        }
        self.next_pending.push(FlightOp { from, to, payload });
    }

    /// Applies a crashing process's [`Deliver`] filter to its send ops. The
    /// filter indexes messages in send order (spans expand in ascending pid
    /// order), exactly as the per-recipient representation did, so crash
    /// semantics — and message counts — are unchanged. Ops are kept whole
    /// or truncated wherever possible; only an arbitrary-subset filter that
    /// fragments a span costs one payload clone per surviving *run* (never
    /// per recipient).
    fn deliver_crash_subset(
        &mut self,
        pid: Pid,
        eff: &mut Effects<M>,
        deliver: &crate::adversary::Deliver,
    ) where
        M: Clone,
    {
        use crate::adversary::Deliver;

        let mut msg_idx = 0usize;
        for op in eff.drain_sends() {
            let len = op.to.len();
            match deliver {
                Deliver::All => self.deliver(pid, op.to, op.payload),
                Deliver::None => {}
                Deliver::Prefix(k) => {
                    let keep = k.saturating_sub(msg_idx).min(len);
                    if keep > 0 {
                        self.deliver(pid, truncate(op.to, keep), op.payload);
                    }
                }
                Deliver::Subset(set) => {
                    // Split the op into maximal contiguous runs of
                    // recipients the adversary lets through.
                    let mut runs: Vec<(usize, usize)> = Vec::new();
                    for p in op.to.iter() {
                        if set.contains(&p) {
                            match runs.last_mut() {
                                Some((_, hi)) if *hi == p.index() => *hi += 1,
                                _ => runs.push((p.index(), p.index() + 1)),
                            }
                        }
                    }
                    let mut payload = Some(op.payload);
                    for (ri, &(lo, hi)) in runs.iter().enumerate() {
                        let to = if hi - lo == 1 {
                            Recipients::One(Pid::new(lo))
                        } else {
                            Recipients::Span { lo, hi }
                        };
                        // One clone per surviving run of a fragmented span —
                        // the last run moves the payload; never per
                        // recipient.
                        let m = if ri + 1 == runs.len() {
                            payload.take().expect("moved once")
                        } else {
                            payload.as_ref().expect("present until last").clone()
                        };
                        self.deliver(pid, to, m);
                    }
                }
            }
            msg_idx += len;
        }
    }
}

/// The first `keep` recipients of a set (`1 <= keep <= len`).
fn truncate(to: Recipients, keep: usize) -> Recipients {
    match to {
        Recipients::One(p) => Recipients::One(p),
        Recipients::Span { lo, .. } if keep == 1 => Recipients::One(Pid::new(lo)),
        Recipients::Span { lo, .. } => Recipients::Span { lo, hi: lo + keep },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashSchedule, CrashSpec, NoFailures};
    use crate::ids::Unit;

    /// Token ring: process 0 starts the token at its wakeup round; each
    /// process performs one unit, forwards the token, and terminates.
    #[derive(Clone, Debug)]
    struct Token;
    impl Classify for Token {
        fn class(&self) -> &'static str {
            "token"
        }
    }

    struct Ring {
        me: usize,
        t: usize,
        start_at: Round,
        done: bool,
    }

    impl Ring {
        fn procs(t: usize, start_at: impl Into<Round>) -> Vec<Ring> {
            let start_at = start_at.into();
            (0..t).map(|me| Ring { me, t, start_at, done: false }).collect()
        }
    }

    impl Protocol for Ring {
        type Msg = Token;

        fn step(&mut self, round: Round, inbox: Inbox<'_, Token>, eff: &mut Effects<Token>) {
            if self.done {
                return;
            }
            let triggered = (self.me == 0 && round >= self.start_at) || !inbox.is_empty();
            if triggered {
                eff.perform(Unit::new(self.me + 1));
                if self.me + 1 < self.t {
                    eff.send(Pid::new(self.me + 1), Token);
                }
                eff.terminate();
                self.done = true;
            }
        }

        fn next_wakeup(&self, now: Round) -> Option<Round> {
            if self.me == 0 && !self.done {
                Some(self.start_at.max(now))
            } else {
                None
            }
        }
    }

    #[test]
    fn ring_completes_with_exact_metrics() {
        let report = run(Ring::procs(4, 1), NoFailures, RunConfig::new(4, 100)).unwrap();
        assert_eq!(report.metrics.work_total, 4);
        assert_eq!(report.metrics.messages, 3);
        assert_eq!(report.metrics.rounds, 4u64);
        assert!(report.metrics.all_work_done());
        assert_eq!(report.survivor_count(), 4);
        assert_eq!(report.survivors(), vec![Pid::new(0), Pid::new(1), Pid::new(2), Pid::new(3)]);
        assert_eq!(report.survivors_iter().count(), report.survivor_count());
        assert_eq!(report.metrics.messages_by_class["token"], 3);
    }

    #[test]
    fn fast_forward_skips_to_distant_wakeups_without_losing_time() {
        let report =
            run(Ring::procs(3, 1_000_000), NoFailures, RunConfig::new(3, 2_000_000)).unwrap();
        // Time reflects the skipped idle prefix...
        assert_eq!(report.metrics.rounds, 1_000_002u64);
        // ...but the run completes quickly (if it executed every round this
        // test would take far too long, so reaching here at all is the
        // point).
        assert_eq!(report.metrics.work_total, 3);
    }

    #[test]
    fn round_limit_is_enforced() {
        let err = run(Ring::procs(3, 50), NoFailures, RunConfig::new(3, 10)).unwrap_err();
        match err {
            RunError::RoundLimit { limit, .. } => assert_eq!(limit, 10u64),
            other => panic!("expected RoundLimit, got {other}"),
        }
    }

    #[test]
    fn silent_crash_of_token_holder_deadlocks_the_ring() {
        // Crash p1 the round it would forward the token: the remaining
        // processes wait forever — the engine must detect this, not hang.
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::silent());
        let err = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap_err();
        match err {
            RunError::Deadlock { alive, .. } => assert_eq!(alive, vec![Pid::new(2)]),
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn crash_with_full_delivery_lets_the_token_escape() {
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::after_round());
        let report = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap();
        // p1 crashed but its work and send both counted.
        assert_eq!(report.metrics.work_total, 3);
        assert_eq!(report.metrics.messages, 2);
        assert_eq!(report.metrics.crashes, 1);
        assert_eq!(report.statuses[1], Status::Crashed(Round::new(2)));
        assert!(report.has_survivor());
    }

    #[test]
    fn crash_with_suppressed_work_uncounts_the_unit() {
        let schedule = CrashSchedule::new().crash_at(
            Pid::new(2),
            3,
            CrashSpec { deliver: crate::Deliver::All, count_work: false },
        );
        let report = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap();
        assert_eq!(report.metrics.work_total, 2);
        assert!(!report.metrics.all_work_done());
        assert_eq!(report.metrics.missing_units(), vec![Unit::new(3)]);
    }

    #[test]
    fn dead_letters_are_counted_for_retired_recipients() {
        // Crash p1 one round before the token reaches it.
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 1, CrashSpec::silent());
        let err = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap_err();
        match err {
            RunError::Deadlock { metrics, .. } => {
                assert_eq!(metrics.dead_letters, 1);
                assert_eq!(metrics.messages, 1);
            }
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn trace_records_all_event_kinds() {
        let report =
            run(Ring::procs(2, 1), NoFailures, RunConfig::new(2, 100).with_trace()).unwrap();
        let kinds: Vec<&str> = report
            .trace
            .events()
            .iter()
            .map(|e| match e {
                Event::Work { .. } => "work",
                Event::Send { .. } => "send",
                Event::Terminate { .. } => "terminate",
                Event::Crash { .. } => "crash",
                Event::Note { .. } => "note",
                Event::Notice { .. } => "notice", // async-plane only
                Event::Recover { .. } => "recover",
            })
            .collect();
        assert_eq!(kinds, vec!["work", "send", "terminate", "work", "terminate"]);
    }

    #[test]
    fn statuses_report_rounds() {
        let report = run(Ring::procs(2, 1), NoFailures, RunConfig::new(2, 100)).unwrap();
        assert_eq!(report.statuses[0], Status::Terminated(Round::new(1)));
        assert_eq!(report.statuses[1], Status::Terminated(Round::new(2)));
        assert!(Status::Crashed(Round::new(3)).is_retired());
        assert!(!Status::Alive.is_retired());
        assert_eq!(Status::Terminated(Round::new(2)).round(), Some(Round::new(2)));
        assert_eq!(Status::Alive.round(), None);
    }

    /// Broadcasts a span to everyone each round; used to pin down span
    /// delivery, dead-letter intersection, and crash filters over spans.
    struct Blaster {
        me: usize,
        t: usize,
        rounds: Round,
        received: u64,
    }

    #[derive(Clone, Debug)]
    struct Blast;
    impl Classify for Blast {
        fn class(&self) -> &'static str {
            "blast"
        }
    }

    impl Protocol for Blaster {
        type Msg = Blast;

        fn step(&mut self, round: Round, inbox: Inbox<'_, Blast>, eff: &mut Effects<Blast>) {
            self.received += inbox.len() as u64;
            for (from, _) in inbox.iter() {
                assert_ne!(from.index(), self.me, "nobody self-addresses here");
            }
            if round <= self.rounds {
                // Everyone else, as two spans around `me`.
                eff.multicast_except(0..self.t, self.me, Blast);
            }
            if round == self.rounds + 1u64 {
                eff.terminate();
            }
        }

        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }

    fn blasters(t: usize, rounds: impl Into<Round>) -> Vec<Blaster> {
        let rounds = rounds.into();
        (0..t).map(|me| Blaster { me, t, rounds, received: 0 }).collect()
    }

    #[test]
    fn span_broadcasts_count_per_recipient_and_deliver_to_all() {
        let t = 5;
        let report = run(blasters(t, 3), NoFailures, RunConfig::new(0, 10)).unwrap();
        // 3 rounds × 5 senders × 4 recipients.
        assert_eq!(report.metrics.messages, 3 * 5 * 4);
        assert_eq!(report.metrics.messages_by_class["blast"], 60);
        assert_eq!(report.metrics.dead_letters, 0);
        assert_eq!(report.survivor_count(), t);
    }

    #[test]
    fn span_intersection_with_dead_recipients_yields_dead_letters() {
        // p2 dies silently in round 1; round-1 messages sent by the others
        // to p2 (4 of them) arrive at round 2 as dead letters, and p2's own
        // round-1 sends are suppressed.
        let t = 5;
        let adv = CrashSchedule::new().crash_at(Pid::new(2), 1, CrashSpec::silent());
        let report = run(blasters(t, 2), adv, RunConfig::new(0, 10)).unwrap();
        // Round 1: 4 survivors × 4 + p2 suppressed. Round 2: 4 × 4.
        assert_eq!(report.metrics.messages, 16 + 16);
        // Dead letters: round-2 deliveries to p2 (4) and round-3
        // deliveries to p2 (4).
        assert_eq!(report.metrics.dead_letters, 8);
    }

    #[test]
    fn prefix_crash_truncates_spans_at_the_message_boundary() {
        // p2 in a t = 6 system sends spans 0..2 (2 msgs) then 3..6
        // (3 msgs). Prefix(3) must deliver 0..2 whole and only p3 from the
        // second span.
        let t = 6;
        let adv = CrashSchedule::new().crash_at(Pid::new(2), 1, CrashSpec::prefix(3));
        let report = run(blasters(t, 1), adv, RunConfig::new(0, 10).with_trace()).unwrap();
        let from_p2: Vec<usize> = report
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Send { from, to, .. } if *from == Pid::new(2) => Some(to.index()),
                _ => None,
            })
            .collect();
        assert_eq!(from_p2, vec![0, 1, 3]);
        // 5 surviving senders × 5 recipients + 3 let-through from p2.
        assert_eq!(report.metrics.messages, 25 + 3);
    }

    #[test]
    fn subset_crash_fragments_spans_into_runs() {
        // p0 broadcasts the span 1..6; the subset {1, 2, 4} splits it into
        // the runs [1,2] and [4].
        struct SpanOnce {
            me: usize,
            sent: bool,
        }
        impl Protocol for SpanOnce {
            type Msg = Blast;
            fn step(&mut self, _: Round, _: Inbox<'_, Blast>, eff: &mut Effects<Blast>) {
                if self.me == 0 && !self.sent {
                    eff.multicast(1..6, Blast);
                    self.sent = true;
                }
                eff.terminate();
            }
            fn next_wakeup(&self, now: Round) -> Option<Round> {
                Some(now)
            }
        }
        let procs: Vec<SpanOnce> = (0..6).map(|me| SpanOnce { me, sent: false }).collect();
        let adv = CrashSchedule::new().crash_at(
            Pid::new(0),
            1,
            CrashSpec::subset([Pid::new(1), Pid::new(2), Pid::new(4)]),
        );
        let report = run(procs, adv, RunConfig::new(0, 10).with_trace()).unwrap();
        let tos: Vec<usize> = report
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Send { to, .. } => Some(to.index()),
                _ => None,
            })
            .collect();
        assert_eq!(tos, vec![1, 2, 4]);
        assert_eq!(report.metrics.messages, 3);
    }

    #[test]
    fn order_compaction_preserves_pid_order_across_mass_retirement() {
        // Retire most of a large system early; the survivors' later rounds
        // must still step in pid order (the ring relies on it) and produce
        // the same metrics as a fresh small system.
        let t = 64;
        let mut adv = CrashSchedule::new();
        for p in 8..t {
            adv = adv.crash_at(Pid::new(p), 1, CrashSpec::silent());
        }
        let report = run(blasters(t, 6), adv, RunConfig::new(0, 20)).unwrap();
        assert_eq!(report.metrics.crashes, (t - 8) as u32);
        assert_eq!(report.survivor_count(), 8);
        // Round 1: 64 senders × 63... minus the 56 suppressed silent
        // crashers: 8 × 63. Rounds 2..=6: 8 × 63 each (spans still address
        // everyone; the dead become dead letters).
        assert_eq!(report.metrics.messages, 6 * 8 * 63);
        assert_eq!(report.metrics.dead_letters, 6 * 8 * 56);
    }
}
