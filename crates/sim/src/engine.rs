//! The synchronous round engine.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::adversary::{Adversary, AdversaryCtx, Fate};
use crate::effects::Effects;
use crate::ids::{Pid, Round};
use crate::message::{Classify, Envelope};
use crate::metrics::Metrics;
use crate::protocol::Protocol;
use crate::trace::{Event, Trace};

/// Final status of a process after a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Still alive when the run ended (only possible on error results).
    Alive,
    /// Crashed during the given round.
    Crashed(Round),
    /// Terminated voluntarily during the given round.
    Terminated(Round),
}

impl Status {
    /// Whether the process retired (crashed or terminated).
    pub fn is_retired(&self) -> bool {
        !matches!(self, Status::Alive)
    }

    /// Whether the process survived to normal termination.
    pub fn is_terminated(&self) -> bool {
        matches!(self, Status::Terminated(_))
    }

    /// The retirement round, if retired.
    pub fn round(&self) -> Option<Round> {
        match self {
            Status::Alive => None,
            Status::Crashed(r) | Status::Terminated(r) => Some(*r),
        }
    }
}

/// Configuration of a synchronous run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of work units (pre-sizes the per-unit multiplicity table).
    pub n: usize,
    /// Hard cap on the number of rounds; exceeding it is an error
    /// ([`RunError::RoundLimit`]). Protects against protocol bugs; set it
    /// above the protocol's proven time bound.
    pub max_rounds: Round,
    /// Whether to record a full [`Trace`] (tests: yes; large sweeps: no).
    pub record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { n: 0, max_rounds: 10_000_000, record_trace: false }
    }
}

impl RunConfig {
    /// Convenience constructor for an `n`-unit workload with a round cap.
    pub fn new(n: usize, max_rounds: Round) -> Self {
        RunConfig { n, max_rounds, record_trace: false }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Outcome of a completed run: every process retired.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Work / message / round counters.
    pub metrics: Metrics,
    /// Event log (empty unless [`RunConfig::record_trace`] was set).
    pub trace: Trace,
    /// Final per-process statuses, indexed by pid.
    pub statuses: Vec<Status>,
}

impl Report {
    /// Processes that terminated normally (the survivors).
    ///
    /// Allocates; hot callers that only iterate or count should use
    /// [`survivors_iter`](Report::survivors_iter) or
    /// [`survivor_count`](Report::survivor_count).
    pub fn survivors(&self) -> Vec<Pid> {
        self.survivors_iter().collect()
    }

    /// Iterates over the processes that terminated normally, in pid order,
    /// without building an intermediate `Vec`.
    pub fn survivors_iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_terminated())
            .map(|(i, _)| Pid::new(i))
    }

    /// Number of processes that terminated normally.
    pub fn survivor_count(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_terminated()).count()
    }

    /// Whether at least one process survived — the premise of the paper's
    /// correctness guarantee.
    pub fn has_survivor(&self) -> bool {
        self.statuses.iter().any(Status::is_terminated)
    }
}

/// Why a run failed to complete.
#[derive(Debug)]
pub enum RunError {
    /// The configured round cap was exceeded (likely a protocol bug or an
    /// undersized cap).
    RoundLimit {
        /// The cap that was exceeded.
        limit: Round,
        /// Metrics at the moment the run was abandoned.
        metrics: Box<Metrics>,
    },
    /// No messages in flight, no process due to wake, no adversary event —
    /// but some processes are still alive. The protocol livelocked.
    Deadlock {
        /// Round at which the deadlock was detected.
        round: Round,
        /// Processes still alive.
        alive: Vec<Pid>,
        /// Metrics at the moment of deadlock.
        metrics: Box<Metrics>,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RoundLimit { limit, .. } => {
                write!(f, "round limit of {limit} exceeded before all processes retired")
            }
            RunError::Deadlock { round, alive, .. } => {
                write!(f, "deadlock at round {round}: processes {alive:?} alive but nothing can ever happen")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Runs a synchronous execution until every process retires.
///
/// Processes are identified by their index in `procs`. Rounds are numbered
/// from 1. Each executed round:
///
/// 1. messages sent in the previous round are delivered (to alive
///    recipients; the rest become dead letters);
/// 2. every alive process [`step`](Protocol::step)s, in pid order, against
///    the state as of the start of the round;
/// 3. the [`Adversary`] rules on each process's fate; surviving effects are
///    applied, crashing processes deliver only the subset the adversary
///    allows.
///
/// Rounds in which provably nothing can happen are skipped in O(1) (see
/// the quiescence contract on [`Protocol`]); skipped rounds still advance
/// the round counter, so time metrics are unaffected.
///
/// # Errors
///
/// Returns [`RunError::RoundLimit`] if the cap is exceeded and
/// [`RunError::Deadlock`] if live processes can never act again.
///
/// # Examples
///
/// ```
/// use doall_sim::{run, NoFailures, RunConfig, Protocol, Effects, Envelope, Classify, Round};
///
/// #[derive(Clone, Debug)]
/// struct Nop;
/// impl Classify for Nop {}
///
/// struct Quit;
/// impl Protocol for Quit {
///     type Msg = Nop;
///     fn step(&mut self, _: Round, _: &[Envelope<Nop>], eff: &mut Effects<Nop>) {
///         eff.terminate();
///     }
///     fn next_wakeup(&self, now: Round) -> Option<Round> { Some(now) }
/// }
///
/// let report = run(vec![Quit, Quit], NoFailures, RunConfig::default())?;
/// assert_eq!(report.metrics.rounds, 1);
/// assert_eq!(report.survivors().len(), 2);
/// # Ok::<(), doall_sim::RunError>(())
/// ```
pub fn run<P, A>(procs: Vec<P>, adversary: A, cfg: RunConfig) -> Result<Report, RunError>
where
    P: Protocol,
    A: Adversary<P::Msg>,
{
    run_returning(procs, adversary, cfg).map(|(report, _)| report)
}

/// Like [`run`], but also hands back the final per-process protocol states,
/// for protocols whose outcome lives in process state (e.g. the decision
/// value of a Byzantine-agreement process).
///
/// # Errors
///
/// As [`run`].
pub fn run_returning<P, A>(
    mut procs: Vec<P>,
    mut adversary: A,
    cfg: RunConfig,
) -> Result<(Report, Vec<P>), RunError>
where
    P: Protocol,
    A: Adversary<P::Msg>,
{
    let t = procs.len();
    let mut statuses = vec![Status::Alive; t];
    // The live-set, maintained incrementally as processes retire: `alive`
    // mirrors `statuses` and `live` counts its `true` entries, so neither
    // the adversary context nor the retirement check rescans statuses.
    let mut alive = vec![true; t];
    let mut live = t;
    let mut metrics = Metrics::new(cfg.n);
    let mut trace = Trace::new();
    let record = cfg.record_trace;

    // Scratch buffers, allocated once and recycled every round. In steady
    // state the loop below performs no allocation: `eff` is reset (not
    // rebuilt), the two message buffers swap roles each round, and the
    // bucketing scratch grows only to the high-water mark of in-flight
    // messages.
    let mut eff: Effects<P::Msg> = Effects::new();
    let mut pending: Vec<Envelope<P::Msg>> = Vec::new();
    let mut next_pending: Vec<Envelope<P::Msg>> = Vec::new();
    let mut starts: Vec<usize> = vec![0; t + 2];
    let mut slot: Vec<usize> = Vec::new();
    let mut cursor: Vec<usize> = Vec::new();
    let mut round: Round = 1;

    loop {
        if round > cfg.max_rounds {
            return Err(RunError::RoundLimit { limit: cfg.max_rounds, metrics: Box::new(metrics) });
        }

        // 1. Deliver last round's messages: reorder `pending` in place so
        //    that pid `p`'s inbox is the slice `starts[p]..starts[p+1]`,
        //    with messages to retired recipients in a trailing dead-letter
        //    bucket.
        bucket_by_recipient(&mut pending, &alive, &mut starts, &mut slot, &mut cursor);
        metrics.dead_letters += (starts[t + 1] - starts[t]) as u64;

        // 2 & 3. Step every alive process; let the adversary rule on it.
        for idx in 0..t {
            if !alive[idx] {
                continue;
            }
            let pid = Pid::new(idx);
            eff.reset();
            procs[idx].step(round, &pending[starts[idx]..starts[idx + 1]], &mut eff);

            let ctx = AdversaryCtx { t, alive: &alive, live, crashes: metrics.crashes };
            let fate = adversary.intercept(round, pid, &eff, ctx);

            if record {
                for tag in eff.notes() {
                    trace.push(Event::Note { round, pid, tag });
                }
            }

            match fate {
                Fate::Survive => {
                    if let Some(unit) = eff.work() {
                        metrics.record_work(unit);
                        if record {
                            trace.push(Event::Work { round, pid, unit });
                        }
                    }
                    let terminated = eff.is_terminated();
                    for (to, payload) in eff.drain_sends() {
                        metrics.record_message(payload.class());
                        if record {
                            trace.push(Event::Send {
                                round,
                                from: pid,
                                to,
                                class: payload.class(),
                            });
                        }
                        next_pending.push(Envelope { from: pid, to, sent_at: round, payload });
                    }
                    if terminated {
                        statuses[idx] = Status::Terminated(round);
                        alive[idx] = false;
                        live -= 1;
                        metrics.terminations += 1;
                        if record {
                            trace.push(Event::Terminate { round, pid });
                        }
                    }
                }
                Fate::Crash(spec) => {
                    if spec.count_work {
                        if let Some(unit) = eff.work() {
                            metrics.record_work(unit);
                            if record {
                                trace.push(Event::Work { round, pid, unit });
                            }
                        }
                    }
                    for (i, (to, payload)) in eff.drain_sends().enumerate() {
                        if spec.deliver.lets_through(i, to) {
                            metrics.record_message(payload.class());
                            if record {
                                trace.push(Event::Send {
                                    round,
                                    from: pid,
                                    to,
                                    class: payload.class(),
                                });
                            }
                            next_pending.push(Envelope { from: pid, to, sent_at: round, payload });
                        }
                    }
                    statuses[idx] = Status::Crashed(round);
                    alive[idx] = false;
                    live -= 1;
                    metrics.crashes += 1;
                    if record {
                        trace.push(Event::Crash { round, pid });
                    }
                }
            }
        }

        // Did everyone retire?
        if live == 0 {
            metrics.rounds = round;
            return Ok((Report { metrics, trace, statuses }, procs));
        }

        // Swap the message buffers: last round's deliveries become the new
        // scratch, this round's sends become the in-flight set.
        std::mem::swap(&mut pending, &mut next_pending);
        next_pending.clear();

        // Fast-forward through provably idle rounds.
        if pending.is_empty() {
            let wake = (0..t)
                .filter(|&i| alive[i])
                .filter_map(|i| procs[i].next_wakeup(round + 1))
                .map(|w| w.max(round + 1))
                .min();
            let adv = adversary.next_event(round + 1).map(|r| r.max(round + 1));
            round = match (wake, adv) {
                (Some(w), Some(a)) => w.min(a),
                (Some(w), None) => w,
                (None, Some(a)) => a,
                (None, None) => {
                    let alive = alive
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| **a)
                        .map(|(i, _)| Pid::new(i))
                        .collect();
                    return Err(RunError::Deadlock { round, alive, metrics: Box::new(metrics) });
                }
            };
        } else {
            round += 1;
        }
    }
}

/// Reorders `pending` in place so that the messages addressed to the alive
/// pid `p` occupy `starts[p]..starts[p+1]` (in arrival order — the order
/// they were sent, which is sender-pid order) and messages to retired
/// recipients occupy the trailing dead-letter bucket
/// `starts[t]..starts[t+1]`.
///
/// This is a stable counting sort over recipient buckets followed by an
/// in-place cycle permutation: O(len + t) time, zero allocation once the
/// scratch vectors have reached their high-water marks.
fn bucket_by_recipient<M>(
    pending: &mut [Envelope<M>],
    alive: &[bool],
    starts: &mut Vec<usize>,
    slot: &mut Vec<usize>,
    cursor: &mut Vec<usize>,
) {
    let t = alive.len();
    starts.clear();
    starts.resize(t + 2, 0);
    if pending.is_empty() {
        return;
    }
    let bucket_of = |env: &Envelope<M>| if alive[env.to.index()] { env.to.index() } else { t };
    for env in pending.iter() {
        starts[bucket_of(env) + 1] += 1;
    }
    for b in 0..=t {
        starts[b + 1] += starts[b];
    }
    // Assign each envelope its destination slot, stably in scan order.
    cursor.clear();
    cursor.extend_from_slice(&starts[..=t]);
    slot.clear();
    for env in pending.iter() {
        let b = bucket_of(env);
        slot.push(cursor[b]);
        cursor[b] += 1;
    }
    // Apply the permutation with swap cycles: each swap parks one envelope
    // in its final slot, so the loop is linear despite the inner while.
    for i in 0..pending.len() {
        while slot[i] != i {
            let j = slot[i];
            pending.swap(i, j);
            slot.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashSchedule, CrashSpec, NoFailures};
    use crate::ids::Unit;

    /// Token ring: process 0 starts the token at its wakeup round; each
    /// process performs one unit, forwards the token, and terminates.
    #[derive(Clone, Debug)]
    struct Token;
    impl Classify for Token {
        fn class(&self) -> &'static str {
            "token"
        }
    }

    struct Ring {
        me: usize,
        t: usize,
        start_at: Round,
        done: bool,
    }

    impl Ring {
        fn procs(t: usize, start_at: Round) -> Vec<Ring> {
            (0..t).map(|me| Ring { me, t, start_at, done: false }).collect()
        }
    }

    impl Protocol for Ring {
        type Msg = Token;

        fn step(&mut self, round: Round, inbox: &[Envelope<Token>], eff: &mut Effects<Token>) {
            if self.done {
                return;
            }
            let triggered = (self.me == 0 && round >= self.start_at) || !inbox.is_empty();
            if triggered {
                eff.perform(Unit::new(self.me + 1));
                if self.me + 1 < self.t {
                    eff.send(Pid::new(self.me + 1), Token);
                }
                eff.terminate();
                self.done = true;
            }
        }

        fn next_wakeup(&self, now: Round) -> Option<Round> {
            if self.me == 0 && !self.done {
                Some(self.start_at.max(now))
            } else {
                None
            }
        }
    }

    #[test]
    fn ring_completes_with_exact_metrics() {
        let report = run(Ring::procs(4, 1), NoFailures, RunConfig::new(4, 100)).unwrap();
        assert_eq!(report.metrics.work_total, 4);
        assert_eq!(report.metrics.messages, 3);
        assert_eq!(report.metrics.rounds, 4);
        assert!(report.metrics.all_work_done());
        assert_eq!(report.survivor_count(), 4);
        assert_eq!(report.survivors(), vec![Pid::new(0), Pid::new(1), Pid::new(2), Pid::new(3)]);
        assert_eq!(report.survivors_iter().count(), report.survivor_count());
        assert_eq!(report.metrics.messages_by_class["token"], 3);
    }

    #[test]
    fn fast_forward_skips_to_distant_wakeups_without_losing_time() {
        let report =
            run(Ring::procs(3, 1_000_000), NoFailures, RunConfig::new(3, 2_000_000)).unwrap();
        // Time reflects the skipped idle prefix...
        assert_eq!(report.metrics.rounds, 1_000_002);
        // ...but the run completes quickly (if it executed every round this
        // test would take far too long, so reaching here at all is the
        // point).
        assert_eq!(report.metrics.work_total, 3);
    }

    #[test]
    fn round_limit_is_enforced() {
        let err = run(Ring::procs(3, 50), NoFailures, RunConfig::new(3, 10)).unwrap_err();
        match err {
            RunError::RoundLimit { limit, .. } => assert_eq!(limit, 10),
            other => panic!("expected RoundLimit, got {other}"),
        }
    }

    #[test]
    fn silent_crash_of_token_holder_deadlocks_the_ring() {
        // Crash p1 the round it would forward the token: the remaining
        // processes wait forever — the engine must detect this, not hang.
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::silent());
        let err = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap_err();
        match err {
            RunError::Deadlock { alive, .. } => assert_eq!(alive, vec![Pid::new(2)]),
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn crash_with_full_delivery_lets_the_token_escape() {
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::after_round());
        let report = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap();
        // p1 crashed but its work and send both counted.
        assert_eq!(report.metrics.work_total, 3);
        assert_eq!(report.metrics.messages, 2);
        assert_eq!(report.metrics.crashes, 1);
        assert_eq!(report.statuses[1], Status::Crashed(2));
        assert!(report.has_survivor());
    }

    #[test]
    fn crash_with_suppressed_work_uncounts_the_unit() {
        let schedule = CrashSchedule::new().crash_at(
            Pid::new(2),
            3,
            CrashSpec { deliver: crate::Deliver::All, count_work: false },
        );
        let report = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap();
        assert_eq!(report.metrics.work_total, 2);
        assert!(!report.metrics.all_work_done());
        assert_eq!(report.metrics.missing_units(), vec![Unit::new(3)]);
    }

    #[test]
    fn dead_letters_are_counted_for_retired_recipients() {
        // Crash p1 one round before the token reaches it.
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 1, CrashSpec::silent());
        let err = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap_err();
        match err {
            RunError::Deadlock { metrics, .. } => {
                assert_eq!(metrics.dead_letters, 1);
                assert_eq!(metrics.messages, 1);
            }
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn trace_records_all_event_kinds() {
        let report =
            run(Ring::procs(2, 1), NoFailures, RunConfig::new(2, 100).with_trace()).unwrap();
        let kinds: Vec<&str> = report
            .trace
            .events()
            .iter()
            .map(|e| match e {
                Event::Work { .. } => "work",
                Event::Send { .. } => "send",
                Event::Terminate { .. } => "terminate",
                Event::Crash { .. } => "crash",
                Event::Note { .. } => "note",
            })
            .collect();
        assert_eq!(kinds, vec!["work", "send", "terminate", "work", "terminate"]);
    }

    #[test]
    fn statuses_report_rounds() {
        let report = run(Ring::procs(2, 1), NoFailures, RunConfig::new(2, 100)).unwrap();
        assert_eq!(report.statuses[0], Status::Terminated(1));
        assert_eq!(report.statuses[1], Status::Terminated(2));
        assert!(Status::Crashed(3).is_retired());
        assert!(!Status::Alive.is_retired());
        assert_eq!(Status::Terminated(2).round(), Some(2));
        assert_eq!(Status::Alive.round(), None);
    }
}
