//! The synchronous round engine.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::adversary::{Adversary, AdversaryCtx, Fate};
use crate::effects::{Effects, Recipients};
use crate::ids::{Pid, Round};
use crate::message::{Classify, FlightOp, Inbox};
use crate::metrics::Metrics;
use crate::protocol::Protocol;
use crate::trace::{Event, Trace};

/// Final status of a process after a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Still alive when the run ended (only possible on error results).
    Alive,
    /// Crashed during the given round.
    Crashed(Round),
    /// Terminated voluntarily during the given round.
    Terminated(Round),
}

impl Status {
    /// Whether the process retired (crashed or terminated).
    pub fn is_retired(&self) -> bool {
        !matches!(self, Status::Alive)
    }

    /// Whether the process survived to normal termination.
    pub fn is_terminated(&self) -> bool {
        matches!(self, Status::Terminated(_))
    }

    /// The retirement round, if retired.
    pub fn round(&self) -> Option<Round> {
        match self {
            Status::Alive => None,
            Status::Crashed(r) | Status::Terminated(r) => Some(*r),
        }
    }
}

/// Configuration of a synchronous run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of work units (pre-sizes the per-unit multiplicity table).
    pub n: usize,
    /// Hard cap on the number of rounds; exceeding it is an error
    /// ([`RunError::RoundLimit`]). Protects against protocol bugs; set it
    /// above the protocol's proven time bound.
    pub max_rounds: Round,
    /// Whether to record a full [`Trace`] (tests: yes; large sweeps: no).
    pub record_trace: bool,
    /// Watchdog window: the maximum number of consecutive *executed* rounds
    /// tolerated without observable progress (a delivery to a live process,
    /// a unit of work, a retirement, or a live-set change) before the run
    /// is aborted with [`RunError::Stalled`]. Rounds skipped by the sparse
    /// fast-forward are provably quiescent and never count against the
    /// window, so deep-idle protocols (Protocol C's `2^k`-round waits) are
    /// not false positives. `None` disables the watchdog.
    pub stall_window: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            n: 0,
            max_rounds: Round::new(10_000_000),
            record_trace: false,
            stall_window: None,
        }
    }
}

impl RunConfig {
    /// Convenience constructor for an `n`-unit workload with a round cap
    /// (`u64` values and bare literals convert; pass a [`Round`] for wide
    /// caps such as [`Round::MAX`]).
    pub fn new(n: usize, max_rounds: impl Into<Round>) -> Self {
        RunConfig { n, max_rounds: max_rounds.into(), ..RunConfig::default() }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Arms the livelock watchdog (see [`RunConfig::stall_window`]).
    pub fn with_stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }
}

/// Outcome of a completed run: every process retired.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Report {
    /// Work / message / round counters.
    pub metrics: Metrics,
    /// Event log (empty unless [`RunConfig::record_trace`] was set).
    pub trace: Trace,
    /// Final per-process statuses, indexed by pid.
    pub statuses: Vec<Status>,
}

impl Report {
    /// Processes that terminated normally (the survivors).
    ///
    /// Allocates; hot callers that only iterate or count should use
    /// [`survivors_iter`](Report::survivors_iter) or
    /// [`survivor_count`](Report::survivor_count).
    pub fn survivors(&self) -> Vec<Pid> {
        self.survivors_iter().collect()
    }

    /// Iterates over the processes that terminated normally, in pid order,
    /// without building an intermediate `Vec`.
    pub fn survivors_iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_terminated())
            .map(|(i, _)| Pid::new(i))
    }

    /// Number of processes that terminated normally.
    pub fn survivor_count(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_terminated()).count()
    }

    /// Whether at least one process survived — the premise of the paper's
    /// correctness guarantee.
    pub fn has_survivor(&self) -> bool {
        self.statuses.iter().any(Status::is_terminated)
    }
}

/// Watchdog report attached to abnormal exits: who is stuck, since when,
/// and what (if anything) is still in flight. Produced by the progress
/// monitor when it aborts a stalled run ([`RunError::Stalled`]) and to
/// classify [`RunError::RoundLimit`] exits, which previously timed out
/// with nothing but a metrics dump.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct StallDiagnosis {
    /// Round at which the diagnosis was taken.
    pub round: Round,
    /// Last round with observable progress ([`Round::ZERO`] if none ever).
    pub last_progress: Round,
    /// Processes still alive — the stall suspects.
    pub stalled: Vec<Pid>,
    /// Cached next wakeup of each stalled process (`None` = purely
    /// reactive: it will never act unless a message arrives).
    pub wakeups: Vec<(Pid, Option<Round>)>,
    /// Send ops still in flight (due for delivery next executed round).
    pub pending_ops: usize,
    /// Crash-recoveries scheduled but not yet fired.
    pub pending_revivals: usize,
}

impl fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at round {}, last progress at round {}: {} process(es) stalled",
            self.round,
            self.last_progress,
            self.stalled.len()
        )?;
        for (i, (pid, wake)) in self.wakeups.iter().take(8).enumerate() {
            let sep = if i == 0 { " [" } else { ", " };
            match wake {
                Some(w) => write!(f, "{sep}{pid}: wakes {w}")?,
                None => write!(f, "{sep}{pid}: reactive")?,
            }
        }
        if !self.wakeups.is_empty() {
            if self.wakeups.len() > 8 {
                write!(f, ", +{} more]", self.wakeups.len() - 8)?;
            } else {
                write!(f, "]")?;
            }
        }
        write!(
            f,
            "; {} op(s) in flight, {} revival(s) pending",
            self.pending_ops, self.pending_revivals
        )
    }
}

/// Why a run failed to complete.
#[derive(Debug)]
pub enum RunError {
    /// The configured round cap was exceeded (likely a protocol bug or an
    /// undersized cap).
    RoundLimit {
        /// The cap that was exceeded.
        limit: Round,
        /// Metrics at the moment the run was abandoned.
        metrics: Box<Metrics>,
        /// Who was still alive and what they were waiting on.
        diagnosis: Box<StallDiagnosis>,
    },
    /// No messages in flight, no process due to wake, no adversary event —
    /// but some processes are still alive. The protocol livelocked.
    Deadlock {
        /// Round at which the deadlock was detected.
        round: Round,
        /// Processes still alive.
        alive: Vec<Pid>,
        /// Metrics at the moment of deadlock.
        metrics: Box<Metrics>,
    },
    /// The watchdog aborted the run: [`RunConfig::stall_window`] consecutive
    /// executed rounds passed with no delivery, no work, no retirement, and
    /// no live-set change. Unlike [`RunError::Deadlock`] (provably nothing
    /// can ever happen) this is a heuristic livelock verdict: processes are
    /// executing but none of it is observable progress.
    Stalled {
        /// Round at which the watchdog fired.
        round: Round,
        /// The configured window that was exhausted.
        window: u64,
        /// Who is stuck and what they were waiting on.
        diagnosis: Box<StallDiagnosis>,
        /// Metrics at the moment the run was abandoned.
        metrics: Box<Metrics>,
    },
    /// The adversary's fault schedule is self-contradictory or unsurvivable
    /// (see [`Adversary::validate`]); the run was refused before round 1.
    InvalidAdversary {
        /// Why the schedule was rejected.
        reason: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RoundLimit { limit, diagnosis, .. } => {
                write!(
                    f,
                    "round limit of {limit} exceeded before all processes retired ({diagnosis})"
                )
            }
            RunError::Deadlock { round, alive, .. } => {
                write!(f, "deadlock at round {round}: processes {alive:?} alive but nothing can ever happen")
            }
            RunError::Stalled { round, window, diagnosis, .. } => {
                write!(f, "watchdog: no progress for {window} executed round(s) as of round {round} ({diagnosis})")
            }
            RunError::InvalidAdversary { reason } => {
                write!(f, "invalid adversary schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Runs a synchronous execution until every process retires.
///
/// Processes are identified by their index in `procs`. Rounds are numbered
/// from 1. Each executed round:
///
/// 1. messages sent in the previous round are delivered (to alive
///    recipients; the rest become dead letters);
/// 2. every alive process [`step`](Protocol::step)s, in pid order, against
///    the state as of the start of the round;
/// 3. the [`Adversary`] rules on each process's fate; surviving effects are
///    applied, crashing processes deliver only the subset the adversary
///    allows.
///
/// Rounds in which provably nothing can happen are skipped in O(1) (see
/// the quiescence contract on [`Protocol`]); skipped rounds still advance
/// the round counter, so time metrics are unaffected.
///
/// # Errors
///
/// Returns [`RunError::RoundLimit`] if the cap is exceeded and
/// [`RunError::Deadlock`] if live processes can never act again.
///
/// # Examples
///
/// ```
/// use doall_sim::{run, NoFailures, RunConfig, Protocol, Effects, Inbox, Classify, Round};
///
/// #[derive(Clone, Debug)]
/// struct Nop;
/// impl Classify for Nop {}
///
/// struct Quit;
/// impl Protocol for Quit {
///     type Msg = Nop;
///     fn step(&mut self, _: Round, _: Inbox<'_, Nop>, eff: &mut Effects<Nop>) {
///         eff.terminate();
///     }
///     fn next_wakeup(&self, now: Round) -> Option<Round> { Some(now) }
/// }
///
/// let report = run(vec![Quit, Quit], NoFailures, RunConfig::default())?;
/// assert_eq!(report.metrics.rounds, 1u64);
/// assert_eq!(report.survivors().len(), 2);
/// # Ok::<(), doall_sim::RunError>(())
/// ```
pub fn run<P, A>(procs: Vec<P>, adversary: A, cfg: RunConfig) -> Result<Report, RunError>
where
    P: Protocol,
    A: Adversary<P::Msg>,
{
    run_returning(procs, adversary, cfg).map(|(report, _)| report)
}

/// Per-round delivery index over the in-flight op table, in CSR style:
/// recipient `p`'s inbox is `index[offset[p] .. offset[p] + count[p]]`, a
/// list of op ids. All scratch is recycled round to round; the `stamp`
/// array (last round that touched each slot) replaces any O(t) per-round
/// reset — only recipients actually addressed this round cost anything.
struct DeliveryIndex {
    stamp: Vec<Round>,
    count: Vec<u32>,
    offset: Vec<u32>,
    cursor: Vec<u32>,
    index: Vec<u32>,
    touched: Vec<usize>,
    /// Per-(message, recipient) receive-omission verdicts, in pending-op
    /// iteration order; recycled scratch for
    /// [`build_filtered`](DeliveryIndex::build_filtered).
    omit: Vec<bool>,
}

impl DeliveryIndex {
    fn new(t: usize) -> Self {
        DeliveryIndex {
            stamp: vec![Round::ZERO; t],
            count: vec![0; t],
            offset: vec![0; t],
            cursor: vec![0; t],
            index: Vec::new(),
            touched: Vec::new(),
            omit: Vec::new(),
        }
    }

    /// Builds the index for `round` from the in-flight ops, intersecting
    /// every span with the live set: dead recipients never enter the index
    /// (they are tallied as dead letters), so delivery work is proportional
    /// to *live* deliveries plus ops. Returns the dead-letter count.
    fn build<M>(&mut self, round: Round, pending: &[FlightOp<M>], alive: &[bool]) -> u64 {
        self.touched.clear();
        let mut dead: u64 = 0;
        for op in pending {
            for p in op.to.iter() {
                let i = p.index();
                if alive[i] {
                    if self.stamp[i] != round {
                        self.stamp[i] = round;
                        self.count[i] = 0;
                        self.touched.push(i);
                    }
                    self.count[i] += 1;
                } else {
                    dead += 1;
                }
            }
        }
        let mut cum: u32 = 0;
        for &i in &self.touched {
            self.offset[i] = cum;
            self.cursor[i] = cum;
            cum += self.count[i];
        }
        self.index.clear();
        self.index.resize(cum as usize, 0);
        for (id, op) in pending.iter().enumerate() {
            for p in op.to.iter() {
                let i = p.index();
                if alive[i] {
                    self.index[self.cursor[i] as usize] = id as u32;
                    self.cursor[i] += 1;
                }
            }
        }
        dead
    }

    /// Whether recipient `i` was addressed by a live delivery this round.
    fn has_inbox(&self, round: Round, i: usize) -> bool {
        self.stamp[i] == round
    }

    /// The inbox of recipient `i` for `round` (empty if nothing was
    /// addressed to it this round).
    fn inbox<'a, M>(&'a self, round: Round, i: usize, ops: &'a [FlightOp<M>]) -> Inbox<'a, M> {
        if self.stamp[i] == round {
            let lo = self.offset[i] as usize;
            let hi = lo + self.count[i] as usize;
            Inbox::csr(&self.index[lo..hi], ops)
        } else {
            Inbox::empty()
        }
    }

    /// [`build`](DeliveryIndex::build) with a receive-omission filter: the
    /// adversary is consulted exactly once per (message, recipient) — in
    /// the first pass, with the verdicts replayed from scratch in the
    /// second — and suppressed deliveries never enter the index. Dead
    /// recipients are classified first (a message to a retired process is
    /// a dead letter, never an omission). When `trace` is given, each
    /// suppressed delivery leaves a `"fault:omit"` note at the recipient —
    /// the receive-omission symptom. Returns (dead letters, omitted).
    fn build_filtered<M, A: Adversary<M>>(
        &mut self,
        round: Round,
        pending: &[FlightOp<M>],
        alive: &[bool],
        adversary: &mut A,
        mut trace: Option<&mut Trace>,
    ) -> (u64, u64) {
        self.touched.clear();
        self.omit.clear();
        let mut dead: u64 = 0;
        let mut omitted: u64 = 0;
        for op in pending {
            for p in op.to.iter() {
                let i = p.index();
                if !alive[i] {
                    dead += 1;
                    self.omit.push(false);
                    continue;
                }
                let drop = adversary.omits_delivery(round, op.from, p);
                self.omit.push(drop);
                if drop {
                    omitted += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(Event::Note { round, pid: p, tag: "fault:omit" });
                    }
                    continue;
                }
                if self.stamp[i] != round {
                    self.stamp[i] = round;
                    self.count[i] = 0;
                    self.touched.push(i);
                }
                self.count[i] += 1;
            }
        }
        let mut cum: u32 = 0;
        for &i in &self.touched {
            self.offset[i] = cum;
            self.cursor[i] = cum;
            cum += self.count[i];
        }
        self.index.clear();
        self.index.resize(cum as usize, 0);
        let mut k = 0usize;
        for (id, op) in pending.iter().enumerate() {
            for p in op.to.iter() {
                let i = p.index();
                let drop = self.omit[k];
                k += 1;
                if alive[i] && !drop {
                    self.index[self.cursor[i] as usize] = id as u32;
                    self.cursor[i] += 1;
                }
            }
        }
        (dead, omitted)
    }
}

/// Like [`run`], but also hands back the final per-process protocol states,
/// for protocols whose outcome lives in process state (e.g. the decision
/// value of a Byzantine-agreement process).
///
/// # Errors
///
/// As [`run`].
pub fn run_returning<P, A>(
    procs: Vec<P>,
    adversary: A,
    cfg: RunConfig,
) -> Result<(Report, Vec<P>), RunError>
where
    P: Protocol,
    A: Adversary<P::Msg>,
{
    let mut engine = Engine::new(procs, adversary, cfg)?;
    engine.run_until(None)?;
    Ok(engine.into_report())
}

/// A checkpoint of a paused [`Engine`]: everything the run's future depends
/// on — protocol states, the adversary (including any consumed-fault or RNG
/// state), in-flight send ops, the live set, the wakeup cache, metrics,
/// trace, and the 128-bit [`Round`] clock. Resuming via
/// [`Engine::resume`] continues the run **bit-identically** to one that was
/// never interrupted (see `tests/snapshot_differential.rs`).
///
/// The snapshot owns its data (it is deep-cloned out of the engine), so it
/// remains valid after the original engine advances or is dropped. All
/// component types derive `Serialize`/`Deserialize`; with a real serde
/// implementation in the workspace (see `vendor/README.md`) a snapshot can
/// be persisted wholesale, provided `P`, `A`, and the message type also
/// serialize.
#[derive(Serialize, Deserialize)]
pub struct EngineSnapshot<P: Protocol, A> {
    procs: Vec<P>,
    adversary: A,
    cfg: RunConfig,
    round: Round,
    statuses: Vec<Status>,
    alive: Vec<bool>,
    live: usize,
    order: Vec<u32>,
    metrics: Metrics,
    trace: Trace,
    pending: Vec<FlightOp<P::Msg>>,
    wakeup: Vec<Option<Round>>,
    revive: Vec<Option<(Round, bool)>>,
    pending_revivals: usize,
    next_revive: Option<Round>,
    last_progress: Round,
    stall_streak: u64,
    finished: bool,
}

impl<P, A> EngineSnapshot<P, A>
where
    P: Protocol,
{
    /// The round boundary this snapshot was taken at.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Metrics accumulated up to the snapshot point.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl<P, A> Clone for EngineSnapshot<P, A>
where
    P: Protocol + Clone,
    P::Msg: Clone,
    A: Clone,
{
    fn clone(&self) -> Self {
        EngineSnapshot {
            procs: self.procs.clone(),
            adversary: self.adversary.clone(),
            cfg: self.cfg.clone(),
            round: self.round,
            statuses: self.statuses.clone(),
            alive: self.alive.clone(),
            live: self.live,
            order: self.order.clone(),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            pending: self.pending.clone(),
            wakeup: self.wakeup.clone(),
            revive: self.revive.clone(),
            pending_revivals: self.pending_revivals,
            next_revive: self.next_revive,
            last_progress: self.last_progress,
            stall_streak: self.stall_streak,
            finished: self.finished,
        }
    }
}

/// The synchronous round engine as a resumable state machine.
///
/// [`run`] and [`run_returning`] drive an `Engine` to completion in one
/// call; constructing one directly buys three extra capabilities:
///
/// * **Incremental execution** — [`run_until`](Engine::run_until) pauses at
///   a round boundary, so a caller can interleave simulation with
///   inspection ([`round`](Engine::round), [`metrics`](Engine::metrics)).
/// * **Checkpoint/restore** — [`snapshot`](Engine::snapshot) captures the
///   complete run state at any pause point and [`resume`](Engine::resume)
///   reconstructs an engine that continues bit-identically; scratch
///   buffers (the delivery index, effect buffers) are rebuilt fresh, which
///   is safe because the round clock is strictly monotone and the delivery
///   index's stamps can only match rounds they were built in.
/// * **Watchdog** — with [`RunConfig::stall_window`] set, the engine
///   monitors observable progress every executed round and aborts livelocks
///   with a [`StallDiagnosis`] instead of burning the round budget.
///
/// Each executed round runs the same phases as the classic loop: revivals,
/// delivery, stepping with adversary interception, retirement bookkeeping,
/// then a sparse fast-forward over provably idle rounds.
pub struct Engine<P: Protocol, A: Adversary<P::Msg>> {
    procs: Vec<P>,
    adversary: A,
    cfg: RunConfig,
    statuses: Vec<Status>,
    // The live-set, maintained incrementally as processes retire: `alive`
    // mirrors `statuses` and `live` counts its `true` entries, so neither
    // the adversary context nor the retirement check rescans statuses.
    alive: Vec<bool>,
    live: usize,
    // Alive pids in pid order, compacted lazily once more than half are
    // tombstones: the step loop visits O(live) slots per round instead of
    // scanning all `t` statuses (decisive when a handful of survivors run
    // for ~10^6 rounds in a t = 1024 system).
    order: Vec<u32>,
    metrics: Metrics,
    trace: Trace,
    record: bool,
    // In-flight send ops awaiting delivery at `round`. Part of snapshots:
    // messages cross a round boundary, so a checkpoint without them would
    // silently drop a whole round of traffic.
    pending: Vec<FlightOp<P::Msg>>,
    round: Round,
    // Per-process wakeup cache: the earliest round at which each process
    // may act spontaneously (`None` = purely reactive, `Some(Round::MAX)`
    // = a deadline saturated past the horizon, which fires *at* the
    // horizon). A process is *stepped* only when it is due, has an inbox,
    // or the adversary has an event scheduled this round — by the
    // quiescence contract on [`Protocol`], the skipped invocations were
    // provably no-ops. The cache is refreshed after every step (the only
    // moments process state can change), so entries for untouched
    // processes stay valid and the fast-forward jump below reads the
    // minimum straight off this table.
    wakeup: Vec<Option<Round>>,
    // Crash-recovery bookkeeping: `revive[p]` holds the scheduled restart
    // round (and whether the state is wiped) for a process crashed via
    // [`Fate::CrashRecover`]; `next_revive` caches the minimum so the
    // common (no recoveries pending) round costs one comparison.
    revive: Vec<Option<(Round, bool)>>,
    pending_revivals: usize,
    next_revive: Option<Round>,
    // Watchdog state: last round with observable progress and the length
    // of the current no-progress streak of executed rounds.
    last_progress: Round,
    stall_streak: u64,
    finished: bool,
    // Scratch buffers, allocated once and recycled every round; excluded
    // from snapshots and rebuilt on resume. In steady state the loop
    // performs no allocation: `eff` is reset (not rebuilt), the two op
    // buffers swap roles each round, and the delivery index grows only to
    // the high-water mark of per-round live deliveries. The in-flight
    // buffers hold send *ops* (payload stored once per broadcast), never
    // per-recipient envelopes.
    eff: Effects<P::Msg>,
    next_pending: Vec<FlightOp<P::Msg>>,
    delivery: DeliveryIndex,
}

impl<P, A> Engine<P, A>
where
    P: Protocol,
    A: Adversary<P::Msg>,
{
    /// Builds an engine over `procs` (pid = index) paused before round 1.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidAdversary`] if the adversary rejects the
    /// system shape (see [`Adversary::validate`]).
    pub fn new(procs: Vec<P>, adversary: A, cfg: RunConfig) -> Result<Self, RunError> {
        if let Err(reason) = adversary.validate(procs.len()) {
            return Err(RunError::InvalidAdversary { reason });
        }
        let t = procs.len();
        let wakeup =
            procs.iter().map(|p| p.next_wakeup(Round::ONE).map(|w| w.max(Round::ONE))).collect();
        Ok(Engine {
            statuses: vec![Status::Alive; t],
            alive: vec![true; t],
            live: t,
            order: (0..t as u32).collect(),
            metrics: Metrics::new(cfg.n),
            trace: Trace::new(),
            record: cfg.record_trace,
            pending: Vec::new(),
            round: Round::ONE,
            wakeup,
            revive: vec![None; t],
            pending_revivals: 0,
            next_revive: None,
            last_progress: Round::ZERO,
            stall_streak: 0,
            finished: false,
            eff: Effects::new(),
            next_pending: Vec::new(),
            delivery: DeliveryIndex::new(t),
            procs,
            adversary,
            cfg,
        })
    }

    /// The round the engine is paused at (the next round to execute, or
    /// the final round once [`is_finished`](Engine::is_finished)).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Whether every process has retired (the run is complete).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Runs until completion or, if `stop` is given, pauses at the first
    /// round boundary at or past `stop` (the sparse fast-forward may jump
    /// the clock past `stop`; the pause lands on the next *visited*
    /// boundary, so pausing never changes which rounds execute). Returns
    /// `true` when the run completed, `false` when it paused.
    ///
    /// # Errors
    ///
    /// As [`run`], plus [`RunError::Stalled`] when the watchdog is armed.
    pub fn run_until(&mut self, stop: Option<Round>) -> Result<bool, RunError> {
        while !self.finished {
            if stop.is_some_and(|s| self.round >= s) {
                return Ok(false);
            }
            self.advance()?;
        }
        Ok(true)
    }

    /// Deep-copies the complete run state into an owned [`EngineSnapshot`].
    pub fn snapshot(&self) -> EngineSnapshot<P, A>
    where
        P: Clone,
        P::Msg: Clone,
        A: Clone,
    {
        EngineSnapshot {
            procs: self.procs.clone(),
            adversary: self.adversary.clone(),
            cfg: self.cfg.clone(),
            round: self.round,
            statuses: self.statuses.clone(),
            alive: self.alive.clone(),
            live: self.live,
            order: self.order.clone(),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            pending: self.pending.clone(),
            wakeup: self.wakeup.clone(),
            revive: self.revive.clone(),
            pending_revivals: self.pending_revivals,
            next_revive: self.next_revive,
            last_progress: self.last_progress,
            stall_streak: self.stall_streak,
            finished: self.finished,
        }
    }

    /// Reconstructs an engine from a snapshot. Scratch state (delivery
    /// index, effect buffers) is rebuilt empty; stale-stamp reasoning makes
    /// that equivalent to the buffers the original engine carried (stamps
    /// only ever match the round they were built in, and the clock is
    /// strictly monotone). The continuation is bit-identical to the
    /// uninterrupted run.
    pub fn resume(snapshot: EngineSnapshot<P, A>) -> Self {
        let t = snapshot.procs.len();
        Engine {
            record: snapshot.cfg.record_trace,
            procs: snapshot.procs,
            adversary: snapshot.adversary,
            cfg: snapshot.cfg,
            round: snapshot.round,
            statuses: snapshot.statuses,
            alive: snapshot.alive,
            live: snapshot.live,
            order: snapshot.order,
            metrics: snapshot.metrics,
            trace: snapshot.trace,
            pending: snapshot.pending,
            wakeup: snapshot.wakeup,
            revive: snapshot.revive,
            pending_revivals: snapshot.pending_revivals,
            next_revive: snapshot.next_revive,
            last_progress: snapshot.last_progress,
            stall_streak: snapshot.stall_streak,
            finished: snapshot.finished,
            eff: Effects::new(),
            next_pending: Vec::new(),
            delivery: DeliveryIndex::new(t),
        }
    }

    /// Consumes the engine into its [`Report`] and final protocol states.
    /// Meaningful once [`is_finished`](Engine::is_finished); on an
    /// unfinished engine it reports the state as of the pause point
    /// (statuses of still-running processes read [`Status::Alive`]).
    pub fn into_report(self) -> (Report, Vec<P>) {
        (Report { metrics: self.metrics, trace: self.trace, statuses: self.statuses }, self.procs)
    }

    /// The watchdog's view of the paused engine: who is alive, what they
    /// are waiting on, and what is in flight.
    fn diagnosis(&self) -> StallDiagnosis {
        let stalled: Vec<Pid> =
            self.alive.iter().enumerate().filter(|(_, a)| **a).map(|(i, _)| Pid::new(i)).collect();
        let wakeups = stalled.iter().map(|&p| (p, self.wakeup[p.index()])).collect();
        StallDiagnosis {
            round: self.round,
            last_progress: self.last_progress,
            stalled,
            wakeups,
            pending_ops: self.pending.len(),
            pending_revivals: self.pending_revivals,
        }
    }

    fn round_limit(&self) -> RunError {
        RunError::RoundLimit {
            limit: self.cfg.max_rounds,
            metrics: Box::new(self.metrics.clone()),
            diagnosis: Box::new(self.diagnosis()),
        }
    }

    /// Executes one round (plus any sparse fast-forward that follows it),
    /// leaving the engine paused at the next round boundary.
    fn advance(&mut self) -> Result<(), RunError> {
        let t = self.procs.len();
        let round = self.round;
        if round > self.cfg.max_rounds {
            return Err(self.round_limit());
        }

        // Progress baseline for the watchdog: any retirement, recovery, or
        // unit of work moves one of these counters.
        let work0 = self.metrics.work_total;
        let crashes0 = self.metrics.crashes;
        let terminations0 = self.metrics.terminations;
        let recoveries0 = self.metrics.recoveries;

        // 0. Restart processes whose recovery downtime has elapsed — before
        //    delivery, so messages arriving this very round are received.
        if self.pending_revivals > 0 && self.next_revive.is_some_and(|r| r <= round) {
            self.next_revive = None;
            for idx in 0..t {
                match self.revive[idx] {
                    Some((at, wipe)) if at <= round => {
                        self.revive[idx] = None;
                        self.pending_revivals -= 1;
                        self.statuses[idx] = Status::Alive;
                        self.alive[idx] = true;
                        self.live += 1;
                        self.metrics.recoveries += 1;
                        self.procs[idx].on_recover(round, wipe);
                        self.wakeup[idx] = self.procs[idx].next_wakeup(round).map(|w| w.max(round));
                        if self.record {
                            self.trace.push(Event::Recover { round, pid: Pid::new(idx) });
                        }
                    }
                    Some((at, _)) => {
                        self.next_revive = Some(self.next_revive.map_or(at, |r| r.min(at)))
                    }
                    None => {}
                }
            }
        }

        // 1. Deliver last round's messages: index the in-flight ops by live
        //    recipient; spans are intersected with the live set and dead
        //    recipients become dead letters without ever materializing.
        let have_inbox = !self.pending.is_empty();
        if have_inbox {
            if self.adversary.filters_deliveries() {
                let (dead, omitted) = self.delivery.build_filtered(
                    round,
                    &self.pending,
                    &self.alive,
                    &mut self.adversary,
                    self.record.then_some(&mut self.trace),
                );
                self.metrics.dead_letters += dead;
                self.metrics.omissions += omitted;
            } else {
                self.metrics.dead_letters += self.delivery.build(round, &self.pending, &self.alive);
            }
        }
        // A delivery to at least one live, non-omitted recipient counts as
        // observable progress for the watchdog.
        let delivered = have_inbox && !self.delivery.touched.is_empty();

        // An adversary event scheduled for this very round (e.g. a crash of
        // an otherwise idle process) disables sparse stepping for the
        // round: every alive process must face `intercept`, exactly as in
        // the dense engine. Adversaries that may act any round (random
        // crashes with budget left) return `Some(now)` and keep the dense
        // behaviour bit-for-bit.
        let adv_due = self.adversary.next_event(round).is_some_and(|r| r <= round);

        // 2 & 3. Step every due alive process; let the adversary rule on it.
        let mut tombstones = 0usize;
        for oi in 0..self.order.len() {
            let idx = self.order[oi] as usize;
            if !self.alive[idx] {
                tombstones += 1;
                continue;
            }
            let due = have_inbox && self.delivery.has_inbox(round, idx);
            if !adv_due && !due && self.wakeup[idx].is_none_or(|w| w > round) {
                continue; // provably a no-op (quiescence contract)
            }
            let pid = Pid::new(idx);
            self.eff.reset();
            let inbox =
                if due { self.delivery.inbox(round, idx, &self.pending) } else { Inbox::empty() };
            self.procs[idx].step(round, inbox, &mut self.eff);

            let ctx = AdversaryCtx {
                t,
                alive: &self.alive,
                live: self.live,
                crashes: self.metrics.crashes,
            };
            let fate = self.adversary.intercept(round, pid, &self.eff, ctx);
            // Copy out the recovery schedule (if any) before the match
            // below borrows `fate`'s crash spec.
            let recover_plan = match fate {
                Fate::CrashRecover { downtime, wipe, .. } => Some((downtime.max(1), wipe)),
                _ => None,
            };

            if self.record {
                for tag in self.eff.notes() {
                    self.trace.push(Event::Note { round, pid, tag });
                }
            }

            match fate {
                Fate::Survive => {
                    if let Some(unit) = self.eff.work() {
                        self.metrics.record_work(unit);
                        if self.record {
                            self.trace.push(Event::Work { round, pid, unit });
                        }
                    }
                    let terminated = self.eff.is_terminated();
                    let mut out = Outbound {
                        metrics: &mut self.metrics,
                        trace: &mut self.trace,
                        record: self.record,
                        next_pending: &mut self.next_pending,
                        round,
                    };
                    for op in self.eff.drain_sends() {
                        out.deliver(pid, op.to, op.payload);
                    }
                    if terminated {
                        self.statuses[idx] = Status::Terminated(round);
                        self.alive[idx] = false;
                        self.live -= 1;
                        self.metrics.terminations += 1;
                        if self.record {
                            self.trace.push(Event::Terminate { round, pid });
                        }
                    }
                }
                Fate::Omit(ref filter) => {
                    // Send-omission: the process survives and everything
                    // but the filtered sends applies.
                    if let Some(unit) = self.eff.work() {
                        self.metrics.record_work(unit);
                        if self.record {
                            self.trace.push(Event::Work { round, pid, unit });
                        }
                    }
                    let terminated = self.eff.is_terminated();
                    let total = self.eff.send_count() as u64;
                    let before = self.metrics.messages;
                    let mut out = Outbound {
                        metrics: &mut self.metrics,
                        trace: &mut self.trace,
                        record: self.record,
                        next_pending: &mut self.next_pending,
                        round,
                    };
                    out.deliver_crash_subset(pid, &mut self.eff, filter);
                    let suppressed = total - (self.metrics.messages - before);
                    self.metrics.omissions += suppressed;
                    if self.record && suppressed > 0 {
                        self.trace.push(Event::Note { round, pid, tag: "fault:omit" });
                    }
                    if terminated {
                        self.statuses[idx] = Status::Terminated(round);
                        self.alive[idx] = false;
                        self.live -= 1;
                        self.metrics.terminations += 1;
                        if self.record {
                            self.trace.push(Event::Terminate { round, pid });
                        }
                    }
                }
                Fate::Crash(ref spec) | Fate::CrashRecover { ref spec, .. } => {
                    if spec.count_work {
                        if let Some(unit) = self.eff.work() {
                            self.metrics.record_work(unit);
                            if self.record {
                                self.trace.push(Event::Work { round, pid, unit });
                            }
                        }
                    }
                    let mut out = Outbound {
                        metrics: &mut self.metrics,
                        trace: &mut self.trace,
                        record: self.record,
                        next_pending: &mut self.next_pending,
                        round,
                    };
                    out.deliver_crash_subset(pid, &mut self.eff, &spec.deliver);
                    self.statuses[idx] = Status::Crashed(round);
                    self.alive[idx] = false;
                    self.live -= 1;
                    self.metrics.crashes += 1;
                    if self.record {
                        self.trace.push(Event::Crash { round, pid });
                    }
                    if let Some((downtime, wipe)) = recover_plan {
                        let at = round.saturating_add(u128::from(downtime));
                        self.revive[idx] = Some((at, wipe));
                        self.pending_revivals += 1;
                        self.next_revive = Some(self.next_revive.map_or(at, |r| r.min(at)));
                    }
                }
            }
            // The step may have changed this process's timing state;
            // refresh its cached wakeup (retired slots are never read).
            if self.alive[idx] {
                let next = round.saturating_add(1);
                self.wakeup[idx] = self.procs[idx].next_wakeup(next).map(|w| w.max(next));
            }
        }
        if tombstones * 2 > self.order.len() {
            // Keep slots with a scheduled revival: they will be alive again.
            let revive = &self.revive;
            let alive = &self.alive;
            self.order.retain(|&i| alive[i as usize] || revive[i as usize].is_some());
        }

        // Did everyone retire? (A scheduled revival is not retirement.)
        if self.live == 0 && self.pending_revivals == 0 {
            self.metrics.rounds = round;
            self.finished = true;
            return Ok(());
        }

        // Swap the op buffers: last round's deliveries become the new
        // scratch, this round's sends become the in-flight set.
        std::mem::swap(&mut self.pending, &mut self.next_pending);
        self.next_pending.clear();

        // Watchdog: an executed round with no delivery, no work, and no
        // live-set movement extends the no-progress streak; exhausting the
        // window is a livelock verdict. Fast-forwarded rounds (below) are
        // provably quiescent and never counted.
        let progress = delivered
            || self.metrics.work_total != work0
            || self.metrics.crashes != crashes0
            || self.metrics.terminations != terminations0
            || self.metrics.recoveries != recoveries0;
        if progress {
            self.last_progress = round;
            self.stall_streak = 0;
        } else {
            self.stall_streak += 1;
            if let Some(window) = self.cfg.stall_window {
                if self.stall_streak > window {
                    return Err(RunError::Stalled {
                        round,
                        window,
                        diagnosis: Box::new(self.diagnosis()),
                        metrics: Box::new(self.metrics.clone()),
                    });
                }
            }
        }

        // Sparse fast-forward through provably idle rounds: with nothing in
        // flight, jump the clock straight to the earliest cached wakeup or
        // scheduled adversary event — one O(live) scan per jump, however
        // astronomically far the target lies (Protocol C's silent waiting
        // phases cost exactly one jump each on the 128-bit clock). A
        // saturated wakeup (`Round::MAX`) is a legal target: a deadline
        // past the representable horizon fires *at* the horizon, exactly
        // as the old 64-bit clock fired saturated deadlines at `u64::MAX`.
        let advanced = if self.pending.is_empty() {
            let next = round.saturating_add(1);
            let wake = self
                .order
                .iter()
                .map(|&i| i as usize)
                .filter(|&i| self.alive[i])
                .filter_map(|i| self.wakeup[i])
                .map(|w| w.max(next))
                .min();
            let adv = self.adversary.next_event(next).map(|r| r.max(next));
            let rev = if self.pending_revivals > 0 {
                self.next_revive.map(|r| r.max(next))
            } else {
                None
            };
            match [wake, adv, rev].into_iter().flatten().min() {
                Some(target) => target,
                None => {
                    let alive = self
                        .alive
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| **a)
                        .map(|(i, _)| Pid::new(i))
                        .collect();
                    return Err(RunError::Deadlock {
                        round,
                        alive,
                        metrics: Box::new(self.metrics.clone()),
                    });
                }
            }
        } else {
            round.saturating_add(1)
        };
        if advanced == round {
            // Live processes remain but the clock cannot advance past the
            // horizon: report the cap rather than spinning at Round::MAX.
            return Err(self.round_limit());
        }
        self.round = advanced;
        Ok(())
    }
}

/// The per-round outbound-delivery context: everything queueing a send op
/// needs (counters, optional tracing, the next-round in-flight buffer).
struct Outbound<'a, M> {
    metrics: &'a mut Metrics,
    trace: &'a mut Trace,
    record: bool,
    next_pending: &'a mut Vec<FlightOp<M>>,
    round: Round,
}

impl<M: Classify> Outbound<'_, M> {
    /// Queues one surviving send op: bulk message accounting (O(1) per op)
    /// plus per-recipient trace events when tracing is on.
    fn deliver(&mut self, from: Pid, to: Recipients, payload: M) {
        self.metrics.record_messages(payload.class(), to.len() as u64);
        if self.record {
            for recipient in to.iter() {
                self.trace.push(Event::Send {
                    round: self.round,
                    from,
                    to: recipient,
                    class: payload.class(),
                });
            }
        }
        self.next_pending.push(FlightOp { from, to, payload });
    }

    /// Applies a crashing process's [`Deliver`] filter to its send ops. The
    /// filter indexes messages in send order (spans expand in ascending pid
    /// order), exactly as the per-recipient representation did, so crash
    /// semantics — and message counts — are unchanged. Ops are kept whole
    /// or truncated wherever possible; only an arbitrary-subset filter that
    /// fragments a span costs one payload clone per surviving *run* (never
    /// per recipient).
    fn deliver_crash_subset(
        &mut self,
        pid: Pid,
        eff: &mut Effects<M>,
        deliver: &crate::adversary::Deliver,
    ) where
        M: Clone,
    {
        use crate::adversary::Deliver;

        let mut msg_idx = 0usize;
        for op in eff.drain_sends() {
            let len = op.to.len();
            match deliver {
                Deliver::All => self.deliver(pid, op.to, op.payload),
                Deliver::None => {}
                Deliver::Prefix(k) => {
                    let keep = k.saturating_sub(msg_idx).min(len);
                    if keep > 0 {
                        self.deliver(pid, truncate(op.to, keep), op.payload);
                    }
                }
                Deliver::Subset(set) => {
                    // Split the op into maximal contiguous runs of
                    // recipients the adversary lets through.
                    let mut runs: Vec<(usize, usize)> = Vec::new();
                    for p in op.to.iter() {
                        if set.contains(&p) {
                            match runs.last_mut() {
                                Some((_, hi)) if *hi == p.index() => *hi += 1,
                                _ => runs.push((p.index(), p.index() + 1)),
                            }
                        }
                    }
                    let mut payload = Some(op.payload);
                    for (ri, &(lo, hi)) in runs.iter().enumerate() {
                        let to = if hi - lo == 1 {
                            Recipients::One(Pid::new(lo))
                        } else {
                            Recipients::Span { lo, hi }
                        };
                        // One clone per surviving run of a fragmented span —
                        // the last run moves the payload; never per
                        // recipient.
                        let m = if ri + 1 == runs.len() {
                            payload.take().expect("moved once")
                        } else {
                            payload.as_ref().expect("present until last").clone()
                        };
                        self.deliver(pid, to, m);
                    }
                }
            }
            msg_idx += len;
        }
    }
}

/// The first `keep` recipients of a set (`1 <= keep <= len`).
fn truncate(to: Recipients, keep: usize) -> Recipients {
    match to {
        Recipients::One(p) => Recipients::One(p),
        Recipients::Span { lo, .. } if keep == 1 => Recipients::One(Pid::new(lo)),
        Recipients::Span { lo, .. } => Recipients::Span { lo, hi: lo + keep },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashSchedule, CrashSpec, NoFailures};
    use crate::ids::Unit;

    /// Token ring: process 0 starts the token at its wakeup round; each
    /// process performs one unit, forwards the token, and terminates.
    #[derive(Clone, Debug)]
    struct Token;
    impl Classify for Token {
        fn class(&self) -> &'static str {
            "token"
        }
    }

    struct Ring {
        me: usize,
        t: usize,
        start_at: Round,
        done: bool,
    }

    impl Ring {
        fn procs(t: usize, start_at: impl Into<Round>) -> Vec<Ring> {
            let start_at = start_at.into();
            (0..t).map(|me| Ring { me, t, start_at, done: false }).collect()
        }
    }

    impl Protocol for Ring {
        type Msg = Token;

        fn step(&mut self, round: Round, inbox: Inbox<'_, Token>, eff: &mut Effects<Token>) {
            if self.done {
                return;
            }
            let triggered = (self.me == 0 && round >= self.start_at) || !inbox.is_empty();
            if triggered {
                eff.perform(Unit::new(self.me + 1));
                if self.me + 1 < self.t {
                    eff.send(Pid::new(self.me + 1), Token);
                }
                eff.terminate();
                self.done = true;
            }
        }

        fn next_wakeup(&self, now: Round) -> Option<Round> {
            if self.me == 0 && !self.done {
                Some(self.start_at.max(now))
            } else {
                None
            }
        }
    }

    #[test]
    fn ring_completes_with_exact_metrics() {
        let report = run(Ring::procs(4, 1), NoFailures, RunConfig::new(4, 100)).unwrap();
        assert_eq!(report.metrics.work_total, 4);
        assert_eq!(report.metrics.messages, 3);
        assert_eq!(report.metrics.rounds, 4u64);
        assert!(report.metrics.all_work_done());
        assert_eq!(report.survivor_count(), 4);
        assert_eq!(report.survivors(), vec![Pid::new(0), Pid::new(1), Pid::new(2), Pid::new(3)]);
        assert_eq!(report.survivors_iter().count(), report.survivor_count());
        assert_eq!(report.metrics.messages_by_class["token"], 3);
    }

    #[test]
    fn fast_forward_skips_to_distant_wakeups_without_losing_time() {
        let report =
            run(Ring::procs(3, 1_000_000), NoFailures, RunConfig::new(3, 2_000_000)).unwrap();
        // Time reflects the skipped idle prefix...
        assert_eq!(report.metrics.rounds, 1_000_002u64);
        // ...but the run completes quickly (if it executed every round this
        // test would take far too long, so reaching here at all is the
        // point).
        assert_eq!(report.metrics.work_total, 3);
    }

    #[test]
    fn round_limit_is_enforced() {
        let err = run(Ring::procs(3, 50), NoFailures, RunConfig::new(3, 10)).unwrap_err();
        match err {
            RunError::RoundLimit { limit, .. } => assert_eq!(limit, 10u64),
            other => panic!("expected RoundLimit, got {other}"),
        }
    }

    #[test]
    fn silent_crash_of_token_holder_deadlocks_the_ring() {
        // Crash p1 the round it would forward the token: the remaining
        // processes wait forever — the engine must detect this, not hang.
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::silent());
        let err = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap_err();
        match err {
            RunError::Deadlock { alive, .. } => assert_eq!(alive, vec![Pid::new(2)]),
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn crash_with_full_delivery_lets_the_token_escape() {
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::after_round());
        let report = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap();
        // p1 crashed but its work and send both counted.
        assert_eq!(report.metrics.work_total, 3);
        assert_eq!(report.metrics.messages, 2);
        assert_eq!(report.metrics.crashes, 1);
        assert_eq!(report.statuses[1], Status::Crashed(Round::new(2)));
        assert!(report.has_survivor());
    }

    #[test]
    fn crash_with_suppressed_work_uncounts_the_unit() {
        let schedule = CrashSchedule::new().crash_at(
            Pid::new(2),
            3,
            CrashSpec { deliver: crate::Deliver::All, count_work: false },
        );
        let report = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap();
        assert_eq!(report.metrics.work_total, 2);
        assert!(!report.metrics.all_work_done());
        assert_eq!(report.metrics.missing_units(), vec![Unit::new(3)]);
    }

    #[test]
    fn dead_letters_are_counted_for_retired_recipients() {
        // Crash p1 one round before the token reaches it.
        let schedule = CrashSchedule::new().crash_at(Pid::new(1), 1, CrashSpec::silent());
        let err = run(Ring::procs(3, 1), schedule, RunConfig::new(3, 1000)).unwrap_err();
        match err {
            RunError::Deadlock { metrics, .. } => {
                assert_eq!(metrics.dead_letters, 1);
                assert_eq!(metrics.messages, 1);
            }
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn trace_records_all_event_kinds() {
        let report =
            run(Ring::procs(2, 1), NoFailures, RunConfig::new(2, 100).with_trace()).unwrap();
        let kinds: Vec<&str> = report
            .trace
            .events()
            .iter()
            .map(|e| match e {
                Event::Work { .. } => "work",
                Event::Send { .. } => "send",
                Event::Terminate { .. } => "terminate",
                Event::Crash { .. } => "crash",
                Event::Note { .. } => "note",
                Event::Notice { .. } => "notice", // async-plane only
                Event::Recover { .. } => "recover",
            })
            .collect();
        assert_eq!(kinds, vec!["work", "send", "terminate", "work", "terminate"]);
    }

    #[test]
    fn statuses_report_rounds() {
        let report = run(Ring::procs(2, 1), NoFailures, RunConfig::new(2, 100)).unwrap();
        assert_eq!(report.statuses[0], Status::Terminated(Round::new(1)));
        assert_eq!(report.statuses[1], Status::Terminated(Round::new(2)));
        assert!(Status::Crashed(Round::new(3)).is_retired());
        assert!(!Status::Alive.is_retired());
        assert_eq!(Status::Terminated(Round::new(2)).round(), Some(Round::new(2)));
        assert_eq!(Status::Alive.round(), None);
    }

    /// Broadcasts a span to everyone each round; used to pin down span
    /// delivery, dead-letter intersection, and crash filters over spans.
    struct Blaster {
        me: usize,
        t: usize,
        rounds: Round,
        received: u64,
    }

    #[derive(Clone, Debug)]
    struct Blast;
    impl Classify for Blast {
        fn class(&self) -> &'static str {
            "blast"
        }
    }

    impl Protocol for Blaster {
        type Msg = Blast;

        fn step(&mut self, round: Round, inbox: Inbox<'_, Blast>, eff: &mut Effects<Blast>) {
            self.received += inbox.len() as u64;
            for (from, _) in inbox.iter() {
                assert_ne!(from.index(), self.me, "nobody self-addresses here");
            }
            if round <= self.rounds {
                // Everyone else, as two spans around `me`.
                eff.multicast_except(0..self.t, self.me, Blast);
            }
            if round == self.rounds + 1u64 {
                eff.terminate();
            }
        }

        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }

    fn blasters(t: usize, rounds: impl Into<Round>) -> Vec<Blaster> {
        let rounds = rounds.into();
        (0..t).map(|me| Blaster { me, t, rounds, received: 0 }).collect()
    }

    #[test]
    fn span_broadcasts_count_per_recipient_and_deliver_to_all() {
        let t = 5;
        let report = run(blasters(t, 3), NoFailures, RunConfig::new(0, 10)).unwrap();
        // 3 rounds × 5 senders × 4 recipients.
        assert_eq!(report.metrics.messages, 3 * 5 * 4);
        assert_eq!(report.metrics.messages_by_class["blast"], 60);
        assert_eq!(report.metrics.dead_letters, 0);
        assert_eq!(report.survivor_count(), t);
    }

    #[test]
    fn span_intersection_with_dead_recipients_yields_dead_letters() {
        // p2 dies silently in round 1; round-1 messages sent by the others
        // to p2 (4 of them) arrive at round 2 as dead letters, and p2's own
        // round-1 sends are suppressed.
        let t = 5;
        let adv = CrashSchedule::new().crash_at(Pid::new(2), 1, CrashSpec::silent());
        let report = run(blasters(t, 2), adv, RunConfig::new(0, 10)).unwrap();
        // Round 1: 4 survivors × 4 + p2 suppressed. Round 2: 4 × 4.
        assert_eq!(report.metrics.messages, 16 + 16);
        // Dead letters: round-2 deliveries to p2 (4) and round-3
        // deliveries to p2 (4).
        assert_eq!(report.metrics.dead_letters, 8);
    }

    #[test]
    fn prefix_crash_truncates_spans_at_the_message_boundary() {
        // p2 in a t = 6 system sends spans 0..2 (2 msgs) then 3..6
        // (3 msgs). Prefix(3) must deliver 0..2 whole and only p3 from the
        // second span.
        let t = 6;
        let adv = CrashSchedule::new().crash_at(Pid::new(2), 1, CrashSpec::prefix(3));
        let report = run(blasters(t, 1), adv, RunConfig::new(0, 10).with_trace()).unwrap();
        let from_p2: Vec<usize> = report
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Send { from, to, .. } if *from == Pid::new(2) => Some(to.index()),
                _ => None,
            })
            .collect();
        assert_eq!(from_p2, vec![0, 1, 3]);
        // 5 surviving senders × 5 recipients + 3 let-through from p2.
        assert_eq!(report.metrics.messages, 25 + 3);
    }

    #[test]
    fn subset_crash_fragments_spans_into_runs() {
        // p0 broadcasts the span 1..6; the subset {1, 2, 4} splits it into
        // the runs [1,2] and [4].
        struct SpanOnce {
            me: usize,
            sent: bool,
        }
        impl Protocol for SpanOnce {
            type Msg = Blast;
            fn step(&mut self, _: Round, _: Inbox<'_, Blast>, eff: &mut Effects<Blast>) {
                if self.me == 0 && !self.sent {
                    eff.multicast(1..6, Blast);
                    self.sent = true;
                }
                eff.terminate();
            }
            fn next_wakeup(&self, now: Round) -> Option<Round> {
                Some(now)
            }
        }
        let procs: Vec<SpanOnce> = (0..6).map(|me| SpanOnce { me, sent: false }).collect();
        let adv = CrashSchedule::new().crash_at(
            Pid::new(0),
            1,
            CrashSpec::subset([Pid::new(1), Pid::new(2), Pid::new(4)]),
        );
        let report = run(procs, adv, RunConfig::new(0, 10).with_trace()).unwrap();
        let tos: Vec<usize> = report
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Send { to, .. } => Some(to.index()),
                _ => None,
            })
            .collect();
        assert_eq!(tos, vec![1, 2, 4]);
        assert_eq!(report.metrics.messages, 3);
    }

    #[test]
    fn order_compaction_preserves_pid_order_across_mass_retirement() {
        // Retire most of a large system early; the survivors' later rounds
        // must still step in pid order (the ring relies on it) and produce
        // the same metrics as a fresh small system.
        let t = 64;
        let mut adv = CrashSchedule::new();
        for p in 8..t {
            adv = adv.crash_at(Pid::new(p), 1, CrashSpec::silent());
        }
        let report = run(blasters(t, 6), adv, RunConfig::new(0, 20)).unwrap();
        assert_eq!(report.metrics.crashes, (t - 8) as u32);
        assert_eq!(report.survivor_count(), 8);
        // Round 1: 64 senders × 63... minus the 56 suppressed silent
        // crashers: 8 × 63. Rounds 2..=6: 8 × 63 each (spans still address
        // everyone; the dead become dead letters).
        assert_eq!(report.metrics.messages, 6 * 8 * 63);
        assert_eq!(report.metrics.dead_letters, 6 * 8 * 56);
    }
}
