//! Identifier newtypes shared by the whole workspace.
//!
//! The paper numbers processes `0..t-1` and work units `1..n`; we keep both
//! conventions ([`Pid`] is zero-based, [`Unit`] is one-based) so that code
//! reads like the pseudocode in Figures 1–4.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A round number / virtual timestamp on the simulation's wide clock.
///
/// Round `1` is the first round of the execution; round `0` is reserved for
/// the paper's fictitious "process 0 broadcast before the execution begins"
/// convention (Protocol B, §2.3). Protocol C's deadline tower grows as
/// `K(n+t−m)2^{n+t−1−m}` rounds, which overflows a 64-bit clock beyond
/// `n + t ≈ 80`; the clock is therefore 128 bits wide behind this newtype,
/// which carries the exactly-representable tower to `n + t ≈ 107`
/// (honest `t = 64` grids) and lets saturated far-future deadlines
/// coexist with scheduled adversary events without colliding.
///
/// All arithmetic is **checked or saturating by construction**: the `+`
/// operators panic on overflow (an overflowing clock is always an engine
/// or protocol bug), while [`saturating_add`](Round::saturating_add) pins
/// deadline arithmetic at [`Round::MAX`] — a representable "never, unless
/// something else happens first" that the engines' sparse fast-forward
/// treats like any other wakeup.
///
/// Plain `u64` values convert losslessly via `From`/`Into` (the only
/// integer `From` impl, so bare literals in `impl Into<Round>` positions
/// infer `u64`); wider values are built with [`Round::new`]. Comparisons
/// against both `u64` and `u128` are provided in both directions.
///
/// # Examples
///
/// ```
/// use doall_sim::Round;
///
/// let r = Round::from(5u64) + 2u64;
/// assert_eq!(r, 7u64);
/// assert_eq!(Round::MAX.saturating_add(1), Round::MAX);
/// assert_eq!(Round::new(1 << 100).checked_add(1), Some(Round::new((1 << 100) + 1)));
/// assert_eq!(r - Round::from(3u64), 4u128);
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Round(u128);

impl Round {
    /// Round zero (pre-execution; see the type-level docs).
    pub const ZERO: Round = Round(0);
    /// The first round of every execution.
    pub const ONE: Round = Round(1);
    /// The clock's horizon: saturated deadlines pin here.
    pub const MAX: Round = Round(u128::MAX);

    /// Creates a round from a wide value.
    pub const fn new(round: u128) -> Self {
        Round(round)
    }

    /// The raw 128-bit value.
    pub const fn get(self) -> u128 {
        self.0
    }

    /// Checked round advance: `None` on clock overflow.
    pub const fn checked_add(self, rhs: u128) -> Option<Round> {
        match self.0.checked_add(rhs) {
            Some(v) => Some(Round(v)),
            None => None,
        }
    }

    /// Saturating round advance — the deadline-arithmetic primitive:
    /// `Round::MAX` means "not before anything representable".
    pub const fn saturating_add(self, rhs: u128) -> Round {
        Round(self.0.saturating_add(rhs))
    }

    /// Saturating distance to an earlier round (`0` if `other` is later).
    pub const fn saturating_sub(self, other: Round) -> u128 {
        self.0.saturating_sub(other.0)
    }

    /// The immediately following round.
    ///
    /// # Panics
    ///
    /// Panics on clock overflow (only reachable from `Round::MAX`).
    pub fn next(self) -> Round {
        self.checked_add(1).expect("round clock overflow")
    }

    /// Lossy conversion for ratio/throughput reporting.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl From<u64> for Round {
    fn from(round: u64) -> Self {
        Round(u128::from(round))
    }
}

impl From<Round> for u128 {
    fn from(round: Round) -> u128 {
        round.0
    }
}

impl fmt::Display for Round {
    /// Values on the old 64-bit clock print as bare decimals. Wide values
    /// (above `u64::MAX` — deep-idle deadlines like Protocol C's `2^k`
    /// waits) additionally carry the nearest power of two, because a bare
    /// 39-digit decimal is unreadable in diagnostics: `2^100` renders as
    /// `1267650600228229401496703205376 (2^100)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)?;
        if self.0 > u128::from(u64::MAX) {
            let floor = 127 - self.0.leading_zeros();
            // Nearest exponent: round up when the value is at or past the
            // midpoint of [2^floor, 2^(floor+1)), i.e. when the bit below
            // the leading bit is set.
            let up = floor > 0 && (self.0 >> (floor - 1)) & 1 == 1 && !self.0.is_power_of_two();
            let k = floor + u32::from(up);
            if self.0.is_power_of_two() {
                write!(f, " (2^{k})")?;
            } else {
                write!(f, " (~2^{k})")?;
            }
        }
        Ok(())
    }
}

impl std::ops::Add<u64> for Round {
    type Output = Round;
    fn add(self, rhs: u64) -> Round {
        self.checked_add(u128::from(rhs)).expect("round clock overflow")
    }
}

impl std::ops::Add<u128> for Round {
    type Output = Round;
    fn add(self, rhs: u128) -> Round {
        self.checked_add(rhs).expect("round clock overflow")
    }
}

impl std::ops::AddAssign<u64> for Round {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

/// Checked distance between rounds: panics on underflow (later − earlier
/// is the only meaningful direction on a clock).
impl std::ops::Sub<Round> for Round {
    type Output = u128;
    fn sub(self, rhs: Round) -> u128 {
        self.0.checked_sub(rhs.0).expect("round clock underflow")
    }
}

impl PartialEq<u64> for Round {
    fn eq(&self, other: &u64) -> bool {
        self.0 == u128::from(*other)
    }
}

impl PartialEq<Round> for u64 {
    fn eq(&self, other: &Round) -> bool {
        u128::from(*self) == other.0
    }
}

impl PartialEq<u128> for Round {
    fn eq(&self, other: &u128) -> bool {
        self.0 == *other
    }
}

impl PartialEq<Round> for u128 {
    fn eq(&self, other: &Round) -> bool {
        *self == other.0
    }
}

impl PartialOrd<u64> for Round {
    fn partial_cmp(&self, other: &u64) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(&u128::from(*other))
    }
}

impl PartialOrd<Round> for u64 {
    fn partial_cmp(&self, other: &Round) -> Option<std::cmp::Ordering> {
        u128::from(*self).partial_cmp(&other.0)
    }
}

impl PartialOrd<u128> for Round {
    fn partial_cmp(&self, other: &u128) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(other)
    }
}

impl PartialOrd<Round> for u128 {
    fn partial_cmp(&self, other: &Round) -> Option<std::cmp::Ordering> {
        self.partial_cmp(&other.0)
    }
}

/// Identifier of a process, `0..t-1`.
///
/// Backed by a `u32` (4 bytes instead of 8): process identifiers saturate
/// the scale axis long before they exhaust 32 bits (the engine's SoA state
/// tables are sized per process, so at `t = 10^6` the narrower backing
/// halves every pid-indexed column), and the constructor still takes a
/// `usize` so call sites read exactly as before.
///
/// # Examples
///
/// ```
/// use doall_sim::Pid;
///
/// let p = Pid::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Pid(u32);

impl Pid {
    /// Creates a process identifier from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (systems beyond 2³² processes
    /// are outside the simulator's addressable range).
    pub const fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "pid out of u32 range");
        Pid(index as u32)
    }

    /// Returns the zero-based index of this process.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over `Pid(lo), Pid(lo+1), ..., Pid(hi-1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use doall_sim::Pid;
    ///
    /// let group: Vec<Pid> = Pid::range(2, 5).collect();
    /// assert_eq!(group, vec![Pid::new(2), Pid::new(3), Pid::new(4)]);
    /// ```
    pub fn range(lo: usize, hi: usize) -> impl DoubleEndedIterator<Item = Pid> + Clone {
        (lo..hi).map(Pid::new)
    }

    /// The identifier immediately after this one.
    pub const fn next(self) -> Pid {
        Pid(self.0 + 1)
    }
}

impl From<usize> for Pid {
    fn from(index: usize) -> Self {
        Pid::new(index)
    }
}

impl From<Pid> for usize {
    fn from(pid: Pid) -> usize {
        pid.index()
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a unit of work, `1..=n` (one-based, as in the paper).
///
/// # Examples
///
/// ```
/// use doall_sim::Unit;
///
/// let u = Unit::new(1);
/// assert_eq!(u.get(), 1);
/// assert_eq!(u.zero_based(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Unit(usize);

impl Unit {
    /// Creates a work-unit identifier from a one-based index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `0`; the paper numbers units from `1`.
    pub const fn new(id: usize) -> Self {
        assert!(id >= 1, "work units are numbered from 1");
        Unit(id)
    }

    /// Returns the one-based unit number.
    pub const fn get(self) -> usize {
        self.0
    }

    /// Returns the zero-based index (for array storage).
    pub const fn zero_based(self) -> usize {
        self.0 - 1
    }

    /// Iterates over units `lo..=hi` (inclusive, one-based).
    ///
    /// # Examples
    ///
    /// ```
    /// use doall_sim::Unit;
    ///
    /// let units: Vec<usize> = Unit::range_inclusive(3, 5).map(Unit::get).collect();
    /// assert_eq!(units, vec![3, 4, 5]);
    /// ```
    pub fn range_inclusive(lo: usize, hi: usize) -> impl DoubleEndedIterator<Item = Unit> + Clone {
        (lo..=hi).map(Unit)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrips_through_usize() {
        let p = Pid::new(7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(Pid::from(7usize), p);
    }

    #[test]
    fn pid_ordering_matches_index_ordering() {
        assert!(Pid::new(0) < Pid::new(1));
        assert!(Pid::new(10) > Pid::new(9));
    }

    #[test]
    fn pid_range_is_half_open() {
        assert_eq!(Pid::range(0, 0).count(), 0);
        assert_eq!(Pid::range(5, 8).count(), 3);
    }

    #[test]
    fn unit_is_one_based() {
        let u = Unit::new(1);
        assert_eq!(u.zero_based(), 0);
        assert_eq!(Unit::new(9).get(), 9);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn unit_zero_is_rejected() {
        let _ = Unit::new(0);
    }

    #[test]
    fn unit_range_is_inclusive() {
        assert_eq!(Unit::range_inclusive(1, 1).count(), 1);
        // `hi < lo` yields the empty range, used for "no remaining work".
        assert_eq!(Unit::range_inclusive(2, 1).count(), 0);
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(Pid::new(0).to_string(), "p0");
        assert_eq!(Unit::new(12).to_string(), "u12");
    }
}
