//! Identifier newtypes shared by the whole workspace.
//!
//! The paper numbers processes `0..t-1` and work units `1..n`; we keep both
//! conventions ([`Pid`] is zero-based, [`Unit`] is one-based) so that code
//! reads like the pseudocode in Figures 1–4.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A round number in the synchronous model.
///
/// Round `1` is the first round of the execution; round `0` is reserved for
/// the paper's fictitious "process 0 broadcast before the execution begins"
/// convention (Protocol B, §2.3). Protocol C's deadlines are exponential in
/// `n + t`, so rounds are 64-bit; arithmetic on deadlines saturates rather
/// than wrapping.
pub type Round = u64;

/// Identifier of a process, `0..t-1`.
///
/// # Examples
///
/// ```
/// use doall_sim::Pid;
///
/// let p = Pid::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Pid(usize);

impl Pid {
    /// Creates a process identifier from a zero-based index.
    pub const fn new(index: usize) -> Self {
        Pid(index)
    }

    /// Returns the zero-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over `Pid(lo), Pid(lo+1), ..., Pid(hi-1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use doall_sim::Pid;
    ///
    /// let group: Vec<Pid> = Pid::range(2, 5).collect();
    /// assert_eq!(group, vec![Pid::new(2), Pid::new(3), Pid::new(4)]);
    /// ```
    pub fn range(lo: usize, hi: usize) -> impl DoubleEndedIterator<Item = Pid> + Clone {
        (lo..hi).map(Pid)
    }

    /// The identifier immediately after this one.
    pub const fn next(self) -> Pid {
        Pid(self.0 + 1)
    }
}

impl From<usize> for Pid {
    fn from(index: usize) -> Self {
        Pid(index)
    }
}

impl From<Pid> for usize {
    fn from(pid: Pid) -> usize {
        pid.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a unit of work, `1..=n` (one-based, as in the paper).
///
/// # Examples
///
/// ```
/// use doall_sim::Unit;
///
/// let u = Unit::new(1);
/// assert_eq!(u.get(), 1);
/// assert_eq!(u.zero_based(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Unit(usize);

impl Unit {
    /// Creates a work-unit identifier from a one-based index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `0`; the paper numbers units from `1`.
    pub const fn new(id: usize) -> Self {
        assert!(id >= 1, "work units are numbered from 1");
        Unit(id)
    }

    /// Returns the one-based unit number.
    pub const fn get(self) -> usize {
        self.0
    }

    /// Returns the zero-based index (for array storage).
    pub const fn zero_based(self) -> usize {
        self.0 - 1
    }

    /// Iterates over units `lo..=hi` (inclusive, one-based).
    ///
    /// # Examples
    ///
    /// ```
    /// use doall_sim::Unit;
    ///
    /// let units: Vec<usize> = Unit::range_inclusive(3, 5).map(Unit::get).collect();
    /// assert_eq!(units, vec![3, 4, 5]);
    /// ```
    pub fn range_inclusive(lo: usize, hi: usize) -> impl DoubleEndedIterator<Item = Unit> + Clone {
        (lo..=hi).map(Unit)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrips_through_usize() {
        let p = Pid::new(7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(Pid::from(7usize), p);
    }

    #[test]
    fn pid_ordering_matches_index_ordering() {
        assert!(Pid::new(0) < Pid::new(1));
        assert!(Pid::new(10) > Pid::new(9));
    }

    #[test]
    fn pid_range_is_half_open() {
        assert_eq!(Pid::range(0, 0).count(), 0);
        assert_eq!(Pid::range(5, 8).count(), 3);
    }

    #[test]
    fn unit_is_one_based() {
        let u = Unit::new(1);
        assert_eq!(u.zero_based(), 0);
        assert_eq!(Unit::new(9).get(), 9);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn unit_zero_is_rejected() {
        let _ = Unit::new(0);
    }

    #[test]
    fn unit_range_is_inclusive() {
        assert_eq!(Unit::range_inclusive(1, 1).count(), 1);
        // `hi < lo` yields the empty range, used for "no remaining work".
        assert_eq!(Unit::range_inclusive(2, 1).count(), 0);
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(Pid::new(0).to_string(), "p0");
        assert_eq!(Unit::new(12).to_string(), "u12");
    }
}
