//! The asynchronous plane's timestamp-ordered event queue.
//!
//! Events are *small and payload-free*: a delivery references its
//! [`SendOp`](crate::SendOp) in the op arena by id, so a `k`-recipient
//! broadcast schedules `k` copies of a 16-byte event rather than `k`
//! payload clones.
//!
//! Two implementations sit behind one API:
//!
//! * a **delay-bucketed calendar queue** — every *message* event is
//!   scheduled at most `max_delay` ahead of the drain cursor, so a ring of
//!   `max_delay + 1` buckets holds at most one timestamp per bucket and
//!   push/drain are O(1) amortized with no comparisons at all. Fault
//!   events (adversary injections, crash-recovery revivals) may land
//!   arbitrarily far ahead; they wait in a small side heap and spill into
//!   the ring once the cursor comes within a horizon of them, preserving
//!   global schedule order;
//! * a **binary-heap fallback** for large delay horizons, keyed by
//!   `(time, seq)` like the pre-PR-4 engine.
//!
//! Both produce identical orderings: all events of the earliest pending
//! timestamp, in global schedule (`seq`) order — which is exactly what the
//! engine's per-timestamp batching consumes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::Time;
use crate::ids::Pid;

/// Delay horizon up to which the calendar representation is used. Above
/// it, ring memory (one bucket per time slot) stops being worth it and the
/// heap takes over.
const CALENDAR_HORIZON: u64 = 64;

/// One scheduled occurrence. No payload lives here — deliveries carry an
/// op-arena id.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Ev {
    /// Process `pid`'s initial activation signal.
    Start(Pid),
    /// One recipient's share of an in-flight send op.
    Deliver {
        /// Arena id of the op being delivered.
        op: u32,
        /// The recipient.
        to: Pid,
    },
    /// A retirement-detector report.
    Notice {
        /// The process being informed.
        observer: Pid,
        /// The process reported retired.
        retired: Pid,
    },
    /// A self-scheduled continuation (see
    /// [`AsyncEffects::continue_later`](super::AsyncEffects::continue_later)).
    Tick(Pid),
    /// An adversary-scheduled injection point (see
    /// [`AsyncAdversary::scheduled_events`](super::AsyncAdversary::scheduled_events)):
    /// a handler-free invocation that exists only so the adversary can act
    /// on `pid` at this time.
    Inject(Pid),
    /// A crash-recovery restart of `pid` after its scheduled downtime
    /// (see [`Fate::CrashRecover`](crate::Fate::CrashRecover)).
    Revive {
        /// The recovering process.
        pid: Pid,
        /// Whether the restart loses all protocol state.
        wipe: bool,
    },
    /// Tombstone left in a drained batch once the engine has folded the
    /// event into an earlier handler invocation of the same timestamp.
    Consumed,
}

/// Heap entry ordered by `(time, seq)`; the event itself does not
/// participate in the ordering.
#[derive(Clone)]
struct Entry {
    time: Time,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Clone)]
enum Imp {
    /// `buckets[time % buckets.len()]` holds the events of exactly one
    /// timestamp at a time: in-horizon pushes land at most `max_delay`
    /// past the drain cursor and the cursor's own bucket is drained before
    /// it advances, so slots are never shared. Push order within a bucket
    /// *is* global schedule order — the `(time, seq)` order the heap would
    /// produce — because `seq` only ever increases. All ring arithmetic
    /// happens on the wide clock (`time` and `cursor` are 128-bit
    /// [`Time`]s reduced mod the ring size), and the cursor advance is
    /// bounded by the ring: every ring event lies within `max_delay` of
    /// the cursor, so no sparse stretch wider than the horizon can exist
    /// here.
    ///
    /// Beyond-horizon pushes (fault injections, revivals) wait in
    /// `overflow`, ordered by `(time, seq)`. Every drain spills the due
    /// part of the overflow into the ring *before* selecting the next
    /// timestamp; since the engine only pushes new events after a drain,
    /// an overflow entry always reaches its bucket ahead of any
    /// younger-`seq` event of the same timestamp, so bucket order stays
    /// global schedule order. When the ring is empty the cursor jumps
    /// straight to the earliest overflow time.
    Calendar {
        buckets: Vec<Vec<Ev>>,
        cursor: Time,
        ring_len: usize,
        overflow: BinaryHeap<Reverse<Entry>>,
    },
    Heap(BinaryHeap<Reverse<Entry>>),
}

/// Timestamp-ordered queue over [`Ev`]s; see the module docs. `Clone`
/// captures the full schedule — including `seq`, so a cloned queue
/// reproduces the original's tie-breaking order exactly (the property the
/// engine's snapshot/resume differential relies on).
#[derive(Clone)]
pub(crate) struct EventQueue {
    imp: Imp,
    len: usize,
    seq: u64,
}

impl EventQueue {
    /// Creates a queue for events scheduled at most `max_delay` past the
    /// most recently drained timestamp (plus the initial burst at time 0).
    pub(crate) fn with_horizon(max_delay: u64) -> Self {
        let imp = if max_delay <= CALENDAR_HORIZON {
            Imp::Calendar {
                buckets: (0..=max_delay).map(|_| Vec::new()).collect(),
                cursor: Time::ZERO,
                ring_len: 0,
                overflow: BinaryHeap::new(),
            }
        } else {
            Imp::Heap(BinaryHeap::new())
        };
        EventQueue { imp, len: 0, seq: 0 }
    }

    /// Number of events pending (all representations).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Bytes held by the queue's buffers (ring buckets, overflow / heap
    /// entries), for the engine's memory probe. Capacities, not lengths:
    /// the probe tracks high-water footprint.
    pub(crate) fn bytes(&self) -> u64 {
        let ev = std::mem::size_of::<Ev>();
        let entry = std::mem::size_of::<Reverse<Entry>>();
        (match &self.imp {
            Imp::Calendar { buckets, overflow, .. } => {
                buckets.iter().map(|b| b.capacity() * ev).sum::<usize>()
                    + overflow.capacity() * entry
            }
            Imp::Heap(heap) => heap.capacity() * entry,
        }) as u64
    }

    /// Schedules `ev` at `time` (never earlier than the drain cursor).
    /// Message traffic always lands within `now + 1 ..= now + max_delay`
    /// and goes straight to a calendar bucket; fault events may aim
    /// arbitrarily far ahead and wait in the overflow heap until due.
    pub(crate) fn push(&mut self, time: Time, ev: Ev) {
        match &mut self.imp {
            Imp::Calendar { buckets, cursor, ring_len, overflow } => {
                let m = buckets.len() as u128;
                debug_assert!(time >= *cursor, "push into the past: time {time}, cursor {cursor}");
                if time - *cursor < m {
                    buckets[(time.get() % m) as usize].push(ev);
                    *ring_len += 1;
                } else {
                    overflow.push(Reverse(Entry { time, seq: self.seq, ev }));
                }
            }
            Imp::Heap(heap) => heap.push(Reverse(Entry { time, seq: self.seq, ev })),
        }
        self.seq += 1;
        self.len += 1;
    }

    /// Drains every event of the earliest pending timestamp into `out`
    /// (which must be empty), in schedule order, and returns that
    /// timestamp. Returns `None` when the queue is empty.
    pub(crate) fn drain_next(&mut self, out: &mut Vec<Ev>) -> Option<Time> {
        debug_assert!(out.is_empty(), "drain_next requires an empty batch buffer");
        if self.len == 0 {
            return None;
        }
        let now = match &mut self.imp {
            Imp::Calendar { buckets, cursor, ring_len, overflow } => {
                let m = buckets.len() as u128;
                if *ring_len == 0 {
                    if let Some(Reverse(e)) = overflow.peek() {
                        // Ring exhausted: jump straight to the earliest
                        // overflow time (an arbitrarily long idle stretch).
                        *cursor = e.time;
                    }
                }
                // Spill the due part of the overflow before selecting the
                // next timestamp: these entries may be earlier than every
                // ring event, and their seq predates any bucket content of
                // the same time (an in-horizon push of that time would
                // have followed a drain that spilled them first).
                while overflow.peek().is_some_and(|Reverse(e)| e.time - *cursor < m) {
                    let Reverse(e) = overflow.pop().expect("peeked");
                    buckets[(e.time.get() % m) as usize].push(e.ev);
                    *ring_len += 1;
                }
                while buckets[(cursor.get() % m) as usize].is_empty() {
                    *cursor += 1;
                }
                // The walk advanced the horizon: spill again so every
                // entry now within it reaches its bucket before the engine
                // pushes younger events at the same timestamps. All such
                // entries lie strictly past the drained time, so the
                // current batch is unaffected.
                while overflow.peek().is_some_and(|Reverse(e)| e.time - *cursor < m) {
                    let Reverse(e) = overflow.pop().expect("peeked");
                    buckets[(e.time.get() % m) as usize].push(e.ev);
                    *ring_len += 1;
                }
                // Swap the bucket out wholesale: `out` gets the events,
                // the bucket inherits `out`'s (cleared) capacity.
                std::mem::swap(&mut buckets[(cursor.get() % m) as usize], out);
                *ring_len -= out.len();
                *cursor
            }
            Imp::Heap(heap) => {
                let Reverse(first) = heap.pop().expect("len > 0");
                let now = first.time;
                out.push(first.ev);
                while heap.peek().is_some_and(|Reverse(e)| e.time == now) {
                    out.push(heap.pop().expect("peeked").0.ev);
                }
                now
            }
        };
        self.len -= out.len();
        Some(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid_of(ev: Ev) -> usize {
        match ev {
            Ev::Start(p) | Ev::Tick(p) | Ev::Inject(p) => p.index(),
            Ev::Deliver { to, .. } => to.index(),
            Ev::Notice { observer, .. } => observer.index(),
            Ev::Revive { pid, .. } => pid.index(),
            Ev::Consumed => usize::MAX,
        }
    }

    /// Pushes the same schedule through both representations and checks
    /// identical (time, order) drains.
    #[test]
    fn calendar_and_heap_agree_on_order() {
        let schedule: &[(u64, usize)] = &[(3, 0), (1, 1), (3, 2), (2, 3), (1, 4), (5, 5), (3, 6)];
        let drain_all = |mut q: EventQueue| {
            for &(t, p) in schedule {
                q.push(Time::from(t), Ev::Tick(Pid::new(p)));
            }
            let mut out = Vec::new();
            let mut seen = Vec::new();
            let mut batch = Vec::new();
            while let Some(t) = q.drain_next(&mut batch) {
                for ev in batch.drain(..) {
                    seen.push((t, pid_of(ev)));
                }
                out.push(t);
            }
            (out, seen)
        };
        let cal = drain_all(EventQueue::with_horizon(8));
        let heap = drain_all(EventQueue::with_horizon(CALENDAR_HORIZON + 1));
        assert_eq!(cal, heap);
        assert_eq!(cal.0, [1u64, 2, 3, 5].map(Time::from).to_vec());
        // Within a timestamp, schedule order is preserved.
        assert_eq!(
            cal.1,
            [(1u64, 1), (1, 4), (2, 3), (3, 0), (3, 2), (3, 6), (5, 5)]
                .map(|(t, p)| (Time::from(t), p))
                .to_vec()
        );
    }

    #[test]
    fn interleaved_pushes_respect_the_rolling_horizon() {
        let mut q = EventQueue::with_horizon(2);
        q.push(Time::new(0), Ev::Start(Pid::new(0)));
        let mut batch = Vec::new();
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(0)));
        batch.clear();
        // From time 0, schedule at 1 and 2 (the full horizon).
        q.push(Time::new(1), Ev::Tick(Pid::new(1)));
        q.push(Time::new(2), Ev::Tick(Pid::new(2)));
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(1)));
        batch.clear();
        q.push(Time::new(3), Ev::Tick(Pid::new(3)));
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(2)));
        batch.clear();
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(3)));
        batch.clear();
        assert_eq!(q.drain_next(&mut batch), None);
    }

    #[test]
    fn empty_queue_drains_none() {
        let mut q = EventQueue::with_horizon(4);
        let mut batch = Vec::new();
        assert!(q.drain_next(&mut batch).is_none());
        assert!(batch.is_empty());
    }

    /// Fault events exactly at, and far past, the calendar horizon take
    /// the overflow path yet drain at the right time in the right order —
    /// the boundary the crash-recovery revival events live on.
    #[test]
    fn beyond_horizon_pushes_drain_in_schedule_order() {
        // Horizon 4 → ring of 5 buckets. From cursor 0, time 5 is the
        // first beyond-horizon slot and time 64 is far past it.
        let mut q = EventQueue::with_horizon(4);
        q.push(Time::new(64), Ev::Revive { pid: Pid::new(9), wipe: false });
        q.push(Time::new(5), Ev::Inject(Pid::new(7)));
        q.push(Time::new(0), Ev::Start(Pid::new(0)));
        q.push(Time::new(4), Ev::Tick(Pid::new(1)));
        let mut batch = Vec::new();
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(0)));
        batch.clear();
        // In-horizon tick at 4 comes first, then the spilled inject at 5.
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(4)));
        batch.clear();
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(5)));
        assert_eq!(batch.len(), 1);
        assert_eq!(pid_of(batch[0]), 7);
        batch.clear();
        // Ring now empty: the cursor jumps straight to the revival.
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(64)));
        assert_eq!(pid_of(batch[0]), 9);
        batch.clear();
        assert_eq!(q.drain_next(&mut batch), None);
    }

    /// A spilled overflow entry keeps its global schedule order relative
    /// to in-horizon pushes of the same timestamp made later.
    #[test]
    fn spilled_entries_precede_younger_pushes_of_same_time() {
        let mut q = EventQueue::with_horizon(2);
        // seq 0: inject at 4, beyond the horizon of cursor 0.
        q.push(Time::new(4), Ev::Inject(Pid::new(0)));
        q.push(Time::new(0), Ev::Start(Pid::new(1)));
        let mut batch = Vec::new();
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(0)));
        batch.clear();
        // From cursor 0..2, time 4 is still out; drain advances the
        // cursor and spills it before the same-time tick below lands.
        q.push(Time::new(2), Ev::Tick(Pid::new(2)));
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(2)));
        batch.clear();
        q.push(Time::new(4), Ev::Tick(Pid::new(3)));
        assert_eq!(q.drain_next(&mut batch), Some(Time::new(4)));
        assert_eq!(batch.iter().map(|&e| pid_of(e)).collect::<Vec<_>>(), vec![0, 3]);
        batch.clear();
    }

    /// Calendar-with-overflow and heap agree on a schedule that straddles
    /// the horizon.
    #[test]
    fn calendar_overflow_and_heap_agree() {
        let schedule: &[(u64, usize)] =
            &[(0, 0), (7, 1), (3, 2), (70, 3), (7, 4), (1, 5), (130, 6)];
        let drain_all = |mut q: EventQueue| {
            for &(t, p) in schedule {
                q.push(Time::from(t), Ev::Inject(Pid::new(p)));
            }
            let mut seen = Vec::new();
            let mut batch = Vec::new();
            while let Some(t) = q.drain_next(&mut batch) {
                for ev in batch.drain(..) {
                    seen.push((t, pid_of(ev)));
                }
            }
            seen
        };
        let cal = drain_all(EventQueue::with_horizon(8));
        let heap = drain_all(EventQueue::with_horizon(CALENDAR_HORIZON + 1));
        assert_eq!(cal, heap);
        assert_eq!(
            cal,
            [(0u64, 0), (1, 5), (3, 2), (7, 1), (7, 4), (70, 3), (130, 6)]
                .map(|(t, p)| (Time::from(t), p))
                .to_vec()
        );
    }
}
