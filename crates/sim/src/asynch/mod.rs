//! Event-driven asynchronous engine with a retirement detector — the
//! asynchronous peer of the synchronous round engine, built on the same
//! span-multicast message plane.
//!
//! §2.1 of the paper observes that Protocol A "can be easily modified to
//! run in a completely asynchronous system equipped with a failure
//! detection mechanism": instead of waiting for the deadline `DD(j)`,
//! process `j` waits until it has been *informed* that processes
//! `0, …, j−1` crashed or terminated. This module provides that system:
//!
//! * messages experience arbitrary finite, adversary-seeded delays (see
//!   [`DelayDist`]);
//! * a **retirement detector** eventually informs every alive process of
//!   every retirement (crash *or* voluntary termination), and is *sound*:
//!   it never accuses a live process. (The paper's text speaks of being
//!   "informed that processes 1, …, j−1 crashed **or terminated**", which
//!   is why the detector reports retirement rather than just crashes.)
//!
//! Time is not a meaningful complexity measure here; the engine reports
//! work and message counts, which is exactly what the paper claims carries
//! over from the synchronous analysis.
//!
//! ## The op arena
//!
//! An in-flight payload lives **once**, in a slab slot shared by every
//! recipient of its send op; the event queue carries `(time, op_id,
//! recipient)` triples, so a `k`-recipient broadcast costs `k` 16-byte
//! events and **zero payload clones** (the pre-PR-4 engine cloned the
//! payload `k − 1` times at scheduling). A slot is freed once its last
//! recipient has been served, so arena memory is bounded by the in-flight
//! high-water mark.
//!
//! ## Batched delivery
//!
//! All messages reaching one process at one timestamp are handed to its
//! [`AsyncProtocol::on_messages`] handler together, as a borrowing
//! [`Inbox`] view straight over the arena — the same zero-copy inbox the
//! synchronous engine hands to [`Protocol::step`](crate::Protocol::step).
//!
//! ## Fault injection
//!
//! Faults come from a pluggable [`AsyncAdversary`] ruling per handler
//! invocation with the synchronous plane's [`crate::Fate`] /
//! [`crate::CrashSpec`] / [`crate::Deliver`]
//! vocabulary — fail-stop crashes (possibly mid-broadcast), send omission
//! ([`crate::Fate::Omit`]), receive omission
//! ([`AsyncAdversary::omits_delivery`]), and crash-recovery
//! ([`crate::Fate::CrashRecover`], which restarts the
//! victim — stale or wiped — after its downtime via
//! [`AsyncProtocol::on_recover`]); the legacy `Vec<AsyncCrash>` remains
//! usable as a thin adapter and a [`FaultPlan`](crate::FaultPlan) drives
//! named-fault schedules on both planes. With
//! [`AsyncConfig::record_trace`] set, runs record a [`Trace`] whose events
//! feed the ported invariant checkers (including
//! [`check_detector_soundness`](crate::invariants::check_detector_soundness)).

mod adversary;
mod queue;
pub mod reference;

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub use adversary::{
    AsyncAdversary, AsyncCrash, AsyncCrashSchedule, AsyncRandomCrashes, AsyncTrigger,
    AsyncTriggerAdversary, AsyncTriggerRule,
};

use crate::adversary::{AdversaryCtx, AliveView, Fate};
use crate::effects::SendBuf;
use crate::engine::MemBudget;
use crate::ids::{Pid, Round, Unit};
use crate::message::{Classify, FlightOp, Inbox};
use crate::metrics::Metrics;
use crate::trace::{Event, Trace};

use queue::{Ev, EventQueue};

/// Logical timestamp of the asynchronous scheduler — the same wide
/// virtual-time clock as the synchronous plane's [`Round`], so traces,
/// metrics and invariant checkers speak one time type across both engines
/// and arbitrarily deep idle stretches stay representable.
pub type Time = Round;

/// How per-hop delays are drawn. Every distribution is bounded by
/// [`AsyncConfig::max_delay`], which also sizes the calendar queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayDist {
    /// Uniform in `1..=max_delay` — the classic adversary-seeded delay.
    #[default]
    Uniform,
    /// Every hop takes exactly `max_delay`: a lockstep-like schedule that
    /// makes the asynchronous plane behave like a slowed synchronous one.
    Fixed,
    /// Half the hops are fast (delay 1), half are `max_delay` stragglers —
    /// the tail-latency shape real networks exhibit.
    Bimodal,
}

impl DelayDist {
    fn sample(self, rng: &mut SmallRng, max_delay: u64) -> u64 {
        match self {
            DelayDist::Uniform => rng.gen_range(1..=max_delay),
            DelayDist::Fixed => max_delay,
            DelayDist::Bimodal => {
                if rng.gen_bool(0.5) {
                    1
                } else {
                    max_delay
                }
            }
        }
    }

    /// A short, stable label for tables and logs.
    pub fn label(self, max_delay: u64) -> String {
        match self {
            DelayDist::Uniform => format!("uniform(1..={max_delay})"),
            DelayDist::Fixed => format!("fixed({max_delay})"),
            DelayDist::Bimodal => format!("bimodal(1|{max_delay})"),
        }
    }
}

/// Actions recorded by an asynchronous event handler.
///
/// Unlike the synchronous [`Effects`](crate::Effects), a handler may
/// perform *several* units of work at once: asynchronous time is untimed,
/// so there is no per-round work budget to enforce. Send recording is the
/// shared span-multicast machinery of the synchronous plane — payload
/// stored once per op, `multicast` O(1), `broadcast` coalescing runs.
#[derive(Debug)]
pub struct AsyncEffects<M> {
    work: Vec<Unit>,
    sends: SendBuf<M>,
    notes: Vec<&'static str>,
    terminated: bool,
    tick: bool,
}

impl<M> Default for AsyncEffects<M> {
    fn default() -> Self {
        AsyncEffects {
            work: Vec::new(),
            sends: SendBuf::default(),
            notes: Vec::new(),
            terminated: false,
            tick: false,
        }
    }
}

impl<M> AsyncEffects<M> {
    /// Clears all recorded actions while retaining the buffers, so the
    /// engine can recycle one scratch instance across handler invocations
    /// without allocating per event.
    pub fn reset(&mut self) {
        self.work.clear();
        self.sends.clear();
        self.notes.clear();
        self.terminated = false;
        self.tick = false;
    }

    /// Performs a unit of work.
    pub fn perform(&mut self, unit: Unit) {
        self.work.push(unit);
    }

    /// Sends `payload` to `to` (delivery is delayed by the scheduler).
    pub fn send(&mut self, to: Pid, payload: M) {
        self.sends.one(to, payload);
    }

    /// Broadcasts `payload` to the contiguous pid range `to` in O(1) —
    /// the payload is stored once. Empty ranges record nothing.
    pub fn multicast(&mut self, to: std::ops::Range<usize>, payload: M) {
        self.sends.span(to, payload);
    }

    /// Broadcasts `payload` to every recipient, coalescing consecutive
    /// ascending runs into spans (same coalescer as
    /// [`Effects::broadcast`](crate::Effects::broadcast)).
    pub fn broadcast<I>(&mut self, to: I, payload: M)
    where
        I: IntoIterator<Item = Pid>,
        M: Clone,
    {
        self.sends.coalesced(to, payload);
    }

    /// Terminates this process after the handler returns.
    pub fn terminate(&mut self) {
        self.terminated = true;
    }

    /// Records a trace annotation (e.g. `"activate"`).
    pub fn note(&mut self, tag: &'static str) {
        self.notes.push(tag);
    }

    /// Requests a [`AsyncProtocol::on_tick`] callback one time-step later,
    /// so that a long local computation (e.g. an active process working
    /// through its schedule) runs one operation per event and remains
    /// interruptible by crashes and message deliveries.
    pub fn continue_later(&mut self) {
        self.tick = true;
    }

    /// The units of work performed by this handler, in order.
    pub fn work_units(&self) -> &[Unit] {
        &self.work
    }

    /// The send operations queued by this handler, in send order.
    pub fn sends(&self) -> &[crate::SendOp<M>] {
        self.sends.ops()
    }

    /// Total point-to-point messages queued by this handler (a
    /// `k`-recipient op counts `k`) — O(1).
    pub fn send_count(&self) -> usize {
        self.sends.count()
    }

    /// The trace annotations recorded by this handler.
    pub fn notes(&self) -> &[&'static str] {
        &self.notes
    }

    /// Whether the handler terminated the process.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Whether the handler requested an [`AsyncProtocol::on_tick`]
    /// continuation.
    pub fn wants_tick(&self) -> bool {
        self.tick
    }

    pub(crate) fn drain_sends(&mut self) -> std::vec::Drain<'_, crate::SendOp<M>> {
        self.sends.drain()
    }
}

/// A per-process asynchronous protocol.
pub trait AsyncProtocol {
    /// Message payload type.
    type Msg: Clone + fmt::Debug + Classify;

    /// Invoked once at the start of the execution.
    fn on_start(&mut self, eff: &mut AsyncEffects<Self::Msg>);

    /// Invoked when messages arrive: every message reaching this process
    /// at one timestamp is delivered in a single batched [`Inbox`] view
    /// (iterated as `(sender, &payload)` in schedule order), borrowing
    /// straight from the engine's op arena — no payload is cloned.
    fn on_messages(&mut self, inbox: Inbox<'_, Self::Msg>, eff: &mut AsyncEffects<Self::Msg>);

    /// Invoked when the retirement detector reports that `retired` has
    /// crashed or terminated. Reports are sound and eventually complete,
    /// but arbitrarily delayed; each retirement is reported once per
    /// observer — except that the detector replays all past retirements
    /// to a process that recovers from a crash (see
    /// [`on_recover`](AsyncProtocol::on_recover)), so implementations
    /// must treat repeated reports idempotently.
    fn on_retirement(&mut self, retired: Pid, eff: &mut AsyncEffects<Self::Msg>);

    /// Invoked after a previous handler called
    /// [`AsyncEffects::continue_later`]. Default: no-op.
    fn on_tick(&mut self, eff: &mut AsyncEffects<Self::Msg>) {
        let _ = eff;
    }

    /// Invoked when the engine restarts this process after a
    /// [`Fate::CrashRecover`] downtime. With
    /// `wipe`, the process lost all state and must reset to its initial
    /// configuration; without it, the state is exactly what it was at the
    /// crash (stale: every message delivered during the downtime was
    /// lost). This is a full handler invocation — record sends, work or a
    /// [`continue_later`](AsyncEffects::continue_later) on `eff` to
    /// re-establish any tick chain the crash severed. The default keeps
    /// the stale state and does nothing, which is safe for protocols whose
    /// progress claims tolerate silent periods.
    fn on_recover(&mut self, wipe: bool, eff: &mut AsyncEffects<Self::Msg>) {
        let _ = (wipe, eff);
    }
}

/// Configuration of an asynchronous run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// Number of work units (pre-sizes metrics).
    pub n: usize,
    /// Seed for delay randomness (runs are reproducible per seed).
    pub seed: u64,
    /// Maximum message / detector-notice delay; also the calendar queue's
    /// horizon (values `≤ 64` use the bucketed calendar, larger ones the
    /// binary heap).
    pub max_delay: u64,
    /// Shape of the per-hop delay distribution within `1..=max_delay`.
    pub delay: DelayDist,
    /// Safety cap on handler invocations.
    pub max_events: u64,
    /// Whether to record a full [`Trace`] (tests: yes; large sweeps: no).
    pub record_trace: bool,
    /// Watchdog window in virtual time: if more than this many time-steps
    /// elapse after the last *progress* (a delivered message batch, or any
    /// movement of the work / crash / termination / recovery counters),
    /// the run fails with [`AsyncRunError::Livelock`] and a diagnosis —
    /// the asynchronous peer of
    /// [`RunConfig::stall_window`](crate::RunConfig::stall_window).
    /// `None` (the default) disables the watchdog.
    pub stall_window: Option<u64>,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            n: 0,
            seed: 0,
            max_delay: 5,
            delay: DelayDist::Uniform,
            max_events: 10_000_000,
            record_trace: false,
            stall_window: None,
        }
    }
}

impl AsyncConfig {
    /// Convenience constructor for an `n`-unit workload with a seed.
    pub fn new(n: usize, seed: u64) -> Self {
        AsyncConfig { n, seed, ..Default::default() }
    }

    /// Sets the delay distribution and its bound.
    pub fn with_delay(mut self, delay: DelayDist, max_delay: u64) -> Self {
        self.delay = delay;
        self.max_delay = max_delay;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Arms the livelock watchdog (see [`AsyncConfig::stall_window`]).
    pub fn with_stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }
}

/// Result of an asynchronous run.
///
/// Two reports compare equal when their *semantic* outcome matches —
/// metrics, retirement columns, notes, and trace. The [`mem`](AsyncReport::mem)
/// probe and [`executed`](AsyncReport::executed) counter are excluded from
/// equality, mirroring [`Report`](crate::Report): they measure host-side
/// footprint and effort, not the simulated execution.
#[derive(Clone, Debug)]
pub struct AsyncReport {
    /// Work / message counters (rounds field holds the final timestamp).
    pub metrics: Metrics,
    /// Which processes terminated normally.
    pub terminated: Vec<bool>,
    /// Which processes crashed.
    pub crashed: Vec<bool>,
    /// Activation notes observed, in order.
    pub notes: Vec<(Time, Pid, &'static str)>,
    /// Event log (empty unless [`AsyncConfig::record_trace`] was set); the
    /// `round` field of each event holds the logical timestamp.
    pub trace: Trace,
    /// Peak memory held by the engine (arena, event queue, SoA columns,
    /// scratch) — see [`MemBudget`]. The reference scheduler reports
    /// zeroes: it is an executable spec, not a measured engine.
    pub mem: MemBudget,
    /// Number of timestamp batches the engine actually processed — the
    /// async peer of [`Report::executed_rounds`](crate::Report::executed_rounds)
    /// and the correct denominator for wall-clock rates
    /// ([`Metrics::rounds`] holds the final *virtual* timestamp, which
    /// idle stretches inflate arbitrarily).
    pub executed: u64,
}

impl PartialEq for AsyncReport {
    fn eq(&self, other: &Self) -> bool {
        self.metrics == other.metrics
            && self.terminated == other.terminated
            && self.crashed == other.crashed
            && self.notes == other.notes
            && self.trace == other.trace
    }
}

impl Eq for AsyncReport {}

impl AsyncReport {
    /// Whether at least one process terminated normally.
    pub fn has_survivor(&self) -> bool {
        self.terminated.iter().any(|&t| t)
    }

    /// Iterates over the processes that terminated normally, in pid order,
    /// without building an intermediate `Vec` — parity with
    /// [`Report::survivors_iter`](crate::Report::survivors_iter).
    pub fn survivors_iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.terminated.iter().enumerate().filter(|(_, t)| **t).map(|(i, _)| Pid::new(i))
    }

    /// Number of processes that terminated normally.
    pub fn survivor_count(&self) -> usize {
        self.terminated.iter().filter(|t| **t).count()
    }
}

/// What the asynchronous watchdog saw when it tripped — the event-plane
/// peer of [`StallDiagnosis`](crate::StallDiagnosis). Lists the processes
/// still alive (with their handler-invocation counts, to distinguish a
/// never-scheduled process from a busy-looping one) plus the pending
/// event and revival backlog.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct AsyncStallDiagnosis {
    /// Timestamp of the batch that tripped the watchdog.
    pub time: Time,
    /// Timestamp of the last observed progress.
    pub last_progress: Time,
    /// Processes still alive and unterminated, in pid order.
    pub stalled: Vec<Pid>,
    /// Handler-invocation counts of the stalled processes, `(pid, count)`.
    pub invocations: Vec<(Pid, u64)>,
    /// Events still pending in the scheduler queue.
    pub pending_events: usize,
    /// Crashed processes with a scheduled revival outstanding.
    pub pending_revivals: usize,
}

impl fmt::Display for AsyncStallDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "time {}, last progress at {}, {} stalled: ",
            self.time,
            self.last_progress,
            self.stalled.len()
        )?;
        for (i, (pid, inv)) in self.invocations.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{pid}({inv} invocations)")?;
        }
        if self.invocations.len() > 8 {
            write!(f, ", +{} more", self.invocations.len() - 8)?;
        }
        write!(
            f,
            "; {} pending events, {} pending revivals",
            self.pending_events, self.pending_revivals
        )
    }
}

/// Errors from the asynchronous engine.
#[derive(Debug)]
pub enum AsyncRunError {
    /// The handler-invocation cap was exceeded.
    EventLimit {
        /// The configured cap.
        limit: u64,
    },
    /// Live, unterminated processes remain but no events are pending.
    Stalled {
        /// Processes still alive and unterminated.
        alive: Vec<Pid>,
    },
    /// The watchdog tripped: events kept flowing, but nothing counted as
    /// progress for longer than [`AsyncConfig::stall_window`] virtual
    /// time-steps (a tick-loop livelock, or an idle stretch a protocol
    /// never escapes).
    Livelock {
        /// The configured window that was exceeded.
        window: u64,
        /// What the watchdog saw.
        diagnosis: Box<AsyncStallDiagnosis>,
    },
    /// The adversary's schedule is inconsistent with the system (see
    /// [`AsyncAdversary::validate`]); the run never started.
    InvalidAdversary {
        /// Why the schedule was rejected.
        reason: String,
    },
}

impl fmt::Display for AsyncRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncRunError::EventLimit { limit } => write!(f, "event limit of {limit} exceeded"),
            AsyncRunError::Stalled { alive } => {
                write!(f, "stalled with processes {alive:?} alive and no pending events")
            }
            AsyncRunError::Livelock { window, diagnosis } => {
                write!(f, "no progress for over {window} time-steps ({diagnosis})")
            }
            AsyncRunError::InvalidAdversary { reason } => {
                write!(f, "invalid adversary schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for AsyncRunError {}

/// The in-flight op slab: every payload lives in exactly one slot, shared
/// by all its pending delivery events; `refs` counts the deliveries still
/// outstanding and a slot returns to the free list when it hits zero (the
/// stale value is overwritten on reuse), so memory is bounded by the
/// in-flight high-water mark.
#[derive(Clone)]
struct OpArena<M> {
    slots: Vec<FlightOp<M>>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

impl<M> OpArena<M> {
    fn new() -> Self {
        OpArena { slots: Vec::new(), refs: Vec::new(), free: Vec::new() }
    }

    /// Stores `op` once, with `refs` pending deliveries.
    fn insert(&mut self, op: FlightOp<M>, refs: u32) -> u32 {
        debug_assert!(refs > 0, "an op with no deliveries must not enter the arena");
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = op;
                self.refs[id as usize] = refs;
                id
            }
            None => {
                self.slots.push(op);
                self.refs.push(refs);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Marks one delivery of `id` as served.
    fn release(&mut self, id: u32) {
        let r = &mut self.refs[id as usize];
        debug_assert!(*r > 0, "op released more times than it was referenced");
        *r -= 1;
        if *r == 0 {
            self.free.push(id);
        }
    }

    fn ops(&self) -> &[FlightOp<M>] {
        &self.slots
    }
}

/// A serializable snapshot of an [`AsyncEngine`] at a batch boundary.
///
/// Captures *everything* the engine needs to continue — protocol states,
/// the op arena with its in-flight payloads, the full event schedule
/// (including tie-breaking sequence numbers), the delay RNG mid-stream,
/// metrics, trace and the live/reviving sets — so that
/// [`AsyncEngine::resume`] followed by a run to completion is
/// **bit-identical** to the uninterrupted run.
#[derive(Serialize, Deserialize)]
pub struct AsyncEngineSnapshot<P: AsyncProtocol, A> {
    procs: Vec<P>,
    adversary: A,
    cfg: AsyncConfig,
    rng: SmallRng,
    queue: EventQueue,
    arena: OpArena<P::Msg>,
    metrics: Metrics,
    trace: Trace,
    terminated: Vec<bool>,
    crashed: Vec<bool>,
    alive: Vec<bool>,
    live: usize,
    reviving: Vec<bool>,
    pending_revivals: usize,
    invocations: Vec<u64>,
    notes: Vec<(Time, Pid, &'static str)>,
    handled: u64,
    now: Time,
    last_progress: Time,
    finished: bool,
    #[serde(default)]
    mem: MemBudget,
    #[serde(default)]
    executed: u64,
}

impl<P, A> AsyncEngineSnapshot<P, A>
where
    P: AsyncProtocol,
{
    /// The timestamp of the last batch processed before the snapshot.
    pub fn time(&self) -> Time {
        self.now
    }

    /// The metrics as of the snapshot.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl<P, A> Clone for AsyncEngineSnapshot<P, A>
where
    P: AsyncProtocol + Clone,
    P::Msg: Clone,
    A: Clone,
{
    fn clone(&self) -> Self {
        AsyncEngineSnapshot {
            procs: self.procs.clone(),
            adversary: self.adversary.clone(),
            cfg: self.cfg.clone(),
            rng: self.rng.clone(),
            queue: self.queue.clone(),
            arena: self.arena.clone(),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            terminated: self.terminated.clone(),
            crashed: self.crashed.clone(),
            alive: self.alive.clone(),
            live: self.live,
            reviving: self.reviving.clone(),
            pending_revivals: self.pending_revivals,
            invocations: self.invocations.clone(),
            notes: self.notes.clone(),
            handled: self.handled,
            now: self.now,
            last_progress: self.last_progress,
            finished: self.finished,
            mem: self.mem,
            executed: self.executed,
        }
    }
}

/// The resumable asynchronous engine behind [`run_async`].
///
/// Events (start signals, message deliveries, detector notices, ticks) are
/// processed in timestamp order, with all deliveries to one process at one
/// timestamp batched into a single [`AsyncProtocol::on_messages`]
/// invocation. Each delivery and notice is delayed by a seeded draw from
/// [`AsyncConfig::delay`]. When a process retires, the detector schedules
/// a notice to every alive process. After every handler invocation the
/// [`AsyncAdversary`] rules on the process's fate; a crashing handler's
/// outgoing messages pass through its [`Deliver`](crate::Deliver) filter
/// in send order, exactly as in the synchronous engine.
///
/// [`run_until`](AsyncEngine::run_until) can pause the execution at any
/// batch boundary; [`snapshot`](AsyncEngine::snapshot) /
/// [`resume`](AsyncEngine::resume) round-trip the paused state with a
/// bit-identical-continuation guarantee. The optional
/// [`AsyncConfig::stall_window`] watchdog converts tick-loop livelocks
/// into a loud [`AsyncRunError::Livelock`] with a diagnosis.
pub struct AsyncEngine<P: AsyncProtocol, A: AsyncAdversary<P::Msg>> {
    // ---- state: everything a snapshot captures ----
    procs: Vec<P>,
    adversary: A,
    cfg: AsyncConfig,
    rng: SmallRng,
    queue: EventQueue,
    arena: OpArena<P::Msg>,
    metrics: Metrics,
    trace: Trace,
    terminated: Vec<bool>,
    crashed: Vec<bool>,
    // The live-set, maintained incrementally (mirrors the sync engine's
    // AdversaryCtx contract): alive[p] == !crashed[p] && !terminated[p].
    alive: Vec<bool>,
    live: usize,
    // Crashed processes with a scheduled Revive event still pending: the
    // run must not end (nor count as stalled) while one exists.
    reviving: Vec<bool>,
    pending_revivals: usize,
    invocations: Vec<u64>,
    notes: Vec<(Time, Pid, &'static str)>,
    handled: u64,
    now: Time,
    last_progress: Time,
    finished: bool,
    // Peak-memory probe (observed once per processed batch) and the count
    // of batches actually processed; both snapshotted, both excluded from
    // report equality.
    mem: MemBudget,
    executed: u64,
    // ---- derived: recomputed from cfg / adversary on new() and resume() ----
    max_delay: u64,
    // Whether deliveries must be checked for receive omission; queried
    // once so the zero-fault delivery path stays branch-predictable.
    filters: bool,
    record: bool,
    // ---- scratch: rebuilt empty on resume (safe: `generation` stamps
    // only ever match groups built within one batch, and `batch` is empty
    // at every pause boundary) ----
    eff: AsyncEffects<P::Msg>,
    batch: Vec<Ev>,
    inbox_ids: Vec<u32>,
    // Per-timestamp delivery grouping (one linear pre-pass instead of a
    // rescan of the batch per recipient): `groups[slot[p]]` lists the
    // `(op, batch position)` pairs addressed to `p` this timestamp, with
    // `stamp` distinguishing generations so nothing is cleared per pid.
    stamp: Vec<u64>,
    slot: Vec<u32>,
    groups: Vec<Vec<(u32, u32)>>,
    generation: u64,
}

impl<P, A> AsyncEngine<P, A>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
{
    /// Creates an engine poised before the first event.
    ///
    /// # Errors
    ///
    /// [`AsyncRunError::InvalidAdversary`] if the adversary's
    /// [`validate`](AsyncAdversary::validate) hook rejects the schedule
    /// (e.g. a [`FaultPlan`](crate::FaultPlan) that permanently crashes
    /// every process).
    pub fn new(procs: Vec<P>, adversary: A, cfg: AsyncConfig) -> Result<Self, AsyncRunError> {
        let t = procs.len();
        adversary.validate(t).map_err(|reason| AsyncRunError::InvalidAdversary { reason })?;
        let max_delay = cfg.max_delay.max(1);
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let mut queue = EventQueue::with_horizon(max_delay);
        for pid in 0..t {
            queue.push(Time::ZERO, Ev::Start(Pid::new(pid)));
        }
        // Adversary-scheduled injection points: handler-free invocations
        // that let time-based faults strike quiescent processes (see
        // [`AsyncAdversary::scheduled_events`]).
        for (time, pid) in adversary.scheduled_events() {
            if pid.index() < t {
                queue.push(time, Ev::Inject(pid));
            }
        }
        let filters = adversary.filters_deliveries();
        let record = cfg.record_trace;
        let metrics = Metrics::new(cfg.n);
        Ok(AsyncEngine {
            procs,
            adversary,
            cfg,
            rng,
            queue,
            arena: OpArena::new(),
            metrics,
            trace: Trace::new(),
            terminated: vec![false; t],
            crashed: vec![false; t],
            alive: vec![true; t],
            live: t,
            reviving: vec![false; t],
            pending_revivals: 0,
            invocations: vec![0; t],
            notes: Vec::new(),
            handled: 0,
            now: Time::ZERO,
            last_progress: Time::ZERO,
            finished: false,
            mem: MemBudget {
                proc_bytes: (t * std::mem::size_of::<P>()) as u64,
                ..MemBudget::default()
            },
            executed: 0,
            max_delay,
            filters,
            record,
            eff: AsyncEffects::default(),
            batch: Vec::new(),
            inbox_ids: Vec::new(),
            stamp: vec![0; t],
            slot: vec![0; t],
            groups: Vec::new(),
            generation: 0,
        })
    }

    /// The timestamp of the most recently processed batch.
    pub fn time(&self) -> Time {
        self.now
    }

    /// Whether the execution has completed (every process retired with no
    /// revival pending).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The per-process protocol states (e.g. for mid-run inspection).
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// Processes event batches until the execution completes, an error
    /// occurs, or — with `stop = Some(s)` — the first batch boundary at or
    /// past timestamp `s` is reached. Returns `true` when the execution
    /// completed, `false` when it paused at `stop`.
    ///
    /// Pausing is exact: a paused engine continued to completion produces
    /// bit-for-bit the report of an uninterrupted run (same metrics,
    /// message schedule, trace and notes).
    ///
    /// # Errors
    ///
    /// [`AsyncRunError::EventLimit`] if the invocation cap is exceeded;
    /// [`AsyncRunError::Stalled`] if live processes remain with nothing
    /// pending (a protocol bug — in a correct protocol some process always
    /// eventually acts); [`AsyncRunError::Livelock`] if the
    /// [`AsyncConfig::stall_window`] watchdog trips.
    pub fn run_until(&mut self, stop: Option<Time>) -> Result<bool, AsyncRunError> {
        while !self.finished {
            debug_assert!(self.batch.is_empty(), "batch buffer must drain between timestamps");
            let Some(now) = self.queue.drain_next(&mut self.batch) else {
                break;
            };
            self.now = now;
            self.executed += 1;
            let work0 = self.metrics.work_total;
            let crashes0 = self.metrics.crashes;
            let terminations0 = self.metrics.terminations;
            let recoveries0 = self.metrics.recoveries;
            let result = self.process_batch(now);
            self.batch.clear();
            self.observe_mem();
            let delivered = result?;
            if self.finished {
                return Ok(true);
            }
            // Watchdog: progress is a delivered message batch or movement
            // of the work / crash / termination / recovery counters (the
            // sync engine's definition, on virtual time instead of
            // executed rounds). Revivals always count — recoveries moves —
            // so an arbitrarily long crash downtime cannot false-trip.
            let progress = delivered
                || self.metrics.work_total != work0
                || self.metrics.crashes != crashes0
                || self.metrics.terminations != terminations0
                || self.metrics.recoveries != recoveries0;
            if progress {
                self.last_progress = now;
            } else if let Some(window) = self.cfg.stall_window {
                if now.saturating_sub(self.last_progress) > u128::from(window) {
                    return Err(AsyncRunError::Livelock {
                        window,
                        diagnosis: Box::new(self.diagnosis()),
                    });
                }
            }
            if stop.is_some_and(|s| now >= s) {
                return Ok(false);
            }
        }
        if self.finished {
            return Ok(true);
        }
        let t = self.procs.len();
        let alive_pids = (0..t).filter(|&i| self.alive[i]).map(Pid::new).collect::<Vec<_>>();
        if alive_pids.is_empty() {
            self.finished = true;
            Ok(true)
        } else {
            Err(AsyncRunError::Stalled { alive: alive_pids })
        }
    }

    /// Captures the engine's full state at the current batch boundary.
    pub fn snapshot(&self) -> AsyncEngineSnapshot<P, A>
    where
        P: Clone,
        P::Msg: Clone,
        A: Clone,
    {
        debug_assert!(self.batch.is_empty(), "snapshots are taken at batch boundaries");
        AsyncEngineSnapshot {
            procs: self.procs.clone(),
            adversary: self.adversary.clone(),
            cfg: self.cfg.clone(),
            rng: self.rng.clone(),
            queue: self.queue.clone(),
            arena: self.arena.clone(),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            terminated: self.terminated.clone(),
            crashed: self.crashed.clone(),
            alive: self.alive.clone(),
            live: self.live,
            reviving: self.reviving.clone(),
            pending_revivals: self.pending_revivals,
            invocations: self.invocations.clone(),
            notes: self.notes.clone(),
            handled: self.handled,
            now: self.now,
            last_progress: self.last_progress,
            finished: self.finished,
            mem: self.mem,
            executed: self.executed,
        }
    }

    /// Reconstructs an engine from a snapshot; the continuation is
    /// bit-identical to the run the snapshot was taken from.
    pub fn resume(snapshot: AsyncEngineSnapshot<P, A>) -> Self {
        let t = snapshot.procs.len();
        let max_delay = snapshot.cfg.max_delay.max(1);
        let filters = snapshot.adversary.filters_deliveries();
        let record = snapshot.cfg.record_trace;
        AsyncEngine {
            procs: snapshot.procs,
            adversary: snapshot.adversary,
            cfg: snapshot.cfg,
            rng: snapshot.rng,
            queue: snapshot.queue,
            arena: snapshot.arena,
            metrics: snapshot.metrics,
            trace: snapshot.trace,
            terminated: snapshot.terminated,
            crashed: snapshot.crashed,
            alive: snapshot.alive,
            live: snapshot.live,
            reviving: snapshot.reviving,
            pending_revivals: snapshot.pending_revivals,
            invocations: snapshot.invocations,
            notes: snapshot.notes,
            handled: snapshot.handled,
            now: snapshot.now,
            last_progress: snapshot.last_progress,
            finished: snapshot.finished,
            mem: snapshot.mem,
            executed: snapshot.executed,
            max_delay,
            filters,
            record,
            eff: AsyncEffects::default(),
            batch: Vec::new(),
            inbox_ids: Vec::new(),
            stamp: vec![0; t],
            slot: vec![0; t],
            groups: Vec::new(),
            generation: 0,
        }
    }

    /// Consumes the engine into its report (valid at any boundary; the
    /// usual call site is after [`run_until`](AsyncEngine::run_until)
    /// returned `Ok(true)`).
    pub fn into_report(mut self) -> AsyncReport {
        self.observe_mem();
        AsyncReport {
            metrics: self.metrics,
            terminated: self.terminated,
            crashed: self.crashed,
            notes: self.notes,
            trace: self.trace,
            mem: self.mem,
            executed: self.executed,
        }
    }

    /// Folds the current buffer footprint into the peak-memory probe — the
    /// async peer of the sync engine's per-round observation. `soa` is the
    /// per-process columns, `flight` the op arena + event queue + batch
    /// scratch, `ledger` the work table, notes, and trace.
    fn observe_mem(&mut self) {
        self.mem.soa_bytes = (self.terminated.capacity()
            + self.crashed.capacity()
            + self.alive.capacity()
            + self.reviving.capacity()
            + self.invocations.capacity() * 8
            + self.stamp.capacity() * 8
            + self.slot.capacity() * 4) as u64;
        let flight = (self.arena.slots.capacity() * std::mem::size_of::<FlightOp<P::Msg>>()
            + self.arena.refs.capacity() * 4
            + self.arena.free.capacity() * 4
            + self.batch.capacity() * std::mem::size_of::<Ev>()
            + self.inbox_ids.capacity() * 4
            + self.groups.iter().map(|g| g.capacity() * 8).sum::<usize>())
            as u64
            + self.queue.bytes();
        self.mem.flight_bytes = self.mem.flight_bytes.max(flight);
        let ledger = (self.metrics.work_by_unit.capacity() * 4
            + self.notes.capacity() * std::mem::size_of::<(Time, Pid, &'static str)>())
            as u64
            + std::mem::size_of_val(self.trace.events()) as u64;
        self.mem.ledger_bytes = self.mem.ledger_bytes.max(ledger);
    }

    fn diagnosis(&self) -> AsyncStallDiagnosis {
        let stalled: Vec<Pid> =
            (0..self.procs.len()).filter(|&i| self.alive[i]).map(Pid::new).collect();
        let invocations = stalled.iter().map(|&p| (p, self.invocations[p.index()])).collect();
        AsyncStallDiagnosis {
            time: self.now,
            last_progress: self.last_progress,
            stalled,
            invocations,
            pending_events: self.queue.len(),
            pending_revivals: self.pending_revivals,
        }
    }

    /// Dispatches every event of the drained batch at timestamp `now`.
    /// Returns whether at least one message batch was delivered (the
    /// watchdog's strongest progress signal). Sets `finished` on
    /// completion, leaving any remaining batch events undispatched (they
    /// are start-of-idle noise: every process has retired).
    fn process_batch(&mut self, now: Time) -> Result<bool, AsyncRunError> {
        let t = self.procs.len();
        self.generation += 1;
        let generation = self.generation;
        let mut groups_used = 0usize;
        for (pos, ev) in self.batch.iter().enumerate() {
            if let Ev::Deliver { op, to } = *ev {
                let p = to.index();
                if self.stamp[p] != generation {
                    self.stamp[p] = generation;
                    if self.groups.len() == groups_used {
                        self.groups.push(Vec::new());
                    }
                    self.groups[groups_used].clear();
                    self.slot[p] = groups_used as u32;
                    groups_used += 1;
                }
                self.groups[self.slot[p] as usize].push((op, pos as u32));
            }
        }

        let mut delivered = false;
        for i in 0..self.batch.len() {
            let ev = std::mem::replace(&mut self.batch[i], Ev::Consumed);
            let pid = match ev {
                Ev::Consumed => continue,
                Ev::Start(pid) => {
                    if !self.alive[pid.index()] {
                        continue;
                    }
                    self.eff.reset();
                    self.procs[pid.index()].on_start(&mut self.eff);
                    pid
                }
                Ev::Tick(pid) => {
                    if !self.alive[pid.index()] {
                        continue;
                    }
                    self.eff.reset();
                    self.procs[pid.index()].on_tick(&mut self.eff);
                    pid
                }
                Ev::Inject(pid) => {
                    // Handler-free invocation: nothing runs, but the
                    // adversary gets its interception point below.
                    if !self.alive[pid.index()] {
                        continue;
                    }
                    self.eff.reset();
                    pid
                }
                Ev::Revive { pid, wipe } => {
                    let idx = pid.index();
                    if self.alive[idx] || !self.reviving[idx] {
                        continue;
                    }
                    self.reviving[idx] = false;
                    self.pending_revivals -= 1;
                    self.crashed[idx] = false;
                    self.alive[idx] = true;
                    self.live += 1;
                    self.metrics.recoveries += 1;
                    if self.record {
                        self.trace.push(Event::Recover { round: now, pid });
                    }
                    self.eff.reset();
                    self.procs[idx].on_recover(wipe, &mut self.eff);
                    // Detector re-registration: replay every past
                    // retirement to the recovered process, which may have
                    // missed reports during its downtime (or wiped the
                    // ones it had). Replays can duplicate reports heard
                    // before the crash, so `on_retirement` must be
                    // idempotent; soundness is untouched because only
                    // permanently retired processes are replayed.
                    for obs in 0..t {
                        if obs != idx && !self.alive[obs] && !self.reviving[obs] {
                            let delay = self.cfg.delay.sample(&mut self.rng, self.max_delay);
                            self.queue.push(
                                now + delay,
                                Ev::Notice { observer: pid, retired: Pid::new(obs) },
                            );
                        }
                    }
                    pid
                }
                Ev::Notice { observer, retired } => {
                    if !self.alive[observer.index()] {
                        continue;
                    }
                    if self.record {
                        self.trace.push(Event::Notice { round: now, observer, retired });
                    }
                    self.eff.reset();
                    self.procs[observer.index()].on_retirement(retired, &mut self.eff);
                    observer
                }
                Ev::Deliver { op, to } => {
                    if !self.alive[to.index()] {
                        // Individually dead-lettered: a recipient that died
                        // mid-batch (or before all-retired early return)
                        // never gets its group dispatched, matching the
                        // reference scheduler event for event.
                        self.metrics.dead_letters += 1;
                        self.arena.release(op);
                        continue;
                    }
                    // This is the recipient's first delivery of the
                    // timestamp (later ones were folded here by the
                    // pre-pass); hand the whole group over as one batched
                    // inbox and tombstone the folded positions.
                    self.inbox_ids.clear();
                    let grp_slot = self.slot[to.index()] as usize;
                    debug_assert_eq!(self.groups[grp_slot].first(), Some(&(op, i as u32)));
                    for gi in 0..self.groups[grp_slot].len() {
                        let (op2, pos) = self.groups[grp_slot][gi];
                        if pos as usize != i {
                            self.batch[pos as usize] = Ev::Consumed;
                        }
                        // Receive omission: consulted once per (message,
                        // recipient), at delivery time — the shared fault
                        // contract on [`Adversary`](crate::Adversary).
                        if self.filters
                            && self.adversary.omits_delivery(
                                now,
                                self.arena.ops()[op2 as usize].from,
                                to,
                            )
                        {
                            self.metrics.omissions += 1;
                            if self.record {
                                self.trace.push(Event::Note {
                                    round: now,
                                    pid: to,
                                    tag: "fault:omit",
                                });
                            }
                            self.arena.release(op2);
                            continue;
                        }
                        self.inbox_ids.push(op2);
                    }
                    if self.inbox_ids.is_empty() {
                        // The whole batch was omitted: no invocation.
                        continue;
                    }
                    self.eff.reset();
                    let inbox = Inbox::csr(&self.inbox_ids, self.arena.ops());
                    self.procs[to.index()].on_messages(inbox, &mut self.eff);
                    for &id in &self.inbox_ids {
                        self.arena.release(id);
                    }
                    delivered = true;
                    to
                }
            };

            self.handled += 1;
            if self.handled > self.cfg.max_events {
                return Err(AsyncRunError::EventLimit { limit: self.cfg.max_events });
            }
            let idx = pid.index();
            self.invocations[idx] += 1;

            let ctx = AdversaryCtx {
                t,
                alive: AliveView::Slice(&self.alive),
                live: self.live,
                crashes: self.metrics.crashes,
            };
            let fate = self.adversary.intercept(now, pid, self.invocations[idx], &self.eff, ctx);

            for tag in self.eff.notes.drain(..) {
                self.notes.push((now, pid, tag));
                if self.record {
                    self.trace.push(Event::Note { round: now, pid, tag });
                }
            }

            let (count_work, deliver) = match &fate {
                Fate::Survive => (true, None),
                Fate::Crash(spec) | Fate::CrashRecover { spec, .. } => {
                    (spec.count_work, Some(spec.deliver.clone()))
                }
                Fate::Omit(filter) => (true, Some(filter.clone())),
            };
            let is_omit = matches!(fate, Fate::Omit(_));
            let recover_plan = match &fate {
                Fate::CrashRecover { downtime, wipe, .. } => Some(((*downtime).max(1), *wipe)),
                _ => None,
            };
            if count_work {
                for &unit in &self.eff.work {
                    self.metrics.record_work(unit);
                    if self.record {
                        self.trace.push(Event::Work { round: now, pid, unit });
                    }
                }
            }

            // Expand the handler's send ops: the payload enters the arena
            // once; each surviving recipient gets a payload-free delivery
            // event at an independently drawn time. The crash filter
            // indexes messages in send order (spans expand ascending), so
            // crash semantics match the synchronous engine's — and since
            // filtering happens at event granularity, even a fragmented
            // `Subset` costs zero payload clones here.
            let mut msg_idx = 0usize;
            let mut omitted_now = 0u64;
            for op in self.eff.drain_sends() {
                let len = op.to.len();
                let lets_through = |k: usize, to: Pid| {
                    deliver
                        .as_ref()
                        .is_none_or(|d: &crate::Deliver| d.lets_through(msg_idx + k, to))
                };
                let scheduled =
                    op.to.iter().enumerate().filter(|&(k, to)| lets_through(k, to)).count();
                if is_omit {
                    // Send omission: the process survives, the suppressed
                    // messages never left it.
                    omitted_now += (len - scheduled) as u64;
                }
                if scheduled > 0 {
                    let class = op.payload.class();
                    self.metrics.record_messages(class, scheduled as u64);
                    let id = self.arena.insert(
                        FlightOp { from: pid, to: op.to, payload: op.payload },
                        scheduled as u32,
                    );
                    for (k, to) in op.to.iter().enumerate() {
                        if lets_through(k, to) {
                            let delay = self.cfg.delay.sample(&mut self.rng, self.max_delay);
                            self.queue.push(now + delay, Ev::Deliver { op: id, to });
                            if self.record {
                                self.trace.push(Event::Send { round: now, from: pid, to, class });
                            }
                        }
                    }
                }
                msg_idx += len;
            }

            if omitted_now > 0 {
                self.metrics.omissions += omitted_now;
                if self.record {
                    self.trace.push(Event::Note { round: now, pid, tag: "fault:omit" });
                }
            }

            let crashed_now = matches!(fate, Fate::Crash(_) | Fate::CrashRecover { .. });
            if self.eff.tick && !crashed_now && !self.eff.terminated {
                self.queue.push(now + 1u64, Ev::Tick(pid));
            }

            let retired_now = if crashed_now {
                self.crashed[idx] = true;
                self.metrics.crashes += 1;
                if self.record {
                    self.trace.push(Event::Crash { round: now, pid });
                }
                true
            } else if self.eff.terminated {
                self.terminated[idx] = true;
                self.metrics.terminations += 1;
                if self.record {
                    self.trace.push(Event::Terminate { round: now, pid });
                }
                true
            } else {
                false
            };

            if retired_now {
                self.alive[idx] = false;
                self.live -= 1;
                if let Some((downtime, wipe)) = recover_plan {
                    // Recoverable crash: schedule the restart; crucially,
                    // NO detector notices — the detector stays sound by
                    // never accusing a process that will act again.
                    self.reviving[idx] = true;
                    self.pending_revivals += 1;
                    self.queue.push(now + downtime, Ev::Revive { pid, wipe });
                } else {
                    // Retirement detector: eventually (and soundly) inform
                    // everyone still alive.
                    for (obs, &obs_alive) in self.alive.iter().enumerate() {
                        if obs != idx && obs_alive {
                            let delay = self.cfg.delay.sample(&mut self.rng, self.max_delay);
                            self.queue.push(
                                now + delay,
                                Ev::Notice { observer: Pid::new(obs), retired: pid },
                            );
                        }
                    }
                }
            }

            self.metrics.rounds = now;
            if self.live == 0 && self.pending_revivals == 0 {
                self.finished = true;
                return Ok(delivered);
            }
        }
        Ok(delivered)
    }
}

/// Runs an asynchronous execution until all processes retire — a thin
/// wrapper over [`AsyncEngine`] (construct the engine directly for pause /
/// snapshot / resume control).
///
/// # Errors
///
/// [`AsyncRunError::InvalidAdversary`] if the adversary rejects the
/// system's shape; [`AsyncRunError::EventLimit`] if the invocation cap is
/// exceeded; [`AsyncRunError::Stalled`] if live processes remain with
/// nothing pending (a protocol bug — in a correct protocol some process
/// always eventually acts); [`AsyncRunError::Livelock`] if the optional
/// watchdog trips.
pub fn run_async<P, A>(
    procs: Vec<P>,
    adversary: A,
    cfg: AsyncConfig,
) -> Result<AsyncReport, AsyncRunError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
{
    let mut engine = AsyncEngine::new(procs, adversary, cfg)?;
    engine.run_until(None)?;
    Ok(engine.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashSpec, NoFailures};
    use crate::invariants::check_detector_soundness;

    #[derive(Clone, Debug)]
    struct Ball;
    impl Classify for Ball {
        fn class(&self) -> &'static str {
            "ball"
        }
    }

    /// p0 sends a ball to p1; whoever holds the ball terminates; p1
    /// terminates on detecting p0's retirement too (exercises notices).
    struct Player {
        me: usize,
    }

    impl AsyncProtocol for Player {
        type Msg = Ball;

        fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
            if self.me == 0 {
                eff.perform(Unit::new(1));
                eff.send(Pid::new(1), Ball);
                eff.terminate();
            }
        }

        fn on_messages(&mut self, inbox: Inbox<'_, Ball>, eff: &mut AsyncEffects<Ball>) {
            assert!(!inbox.is_empty());
            eff.perform(Unit::new(2));
            eff.terminate();
        }

        fn on_retirement(&mut self, _retired: Pid, eff: &mut AsyncEffects<Ball>) {
            eff.note("saw_retirement");
        }
    }

    #[test]
    fn async_round_trip_completes() {
        let procs = vec![Player { me: 0 }, Player { me: 1 }];
        let report =
            run_async(procs, NoFailures, AsyncConfig { n: 2, ..Default::default() }).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.messages, 1);
        assert!(report.has_survivor());
        assert_eq!(report.survivor_count(), 2);
        assert_eq!(report.survivors_iter().collect::<Vec<_>>(), vec![Pid::new(0), Pid::new(1)]);
    }

    #[test]
    fn async_crash_suppresses_sends_and_work() {
        let procs = vec![Player { me: 0 }, Player { me: 1 }];
        let crash =
            AsyncCrash { pid: Pid::new(0), on_invocation: 1, deliver_prefix: 0, count_work: false };
        let err =
            run_async(procs, vec![crash], AsyncConfig { n: 2, ..Default::default() }).unwrap_err();
        // p1 never hears anything except the retirement notice, which in
        // this toy protocol does not terminate it -> the run stalls.
        match err {
            AsyncRunError::Stalled { alive } => assert_eq!(alive, vec![Pid::new(1)]),
            other => panic!("expected stall, got {other}"),
        }
    }

    #[test]
    fn async_is_deterministic_per_seed() {
        let mk = || vec![Player { me: 0 }, Player { me: 1 }];
        let cfg = AsyncConfig { n: 2, seed: 11, max_delay: 9, ..Default::default() };
        let a = run_async(mk(), NoFailures, cfg.clone()).unwrap();
        let b = run_async(mk(), NoFailures, cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn detector_notices_reach_survivors_and_are_sound() {
        // p0 terminates immediately; p1 gets a retirement notice.
        struct Quitter {
            me: usize,
        }
        impl AsyncProtocol for Quitter {
            type Msg = Ball;
            fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
                if self.me == 0 {
                    eff.terminate();
                }
            }
            fn on_messages(&mut self, _: Inbox<'_, Ball>, _: &mut AsyncEffects<Ball>) {}
            fn on_retirement(&mut self, _: Pid, eff: &mut AsyncEffects<Ball>) {
                eff.note("noticed");
                eff.terminate();
            }
        }
        let procs = vec![Quitter { me: 0 }, Quitter { me: 1 }];
        let report = run_async(procs, NoFailures, AsyncConfig::default().with_trace()).unwrap();
        assert!(report.notes.iter().any(|(_, p, tag)| *p == Pid::new(1) && *tag == "noticed"));
        assert_eq!(report.terminated, vec![true, true]);
        assert!(!report.trace.is_empty());
        assert!(check_detector_soundness(&report.trace).is_empty());
    }

    /// Deliveries to one process at one timestamp arrive as one batch.
    #[test]
    fn same_timestamp_deliveries_are_batched() {
        struct Spray {
            me: usize,
        }
        impl AsyncProtocol for Spray {
            type Msg = Ball;
            fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
                if self.me < 3 {
                    // Three senders each unicast to p3 — Fixed delay lands
                    // them all at the same timestamp.
                    eff.send(Pid::new(3), Ball);
                    eff.terminate();
                }
            }
            fn on_messages(&mut self, inbox: Inbox<'_, Ball>, eff: &mut AsyncEffects<Ball>) {
                // Record the batch width as a performed unit: unit 3 in
                // the report proves all three messages shared one
                // invocation.
                eff.perform(Unit::new(inbox.len()));
                eff.terminate();
            }
            fn on_retirement(&mut self, _: Pid, _: &mut AsyncEffects<Ball>) {}
        }
        let procs: Vec<Spray> = (0..4).map(|me| Spray { me }).collect();
        let cfg = AsyncConfig { n: 3, max_delay: 4, delay: DelayDist::Fixed, ..Default::default() };
        let report = run_async(procs, NoFailures, cfg).unwrap();
        assert_eq!(report.metrics.messages, 3);
        assert_eq!(report.metrics.dead_letters, 0);
        assert_eq!(report.metrics.work_total, 1);
        assert_eq!(report.metrics.work_by_unit[2], 1, "batch of 3 delivered in one invocation");
    }

    /// A crashing handler's `Deliver::Subset` filter selects recipients
    /// out of a span without any payload clone (observable: counts).
    #[test]
    fn subset_crash_filters_span_recipients() {
        struct Once {
            me: usize,
        }
        impl AsyncProtocol for Once {
            type Msg = Ball;
            fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
                if self.me == 0 {
                    eff.multicast(1..6, Ball);
                }
                eff.terminate();
            }
            fn on_messages(&mut self, _: Inbox<'_, Ball>, eff: &mut AsyncEffects<Ball>) {
                eff.terminate();
            }
            fn on_retirement(&mut self, _: Pid, _: &mut AsyncEffects<Ball>) {}
        }
        let procs: Vec<Once> = (0..6).map(|me| Once { me }).collect();
        let adv = AsyncCrashSchedule::new().crash_at(
            Pid::new(0),
            1,
            CrashSpec::subset([Pid::new(1), Pid::new(2), Pid::new(4)]),
        );
        let report = run_async(procs, adv, AsyncConfig::default()).unwrap();
        assert_eq!(report.metrics.messages, 3);
        assert_eq!(report.metrics.crashes, 1);
    }

    /// Chatty pair that keeps a message ping-pong going for a while, so a
    /// pause lands mid-conversation with ops in flight.
    #[derive(Clone)]
    struct PingPong {
        me: usize,
        hops: u32,
    }

    impl AsyncProtocol for PingPong {
        type Msg = Ball;

        fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
            if self.me == 0 {
                eff.send(Pid::new(1), Ball);
            }
        }

        fn on_messages(&mut self, _: Inbox<'_, Ball>, eff: &mut AsyncEffects<Ball>) {
            eff.perform(Unit::new(self.me + 1));
            self.hops += 1;
            if self.hops >= 12 {
                eff.terminate();
            } else {
                eff.send(Pid::new(1 - self.me), Ball);
            }
        }

        fn on_retirement(&mut self, _: Pid, eff: &mut AsyncEffects<Ball>) {
            eff.terminate();
        }
    }

    #[test]
    fn pause_snapshot_resume_is_bit_identical() {
        let mk = || vec![PingPong { me: 0, hops: 0 }, PingPong { me: 1, hops: 0 }];
        let cfg =
            AsyncConfig { n: 2, seed: 42, max_delay: 7, record_trace: true, ..Default::default() };
        let straight = run_async(mk(), NoFailures, cfg.clone()).unwrap();

        let mut engine = AsyncEngine::new(mk(), NoFailures, cfg).unwrap();
        let completed = engine.run_until(Some(Time::from(10u64))).unwrap();
        assert!(!completed, "the ping-pong must outlive timestamp 10");
        let resumed = AsyncEngine::resume(engine.snapshot());
        // Drop the paused original; continue only from the snapshot.
        drop(engine);
        let mut resumed = resumed;
        assert!(resumed.run_until(None).unwrap());
        let report = resumed.into_report();
        assert_eq!(report.metrics, straight.metrics);
        assert_eq!(report.terminated, straight.terminated);
        assert_eq!(report.notes, straight.notes);
        assert_eq!(report.trace, straight.trace);
    }

    #[test]
    fn watchdog_trips_on_tick_livelock() {
        /// Spins a tick chain forever without working or messaging.
        struct Spinner;
        impl AsyncProtocol for Spinner {
            type Msg = Ball;
            fn on_start(&mut self, eff: &mut AsyncEffects<Ball>) {
                eff.continue_later();
            }
            fn on_messages(&mut self, _: Inbox<'_, Ball>, _: &mut AsyncEffects<Ball>) {}
            fn on_retirement(&mut self, _: Pid, _: &mut AsyncEffects<Ball>) {}
            fn on_tick(&mut self, eff: &mut AsyncEffects<Ball>) {
                eff.continue_later();
            }
        }
        let cfg = AsyncConfig { n: 1, ..Default::default() }.with_stall_window(16);
        let err = run_async(vec![Spinner], NoFailures, cfg).unwrap_err();
        match err {
            AsyncRunError::Livelock { window, diagnosis } => {
                assert_eq!(window, 16);
                assert_eq!(diagnosis.stalled, vec![Pid::new(0)]);
                assert!(diagnosis.time > diagnosis.last_progress);
                // The diagnosis renders the per-pid invocation counts.
                assert!(diagnosis.to_string().contains("p0("));
            }
            other => panic!("expected livelock, got {other}"),
        }
    }

    #[test]
    fn invalid_plan_is_rejected_before_the_run() {
        use crate::faults::{FaultKind, FaultPlan};
        // Two processes, both permanently crashed: FaultPlan::validate
        // must reject this via the AsyncAdversary hook.
        let plan = FaultPlan::new(vec![
            FaultKind::Crash(Pid::new(0)).at(1u64),
            FaultKind::Crash(Pid::new(1)).at(1u64),
        ]);
        let procs = vec![Player { me: 0 }, Player { me: 1 }];
        let err = run_async(procs, plan, AsyncConfig { n: 2, ..Default::default() }).unwrap_err();
        match err {
            AsyncRunError::InvalidAdversary { reason } => {
                assert!(reason.contains("all"), "unexpected reason: {reason}");
            }
            other => panic!("expected invalid-adversary error, got {other}"),
        }
    }
}
