//! Fault adversaries for the asynchronous plane: crashes, recovery, and
//! omission.
//!
//! The synchronous [`Adversary`](crate::Adversary) rules on a process's
//! fate once per *round*; its asynchronous counterpart rules once per
//! *handler invocation* — the natural atomic step of the event-driven
//! engine. Everything downstream of the verdict is shared with the
//! synchronous plane: a [`Fate::Crash`] carries the same [`CrashSpec`],
//! whose [`Deliver`] filter is applied to the invocation's outgoing
//! messages in send order, exactly as the round engine applies it
//! (`Prefix` truncates at the message boundary, `Subset` selects
//! recipients, and suppressed work is un-counted via `count_work`).
//! Likewise [`Fate::Omit`] filters the invocation's sends while the
//! process survives, [`Fate::CrashRecover`] schedules a restart after
//! its downtime, and the receive-omission hooks
//! ([`AsyncAdversary::filters_deliveries`] /
//! [`AsyncAdversary::omits_delivery`]) are consulted once per `(message,
//! recipient)` at delivery time — the shared fault contract documented on
//! [`Adversary`](crate::Adversary). A [`FaultPlan`](crate::FaultPlan)
//! implements this trait, so one named-fault schedule drives both planes.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use super::{AsyncEffects, Time};
use crate::adversary::{AdversaryCtx, CrashSpec, Deliver, Fate, NoFailures};
use crate::ids::Pid;

/// An asynchronous crash-failure adversary.
///
/// `invocation` is the 1-based count of handler invocations `pid` has
/// executed so far (including the current one); `effects` is what the
/// handler just proposed to do. As in the synchronous plane, the verdict
/// is rendered *after* the handler runs but *before* its effects apply.
pub trait AsyncAdversary<M> {
    /// Decides the fate of `pid`'s handler invocation at `time`.
    fn intercept(
        &mut self,
        time: Time,
        pid: Pid,
        invocation: u64,
        effects: &AsyncEffects<M>,
        ctx: AdversaryCtx<'_>,
    ) -> Fate;

    /// Timestamps at which the adversary must be given a chance to act on
    /// a process even if no event targets it — the asynchronous analogue
    /// of [`Adversary::next_event`](crate::Adversary::next_event).
    ///
    /// The engine queries this once, before the run, and schedules an
    /// injection event per `(time, pid)` pair: if the process is alive at
    /// that time, a handler invocation with an empty inbox is dispatched
    /// (and intercepted as usual), so time-based faults such as a
    /// [`FaultPlan`](crate::FaultPlan) crash at `t = 5` strike even if the
    /// victim is quiescent. The default is no scheduled events.
    fn scheduled_events(&self) -> Vec<(Time, Pid)> {
        Vec::new()
    }

    /// Whether the engine must consult
    /// [`omits_delivery`](AsyncAdversary::omits_delivery) for every
    /// delivery. Defaults to
    /// `false`, which keeps the zero-fault delivery path branch-free.
    fn filters_deliveries(&self) -> bool {
        false
    }

    /// Receive-omission hook: `true` drops the message from `from` to
    /// `to` whose delivery event fires at `now`, counting it in
    /// [`Metrics::omissions`](crate::Metrics::omissions). Consulted once
    /// per `(message, recipient)`, only when
    /// [`filters_deliveries`](AsyncAdversary::filters_deliveries) is
    /// `true`. Defaults to dropping nothing.
    fn omits_delivery(&mut self, _now: Time, _from: Pid, _to: Pid) -> bool {
        false
    }

    /// Checks the adversary's schedule against a system of `t` processes,
    /// before the first event. An `Err` aborts the run with
    /// [`AsyncRunError::InvalidAdversary`](crate::asynch::AsyncRunError::InvalidAdversary)
    /// — the asynchronous analogue of
    /// [`Adversary::validate`](crate::Adversary::validate).
    /// [`FaultPlan`](crate::faults::FaultPlan) overrides this; the default
    /// accepts everything.
    fn validate(&self, _t: usize) -> Result<(), String> {
        Ok(())
    }
}

impl<M> AsyncAdversary<M> for Box<dyn AsyncAdversary<M>> {
    fn intercept(
        &mut self,
        time: Time,
        pid: Pid,
        invocation: u64,
        effects: &AsyncEffects<M>,
        ctx: AdversaryCtx<'_>,
    ) -> Fate {
        (**self).intercept(time, pid, invocation, effects, ctx)
    }

    fn scheduled_events(&self) -> Vec<(Time, Pid)> {
        (**self).scheduled_events()
    }

    fn filters_deliveries(&self) -> bool {
        (**self).filters_deliveries()
    }

    fn omits_delivery(&mut self, now: Time, from: Pid, to: Pid) -> bool {
        (**self).omits_delivery(now, from, to)
    }

    fn validate(&self, t: usize) -> Result<(), String> {
        (**self).validate(t)
    }
}

/// [`NoFailures`] serves both planes: it never crashes anyone.
impl<M> AsyncAdversary<M> for NoFailures {
    fn intercept(
        &mut self,
        _: Time,
        _: Pid,
        _: u64,
        _: &AsyncEffects<M>,
        _: AdversaryCtx<'_>,
    ) -> Fate {
        Fate::Survive
    }
}

/// Crash instructions for the asynchronous engine: process `pid` crashes
/// during its `nth` handler invocation (1-based), delivering only the
/// first `deliver_prefix` messages of that handler.
///
/// This is the pre-PR-4 crash interface, kept as a thin adapter: a
/// `Vec<AsyncCrash>` *is* an [`AsyncAdversary`], equivalent to an
/// [`AsyncCrashSchedule`] with `Deliver::Prefix` specs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncCrash {
    /// The victim.
    pub pid: Pid,
    /// Which handler invocation the crash interrupts (1-based).
    pub on_invocation: u64,
    /// How many of that handler's outgoing messages escape.
    pub deliver_prefix: usize,
    /// Whether the handler's work units count as performed.
    pub count_work: bool,
}

impl<M> AsyncAdversary<M> for Vec<AsyncCrash> {
    fn intercept(
        &mut self,
        _time: Time,
        pid: Pid,
        invocation: u64,
        _effects: &AsyncEffects<M>,
        _ctx: AdversaryCtx<'_>,
    ) -> Fate {
        match self.iter().find(|c| c.pid == pid && c.on_invocation == invocation) {
            Some(c) => Fate::Crash(CrashSpec {
                deliver: Deliver::Prefix(c.deliver_prefix),
                count_work: c.count_work,
            }),
            None => Fate::Survive,
        }
    }
}

/// Crashes given processes at given handler invocations, with the full
/// synchronous [`CrashSpec`] vocabulary (silent, after-round, prefix,
/// arbitrary subset).
///
/// # Examples
///
/// ```
/// use doall_sim::asynch::AsyncCrashSchedule;
/// use doall_sim::{CrashSpec, Pid};
///
/// let schedule = AsyncCrashSchedule::new()
///     .crash_at(Pid::new(0), 1, CrashSpec::silent())
///     .crash_at(Pid::new(3), 7, CrashSpec::prefix(2));
/// assert_eq!(schedule.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AsyncCrashSchedule {
    by_victim: BTreeMap<(Pid, u64), CrashSpec>,
}

impl AsyncCrashSchedule {
    /// An empty schedule (equivalent to [`NoFailures`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `pid` to crash during its `invocation`-th handler
    /// invocation (1-based). A later entry for the same `(pid,
    /// invocation)` replaces the earlier one.
    pub fn crash_at(mut self, pid: Pid, invocation: u64, spec: CrashSpec) -> Self {
        self.by_victim.insert((pid, invocation), spec);
        self
    }

    /// Number of scheduled crash entries.
    pub fn len(&self) -> usize {
        self.by_victim.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.by_victim.is_empty()
    }
}

impl<M> AsyncAdversary<M> for AsyncCrashSchedule {
    fn intercept(
        &mut self,
        _time: Time,
        pid: Pid,
        invocation: u64,
        _effects: &AsyncEffects<M>,
        _ctx: AdversaryCtx<'_>,
    ) -> Fate {
        match self.by_victim.get(&(pid, invocation)) {
            Some(spec) => Fate::Crash(spec.clone()),
            None => Fate::Survive,
        }
    }
}

/// Seeded random crash adversary for the asynchronous plane.
///
/// Each handler invocation of an alive process crashes with probability
/// `p_per_event`, up to `max_crashes` total, always sparing a lone
/// survivor (the paper's correctness premise). A crashing handler with
/// outgoing messages delivers a uniformly random prefix of them, mirroring
/// the synchronous [`RandomCrashes`](crate::RandomCrashes).
#[derive(Clone, Debug)]
pub struct AsyncRandomCrashes {
    rng: SmallRng,
    p_per_event: f64,
    max_crashes: u32,
    partial_delivery: bool,
    inflicted: u32,
}

impl AsyncRandomCrashes {
    /// Creates a random adversary with the given per-invocation crash
    /// probability and total crash budget.
    ///
    /// # Panics
    ///
    /// Panics if `p_per_event` is not within `[0.0, 1.0]`.
    pub fn new(seed: u64, p_per_event: f64, max_crashes: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_per_event),
            "crash probability must be in [0, 1], got {p_per_event}"
        );
        AsyncRandomCrashes {
            rng: SmallRng::seed_from_u64(seed),
            p_per_event,
            max_crashes,
            partial_delivery: true,
            inflicted: 0,
        }
    }

    /// Disables mid-broadcast partial delivery (crashes happen cleanly
    /// between invocations).
    pub fn clean_crashes(mut self) -> Self {
        self.partial_delivery = false;
        self
    }
}

impl<M> AsyncAdversary<M> for AsyncRandomCrashes {
    fn intercept(
        &mut self,
        _time: Time,
        _pid: Pid,
        _invocation: u64,
        effects: &AsyncEffects<M>,
        ctx: AdversaryCtx<'_>,
    ) -> Fate {
        if ctx.alive_count() <= 1 {
            return Fate::Survive;
        }
        if ctx.crashes >= self.max_crashes || self.inflicted >= self.max_crashes {
            return Fate::Survive;
        }
        if self.rng.gen_bool(self.p_per_event) {
            let spec = if self.partial_delivery && effects.send_count() > 0 {
                let k = self.rng.gen_range(0..=effects.send_count());
                CrashSpec { deliver: Deliver::Prefix(k), count_work: self.rng.gen_bool(0.5) }
            } else {
                CrashSpec::silent()
            };
            self.inflicted += 1;
            return Fate::Crash(spec);
        }
        Fate::Survive
    }
}

/// A condition on which an [`AsyncTriggerAdversary`] rule fires, always on
/// the process that tripped it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsyncTrigger {
    /// Fires the `nth` time any process emits the given trace note
    /// (1-based, counted across all processes) — e.g. kill the second
    /// process ever to emit `"activate"`.
    NthNote {
        /// The watched annotation tag.
        tag: &'static str,
        /// Which occurrence triggers.
        nth: u64,
    },
    /// Fires when `pid` performs its `nth` unit of work (1-based; an
    /// asynchronous handler may perform several units, all of which
    /// count).
    NthWorkBy {
        /// The watched process.
        pid: Pid,
        /// Which unit performance triggers (1-based).
        nth: u64,
    },
    /// Fires on `pid`'s `nth` handler invocation (1-based) — the
    /// behavioural analogue of [`AsyncCrashSchedule`], composable with the
    /// other triggers.
    NthInvocationOf {
        /// The watched process.
        pid: Pid,
        /// Which invocation triggers (1-based).
        nth: u64,
    },
}

/// A one-shot rule: when `trigger` fires, crash the process it fired on.
#[derive(Clone, Debug)]
pub struct AsyncTriggerRule {
    /// Condition to watch for.
    pub trigger: AsyncTrigger,
    /// How the crash unfolds.
    pub spec: CrashSpec,
}

/// Composable behavioural adversary for the asynchronous plane: a list of
/// one-shot rules over notes, work counts and invocation counts — how
/// "kill the active process right after its `k`-th unit" is written
/// without knowing event timestamps in advance.
///
/// # Examples
///
/// ```
/// use doall_sim::asynch::{AsyncTrigger, AsyncTriggerAdversary, AsyncTriggerRule};
/// use doall_sim::CrashSpec;
///
/// let adv = AsyncTriggerAdversary::new(vec![AsyncTriggerRule {
///     trigger: AsyncTrigger::NthNote { tag: "activate", nth: 2 },
///     spec: CrashSpec::silent(),
/// }]);
/// assert_eq!(adv.remaining_rules(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct AsyncTriggerAdversary {
    rules: Vec<(AsyncTriggerRule, bool)>, // (rule, spent)
    work_counts: BTreeMap<Pid, u64>,
    note_counts: BTreeMap<&'static str, u64>,
}

impl AsyncTriggerAdversary {
    /// Creates an adversary from a list of one-shot rules.
    pub fn new(rules: Vec<AsyncTriggerRule>) -> Self {
        AsyncTriggerAdversary {
            rules: rules.into_iter().map(|r| (r, false)).collect(),
            work_counts: BTreeMap::new(),
            note_counts: BTreeMap::new(),
        }
    }

    /// Number of rules that have not fired yet.
    pub fn remaining_rules(&self) -> usize {
        self.rules.iter().filter(|(_, spent)| !spent).count()
    }
}

impl<M> AsyncAdversary<M> for AsyncTriggerAdversary {
    fn intercept(
        &mut self,
        _time: Time,
        pid: Pid,
        invocation: u64,
        effects: &AsyncEffects<M>,
        _ctx: AdversaryCtx<'_>,
    ) -> Fate {
        let work_before = *self.work_counts.get(&pid).unwrap_or(&0);
        let work_after = work_before + effects.work_units().len() as u64;
        if work_after != work_before {
            self.work_counts.insert(pid, work_after);
        }
        let mut fired_notes: Vec<(&'static str, u64)> = Vec::new();
        for note in effects.notes() {
            let c = self.note_counts.entry(note).or_insert(0);
            *c += 1;
            fired_notes.push((note, *c));
        }

        for (rule, spent) in &mut self.rules {
            if *spent {
                continue;
            }
            let tripped = match &rule.trigger {
                AsyncTrigger::NthNote { tag, nth } => {
                    fired_notes.iter().any(|(t, c)| t == tag && c == nth)
                }
                AsyncTrigger::NthWorkBy { pid: p, nth } => {
                    *p == pid && work_before < *nth && *nth <= work_after
                }
                AsyncTrigger::NthInvocationOf { pid: p, nth } => *p == pid && *nth == invocation,
            };
            if tripped {
                *spent = true;
                return Fate::Crash(rule.spec.clone());
            }
        }
        Fate::Survive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Unit;

    fn ctx(alive: &[bool]) -> AdversaryCtx<'_> {
        AdversaryCtx::new(alive, 0)
    }

    #[test]
    fn vec_of_async_crashes_is_a_prefix_schedule() {
        let mut adv = vec![AsyncCrash {
            pid: Pid::new(1),
            on_invocation: 2,
            deliver_prefix: 3,
            count_work: true,
        }];
        let eff: AsyncEffects<()> = AsyncEffects::default();
        let alive = [true, true];
        assert_eq!(adv.intercept(Time::new(9), Pid::new(1), 1, &eff, ctx(&alive)), Fate::Survive);
        assert_eq!(adv.intercept(Time::new(9), Pid::new(0), 2, &eff, ctx(&alive)), Fate::Survive);
        assert_eq!(
            adv.intercept(Time::new(9), Pid::new(1), 2, &eff, ctx(&alive)),
            Fate::Crash(CrashSpec { deliver: Deliver::Prefix(3), count_work: true })
        );
    }

    #[test]
    fn schedule_fires_on_its_invocation_only() {
        let mut s = AsyncCrashSchedule::new().crash_at(Pid::new(0), 3, CrashSpec::silent());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        let eff: AsyncEffects<()> = AsyncEffects::default();
        let alive = [true, true];
        assert_eq!(s.intercept(Time::new(1), Pid::new(0), 2, &eff, ctx(&alive)), Fate::Survive);
        assert!(matches!(
            s.intercept(Time::new(4), Pid::new(0), 3, &eff, ctx(&alive)),
            Fate::Crash(_)
        ));
    }

    #[test]
    fn random_adversary_respects_budget_and_lone_survivor() {
        let eff: AsyncEffects<()> = AsyncEffects::default();
        let mut broke = AsyncRandomCrashes::new(42, 1.0, 0);
        let alive = [true, true, true];
        assert_eq!(broke.intercept(Time::new(1), Pid::new(0), 1, &eff, ctx(&alive)), Fate::Survive);
        let mut spare = AsyncRandomCrashes::new(42, 1.0, 10);
        let last = [true, false, false];
        assert_eq!(spare.intercept(Time::new(1), Pid::new(0), 1, &eff, ctx(&last)), Fate::Survive);
    }

    #[test]
    fn trigger_nth_work_counts_units_within_one_invocation() {
        // A single invocation performing units 1..=3 crosses nth = 2.
        let mut adv = AsyncTriggerAdversary::new(vec![AsyncTriggerRule {
            trigger: AsyncTrigger::NthWorkBy { pid: Pid::new(0), nth: 2 },
            spec: CrashSpec::silent(),
        }]);
        let alive = [true, true];
        let mut eff: AsyncEffects<()> = AsyncEffects::default();
        eff.perform(Unit::new(1));
        eff.perform(Unit::new(2));
        eff.perform(Unit::new(3));
        assert!(matches!(
            adv.intercept(Time::new(1), Pid::new(0), 1, &eff, ctx(&alive)),
            Fate::Crash(_)
        ));
        assert_eq!(adv.remaining_rules(), 0);
    }

    #[test]
    fn trigger_note_counts_across_processes() {
        let mut adv = AsyncTriggerAdversary::new(vec![AsyncTriggerRule {
            trigger: AsyncTrigger::NthNote { tag: "activate", nth: 2 },
            spec: CrashSpec::silent(),
        }]);
        let alive = [true, true, true];
        let mut e1: AsyncEffects<()> = AsyncEffects::default();
        e1.note("activate");
        assert_eq!(adv.intercept(Time::new(3), Pid::new(1), 1, &e1, ctx(&alive)), Fate::Survive);
        let mut e2: AsyncEffects<()> = AsyncEffects::default();
        e2.note("activate");
        assert!(matches!(
            adv.intercept(Time::new(9), Pid::new(2), 1, &e2, ctx(&alive)),
            Fate::Crash(_)
        ));
    }
}
