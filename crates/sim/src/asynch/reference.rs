//! The per-recipient-clone reference scheduler: the representation the op
//! arena replaced, kept as an executable specification.
//!
//! [`run_async_reference`] implements *exactly* the semantics of
//! [`run_async`](super::run_async) — same batching rule, same adversary
//! protocol, same RNG draw order — but materializes every delivery as an
//! owned `(from, to, payload)` event: a `k`-recipient broadcast clones the
//! payload `k` times at scheduling and the queue is a plain binary heap.
//! The differential property test (`tests/async_differential.rs`) proves
//! the two produce bit-identical [`AsyncReport`]s over random
//! send/delay/crash patterns, and the perf baseline measures this engine
//! as the "before" of the zero-clone arena path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::{
    AsyncAdversary, AsyncConfig, AsyncEffects, AsyncProtocol, AsyncReport, AsyncRunError, Time,
};
use crate::adversary::{AdversaryCtx, AliveView, Fate};
use crate::engine::MemBudget;
use crate::ids::Pid;
use crate::message::{Classify, Inbox};
use crate::metrics::Metrics;
use crate::trace::{Event, Trace};

enum RefEv<M> {
    Start(Pid),
    Deliver { from: Pid, to: Pid, payload: M },
    Notice { observer: Pid, retired: Pid },
    Tick(Pid),
    Consumed,
}

struct Entry<M> {
    time: Time,
    seq: u64,
    ev: RefEv<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// [`run_async`](super::run_async) with the pre-arena per-recipient-clone
/// event representation. Produces bit-identical reports; exists to be
/// differentially tested and benchmarked against.
///
/// # Errors
///
/// As [`run_async`](super::run_async).
///
/// # Panics
///
/// On a [`Fate::CrashRecover`] verdict: crash-recovery (like receive
/// omission and adversary-scheduled injections) exists only in the arena
/// engine; this specification covers the fail-stop and send-omission
/// semantics the two engines share.
pub fn run_async_reference<P, A>(
    mut procs: Vec<P>,
    mut adversary: A,
    cfg: AsyncConfig,
) -> Result<AsyncReport, AsyncRunError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
{
    let t = procs.len();
    let max_delay = cfg.max_delay.max(1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut heap: BinaryHeap<Reverse<Entry<P::Msg>>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut push =
        |heap: &mut BinaryHeap<Reverse<Entry<P::Msg>>>, time: Time, ev: RefEv<P::Msg>| {
            heap.push(Reverse(Entry { time, seq, ev }));
            seq += 1;
        };
    for pid in 0..t {
        push(&mut heap, Time::ZERO, RefEv::Start(Pid::new(pid)));
    }

    let mut metrics = Metrics::new(cfg.n);
    let mut trace = Trace::new();
    let record = cfg.record_trace;
    let mut terminated = vec![false; t];
    let mut crashed = vec![false; t];
    let mut alive = vec![true; t];
    let mut live = t;
    let mut invocations = vec![0u64; t];
    let mut notes: Vec<(Time, Pid, &'static str)> = Vec::new();
    let mut handled: u64 = 0;
    let mut executed: u64 = 0;
    let mut eff: AsyncEffects<P::Msg> = AsyncEffects::default();

    while let Some(Reverse(first)) = heap.pop() {
        let now = first.time;
        executed += 1;
        let mut batch: Vec<RefEv<P::Msg>> = vec![first.ev];
        while heap.peek().is_some_and(|Reverse(e)| e.time == now) {
            batch.push(heap.pop().expect("peeked").0.ev);
        }

        for i in 0..batch.len() {
            let ev = std::mem::replace(&mut batch[i], RefEv::Consumed);
            let pid = match ev {
                RefEv::Consumed => continue,
                RefEv::Start(pid) => {
                    if !alive[pid.index()] {
                        continue;
                    }
                    eff.reset();
                    procs[pid.index()].on_start(&mut eff);
                    pid
                }
                RefEv::Tick(pid) => {
                    if !alive[pid.index()] {
                        continue;
                    }
                    eff.reset();
                    procs[pid.index()].on_tick(&mut eff);
                    pid
                }
                RefEv::Notice { observer, retired } => {
                    if !alive[observer.index()] {
                        continue;
                    }
                    if record {
                        trace.push(Event::Notice { round: now, observer, retired });
                    }
                    eff.reset();
                    procs[observer.index()].on_retirement(retired, &mut eff);
                    observer
                }
                RefEv::Deliver { from, to, payload } => {
                    if !alive[to.index()] {
                        metrics.dead_letters += 1;
                        continue;
                    }
                    let mut pairs: Vec<(Pid, P::Msg)> = vec![(from, payload)];
                    for later in batch.iter_mut().skip(i + 1) {
                        if matches!(later, RefEv::Deliver { to: to2, .. } if *to2 == to) {
                            let RefEv::Deliver { from: f2, payload: p2, .. } =
                                std::mem::replace(later, RefEv::Consumed)
                            else {
                                unreachable!("matched Deliver above");
                            };
                            pairs.push((f2, p2));
                        }
                    }
                    eff.reset();
                    procs[to.index()].on_messages(Inbox::from_pairs(&pairs), &mut eff);
                    to
                }
            };

            handled += 1;
            if handled > cfg.max_events {
                return Err(AsyncRunError::EventLimit { limit: cfg.max_events });
            }
            let idx = pid.index();
            invocations[idx] += 1;

            let ctx =
                AdversaryCtx { t, alive: AliveView::Slice(&alive), live, crashes: metrics.crashes };
            let fate = adversary.intercept(now, pid, invocations[idx], &eff, ctx);

            for tag in eff.notes.drain(..) {
                notes.push((now, pid, tag));
                if record {
                    trace.push(Event::Note { round: now, pid, tag });
                }
            }

            let (count_work, deliver) = match &fate {
                Fate::Survive => (true, None),
                Fate::Crash(spec) => (spec.count_work, Some(spec.deliver.clone())),
                Fate::Omit(filter) => (true, Some(filter.clone())),
                Fate::CrashRecover { .. } => panic!(
                    "crash-recovery faults are not supported by the reference scheduler; \
                     use run_async (the arena engine) for recovery runs"
                ),
            };
            let is_omit = matches!(fate, Fate::Omit(_));
            if count_work {
                for &unit in &eff.work {
                    metrics.record_work(unit);
                    if record {
                        trace.push(Event::Work { round: now, pid, unit });
                    }
                }
            }

            // Per-recipient expansion: one owned, cloned payload per
            // scheduled delivery — the representation under test.
            let mut msg_idx = 0usize;
            let mut omitted_now = 0u64;
            for op in eff.drain_sends() {
                let len = op.to.len();
                for (k, to) in op.to.iter().enumerate() {
                    let pass = deliver
                        .as_ref()
                        .is_none_or(|d: &crate::Deliver| d.lets_through(msg_idx + k, to));
                    if is_omit && !pass {
                        omitted_now += 1;
                    }
                    if pass {
                        let payload = op.payload.clone();
                        let class = payload.class();
                        metrics.record_messages(class, 1);
                        let delay = cfg.delay.sample(&mut rng, max_delay);
                        push(&mut heap, now + delay, RefEv::Deliver { from: pid, to, payload });
                        if record {
                            trace.push(Event::Send { round: now, from: pid, to, class });
                        }
                    }
                }
                msg_idx += len;
            }

            if omitted_now > 0 {
                metrics.omissions += omitted_now;
                if record {
                    trace.push(Event::Note { round: now, pid, tag: "fault:omit" });
                }
            }

            let crashed_now = matches!(fate, Fate::Crash(_));
            if eff.tick && !crashed_now && !eff.terminated {
                push(&mut heap, now + 1u64, RefEv::Tick(pid));
            }

            let retired_now = if crashed_now {
                crashed[idx] = true;
                metrics.crashes += 1;
                if record {
                    trace.push(Event::Crash { round: now, pid });
                }
                true
            } else if eff.terminated {
                terminated[idx] = true;
                metrics.terminations += 1;
                if record {
                    trace.push(Event::Terminate { round: now, pid });
                }
                true
            } else {
                false
            };

            if retired_now {
                alive[idx] = false;
                live -= 1;
                for (obs, &obs_alive) in alive.iter().enumerate() {
                    if obs != idx && obs_alive {
                        let delay = cfg.delay.sample(&mut rng, max_delay);
                        push(
                            &mut heap,
                            now + delay,
                            RefEv::Notice { observer: Pid::new(obs), retired: pid },
                        );
                    }
                }
            }

            metrics.rounds = now;
            if live == 0 {
                return Ok(AsyncReport {
                    metrics,
                    terminated,
                    crashed,
                    notes,
                    trace,
                    mem: MemBudget::default(),
                    executed,
                });
            }
        }
    }

    let alive_pids = (0..t).filter(|&i| alive[i]).map(Pid::new).collect::<Vec<_>>();
    if alive_pids.is_empty() {
        Ok(AsyncReport {
            metrics,
            terminated,
            crashed,
            notes,
            trace,
            mem: MemBudget::default(),
            executed,
        })
    } else {
        Err(AsyncRunError::Stalled { alive: alive_pids })
    }
}
