//! Deadline functions for Protocol C (§3 of the paper), computed on the
//! wide (128-bit) clock. Each deadline is exact — overflow-free — while
//! its value fits 128 bits and saturates to `u128::MAX` beyond, which the
//! engine's sparse fast-forward treats as "past the representable
//! horizon". The binding cell is the zero-view deadline
//! `K(t−i)(n+t)2^{n+t−1}`: at `t = 64` (`K = 332`) the **entire** tower
//! is exact for `n + t ≲ 107`, i.e. the honest `t = 64, n ≤ 32` grids —
//! where the 64-bit clock capped out near `n + t ≈ 80` / `t = 32`.

use crate::util::{log2_exact, mul_saturating_u128, pow2_saturating_u128};

/// Parameters for the Protocol C formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CParams {
    /// Number of work units.
    pub n: u64,
    /// Number of processes (a power of two).
    pub t: u64,
    /// Reporting stride at level 0: `1` for Protocol C (report after every
    /// unit), `n/t` for the Corollary 3.9 variant C′.
    pub report_stride: u64,
}

impl CParams {
    /// Protocol C proper: report every unit of real work.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is a power of two with `t >= 2` and `n >= 1`.
    pub fn protocol_c(n: u64, t: u64) -> Self {
        assert!(t.is_power_of_two() && t >= 2, "t = {t} must be a power of two >= 2");
        assert!(n >= 1, "need at least one unit of work");
        CParams { n, t, report_stride: 1 }
    }

    /// The Corollary 3.9 variant: report to `G_1` only after every `n/t`
    /// units of real work.
    ///
    /// # Panics
    ///
    /// As [`CParams::protocol_c`], plus `t` must divide `n`.
    pub fn protocol_c_prime(n: u64, t: u64) -> Self {
        assert!(t.is_power_of_two() && t >= 2, "t = {t} must be a power of two >= 2");
        assert!(n.is_multiple_of(t) && n >= t, "n = {n} must be a positive multiple of t = {t}");
        CParams { n, t, report_stride: n / t }
    }

    /// `log₂ t`: the number of group levels.
    pub fn levels(self) -> u32 {
        log2_exact(self.t)
    }

    /// Size of a level-`h` group, `2^(log t − h + 1)`, for `1 <= h <= log t`.
    pub fn group_size(self, h: u32) -> u64 {
        assert!((1..=self.levels()).contains(&h), "level {h} out of range");
        1u64 << (self.levels() - h + 1)
    }

    /// The constant `K`: an upper bound on the rounds a process can wait,
    /// from the moment the active process takes over, before first hearing
    /// from it.
    ///
    /// For Protocol C this is `5t + 2 log t` (Lemma 3.2). For C′ the active
    /// process may do up to `n` units between level-0 reports, so the bound
    /// grows to `2n + 3t + 2 log t` (Corollary 3.9); the paper notes all
    /// arguments go through for any valid bound.
    pub fn k(self) -> u64 {
        if self.report_stride == 1 {
            5 * self.t + 2 * u64::from(self.levels())
        } else {
            2 * self.n + 3 * self.t + 2 * u64::from(self.levels())
        }
    }

    /// The deadline `D(i, m)`: how many rounds process `i` waits after
    /// first obtaining reduced view `m` before becoming active.
    ///
    /// ```text
    /// D(i, m) = K (n + t − m) 2^{n+t−1−m}        if m >= 1
    ///           K (t − i) (n + t) 2^{n+t−1}      if m = 0
    /// ```
    ///
    /// Computed on the wide clock: exact wherever the product fits 128
    /// bits — in particular for every cell of the tower when
    /// `K·t·(n+t)·2^{n+t−1} < 2¹²⁸` (`n + t ≲ 107` at `t = 64`), where
    /// every Lemma 3.4 domination and distinctness property holds by
    /// literal arithmetic — and saturating at `u128::MAX` beyond (several
    /// low-`m` cells may then share the saturated value; the protocol's
    /// running time is genuinely exponential, and a saturated deadline
    /// only ever fires if nothing representable — a scheduled crash, an
    /// informed deadline — happens first).
    pub fn d(self, i: u64, m: u64) -> u128 {
        let nt = self.n + self.t;
        debug_assert!(m < nt, "reduced view m = {m} out of range (n+t = {nt})");
        if m >= 1 {
            mul_saturating_u128(&[
                u128::from(self.k()),
                u128::from(nt - m),
                pow2_saturating_u128(nt - 1 - m),
            ])
        } else {
            mul_saturating_u128(&[
                u128::from(self.k()),
                u128::from(self.t - i),
                u128::from(nt),
                pow2_saturating_u128(nt - 1),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sizes_shrink_with_level() {
        let p = CParams::protocol_c(8, 8);
        assert_eq!(p.levels(), 3);
        assert_eq!(p.group_size(1), 8);
        assert_eq!(p.group_size(2), 4);
        assert_eq!(p.group_size(3), 2);
    }

    #[test]
    fn k_matches_lemma_3_2() {
        let p = CParams::protocol_c(10, 8);
        assert_eq!(p.k(), 5 * 8 + 2 * 3);
    }

    #[test]
    fn k_prime_matches_corollary_3_9() {
        let p = CParams::protocol_c_prime(16, 8);
        assert_eq!(p.k(), 2 * 16 + 3 * 8 + 2 * 3);
    }

    #[test]
    fn deadlines_strictly_decrease_in_m() {
        let p = CParams::protocol_c(6, 4);
        let mut prev = u128::MAX;
        for m in 1..(p.n + p.t) {
            let d = p.d(0, m);
            assert!(d < prev, "D must strictly decrease: D(0,{m}) = {d} >= {prev}");
            prev = d;
        }
    }

    /// The key telescoping property used in Lemma 3.4(b):
    /// `D(i, m) > (n+t−m)·K + D(i, m+1) + ... + D(i, n+t−1)`.
    #[test]
    fn deadline_dominates_suffix_sum() {
        let p = CParams::protocol_c(5, 4);
        let nt = p.n + p.t;
        // At m = n+t-1 the suffix is empty and the inequality is an equality
        // (D = K); the induction in Lemma 3.4(b) is vacuous there.
        for m in 1..nt - 1 {
            let suffix: u128 = (m + 1..nt).map(|m2| p.d(0, m2)).sum();
            assert!(
                p.d(0, m) > u128::from((nt - m) * p.k()) + suffix,
                "domination failed at m = {m}"
            );
        }
    }

    /// For the zero-knowledge deadline, Lemma 3.4's requirement is
    /// `D(i, 0) > (n+t)·K + max_{j>i} D(j, 0) + D(i, 1) + ... + D(i, n+t−1)`.
    #[test]
    fn zero_view_deadline_dominates() {
        let p = CParams::protocol_c(5, 4);
        let nt = p.n + p.t;
        for i in 0..p.t - 1 {
            let max_higher = (i + 1..p.t).map(|j| p.d(j, 0)).max().unwrap();
            let suffix: u128 = (1..nt).map(|m| p.d(i, m)).sum();
            assert!(
                p.d(i, 0) > u128::from(nt * p.k()) + max_higher + suffix,
                "zero-view domination failed at i = {i}"
            );
        }
    }

    #[test]
    fn zero_view_deadlines_are_distinct_per_process() {
        let p = CParams::protocol_c(4, 8);
        let ds: Vec<u128> = (0..p.t).map(|i| p.d(i, 0)).collect();
        let mut sorted = ds.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), ds.len());
    }

    #[test]
    fn saturation_instead_of_overflow() {
        // n + t = 164: the tower exceeds even the wide clock and must pin
        // at the horizon rather than wrap.
        let p = CParams::protocol_c(100, 64);
        assert_eq!(p.d(0, 0), u128::MAX);
        assert_eq!(p.d(0, 1), u128::MAX);
        // Very knowledgeable views still fit exactly.
        assert!(p.d(0, 160) < u128::MAX);
        assert_eq!(p.d(0, 163), u128::from(p.k()));
    }

    /// Regression pin for the `t = 64` tower — the shape the wide clock
    /// newly makes exact (`n + t = 72 ≤ 128`; the old 64-bit clock
    /// saturated every cell below `m ≈ 8`). Values are hard-coded
    /// decimals of `K(t−i)(n+t)2^{n+t−1}` / `K(n+t−m)2^{n+t−1−m}` with
    /// `K = 5t + 2 log t = 332`, computed independently of the
    /// `pow2`/`mul` helpers under test.
    #[test]
    fn t64_tower_is_exact_on_the_wide_clock() {
        let p = CParams::protocol_c(8, 64);
        assert_eq!(p.k(), 332);
        assert_eq!(p.d(0, 0), 3_612_270_349_008_511_974_022_053_888);
        assert_eq!(p.d(63, 0), 56_441_724_203_257_999_594_094_592);
        assert_eq!(p.d(0, 1), 27_828_905_683_550_819_244_310_528);
        assert_eq!(p.d(0, 36), 410_667_592_974_336);
        assert_eq!(p.d(0, 71), 332);
        // Nothing in the t = 64 tower saturates...
        for m in 1..(p.n + p.t) {
            assert!(p.d(0, m) < u128::MAX, "D(0,{m}) saturated");
        }
        // ...and the strict Lemma 3.4 ordering holds by exact arithmetic.
        for m in 1..(p.n + p.t - 1) {
            assert!(p.d(0, m) > p.d(0, m + 1));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_t_is_rejected() {
        let _ = CParams::protocol_c(10, 6);
    }
}
