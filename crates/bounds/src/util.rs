//! Small integer helpers used throughout the bound formulas.

/// Integer square root: the largest `s` with `s * s <= x`.
///
/// # Examples
///
/// ```
/// assert_eq!(doall_bounds::isqrt(16), 4);
/// assert_eq!(doall_bounds::isqrt(17), 4);
/// assert_eq!(doall_bounds::isqrt(0), 0);
/// ```
pub fn isqrt(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut s = (x as f64).sqrt() as u64;
    // Float sqrt can be off by one in either direction near perfect squares.
    while s.saturating_mul(s) > x {
        s -= 1;
    }
    while (s + 1).saturating_mul(s + 1) <= x {
        s += 1;
    }
    s
}

/// Whether `x` is a perfect square (the paper's assumption on `t` for
/// Protocols A and B).
pub fn is_perfect_square(x: u64) -> bool {
    let s = isqrt(x);
    s * s == x
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `x` is not a positive power of two.
pub fn log2_exact(x: u64) -> u32 {
    assert!(x.is_power_of_two(), "{x} is not a power of two");
    x.trailing_zeros()
}

/// Saturating `2^e` in `u64`.
pub fn pow2_saturating(e: u64) -> u64 {
    if e >= 63 {
        u64::MAX
    } else {
        1u64 << e
    }
}

/// Saturating product of a slice of factors.
pub fn mul_saturating(factors: &[u64]) -> u64 {
    factors.iter().fold(1u64, |acc, &f| acc.saturating_mul(f))
}

/// Saturating `2^e` on the wide clock: exact up to `2^127`, pinned at
/// `u128::MAX` beyond (the simulator treats that value as "past the
/// representable horizon of the 128-bit round clock").
pub fn pow2_saturating_u128(e: u64) -> u128 {
    if e >= 128 {
        u128::MAX
    } else {
        1u128 << e
    }
}

/// Saturating product of wide factors (the deadline-tower primitive).
pub fn mul_saturating_u128(factors: &[u128]) -> u128 {
    factors.iter().fold(1u128, |acc, &f| acc.saturating_mul(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_handles_exact_and_inexact() {
        for (x, want) in [(0, 0), (1, 1), (2, 1), (3, 1), (4, 2), (35, 5), (36, 6), (37, 6)] {
            assert_eq!(isqrt(x), want, "isqrt({x})");
        }
    }

    #[test]
    fn isqrt_is_exact_for_large_squares() {
        for s in [1u64 << 20, (1u64 << 31) - 1, 3_037_000_499] {
            assert_eq!(isqrt(s * s), s);
            assert_eq!(isqrt(s * s + 1), s);
            if s > 1 {
                assert_eq!(isqrt(s * s - 1), s - 1);
            }
        }
    }

    #[test]
    fn perfect_square_detection() {
        assert!(is_perfect_square(0));
        assert!(is_perfect_square(4));
        assert!(is_perfect_square(144));
        assert!(!is_perfect_square(2));
        assert!(!is_perfect_square(143));
    }

    #[test]
    fn log2_of_powers() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(1024), 10);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_powers() {
        let _ = log2_exact(6);
    }

    #[test]
    fn pow2_saturates() {
        assert_eq!(pow2_saturating(3), 8);
        assert_eq!(pow2_saturating(62), 1 << 62);
        assert_eq!(pow2_saturating(63), u64::MAX);
        assert_eq!(pow2_saturating(1000), u64::MAX);
    }

    #[test]
    fn mul_saturates() {
        assert_eq!(mul_saturating(&[3, 4, 5]), 60);
        assert_eq!(mul_saturating(&[u64::MAX, 2]), u64::MAX);
        assert_eq!(mul_saturating(&[]), 1);
    }
}
