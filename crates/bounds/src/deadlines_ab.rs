//! Deadline functions for Protocols A and B (§2 of the paper).
//!
//! These formulas *are* the protocols' timing spec; the implementations in
//! `doall-core` call into this module so that tests can check the code
//! against the paper's arithmetic (including the Lemma 2.5 identities)
//! independently of any simulation.
//!
//! Throughout, `t` is a perfect square, processes are `0..t-1`, groups are
//! numbered `1..=√t`, and `ḡ(i) = ⌈(i+1)/√t⌉` is process `i`'s group.

use crate::util::isqrt;

/// Parameters shared by the Protocol A/B formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbParams {
    /// Number of work units.
    pub n: u64,
    /// Number of processes (a perfect square).
    pub t: u64,
}

impl AbParams {
    /// Creates the parameter pack.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is a positive perfect square and `√t` divides `n`
    /// with `n >= t` — the paper's simplifying assumptions ("we assume that
    /// t is a perfect square, and that n is divisible by t, so that in
    /// particular n > t").
    pub fn new(n: u64, t: u64) -> Self {
        assert!(t >= 1, "need at least one process");
        assert!(crate::util::is_perfect_square(t), "t = {t} must be a perfect square");
        assert!(n.is_multiple_of(t), "n = {n} must be divisible by t = {t}");
        assert!(n >= t, "n = {n} must be at least t = {t}");
        AbParams { n, t }
    }

    /// `√t`.
    pub fn sqrt_t(self) -> u64 {
        isqrt(self.t)
    }

    /// The group of process `i`: `⌈(i+1)/√t⌉`, in `1..=√t`.
    pub fn group_of(self, i: u64) -> u64 {
        (i + 1).div_ceil(self.sqrt_t())
    }

    /// `ī = i mod √t`: process `i`'s position within its group.
    pub fn bar(self, i: u64) -> u64 {
        i % self.sqrt_t()
    }

    /// Pids of group `g` (1-based): `(g-1)√t ..= g√t - 1`.
    pub fn group_members(self, g: u64) -> std::ops::Range<u64> {
        let s = self.sqrt_t();
        (g - 1) * s..g * s
    }

    /// Size of each work chunk, `n/√t`.
    pub fn chunk_size(self) -> u64 {
        self.n / self.sqrt_t()
    }

    /// Size of each work subchunk, `n/t`.
    pub fn subchunk_size(self) -> u64 {
        self.n / self.t
    }

    /// Units of subchunk `c` (1-based): `(c-1)·n/t + 1 ..= c·n/t`.
    pub fn subchunk_units(self, c: u64) -> std::ops::RangeInclusive<u64> {
        let sz = self.subchunk_size();
        (c - 1) * sz + 1..=c * sz
    }
}

/// Protocol A's deadline: process `j` becomes active at round
/// `DD(j) = j(n + 3t)` unless it has learned that all work is done
/// (§2.1; `n + 3t` bounds an active process's lifetime by Lemma 2.1).
pub fn dd(p: AbParams, j: u64) -> u64 {
    j.saturating_mul(p.n + 3 * p.t)
}

/// Protocol B's *process time out* `PTO = n/t + 2`: an upper bound (plus
/// one) on the rounds between messages from an active process to its own
/// group.
pub fn pto(p: AbParams) -> u64 {
    p.n / p.t + 2
}

/// Protocol B's *group time out*
/// `GTO(i) = n/√t + 3√t + (√t − ī − 1)·PTO + 1`: an upper bound (plus one)
/// on the rounds before a process in a *later* group hears from group
/// `ḡ(i)` if any process `k ≥ i` of that group is active.
pub fn gto(p: AbParams, i: u64) -> u64 {
    let s = p.sqrt_t();
    p.n / s + 3 * s + (s - p.bar(i) - 1) * pto(p) + 1
}

/// Protocol B's deadline `DDB(j, i)`: how long process `j` waits after last
/// hearing (at round `r'`, from process `i`) before going *preactive* at
/// round `r' + DDB(j, i)`.
pub fn ddb(p: AbParams, j: u64, i: u64) -> u64 {
    if p.group_of(j) != p.group_of(i) {
        gto(p, i) + (p.group_of(j) - p.group_of(i) - 1) * gto(p, 0)
    } else {
        pto(p)
    }
}

/// Protocol B's *transition time* `TT(j, i)`: if the last ordinary message
/// `j` received before round `r = r' + TT(j, i)` was sent by `i` at `r'`,
/// then `j` is active at or before round `r`.
pub fn tt(p: AbParams, j: u64, i: u64) -> u64 {
    if p.group_of(j) != p.group_of(i) {
        ddb(p, j, i) + p.bar(j) * pto(p)
    } else {
        (p.bar(j) - p.bar(i)) * pto(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> AbParams {
        AbParams::new(32, 16)
    }

    #[test]
    fn groups_partition_processes() {
        let p = p();
        assert_eq!(p.sqrt_t(), 4);
        // Process 0..3 in group 1, 4..7 in group 2, ...
        assert_eq!(p.group_of(0), 1);
        assert_eq!(p.group_of(3), 1);
        assert_eq!(p.group_of(4), 2);
        assert_eq!(p.group_of(15), 4);
        let members: Vec<u64> = p.group_members(2).collect();
        assert_eq!(members, vec![4, 5, 6, 7]);
        // Every process is in the group that contains it.
        for i in 0..16 {
            assert!(p.group_members(p.group_of(i)).contains(&i));
        }
    }

    #[test]
    fn bar_is_position_within_group() {
        let p = p();
        assert_eq!(p.bar(0), 0);
        assert_eq!(p.bar(5), 1);
        assert_eq!(p.bar(15), 3);
    }

    #[test]
    fn chunking_matches_the_paper() {
        let p = p();
        assert_eq!(p.chunk_size(), 8); // n/√t = 32/4
        assert_eq!(p.subchunk_size(), 2); // n/t = 32/16
        assert_eq!(p.subchunk_units(1), 1..=2);
        assert_eq!(p.subchunk_units(16), 31..=32);
        // t subchunks cover exactly 1..=n.
        let total: u64 = (1..=p.t).map(|c| p.subchunk_units(c).count() as u64).sum();
        assert_eq!(total, p.n);
    }

    #[test]
    fn dd_is_linear_in_j() {
        let p = p();
        assert_eq!(dd(p, 0), 0);
        assert_eq!(dd(p, 1), 32 + 48);
        assert_eq!(dd(p, 5), 5 * 80);
    }

    #[test]
    fn pto_and_gto_values() {
        let p = p();
        assert_eq!(pto(p), 4); // 32/16 + 2

        // GTO(0) = n/√t + 3√t + (√t-1)·PTO + 1 = 8 + 12 + 12 + 1 = 33.
        assert_eq!(gto(p, 0), 33);
        // GTO for the last member of a group: (√t - 3 - 1) = 0 PTO terms.
        assert_eq!(gto(p, 3), (8 + 12) + 1);
    }

    #[test]
    fn ddb_same_group_is_pto() {
        let p = p();
        assert_eq!(ddb(p, 6, 4), pto(p));
        assert_eq!(ddb(p, 6, 5), pto(p));
    }

    #[test]
    fn ddb_across_groups_accumulates_gto() {
        let p = p();
        // j in group 3, i in group 1: GTO(i) + (3-1-1)·GTO(0).
        assert_eq!(ddb(p, 8, 0), gto(p, 0) + gto(p, 0));
        assert_eq!(ddb(p, 8, 2), gto(p, 2) + gto(p, 0));
        // Adjacent groups: just GTO(i).
        assert_eq!(ddb(p, 4, 1), gto(p, 1));
    }

    /// Lemma 2.5(a): `TT(j,k) + TT(l,j) = TT(l,k)` for `l > j > k`.
    #[test]
    fn lemma_2_5_a_exhaustive_small() {
        for (n, t) in [(16, 16), (32, 16), (36, 36), (72, 36)] {
            let p = AbParams::new(n, t);
            for k in 0..t {
                for j in k + 1..t {
                    for l in j + 1..t {
                        assert_eq!(
                            tt(p, j, k) + tt(p, l, j),
                            tt(p, l, k),
                            "lemma 2.5(a) failed at n={n} t={t} l={l} j={j} k={k}"
                        );
                    }
                }
            }
        }
    }

    /// Lemma 2.5(b): `TT(j,k) + DDB(l,j) = DDB(l,k)` when `ḡ(j) < ḡ(l)`.
    #[test]
    fn lemma_2_5_b_exhaustive_small() {
        for (n, t) in [(16, 16), (32, 16), (36, 36)] {
            let p = AbParams::new(n, t);
            for k in 0..t {
                for j in k + 1..t {
                    for l in j + 1..t {
                        if p.group_of(j) < p.group_of(l) {
                            assert_eq!(
                                tt(p, j, k) + ddb(p, l, j),
                                ddb(p, l, k),
                                "lemma 2.5(b) failed at n={n} t={t} l={l} j={j} k={k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_t_is_rejected() {
        let _ = AbParams::new(30, 15);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_n_is_rejected() {
        let _ = AbParams::new(33, 16);
    }
}
