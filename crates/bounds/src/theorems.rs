//! The paper's theorem bounds, as executable functions.
//!
//! Every quantitative claim in the paper appears here as a function of the
//! problem parameters, so tests and the experiment harness can assert
//! `measured <= bound` and report tightness ratios. Functions are named
//! after the theorem or section they come from.

use crate::util::{isqrt, log2_exact, mul_saturating_u128, pow2_saturating_u128};

/// Bounds from one theorem for one parameter setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Maximum total work (with multiplicity).
    pub work: u64,
    /// Maximum total messages.
    pub messages: u64,
    /// Round by which all processes have retired, on the wide clock
    /// (Protocol C's bound is exponential in `n + t` and only fits here).
    pub rounds: u128,
}

impl Bounds {
    /// The effort bound (work + messages).
    pub fn effort(&self) -> u64 {
        self.work.saturating_add(self.messages)
    }
}

/// Theorem 2.3 (Protocol A): at most `3n` work, `9t√t` messages, all
/// processes retired by round `nt + 3t²`.
///
/// The abstract states the work bound as `3n′` with `n′ = max(n, t)`; under
/// the divisibility assumption `n >= t` they coincide.
pub fn protocol_a(n: u64, t: u64) -> Bounds {
    let n_prime = n.max(t);
    Bounds { work: 3 * n_prime, messages: 9 * t * isqrt(t), rounds: u128::from(n * t + 3 * t * t) }
}

/// Theorem 2.8 (Protocol B): at most `3n` work, `10t√t` messages (the extra
/// `t√t` over Protocol A pays for `go ahead` messages), all retired by
/// round `3n + 8t`.
pub fn protocol_b(n: u64, t: u64) -> Bounds {
    Bounds { work: 3 * n.max(t), messages: 10 * t * isqrt(t), rounds: u128::from(3 * n + 8 * t) }
}

/// Theorem 3.8 (Protocol C): at most `n + 2t` units of *real* work,
/// `n + 8t log t` messages, all retired by round
/// `t(5t + 2 log t)(n + t) 2^{n+t}` (saturating).
pub fn protocol_c(n: u64, t: u64) -> Bounds {
    let log_t = u64::from(log2_exact(t));
    Bounds {
        work: n + 2 * t,
        messages: n + 8 * t * log_t,
        rounds: mul_saturating_u128(&[
            u128::from(t),
            u128::from(5 * t + 2 * log_t),
            u128::from(n + t),
            pow2_saturating_u128(n + t),
        ]),
    }
}

/// Corollary 3.9 (Protocol C′, reporting every `n/t` units): `O(t log t)`
/// messages, `O(n)` work, termination within
/// `t(2n + 3t + 2 log t)(n + t) 2^{n+t}` rounds.
///
/// The corollary states the message bound asymptotically; re-running the
/// Theorem 3.8(b) accounting with `t` level-0 reports instead of `n` gives
/// the concrete `3t + 8t log t` used here (see DESIGN.md).
pub fn protocol_c_prime(n: u64, t: u64) -> Bounds {
    let log_t = u64::from(log2_exact(t));
    Bounds {
        // Lemma 3.7 with stride-sized level-0 units: at most
        // |G_0|/stride + |G_1| = 2t reported strides (2n units) plus one
        // unreported stride per process (n units) => 3n.
        work: 3 * n,
        messages: 3 * t + 8 * t * log_t,
        rounds: mul_saturating_u128(&[
            u128::from(t),
            u128::from(2 * n + 3 * t + 2 * log_t),
            u128::from(n + t),
            pow2_saturating_u128(n + t),
        ]),
    }
}

/// Theorem 4.1 case 1 (Protocol D, at most half the live processes lost per
/// phase): at most `2n` work, `(4f + 2)t²` messages, all retired by round
/// `(f + 1)n/t + 4f + 2`.
pub fn protocol_d_normal(n: u64, t: u64, f: u64) -> Bounds {
    Bounds {
        work: 2 * n,
        messages: (4 * f + 2) * t * t,
        rounds: u128::from((f + 1) * n.div_ceil(t) + 4 * f + 2),
    }
}

/// Theorem 4.1 case 2 (some phase lost more than half, reverting to
/// Protocol A): at most `4n` work, `(4f + 2)t² + 9t√t/(2√2)` messages,
/// retired by round `(f + 1)n/t + 4f + 2 + nt/2 + 3t²/4`.
pub fn protocol_d_fallback(n: u64, t: u64, f: u64) -> Bounds {
    // 9·(t/2)·√(t/2) = 9t√t / (2√2), rounded up.
    let half = t / 2;
    let fallback_msgs = 9 * half * isqrt(half) + if isqrt(half).pow(2) == half { 0 } else { half };
    Bounds {
        work: 4 * n,
        messages: (4 * f + 2) * t * t + fallback_msgs,
        rounds: u128::from((f + 1) * n.div_ceil(t) + 4 * f + 2 + n * t / 2 + 3 * t * t / 4),
    }
}

/// §4 closing remarks, failure-free Protocol D: exactly `n` units of work,
/// `n/t + 2` rounds, `2t²` messages.
pub fn protocol_d_failure_free(n: u64, t: u64) -> Bounds {
    Bounds { work: n, messages: 2 * t * t, rounds: u128::from(n.div_ceil(t) + 2) }
}

/// §4 closing remarks, Protocol D with exactly one failure: at most
/// `n + n/t` work, `5t²` messages, `n/t + ⌈n/(t(t−1))⌉ + 6` rounds.
pub fn protocol_d_one_failure(n: u64, t: u64) -> Bounds {
    Bounds {
        work: n + n.div_ceil(t),
        messages: 5 * t * t,
        rounds: u128::from(n.div_ceil(t) + n.div_ceil(t * (t - 1)) + 6),
    }
}

/// §1: the trivial "everyone does everything" baseline — no messages, up to
/// `tn` work, `n` rounds.
pub fn replicate_all(n: u64, t: u64) -> Bounds {
    Bounds { work: t * n, messages: 0, rounds: u128::from(n) }
}

/// §1: the trivial "one worker, checkpoint to everyone after every unit"
/// baseline — at most `n + t − 1` work, "almost `tn`" messages. The exact
/// count for our implementation is `(n + waste)·(t−1)` messages where waste
/// `<= t − 1`; we bound with `(n + t)·t`.
pub fn lockstep(n: u64, t: u64) -> Bounds {
    Bounds { work: n + t - 1, messages: (n + t) * t, rounds: u128::from(2 * (n + t) * t) }
}

/// §3: the naive spreading strawman analysed in the text — `O(n + t²)` work
/// and messages in the worst case. Concretely the cascade scenario drives
/// it to `n + (t/2)·(t/2)`-ish; we bound with `n + t²` each.
pub fn naive_spread(n: u64, t: u64) -> Bounds {
    Bounds { work: n + t * t, messages: n + t * t, rounds: 4 * u128::from(n + t * t) }
}

/// §5: Byzantine agreement built on Protocol B with `t + 1` senders
/// informing `n` processes: `O(n + t√t)` messages total.
///
/// Decomposition: 1 general broadcast (`t + 1`) + work performed as
/// messages (`<= 3n`) + Protocol B's own checkpoints with `t' = t + 1`
/// processes.
pub fn ba_via_b_messages(n: u64, t: u64) -> u64 {
    let t_senders = t + 1;
    (t + 1) + 3 * n.max(t_senders) + 10 * t_senders * isqrt(t_senders)
}

/// §5: Byzantine agreement built on Protocol C: `O(n + t log t)` messages.
pub fn ba_via_c_messages(n: u64, t: u64) -> u64 {
    let t_senders = (t + 1).next_power_of_two();
    let log_t = u64::from(log2_exact(t_senders));
    (t + 1) + (n + 2 * t_senders) + (n + 8 * t_senders * log_t)
}

/// Naive flooding Byzantine agreement for crash faults: every process
/// echoes to everyone for `t + 1` rounds — `Θ(n²t)` messages. The baseline
/// §5 improves on.
pub fn ba_flooding_messages(n: u64, t: u64) -> u64 {
    n * n * (t + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_a_bounds_scale_correctly() {
        let b = protocol_a(64, 16);
        assert_eq!(b.work, 192);
        assert_eq!(b.messages, 9 * 16 * 4);
        assert_eq!(b.rounds, 64 * 16 + 3 * 256);
        assert_eq!(b.effort(), 192 + 576);
    }

    #[test]
    fn protocol_b_is_faster_but_chattier_than_a() {
        let a = protocol_a(256, 16);
        let b = protocol_b(256, 16);
        assert!(b.rounds < a.rounds);
        assert!(b.messages > a.messages);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn protocol_c_messages_beat_b_for_large_t() {
        // O(n + t log t) < O(t√t) once t is large enough relative to n.
        let t = 1 << 12;
        let n = t;
        assert!(protocol_c(n, t).messages < protocol_b(n, t).messages);
    }

    #[test]
    fn protocol_c_rounds_are_exponential_and_saturate() {
        assert_eq!(protocol_c(100, 64).rounds, u128::MAX);
        assert!(protocol_c(4, 4).rounds < u128::MAX);
    }

    #[test]
    fn protocol_d_failure_free_is_time_optimal() {
        let b = protocol_d_failure_free(1000, 10);
        assert_eq!(b.rounds, 102);
        assert_eq!(b.work, 1000);
        assert_eq!(b.messages, 200);
    }

    #[test]
    fn protocol_d_degrades_gracefully() {
        let b0 = protocol_d_normal(1000, 10, 0);
        let b3 = protocol_d_normal(1000, 10, 3);
        assert!(b3.rounds > b0.rounds);
        assert!(b3.messages > b0.messages);
        assert_eq!(b0.work, b3.work);
    }

    #[test]
    fn fallback_adds_protocol_a_costs() {
        let normal = protocol_d_normal(100, 16, 8);
        let fb = protocol_d_fallback(100, 16, 8);
        assert!(fb.work > normal.work);
        assert!(fb.messages > normal.messages);
        // 9·8·√8 rounded up: √8 = 2 (isqrt), non-square half adds half.
        assert_eq!(fb.messages - normal.messages, 9 * 8 * 2 + 8);
    }

    #[test]
    fn trivial_baselines_cost_order_tn_effort() {
        let rep = replicate_all(100, 10);
        let lock = lockstep(100, 10);
        assert_eq!(rep.effort(), 1000);
        assert!(lock.effort() > 100 * 10);
        // Both are Ω(tn); the whole point of the paper.
        let b = protocol_b(100, 9);
        assert!(b.effort() < rep.effort());
    }

    #[test]
    fn ba_bounds_rank_as_in_section_5() {
        let (n, t) = (1024, 255);
        let via_b = ba_via_b_messages(n, t);
        let via_c = ba_via_c_messages(n, t);
        let flooding = ba_flooding_messages(n, t);
        assert!(via_c < via_b, "C-based BA uses fewer messages: {via_c} vs {via_b}");
        assert!(via_b < flooding);
    }
}
