//! # doall-bounds
//!
//! The closed-form arithmetic of Dwork, Halpern & Waarts, *Performing Work
//! Efficiently in the Presence of Faults* (PODC 1992), as executable,
//! heavily-tested functions:
//!
//! * [`deadlines_ab`] — Protocol A's `DD` and Protocol B's
//!   `PTO` / `GTO` / `DDB` / `TT` timing functions (§2), including the
//!   Lemma 2.5 telescoping identities as tests;
//! * [`deadlines_c`] — Protocol C's constant `K` and exponential deadlines
//!   `D(i, m)` (§3);
//! * [`theorems`] — every theorem's work/message/round bound
//!   (Theorems 2.3, 2.8, 3.8, 4.1; Corollary 3.9; the §1 baselines, the §3
//!   strawman and the §5 Byzantine-agreement counts).
//!
//! The protocol implementations in `doall-core` import their timing from
//! here, so the deadline code is shared between "what the paper says" (the
//! tests in this crate) and "what the simulation does".
//!
//! # Examples
//!
//! ```
//! use doall_bounds::{theorems, deadlines_ab::{AbParams, dd}};
//!
//! let p = AbParams::new(64, 16);
//! assert_eq!(dd(p, 2), 2 * (64 + 3 * 16));
//!
//! let b = theorems::protocol_a(64, 16);
//! assert!(b.work <= 3 * 64 && b.messages == 9 * 16 * 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod deadlines_ab;
pub mod deadlines_c;
pub mod theorems;
mod util;

pub use deadlines_ab::AbParams;
pub use deadlines_c::CParams;
pub use theorems::Bounds;
pub use util::{is_perfect_square, isqrt, log2_exact, mul_saturating, pow2_saturating};
