//! # doall-agreement
//!
//! Byzantine agreement for crash failures built on the Do-All work
//! protocols — §5 of Dwork, Halpern & Waarts, *Performing Work Efficiently
//! in the Presence of Faults* (PODC 1992).
//!
//! The reduction treats "inform process `i` of the general's value" as one
//! idempotent unit of work: the general distributes its value to `t + 1`
//! senders, who then run Protocol A, B or C to perform the `n` informs.
//! Using Protocol B this yields a *constructive* `O(n + t√t)`-message,
//! `O(n)`-round agreement algorithm (matching Bracha's nonconstructive
//! bound); using Protocol C, `O(n + t log t)` messages at exponential time.
//!
//! The [`flooding`] module provides the naive every-round-echo algorithm
//! (`Θ(n²t)` messages) as the comparison baseline.
//!
//! The eventual-agreement phase used by Protocol D lives with Protocol D
//! itself (`doall_core::d`), since Figure 4 embeds it in the protocol.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ba;
pub mod bootstrap;
pub mod flooding;

pub use ba::{BaOutcome, BaProcess, BaSystem, Engine, Value};
pub use bootstrap::{run_bootstrap, BootstrapOutcome};
pub use flooding::FloodingBa;
