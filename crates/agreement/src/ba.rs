//! Byzantine agreement from Do-All work protocols (§5 of the paper).
//!
//! The reduction: the *general* broadcasts its value to the `t + 1`
//! *senders* (processes `0..=t`); the senders then run one of the work
//! protocols where **unit `u` of work is "send the general's value to
//! process `u − 1`"**. Since at least one sender survives (at most `t`
//! failures), every process is eventually informed. Every process decides
//! its current value at a predetermined round by which the work protocol
//! has provably terminated.
//!
//! Two details the paper's correctness proof leans on:
//!
//! * with Protocols A and B the inter-sender checkpoint messages must
//!   **not** carry the value (a broadcast checkpoint could otherwise leak
//!   a value to a high-numbered process out of order);
//! * with Protocol C the checkpoint messages **must** carry it.
//!
//! Costs: via Protocol B, `O(n + t√t)` messages and `O(n)` rounds — a
//! constructive match for Bracha's nonconstructive bound; via Protocol C,
//! `O(n + t log t)` messages at exponential time.

use std::fmt;

use doall_bounds::theorems;
use doall_core::ab::AbMsg;
use doall_core::c::CMsg;
use doall_core::{ConfigError, ProtocolA, ProtocolB, ProtocolC};
use doall_sim::{
    run_returning, Adversary, Classify, Effects, Inbox, Metrics, Pid, Protocol, Recipients, Round,
    RunConfig, RunError, SendOp, Unit,
};

/// The agreement value (the paper's `V` is abstract; 64 bits cover the
/// experiments and keep messages `O(log n + log |V|)` as in §1.1).
pub type Value = u64;

/// Which work protocol the senders run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Protocol A: `O(n + t√t)` messages, `O(nt + t²)` worst-case rounds.
    A,
    /// Protocol B: `O(n + t√t)` messages, `O(n + t)` rounds.
    B,
    /// Protocol C: `O(n + t log t)` messages, exponential rounds.
    C,
}

/// Messages of the Byzantine-agreement reduction.
#[derive(Clone, Debug)]
pub enum BaMsg {
    /// Stage 1: the general distributing its value to the senders.
    GeneralsValue {
        /// The general's value.
        v: Value,
    },
    /// A unit of work being performed: "the general's value is `v`".
    Inform {
        /// The current value of the informing sender.
        v: Value,
    },
    /// Inter-sender traffic of Protocols A/B — deliberately value-free.
    Ab(AbMsg),
    /// Inter-sender traffic of Protocol C — deliberately value-carrying.
    C {
        /// The wrapped Protocol C message.
        inner: CMsg,
        /// The sender's current value, adopted by the receiving sender.
        v: Value,
    },
}

impl Classify for BaMsg {
    fn class(&self) -> &'static str {
        match self {
            BaMsg::GeneralsValue { .. } => "general",
            BaMsg::Inform { .. } => "inform",
            BaMsg::Ab(m) => m.class(),
            BaMsg::C { inner, .. } => inner.class(),
        }
    }
}

impl fmt::Display for BaMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaMsg::GeneralsValue { v } => write!(f, "general's value is {v}"),
            BaMsg::Inform { v } => write!(f, "the general's value is {v}"),
            BaMsg::Ab(m) => write!(f, "ab:{m}"),
            BaMsg::C { inner, v } => write!(f, "c:{inner} (v={v})"),
        }
    }
}

enum SenderEngine {
    A(ProtocolA),
    B(ProtocolB),
    C(ProtocolC),
}

/// One process of the §5 Byzantine-agreement algorithm.
///
/// Processes `0..=t` are senders (process 0 doubles as the general);
/// everyone decides at the configured decision round. Build the system
/// with [`BaSystem`].
pub struct BaProcess {
    me: u64,
    n: u64,
    t: u64,
    value: Value,
    decide_at: Round,
    decision: Option<Value>,
    sender: Option<SenderEngine>,
    sender_done: bool,
}

impl BaProcess {
    /// The value this process decided, if it reached the decision round.
    pub fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn adopt(&mut self, v: Value) {
        // "If a process receives a message informing it about a value for
        // the general different from its current value, it adopts it."
        if v != self.value {
            self.value = v;
        }
    }

    /// Runs one inner work-protocol round (inner rounds are offset by the
    /// stage-1 round). Inner sends come back as ops, so a checkpoint span
    /// stays a single span after wrapping — the reduction preserves the
    /// O(1)-per-broadcast representation end to end.
    fn sender_step(&mut self, round: Round, inbox: Inbox<'_, BaMsg>, eff: &mut Effects<BaMsg>) {
        let inner_round = Round::new(round - Round::ONE);
        let mut ieff;
        match self.sender.as_mut().expect("sender_step on a non-sender") {
            SenderEngine::A(inner) => {
                let tin: Vec<(Pid, AbMsg)> = inbox
                    .iter()
                    .filter_map(|(from, msg)| match msg {
                        BaMsg::Ab(m) => Some((from, *m)),
                        _ => None,
                    })
                    .collect();
                let mut inner_eff = Effects::new();
                inner.step(inner_round, Inbox::from_pairs(&tin), &mut inner_eff);
                ieff = Translated::from_ab(inner_eff);
            }
            SenderEngine::B(inner) => {
                let tin: Vec<(Pid, AbMsg)> = inbox
                    .iter()
                    .filter_map(|(from, msg)| match msg {
                        BaMsg::Ab(m) => Some((from, *m)),
                        _ => None,
                    })
                    .collect();
                let mut inner_eff = Effects::new();
                inner.step(inner_round, Inbox::from_pairs(&tin), &mut inner_eff);
                ieff = Translated::from_ab(inner_eff);
            }
            SenderEngine::C(inner) => {
                let tin: Vec<(Pid, CMsg)> = inbox
                    .iter()
                    .filter_map(|(from, msg)| match msg {
                        BaMsg::C { inner: m, .. } => Some((from, m.clone())),
                        _ => None,
                    })
                    .collect();
                let mut inner_eff = Effects::new();
                inner.step(inner_round, Inbox::from_pairs(&tin), &mut inner_eff);
                ieff = Translated::from_c(inner_eff);
            }
        }

        // A performed unit u means: inform process u-1 of the value.
        if let Some(u) = ieff.work.take() {
            let target = u.get() as u64 - 1;
            if target < self.n && target != self.me {
                eff.send(Pid::new(target as usize), BaMsg::Inform { v: self.value });
            }
            // Units beyond n are divisibility padding: silently consumed.
        }
        for op in ieff.sends.drain(..) {
            let wrapped = match op.payload {
                EitherMsg::Ab(m) => BaMsg::Ab(m),
                EitherMsg::C(m) => BaMsg::C { inner: m, v: self.value },
            };
            match op.to {
                Recipients::One(to) => eff.send(to, wrapped),
                Recipients::Span { lo, hi } => eff.multicast(lo..hi, wrapped),
            }
        }
        for note in ieff.notes.drain(..) {
            eff.note(note);
        }
        if ieff.terminated {
            self.sender_done = true;
        }
    }
}

enum EitherMsg {
    Ab(AbMsg),
    C(CMsg),
}

struct Translated {
    work: Option<Unit>,
    sends: Vec<SendOp<EitherMsg>>,
    notes: Vec<&'static str>,
    terminated: bool,
}

impl Translated {
    fn from_ab(eff: Effects<AbMsg>) -> Self {
        let work = eff.work();
        let terminated = eff.is_terminated();
        let notes = eff.notes().to_vec();
        let sends = eff
            .sends()
            .iter()
            .map(|op| SendOp { to: op.to, payload: EitherMsg::Ab(op.payload) })
            .collect();
        Translated { work, sends, notes, terminated }
    }

    fn from_c(eff: Effects<CMsg>) -> Self {
        let work = eff.work();
        let terminated = eff.is_terminated();
        let notes = eff.notes().to_vec();
        let sends = eff
            .sends()
            .iter()
            .map(|op| SendOp { to: op.to, payload: EitherMsg::C(op.payload.clone()) })
            .collect();
        Translated { work, sends, notes, terminated }
    }
}

impl Protocol for BaProcess {
    type Msg = BaMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, BaMsg>, eff: &mut Effects<BaMsg>) {
        // Value adoption comes first, from any message kind that carries one.
        for (_, msg) in inbox.iter() {
            match msg {
                BaMsg::GeneralsValue { v } | BaMsg::Inform { v } | BaMsg::C { v, .. } => {
                    self.adopt(*v);
                }
                BaMsg::Ab(_) => {}
            }
        }

        if round >= self.decide_at {
            self.decision = Some(self.value);
            eff.terminate();
            return;
        }

        if round == Round::ONE {
            if self.me == 0 {
                // Stage 1: the general tells the senders — one span op.
                eff.multicast(1..self.t as usize + 1, BaMsg::GeneralsValue { v: self.value });
            }
            return;
        }

        if self.sender.is_some() && !self.sender_done {
            self.sender_step(round, inbox, eff);
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.decision.is_some() {
            return None;
        }
        if let (Some(engine), false) = (&self.sender, self.sender_done) {
            let inner = match engine {
                SenderEngine::A(p) => p.next_wakeup(Round::new(now.saturating_sub(Round::ONE))),
                SenderEngine::B(p) => p.next_wakeup(Round::new(now.saturating_sub(Round::ONE))),
                SenderEngine::C(p) => p.next_wakeup(Round::new(now.saturating_sub(Round::ONE))),
            };
            if let Some(w) = inner {
                return Some(w.saturating_add(1).max(now).min(self.decide_at));
            }
        }
        Some(self.decide_at.max(now))
    }
}

/// Builder for the §5 Byzantine-agreement system.
///
/// # Examples
///
/// ```
/// use doall_agreement::ba::{BaSystem, Engine};
/// use doall_sim::NoFailures;
///
/// let outcome = BaSystem::new(16, 3, Engine::B)?.general_value(7).run(NoFailures)?;
/// assert!(outcome.agreement());
/// assert_eq!(outcome.decisions[0], Some(7)); // validity: the general's value wins
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct BaSystem {
    n: u64,
    t: u64,
    engine: Engine,
    value: Value,
}

impl BaSystem {
    /// Creates a system of `n` processes tolerating up to `t` crash
    /// failures, with senders running the given work engine.
    ///
    /// # Errors
    ///
    /// The sender count `t + 1` must satisfy the engine's shape
    /// requirement: a perfect square for [`Engine::A`]/[`Engine::B`]
    /// (t ∈ {3, 8, 15, 24, …}), a power of two for [`Engine::C`]
    /// (t ∈ {1, 3, 7, 15, …}); and `t + 1 <= n`.
    pub fn new(n: u64, t: u64, engine: Engine) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoWork);
        }
        if t + 1 > n {
            return Err(ConfigError::WorkTooSmall { n, t: t + 1 });
        }
        // Validate the inner configuration eagerly.
        let (n_pad, t_senders) = Self::inner_shape(n, t);
        match engine {
            Engine::A => drop(ProtocolA::processes(n_pad, t_senders)?),
            Engine::B => drop(ProtocolB::processes(n_pad, t_senders)?),
            Engine::C => drop(ProtocolC::processes(n_pad, t_senders)?),
        }
        Ok(BaSystem { n, t, engine, value: Value::default() })
    }

    /// Sets the general's input value (default 0).
    pub fn general_value(mut self, v: Value) -> Self {
        self.value = v;
        self
    }

    fn inner_shape(n: u64, t: u64) -> (u64, u64) {
        let t_senders = t + 1;
        let n_pad = n.div_ceil(t_senders).max(1) * t_senders;
        (n_pad, t_senders)
    }

    /// The predetermined decision round: one stage-1 round plus the work
    /// protocol's proven termination bound (plus slack for delivery).
    pub fn decision_round(&self) -> Round {
        let (n_pad, t_senders) = Self::inner_shape(self.n, self.t);
        let inner = match self.engine {
            Engine::A => theorems::protocol_a(n_pad, t_senders).rounds,
            Engine::B => theorems::protocol_b(n_pad, t_senders).rounds,
            Engine::C => theorems::protocol_c(n_pad, t_senders).rounds,
        };
        Round::new(inner).saturating_add(3)
    }

    /// Instantiates the processes.
    pub fn processes(&self) -> Vec<BaProcess> {
        let (n_pad, t_senders) = Self::inner_shape(self.n, self.t);
        let decide_at = self.decision_round();
        (0..self.n)
            .map(|me| {
                let sender = if me < t_senders {
                    Some(match self.engine {
                        Engine::A => SenderEngine::A(
                            ProtocolA::processes(n_pad, t_senders)
                                .expect("validated")
                                .remove(me as usize),
                        ),
                        Engine::B => SenderEngine::B(
                            ProtocolB::processes(n_pad, t_senders)
                                .expect("validated")
                                .remove(me as usize),
                        ),
                        Engine::C => SenderEngine::C(
                            ProtocolC::processes(n_pad, t_senders)
                                .expect("validated")
                                .remove(me as usize),
                        ),
                    })
                } else {
                    None
                };
                BaProcess {
                    me,
                    n: self.n,
                    t: self.t,
                    value: if me == 0 { self.value } else { Value::default() },
                    decide_at,
                    decision: None,
                    sender,
                    sender_done: false,
                }
            })
            .collect()
    }

    /// Runs the system to completion under the given adversary.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the engine (a protocol bug; correct
    /// configurations always terminate by the decision round).
    pub fn run<A: Adversary<BaMsg>>(&self, adversary: A) -> Result<BaOutcome, RunError> {
        let cfg = RunConfig {
            n: 0,
            max_rounds: self.decision_round().saturating_add(8),
            ..RunConfig::default()
        };
        let (report, procs) = run_returning(self.processes(), adversary, cfg)?;
        let decisions = procs.iter().map(BaProcess::decision).collect();
        Ok(BaOutcome { decisions, metrics: report.metrics, general_value: self.value })
    }
}

/// The result of a Byzantine-agreement run.
#[derive(Clone, Debug)]
pub struct BaOutcome {
    /// Per-process decision (`None` = crashed before deciding).
    pub decisions: Vec<Option<Value>>,
    /// Message/round counters of the run.
    pub metrics: Metrics,
    /// The general's input, for validity checks.
    pub general_value: Value,
}

impl BaOutcome {
    /// Agreement: all deciding processes decided the same value.
    pub fn agreement(&self) -> bool {
        let mut decided = self.decisions.iter().flatten();
        match decided.next() {
            None => true,
            Some(first) => decided.all(|v| v == first),
        }
    }

    /// Validity: if the general survived to decide, everyone decided its
    /// value.
    pub fn validity(&self) -> bool {
        match self.decisions.first().copied().flatten() {
            Some(_general_decided) => {
                self.decisions.iter().flatten().all(|v| *v == self.general_value)
            }
            None => true,
        }
    }

    /// Number of processes that decided.
    pub fn decided_count(&self) -> usize {
        self.decisions.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use doall_sim::{CrashSchedule, CrashSpec, NoFailures, Trigger, TriggerAdversary, TriggerRule};

    use super::*;

    #[test]
    fn failure_free_ba_via_b_decides_the_generals_value() {
        let outcome =
            BaSystem::new(24, 3, Engine::B).unwrap().general_value(42).run(NoFailures).unwrap();
        assert!(outcome.agreement());
        assert!(outcome.validity());
        assert_eq!(outcome.decided_count(), 24);
        assert!(outcome.decisions.iter().all(|d| *d == Some(42)));
    }

    #[test]
    fn ba_via_a_and_c_also_work_failure_free() {
        for engine in [Engine::A, Engine::C] {
            let outcome =
                BaSystem::new(16, 3, engine).unwrap().general_value(5).run(NoFailures).unwrap();
            assert!(outcome.agreement(), "{engine:?}");
            assert!(outcome.decisions.iter().all(|d| *d == Some(5)), "{engine:?}");
        }
    }

    #[test]
    fn message_counts_respect_section_5_bounds() {
        let (n, t) = (64u64, 8u64);
        let outcome =
            BaSystem::new(n, t, Engine::B).unwrap().general_value(1).run(NoFailures).unwrap();
        assert!(
            outcome.metrics.messages <= theorems::ba_via_b_messages(n, t),
            "{} > {}",
            outcome.metrics.messages,
            theorems::ba_via_b_messages(n, t)
        );
        let (n, t) = (32u64, 3u64);
        let outcome =
            BaSystem::new(n, t, Engine::C).unwrap().general_value(1).run(NoFailures).unwrap();
        assert!(outcome.metrics.messages <= theorems::ba_via_c_messages(n, t));
        // Both beat flooding by a wide margin.
        assert!(outcome.metrics.messages < theorems::ba_flooding_messages(n, t) / 10);
    }

    #[test]
    fn general_crash_during_stage_1_preserves_agreement() {
        // The general reaches only sender 2 with its value: some senders
        // inform 0, the survivor order ensures a consistent final value.
        for engine in [Engine::A, Engine::B] {
            let adv = TriggerAdversary::new(vec![TriggerRule {
                trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: 1 },
                target: None,
                spec: CrashSpec::subset([Pid::new(2)]),
            }]);
            let outcome = BaSystem::new(16, 3, engine).unwrap().general_value(9).run(adv).unwrap();
            assert!(outcome.agreement(), "{engine:?}: {:?}", outcome.decisions);
            // Validity is vacuous (the general crashed), but agreement must
            // hold and everyone alive must decide.
            assert_eq!(outcome.decided_count(), 15);
        }
    }

    #[test]
    fn sender_cascade_crashes_preserve_agreement_and_termination() {
        // Senders die one after another mid-work; the last sender finishes.
        for engine in [Engine::B, Engine::C] {
            let mut rules = Vec::new();
            for s in 0..3u64 {
                rules.push(TriggerRule {
                    trigger: Trigger::NthWorkBy { pid: Pid::new(s as usize), nth: 2 },
                    target: None,
                    spec: CrashSpec::silent(),
                });
            }
            let outcome = BaSystem::new(16, 3, engine)
                .unwrap()
                .general_value(4)
                .run(TriggerAdversary::new(rules))
                .unwrap();
            assert!(outcome.agreement(), "{engine:?}: {:?}", outcome.decisions);
            assert!(outcome.decided_count() >= 13, "{engine:?}");
        }
    }

    #[test]
    fn late_sender_crashes_after_informs_are_consistent() {
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 30, CrashSpec::prefix(1));
        let outcome = BaSystem::new(24, 3, Engine::B).unwrap().general_value(11).run(adv).unwrap();
        assert!(outcome.agreement());
        assert!(outcome.decisions.iter().flatten().all(|v| *v == 11));
    }

    #[test]
    fn shape_validation_rejects_bad_sender_counts() {
        // t + 1 = 5 is not a perfect square.
        assert!(BaSystem::new(16, 4, Engine::B).is_err());
        // t + 1 = 6 is not a power of two.
        assert!(BaSystem::new(16, 5, Engine::C).is_err());
        // More senders than processes.
        assert!(BaSystem::new(3, 3, Engine::C).is_err());
        assert!(BaSystem::new(16, 3, Engine::A).is_ok());
    }
}
