//! Work that is *not* initially common knowledge (§1 of the paper).
//!
//! > "If even one process knows about this work, then it can act as a
//! > general, run Byzantine agreement on the pool of work using one of the
//! > three algorithms, and then the actual work is performed by running
//! > the same algorithm a second time on the real work. If `n` … is
//! > `Ω(t)`, the overall cost at most doubles."
//!
//! This module composes the two runs: a [`BaSystem`] round on the workload
//! descriptor (the agreed value *is* the pool size), followed by a Do-All
//! run of Protocol B on the agreed units. Processes that crashed during
//! the agreement stay crashed for the work phase.

use doall_core::ProtocolB;
use doall_sim::{
    run, Adversary, CrashSchedule, CrashSpec, Metrics, NoFailures, Pid, RunConfig, RunError,
};

use crate::ba::{BaMsg, BaSystem, Engine, Value};

/// The combined result of the agreement + work runs.
#[derive(Clone, Debug)]
pub struct BootstrapOutcome {
    /// The pool size every process agreed on.
    pub agreed_pool: Value,
    /// Metrics of the agreement run.
    pub agreement: Metrics,
    /// Metrics of the work run.
    pub work: Metrics,
}

impl BootstrapOutcome {
    /// Total effort across both runs (work + messages).
    pub fn total_effort(&self) -> u64 {
        self.agreement.effort() + self.work.effort()
    }
}

/// Errors from the bootstrap composition.
#[derive(Debug)]
pub enum BootstrapError {
    /// A sub-run failed (engine error).
    Run(RunError),
    /// Bad configuration for the agreement or work protocol.
    Config(doall_core::ConfigError),
    /// The agreement run left the survivors without a pool value (cannot
    /// happen with at most `t − 1` crashes).
    NoAgreement,
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::Run(e) => write!(f, "sub-run failed: {e}"),
            BootstrapError::Config(e) => write!(f, "bad configuration: {e}"),
            BootstrapError::NoAgreement => write!(f, "no surviving process decided a pool"),
        }
    }
}

impl std::error::Error for BootstrapError {}

impl From<RunError> for BootstrapError {
    fn from(e: RunError) -> Self {
        BootstrapError::Run(e)
    }
}

impl From<doall_core::ConfigError> for BootstrapError {
    fn from(e: doall_core::ConfigError) -> Self {
        BootstrapError::Config(e)
    }
}

/// Runs the §1 bootstrap: process 0 alone knows that `n` units of work
/// exist; the `t` processes agree on the pool via Byzantine agreement
/// (engine B, all processes acting as senders, tolerating `t − 1`
/// failures), then perform the agreed units with Protocol B.
///
/// `ba_adversary` drives crashes during the agreement; its victims stay
/// crashed for the work run (plus any extra crashes from
/// `extra_work_crashes`, scheduled on work-run rounds).
///
/// # Errors
///
/// `t` must be a perfect square with `t | n`, `n >= t` (Protocol B's
/// shape, used for both runs).
///
/// # Examples
///
/// ```
/// use doall_agreement::bootstrap::run_bootstrap;
/// use doall_sim::NoFailures;
///
/// let outcome = run_bootstrap(64, 16, NoFailures, &[])?;
/// assert_eq!(outcome.agreed_pool, 64);
/// assert!(outcome.work.all_work_done());
/// # Ok::<(), doall_agreement::bootstrap::BootstrapError>(())
/// ```
pub fn run_bootstrap<A: Adversary<BaMsg>>(
    n: u64,
    t: u64,
    ba_adversary: A,
    extra_work_crashes: &[(Pid, u64)],
) -> Result<BootstrapOutcome, BootstrapError> {
    // Stage 1: agree on the pool. All t processes participate; t - 1 may
    // fail; the "value" is the number of units. Engine B needs the sender
    // count (t_failures + 1 = t) to be a perfect square — same shape as
    // the work run below.
    let ba = BaSystem::new(t, t - 1, Engine::B)?.general_value(n);
    let outcome = ba.run(ba_adversary)?;
    let agreed_pool =
        outcome.decisions.iter().flatten().next().copied().ok_or(BootstrapError::NoAgreement)?;
    debug_assert!(outcome.agreement(), "BA broke agreement");

    // Stage 2: the survivors perform the agreed pool with Protocol B.
    // Casualties of stage 1 are dead on arrival here.
    let mut schedule = CrashSchedule::new();
    for (pid, decided) in outcome.decisions.iter().enumerate() {
        if decided.is_none() {
            schedule = schedule.crash_at(Pid::new(pid), 1, CrashSpec::silent());
        }
    }
    for &(pid, round) in extra_work_crashes {
        schedule = schedule.crash_at(pid, round, CrashSpec::silent());
    }
    let report = run(
        ProtocolB::processes(agreed_pool, t)?,
        schedule,
        RunConfig::new(agreed_pool as usize, 10_000_000),
    )?;

    Ok(BootstrapOutcome { agreed_pool, agreement: outcome.metrics, work: report.metrics })
}

/// Effort of the direct (common-knowledge) solution, for the "at most
/// doubles" comparison.
///
/// # Errors
///
/// Same shape requirements as [`run_bootstrap`].
pub fn direct_effort(n: u64, t: u64) -> Result<u64, BootstrapError> {
    let report =
        run(ProtocolB::processes(n, t)?, NoFailures, RunConfig::new(n as usize, 10_000_000))?;
    Ok(report.metrics.effort())
}

#[cfg(test)]
mod tests {
    use doall_sim::{CrashSchedule, CrashSpec, NoFailures, Pid};

    use super::*;

    #[test]
    fn bootstrap_reaches_and_performs_the_pool() {
        let outcome = run_bootstrap(64, 16, NoFailures, &[]).unwrap();
        assert_eq!(outcome.agreed_pool, 64);
        assert!(outcome.work.all_work_done());
        assert_eq!(outcome.work.work_total, 64);
    }

    #[test]
    fn cost_at_most_doubles_for_n_omega_t() {
        // §1: "the overall cost at most doubles when the work is not
        // initially common knowledge" (for n = Ω(t); failure-free).
        let (n, t) = (256u64, 16u64);
        let outcome = run_bootstrap(n, t, NoFailures, &[]).unwrap();
        let direct = direct_effort(n, t).unwrap();
        assert!(
            outcome.total_effort() <= 2 * direct,
            "bootstrap effort {} must be at most twice the direct effort {direct}",
            outcome.total_effort()
        );
    }

    #[test]
    fn crashes_during_agreement_carry_into_the_work_run() {
        // p1 and p2 die during the agreement; the work run must cope with
        // them dead on arrival and still finish everything.
        let adv = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::silent()).crash_at(
            Pid::new(2),
            3,
            CrashSpec::silent(),
        );
        let outcome = run_bootstrap(32, 16, adv, &[]).unwrap();
        assert_eq!(outcome.agreed_pool, 32);
        assert!(outcome.work.all_work_done());
    }

    #[test]
    fn extra_work_phase_crashes_are_tolerated() {
        let outcome =
            run_bootstrap(32, 16, NoFailures, &[(Pid::new(0), 3), (Pid::new(3), 9)]).unwrap();
        assert!(outcome.work.all_work_done());
        assert!(outcome.work.crashes >= 1);
    }

    #[test]
    fn rejects_non_square_t() {
        assert!(matches!(run_bootstrap(30, 15, NoFailures, &[]), Err(BootstrapError::Config(_))));
    }
}
