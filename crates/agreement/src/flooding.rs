//! The naive flooding Byzantine-agreement baseline.
//!
//! The textbook crash-model algorithm §5 improves on: the general
//! broadcasts its value to everyone; then, for `t + 1` rounds, every
//! process broadcasts its current value to every other process; decide at
//! the end. Tolerates `t` crashes but costs `Θ(n²t)` messages.

use doall_sim::{
    run_returning, Adversary, Classify, Effects, Inbox, Metrics, Protocol, Round, RunConfig,
    RunError,
};

use crate::ba::Value;

/// Flooding messages: just the sender's current value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Echo {
    /// The sender's current value for the general.
    pub v: Value,
}

impl Classify for Echo {
    fn class(&self) -> &'static str {
        "echo"
    }
}

/// One process of the flooding baseline.
///
/// # Examples
///
/// ```
/// use doall_agreement::FloodingBa;
/// use doall_sim::NoFailures;
///
/// let (decisions, metrics) = FloodingBa::run_system(8, 2, 5, NoFailures)?;
/// assert!(decisions.iter().all(|d| *d == Some(5)));
/// // Θ(n²t) messages: the cost §5's reduction avoids.
/// assert!(metrics.messages > 8 * 7 * 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct FloodingBa {
    me: u64,
    n: u64,
    /// `None` until informed; the first value received wins (the classic
    /// crash-model rule — in the crash model only the general's value ever
    /// circulates, so first-wins is unambiguous).
    value: Option<Value>,
    decide_at: Round,
    decision: Option<Value>,
}

impl FloodingBa {
    /// Creates the `n` processes with the given failure bound `t` and
    /// general's value.
    pub fn processes(n: u64, t: u64, general_value: Value) -> Vec<FloodingBa> {
        (0..n)
            .map(|me| FloodingBa {
                me,
                n,
                value: if me == 0 { Some(general_value) } else { None },
                decide_at: Round::from(t + 3),
                decision: None,
            })
            .collect()
    }

    /// Runs the flooding system and returns per-process decisions plus
    /// metrics.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (cannot happen for valid configurations).
    pub fn run_system<A: Adversary<Echo>>(
        n: u64,
        t: u64,
        general_value: Value,
        adversary: A,
    ) -> Result<(Vec<Option<Value>>, Metrics), RunError> {
        let cfg = RunConfig { n: 0, max_rounds: Round::from(t + 10), ..RunConfig::default() };
        let (report, procs) = run_returning(Self::processes(n, t, general_value), adversary, cfg)?;
        Ok((procs.iter().map(|p| p.decision).collect(), report.metrics))
    }

    /// Everyone but `self.me`, as at most two O(1) spans.
    fn echo_others(&self, v: Value, eff: &mut Effects<Echo>) {
        eff.multicast_except(0..self.n as usize, self.me as usize, Echo { v });
    }
}

impl Protocol for FloodingBa {
    type Msg = Echo;

    fn step(&mut self, round: Round, inbox: Inbox<'_, Echo>, eff: &mut Effects<Echo>) {
        for (_, msg) in inbox.iter() {
            // First value wins; uninformed processes stay silent below, so
            // only the general's value ever circulates.
            if self.value.is_none() {
                self.value = Some(msg.v);
            }
        }
        if round >= self.decide_at {
            self.decision = Some(self.value.unwrap_or_default());
            eff.terminate();
            return;
        }
        match self.value {
            // Stage 1 is the general's broadcast; rounds 2..=t+2 are the
            // t + 1 echo rounds of every *informed* process.
            Some(v) if round == Round::ONE && self.me == 0 => {
                self.echo_others(v, eff);
            }
            Some(v) if round >= 2u64 => {
                self.echo_others(v, eff);
            }
            _ => {}
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.decision.is_some() {
            None
        } else {
            Some(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::{CrashSchedule, CrashSpec, NoFailures, Pid};

    use super::*;

    #[test]
    fn failure_free_flooding_agrees_on_generals_value() {
        let (decisions, metrics) = FloodingBa::run_system(10, 3, 7, NoFailures).unwrap();
        assert_eq!(decisions.len(), 10);
        assert!(decisions.iter().all(|d| *d == Some(7)));
        assert!(metrics.messages <= theorems::ba_flooding_messages(10, 3));
    }

    #[test]
    fn general_crash_mid_broadcast_still_agrees() {
        // The general reaches only p5; t echo rounds spread p5's adopted
        // value to everyone.
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::subset([Pid::new(5)]));
        let (decisions, _) = FloodingBa::run_system(10, 3, 9, adv).unwrap();
        let decided: Vec<Value> = decisions.iter().flatten().copied().collect();
        assert_eq!(decided.len(), 9);
        assert!(decided.windows(2).all(|w| w[0] == w[1]), "agreement violated: {decisions:?}");
    }

    #[test]
    fn cascading_crashes_up_to_t_keep_agreement() {
        for seed_round in 1..4u64 {
            let adv = CrashSchedule::new()
                .crash_at(Pid::new(1), seed_round, CrashSpec::prefix(2))
                .crash_at(Pid::new(2), seed_round + 1, CrashSpec::prefix(1))
                .crash_at(Pid::new(3), seed_round + 2, CrashSpec::prefix(3));
            let (decisions, _) = FloodingBa::run_system(10, 3, 4, adv).unwrap();
            let decided: Vec<Value> = decisions.iter().flatten().copied().collect();
            assert!(
                decided.windows(2).all(|w| w[0] == w[1]),
                "agreement violated at {seed_round}: {decisions:?}"
            );
        }
    }

    #[test]
    fn message_cost_is_quadratic_in_n() {
        let (_, m_small) = FloodingBa::run_system(8, 2, 1, NoFailures).unwrap();
        let (_, m_big) = FloodingBa::run_system(16, 2, 1, NoFailures).unwrap();
        assert!(m_big.messages >= 3 * m_small.messages, "quadratic growth expected");
    }
}
