//! Protocol D (§4): the time-optimal algorithm — alternate *work phases*
//! (the outstanding units split evenly among the processes believed live)
//! with *agreement phases* (an Eventual-Byzantine-Agreement-style exchange
//! that re-establishes a common view of what remains and who is alive).
//!
//! Failure-free it takes `n/t + 2` rounds and `2t²` messages — optimal
//! time — and degrades gracefully: with `f` failures (never more than half
//! of the live processes per phase) it finishes within
//! `(f+1)n/t + 4f + 2` rounds, `(4f+2)t²` messages and `2n` work
//! (Theorem 4.1, case 1). If some phase *does* lose more than half of the
//! live processes, it reverts to Protocol A on the remaining units
//! (case 2; see [`fallback`]).

pub mod fallback;

use std::fmt;

use doall_sim::{Classify, Effects, Inbox, Pid, Protocol, Round, Unit};

use crate::ab::AbMsg;
use crate::error::ConfigError;
use crate::intervals::IntervalSet;
use fallback::FallbackMachine;

/// Messages of Protocol D.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DMsg {
    /// One agreement-phase broadcast: `(j, S, T, done)` of Figure 4,
    /// tagged with the phase number so one-round stragglers never confuse
    /// consecutive phases.
    Agree {
        /// Work/agreement phase index (0-based).
        phase: u32,
        /// The sender's outstanding-units set.
        s: IntervalSet,
        /// The sender's set of processes believed live.
        t: IntervalSet,
        /// Whether the sender has decided this agreement phase.
        done: bool,
    },
    /// Coordinator variant (§4 closing remark): a participant's view sent
    /// to the phase coordinator instead of being broadcast.
    Report {
        /// Work/agreement phase index.
        phase: u32,
        /// The sender's outstanding-units set.
        s: IntervalSet,
        /// The sender's set of processes believed live.
        t: IntervalSet,
    },
    /// Coordinator variant: the coordinator's merged, authoritative view.
    Decision {
        /// Work/agreement phase index.
        phase: u32,
        /// The agreed outstanding-units set.
        s: IntervalSet,
        /// The agreed live set.
        t: IntervalSet,
    },
    /// A relabeled Protocol A message of the fallback (§4 / Figure 4
    /// line 12).
    Fallback(AbMsg),
}

impl Classify for DMsg {
    fn class(&self) -> &'static str {
        match self {
            DMsg::Agree { .. } => "agree",
            DMsg::Report { .. } => "coord_report",
            DMsg::Decision { .. } => "coord_decision",
            DMsg::Fallback(_) => "fallback",
        }
    }
}

impl fmt::Display for DMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DMsg::Agree { phase, s, t, done } => {
                write!(f, "agree(phase={phase}, |S|={}, |T|={}, done={done})", s.len(), t.len())
            }
            DMsg::Report { phase, s, t } => {
                write!(f, "report(phase={phase}, |S|={}, |T|={})", s.len(), t.len())
            }
            DMsg::Decision { phase, s, t } => {
                write!(f, "decision(phase={phase}, |S|={}, |T|={})", s.len(), t.len())
            }
            DMsg::Fallback(m) => write!(f, "fallback({m})"),
        }
    }
}

#[derive(Clone, Debug)]
enum DState {
    /// Performing this phase's share, one unit per round, then idling so
    /// every process spends exactly `⌈|S|/|T|⌉` rounds in the phase.
    Work {
        share: IntervalSet,
        rounds_left: u64,
    },
    /// Running the Figure 4 `Agree` exchange.
    Agree {
        /// Processes not yet known faulty (`U`).
        u: IntervalSet,
        /// The rebuilt live set (`T` in the figure; starts at `{j}`).
        t_new: IntervalSet,
        /// |T'| — the live-set size before this agreement phase.
        t_prev: u64,
        /// Broadcast iterations completed.
        iter: u64,
        /// First iteration at which silence means faulty and stability
        /// means done (1 in the first phase, 2 afterwards — the paper's
        /// grace round).
        enable_iter: u64,
    },
    /// Coordinator variant, non-coordinator side: report sent, awaiting
    /// the coordinator's decision (`entry == 0` until the first step).
    CoordFollower {
        entry: Round,
        t_prev: u64,
    },
    /// Coordinator variant, coordinator side: collecting reports.
    CoordLeader {
        entry: Round,
        t_prev: u64,
        s_acc: IntervalSet,
        heard: IntervalSet,
    },
    /// Reverted to Protocol A.
    Fallback(FallbackMachine),
    Done,
}

/// One process of Protocol D.
///
/// # Examples
///
/// ```
/// use doall_core::d::ProtocolD;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// let procs = ProtocolD::processes(100, 10)?;
/// let report = run(procs, NoFailures, RunConfig::new(100, 1000))?;
/// assert!(report.metrics.all_work_done());
/// // §4: failure-free Protocol D is time-optimal — n/t + 2 rounds.
/// assert_eq!(report.metrics.rounds, 100u64 / 10 + 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolD {
    n: u64,
    t: u64,
    j: u64,
    /// Outstanding units (`S`), run-compressed so `n = 10^8` costs a
    /// handful of interval runs, not a gigabyte of tree nodes.
    s: IntervalSet,
    /// Processes thought correct at the end of the previous work phase
    /// (`T`).
    t_set: IntervalSet,
    /// Current phase index (0-based; phase 0 gets no grace round).
    phase: u32,
    /// Whether agreement phases use the §4 coordinator optimization.
    coordinated: bool,
    /// Set once a coordinator failure forces this process back to the
    /// broadcast agreement (one-way, for all later phases).
    fell_back_to_broadcast: bool,
    /// Set by a stale crash-recovery that found the state already
    /// [`DState::Done`]: the crash preempted the final step's terminate,
    /// so the next step must retire for real.
    retire_next_step: bool,
    state: DState,
}

impl ProtocolD {
    /// Creates process `j` of an `(n, t)` system.
    ///
    /// Unlike Protocols A–C, Figure 4 is written with general `⌈|S|/|T|⌉`
    /// arithmetic, so any `n >= 1`, `t >= 1` works.
    pub fn new(n: u64, t: u64, j: u64) -> Self {
        debug_assert!(j < t);
        let mut d = ProtocolD {
            n,
            t,
            j,
            s: IntervalSet::from_range(1..n + 1),
            t_set: IntervalSet::from_range(0..t),
            phase: 0,
            coordinated: false,
            fell_back_to_broadcast: false,
            retire_next_step: false,
            state: DState::Done,
        };
        d.state = d.build_work_phase();
        d
    }

    /// The workload size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The system size `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Creates the full vector of `t` processes for `n` units of work.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoProcesses`] / [`ConfigError::NoWork`] on
    /// empty systems.
    pub fn processes(n: u64, t: u64) -> Result<Vec<ProtocolD>, ConfigError> {
        if t == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n == 0 {
            return Err(ConfigError::NoWork);
        }
        Ok((0..t).map(|j| ProtocolD::new(n, t, j)).collect())
    }

    /// Creates the `t` processes with the §4 coordinator optimization:
    /// during agreement, views are sent to a central coordinator (the
    /// lowest-numbered live process), who merges them and broadcasts the
    /// result — `2(t − 1)` messages per failure-free agreement phase
    /// instead of `≈ 2t²`, at the cost of one extra round.
    ///
    /// The paper notes that "dealing with failures is somewhat subtle" in
    /// this variant and leaves it unanalysed; our resolution: a process
    /// that times out waiting for its coordinator permanently reverts to
    /// the Figure 4 broadcast agreement. If the coordinator dies *while*
    /// broadcasting a decision, the system may briefly split into teams
    /// with divergent live-sets; each team still covers all outstanding
    /// work (idempotently), so correctness is never at risk — only up to a
    /// factor-two work overhead in that corner case.
    ///
    /// # Errors
    ///
    /// As [`ProtocolD::processes`].
    pub fn processes_with_coordinator(n: u64, t: u64) -> Result<Vec<ProtocolD>, ConfigError> {
        let mut procs = Self::processes(n, t)?;
        for p in &mut procs {
            p.coordinated = true;
        }
        Ok(procs)
    }

    /// The current phase coordinator: the lowest process this one believes
    /// to be alive.
    fn coordinator(&self) -> u64 {
        self.t_set.min().expect("t_set always contains self")
    }

    /// Figure 4 line 5: my share of the outstanding work, by grade.
    fn build_work_phase(&self) -> DState {
        let w = self.s.len().div_ceil(self.t_set.len());
        let grade = if self.t_set.contains(self.j) { self.t_set.rank(self.j) } else { 0 };
        let share = self.s.slice_by_rank(grade * w, w);
        DState::Work { share, rounds_left: w }
    }

    fn enter_agree(&mut self) -> DState {
        if self.coordinated && !self.fell_back_to_broadcast {
            let t_prev = self.t_set.len();
            return if self.coordinator() == self.j {
                DState::CoordLeader {
                    entry: Round::ZERO,
                    t_prev,
                    s_acc: self.s.clone(),
                    heard: [self.j].into_iter().collect(),
                }
            } else {
                DState::CoordFollower { entry: Round::ZERO, t_prev }
            };
        }
        let enable_iter = if self.phase == 0 { 1 } else { 2 };
        DState::Agree {
            u: self.t_set.clone(),
            t_new: [self.j].into_iter().collect(),
            t_prev: self.t_set.len(),
            iter: 0,
            enable_iter,
        }
    }

    /// Abandons the coordinator protocol (its coordinator is presumed
    /// dead) and joins the broadcast agreement for this phase.
    fn revert_to_broadcast(&mut self, t_prev: u64) -> DState {
        self.fell_back_to_broadcast = true;
        let dead_coordinator = self.coordinator();
        let mut u = self.t_set.clone();
        u.remove(dead_coordinator);
        self.t_set.remove(dead_coordinator);
        DState::Agree {
            u,
            t_new: [self.j].into_iter().collect(),
            t_prev,
            iter: 0,
            // Extra grace: fallen-back processes join within a couple of
            // rounds of one another; do not declare anyone faulty (or the
            // view stable) before everyone has had time to join.
            enable_iter: 4,
        }
    }

    /// One round of the coordinator-variant agreement.
    fn coord_step(&mut self, round: Round, inbox: Inbox<'_, DMsg>, eff: &mut Effects<DMsg>) {
        // A broadcast-mode message for our phase means somebody already
        // gave up on the coordinator: join them.
        let saw_broadcast = inbox
            .iter()
            .any(|(_, msg)| matches!(msg, DMsg::Agree { phase, .. } if *phase == self.phase));

        match std::mem::replace(&mut self.state, DState::Done) {
            DState::CoordLeader { mut entry, t_prev, mut s_acc, mut heard } => {
                if entry == Round::ZERO {
                    entry = round;
                }
                if saw_broadcast {
                    self.state = self.revert_to_broadcast(t_prev);
                    self.agree_step(round, inbox, eff);
                    return;
                }
                for (from, msg) in inbox.iter() {
                    if let DMsg::Report { phase, s, t } = msg {
                        if *phase == self.phase {
                            let _ = t; // liveness knowledge comes from who reported
                            s_acc.intersect(s);
                            heard.insert(from.index() as u64);
                        }
                    }
                }
                // In phase 0 every report is filed at `entry` and lands
                // at `entry + 1`; later phases carry one round of follower
                // skew, so the window extends one round further.
                let decide_at = entry + if self.phase == 0 { 1u64 } else { 2 };
                if round >= decide_at {
                    // Decide: the merged view is authoritative.
                    self.s = s_acc;
                    let t_new = heard.clone();
                    let msg =
                        DMsg::Decision { phase: self.phase, s: self.s.clone(), t: t_new.clone() };
                    // The live set is sorted, so this coalesces into at
                    // most two spans around `j` — no per-recipient clones,
                    // no scratch Vec.
                    let me = self.j;
                    eff.broadcast(
                        self.t_set.iter().filter(|&p| p != me).map(|p| Pid::new(p as usize)),
                        msg,
                    );
                    self.t_set = t_new;
                    self.finish_phase(round, t_prev, eff);
                } else {
                    self.state = DState::CoordLeader { entry, t_prev, s_acc, heard };
                }
            }
            DState::CoordFollower { mut entry, t_prev } => {
                if entry == Round::ZERO {
                    entry = round;
                    // First round of the phase: file our report.
                    eff.send(
                        Pid::new(self.coordinator() as usize),
                        DMsg::Report {
                            phase: self.phase,
                            s: self.s.clone(),
                            t: self.t_set.clone(),
                        },
                    );
                    self.state = DState::CoordFollower { entry, t_prev };
                    return;
                }
                if let Some((_, msg)) = inbox.iter().find(
                    |(_, msg)| matches!(msg, DMsg::Decision { phase, .. } if *phase == self.phase),
                ) {
                    let DMsg::Decision { s, t, .. } = msg else { unreachable!() };
                    self.s = s.clone();
                    self.t_set = t.clone();
                    self.finish_phase(round, t_prev, eff);
                    return;
                }
                if saw_broadcast || round >= entry + 6u64 {
                    // The coordinator is gone (directly observed or timed
                    // out): revert to the Figure 4 broadcast agreement.
                    self.state = self.revert_to_broadcast(t_prev);
                    self.agree_step(round, inbox, eff);
                    return;
                }
                self.state = DState::CoordFollower { entry, t_prev };
            }
            other => {
                self.state = other;
                unreachable!("coord_step outside coordinator agreement");
            }
        }
    }

    /// Ends an agreement phase at `round` with the agreed `(S, T)`;
    /// decides between next work phase, fallback, and termination.
    fn finish_phase(&mut self, round: Round, t_prev: u64, eff: &mut Effects<DMsg>) {
        self.phase += 1;
        if self.s.is_empty() {
            eff.terminate();
            self.state = DState::Done;
            return;
        }
        // Figure 4 line 11: more than half the previously live processes
        // died during this phase — revert to Protocol A.
        if t_prev > 2 * self.t_set.len() {
            eff.note("fallback");
            let survivors: Vec<u64> = self.t_set.iter().collect();
            let units: Vec<u64> = self.s.iter().collect();
            self.state =
                DState::Fallback(FallbackMachine::new(self.j, survivors, units, round + 1u64));
            return;
        }
        self.state = self.build_work_phase();
    }

    /// One iteration of the Figure 4 `Agree` loop, driven once per round.
    fn agree_step(&mut self, round: Round, inbox: Inbox<'_, DMsg>, eff: &mut Effects<DMsg>) {
        let DState::Agree { mut u, mut t_new, t_prev, iter, enable_iter } =
            std::mem::replace(&mut self.state, DState::Done)
        else {
            unreachable!("agree_step outside agreement phase");
        };

        let mut done = false;
        if iter >= 1 {
            // Messages broadcast during the previous round are in.
            let u_before = u.clone();
            let mut adopted = false;
            for (_, msg) in inbox.iter() {
                let DMsg::Agree { phase, s, t, done: their_done } = msg else {
                    continue;
                };
                if *phase != self.phase {
                    continue; // stale straggler from an earlier phase
                }
                if *their_done {
                    // Line 11-14: adopt the decided view wholesale.
                    self.s = s.clone();
                    t_new = t.clone();
                    done = true;
                    adopted = true;
                } else if !adopted {
                    self.s.intersect(s);
                    t_new.union_with(t);
                }
            }
            if !adopted && iter >= enable_iter {
                for i in u_before.iter() {
                    if i == self.j {
                        continue;
                    }
                    let heard = inbox.iter().any(|(from, msg)| {
                        from.index() as u64 == i
                            && matches!(msg, DMsg::Agree { phase, .. } if *phase == self.phase)
                    });
                    if !heard {
                        u.remove(i);
                    }
                }
                if u == u_before {
                    done = true; // line 17: the view has stabilized
                }
            }
        }

        // Line 6 / line 20: broadcast the (possibly decided) view. `u` is
        // sorted, so the recipients coalesce into at most two spans around
        // `j` — no scratch Vec, no per-recipient view clones.
        let msg = DMsg::Agree { phase: self.phase, s: self.s.clone(), t: t_new.clone(), done };
        let me = self.j;
        eff.broadcast(u.iter().filter(|&p| p != me).map(|p| Pid::new(p as usize)), msg);

        if done {
            self.t_set = t_new;
            self.finish_phase(round, t_prev, eff);
        } else {
            self.state = DState::Agree { u, t_new, t_prev, iter: iter + 1, enable_iter };
        }
    }
}

impl Protocol for ProtocolD {
    type Msg = DMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, DMsg>, eff: &mut Effects<DMsg>) {
        if self.retire_next_step {
            self.retire_next_step = false;
            eff.terminate();
            return;
        }
        match &mut self.state {
            DState::Done => {}
            DState::Work { share, rounds_left } => {
                if let Some(unit) = share.pop_min() {
                    eff.perform(Unit::new(unit as usize));
                    self.s.remove(unit); // line 8: S := S \ S' (incrementally)
                }
                *rounds_left -= 1;
                if *rounds_left == 0 {
                    self.state = self.enter_agree();
                }
            }
            DState::Agree { .. } => self.agree_step(round, inbox, eff),
            DState::CoordLeader { .. } | DState::CoordFollower { .. } => {
                self.coord_step(round, inbox, eff)
            }
            DState::Fallback(machine) => {
                let translated: Vec<(u64, AbMsg)> = inbox
                    .iter()
                    .filter_map(|(from, msg)| match msg {
                        DMsg::Fallback(m) => Some((from.index() as u64, *m)),
                        _ => None,
                    })
                    .collect();
                machine.step(round, &translated, eff);
                if machine.is_done() {
                    self.state = DState::Done;
                }
            }
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.retire_next_step {
            return Some(now);
        }
        match &self.state {
            DState::Done => None,
            DState::Fallback(machine) => machine.next_wakeup(now),
            _ => Some(now),
        }
    }

    fn on_recover(&mut self, _round: Round, wipe: bool) {
        if wipe {
            let coordinated = self.coordinated;
            *self = ProtocolD::new(self.n, self.t, self.j);
            self.coordinated = coordinated;
        } else if matches!(self.state, DState::Done) {
            // The crash preempted the final step's terminate; the decision
            // stands (S was empty), so retire for real on the next step.
            self.retire_next_step = true;
        }
        // Any other stale state just resumes: agreement re-stabilizes on
        // whoever still answers, and a lapsed coordinator follower times
        // out into the broadcast exchange.
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::invariants::check_no_zombie_actions;
    use doall_sim::{run, CrashSchedule, CrashSpec, NoFailures, Pid, RandomCrashes, RunConfig};

    use super::*;

    fn cfg(n: u64) -> RunConfig {
        RunConfig::new(n as usize, 10_000_000).with_trace()
    }

    #[test]
    fn failure_free_is_time_optimal() {
        // §4: n/t + 2 rounds, exactly n work, 2t(t-1) < 2t² messages.
        let (n, t) = (100, 10);
        let report = run(ProtocolD::processes(n, t).unwrap(), NoFailures, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, n);
        assert_eq!(report.metrics.rounds, n / t + 2);
        assert_eq!(report.metrics.messages, 2 * t * (t - 1));
        let b = theorems::protocol_d_failure_free(n, t);
        assert!(report.metrics.messages <= b.messages);
        assert!(check_no_zombie_actions(&report.trace).is_empty());
    }

    #[test]
    fn uneven_division_rounds_up() {
        // n = 7, t = 3: W = ⌈7/3⌉ = 3 rounds of work + 2 agreement rounds.
        let report = run(ProtocolD::processes(7, 3).unwrap(), NoFailures, cfg(7)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, 7);
        assert_eq!(report.metrics.rounds, 3u64 + 2);
    }

    #[test]
    fn single_process_system_just_works() {
        let report = run(ProtocolD::processes(5, 1).unwrap(), NoFailures, cfg(5)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.messages, 0);
    }

    #[test]
    fn one_crash_redistributes_within_one_extra_phase() {
        // p0 dies in the first work round: its share is redone in phase 2
        // by the survivors. §4 bounds: work <= n + n/t, messages <= 5t²,
        // rounds <= n/t + ⌈n/(t(t-1))⌉ + 6.
        let (n, t) = (100u64, 10u64);
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::silent());
        let report = run(ProtocolD::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        let b = theorems::protocol_d_one_failure(n, t);
        assert!(report.metrics.work_total <= b.work, "{} > {}", report.metrics.work_total, b.work);
        assert!(report.metrics.messages <= b.messages);
        assert!(report.metrics.rounds <= b.rounds, "{} > {}", report.metrics.rounds, b.rounds);
    }

    #[test]
    fn crash_after_work_before_broadcast_forces_rework() {
        // p0 completes its share but dies before its agreement broadcast:
        // the other processes cannot distinguish this from no work done,
        // so they must redo p0's share — the 2n work bound in action.
        let (n, t) = (100u64, 10u64);
        let adv = CrashSchedule::new().crash_at(Pid::new(0), n / t + 1, CrashSpec::silent());
        let report = run(ProtocolD::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, n + n / t, "p0's share redone");
        assert!(report.metrics.work_total <= theorems::protocol_d_normal(n, t, 1).work);
    }

    #[test]
    fn graceful_degradation_with_f_failures() {
        // Crash one process per phase (f = 3, never more than half):
        // Theorem 4.1 case 1 bounds hold.
        let (n, t) = (64u64, 8u64);
        let adv = CrashSchedule::new()
            .crash_at(Pid::new(1), 2, CrashSpec::silent())
            .crash_at(Pid::new(2), 15, CrashSpec::silent())
            .crash_at(Pid::new(3), 25, CrashSpec::silent());
        let report = run(ProtocolD::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        let f = u64::from(report.metrics.crashes);
        let b = theorems::protocol_d_normal(n, t, f);
        assert!(report.metrics.work_total <= b.work);
        assert!(
            report.metrics.messages <= b.messages,
            "{} > {}",
            report.metrics.messages,
            b.messages
        );
        assert!(report.metrics.rounds <= b.rounds, "{} > {}", report.metrics.rounds, b.rounds);
    }

    #[test]
    fn mass_extinction_triggers_protocol_a_fallback() {
        // 6 of 8 processes die in the first work phase: more than half of
        // the live set, so the survivors revert to Protocol A.
        let (n, t) = (64u64, 8u64);
        let mut adv = CrashSchedule::new();
        for j in 2..8 {
            adv = adv.crash_at(Pid::new(j), 2, CrashSpec::silent());
        }
        let report = run(ProtocolD::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        // The fallback note must have been emitted by a survivor.
        assert!(report.trace.notes("fallback").count() >= 1);
        let f = u64::from(report.metrics.crashes);
        let b = theorems::protocol_d_fallback(n, t, f);
        assert!(report.metrics.work_total <= b.work);
        assert!(report.metrics.messages <= b.messages);
        assert!(report.metrics.rounds <= b.rounds);
        // Fallback messages actually flowed.
        assert!(report.metrics.messages_by_class.contains_key("fallback") || t == 1);
    }

    #[test]
    fn fallback_with_lone_survivor_finishes_silently() {
        let (n, t) = (30u64, 6u64);
        let mut adv = CrashSchedule::new();
        for j in 1..6 {
            adv = adv.crash_at(Pid::new(j), 2, CrashSpec::silent());
        }
        let report = run(ProtocolD::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert!(report.survivors_iter().eq([Pid::new(0)]));
    }

    #[test]
    fn mid_broadcast_crash_in_agreement_still_agrees() {
        // p0 dies while broadcasting its first agreement message, reaching
        // only p1 and p2: views diverge momentarily; the exchange must
        // still converge and no unit may be lost.
        let (n, t) = (60u64, 6u64);
        let adv = CrashSchedule::new().crash_at(
            Pid::new(0),
            n / t + 1,
            CrashSpec::subset([Pid::new(1), Pid::new(2)]),
        );
        let report = run(ProtocolD::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert!(report.metrics.work_total <= 2 * n);
    }

    #[test]
    fn random_crash_storms_hold_theorem_4_1() {
        let (n, t) = (48u64, 8u64);
        for seed in 0..15 {
            let adv = RandomCrashes::new(seed, 0.02, (t - 1) as u32);
            let report = run(ProtocolD::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
            assert!(report.has_survivor(), "seed {seed}");
            assert!(report.metrics.all_work_done(), "seed {seed}: incomplete work");
            let f = u64::from(report.metrics.crashes);
            let b = theorems::protocol_d_fallback(n, t, f); // the weaker of the two cases
            assert!(report.metrics.work_total <= b.work, "seed {seed}");
            assert!(report.metrics.messages <= b.messages, "seed {seed}");
            assert!(check_no_zombie_actions(&report.trace).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn coordinator_variant_failure_free_costs_2t_minus_2_messages() {
        // §4 closing remark: "cut down the message complexity in the case
        // of no failures to 2(t − 1) rather than 2t²". One extra round is
        // the price of the report/decision round trip in our
        // next-round-delivery model.
        let (n, t) = (100u64, 10u64);
        let report =
            run(ProtocolD::processes_with_coordinator(n, t).unwrap(), NoFailures, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, n);
        assert_eq!(report.metrics.messages, 2 * (t - 1));
        assert_eq!(report.metrics.rounds, n / t + 3);
        // An order of magnitude below the broadcast variant.
        let broadcast = run(ProtocolD::processes(n, t).unwrap(), NoFailures, cfg(n)).unwrap();
        assert!(report.metrics.messages * 5 <= broadcast.metrics.messages);
    }

    #[test]
    fn coordinator_variant_single_process() {
        let report =
            run(ProtocolD::processes_with_coordinator(7, 1).unwrap(), NoFailures, cfg(7)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.messages, 0);
    }

    #[test]
    fn coordinator_variant_follower_crash_is_absorbed() {
        // A follower dies mid-work: the coordinator simply never hears it,
        // excludes it from T, and its share is redone next phase.
        let (n, t) = (60u64, 6u64);
        let adv = CrashSchedule::new().crash_at(Pid::new(3), 2, CrashSpec::silent());
        let report =
            run(ProtocolD::processes_with_coordinator(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert!(report.metrics.work_total <= n + n / t + t);
    }

    #[test]
    fn coordinator_crash_reverts_to_broadcast_agreement() {
        // The coordinator (p0) dies during the first work phase: followers
        // time out waiting for its decision and fall back to the Figure 4
        // broadcast exchange for the rest of the run.
        let (n, t) = (60u64, 6u64);
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 2, CrashSpec::silent());
        let report =
            run(ProtocolD::processes_with_coordinator(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        // Broadcast agreement messages must have flowed after the fallback.
        assert!(report.metrics.messages_by_class.contains_key("agree"));
        assert!(report.metrics.work_total <= 2 * n);
    }

    #[test]
    fn coordinator_crash_mid_decision_split_brain_is_safe() {
        // The coordinator dies while broadcasting its decision, reaching
        // only p1: p1 proceeds, the others fall back — both "teams" cover
        // the outstanding work; correctness holds, waste is bounded.
        let (n, t) = (60u64, 6u64);
        let decide_round = n / t + 3; // leader decides at entry + 2
        let adv = CrashSchedule::new().crash_at(
            Pid::new(0),
            decide_round,
            CrashSpec::subset([Pid::new(1)]),
        );
        let report =
            run(ProtocolD::processes_with_coordinator(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert!(
            report.metrics.work_total <= 3 * n,
            "split-brain waste must stay bounded: {}",
            report.metrics.work_total
        );
    }

    #[test]
    fn coordinator_variant_random_storms_complete() {
        let (n, t) = (48u64, 8u64);
        for seed in 0..12 {
            let adv = RandomCrashes::new(seed, 0.02, (t - 1) as u32);
            let report =
                run(ProtocolD::processes_with_coordinator(n, t).unwrap(), adv, cfg(n)).unwrap();
            assert!(report.has_survivor(), "seed {seed}");
            assert!(report.metrics.all_work_done(), "seed {seed}");
            assert!(report.metrics.work_total <= 3 * n, "seed {seed}");
        }
    }

    #[test]
    fn rejects_empty_configurations() {
        assert!(ProtocolD::processes(0, 4).is_err());
        assert!(ProtocolD::processes(4, 0).is_err());
    }
}
