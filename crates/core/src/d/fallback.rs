//! The Protocol D → Protocol A fallback (Figure 4, line 12).
//!
//! When an agreement phase reveals that more than half of the previously
//! live processes died, Protocol D gives up on parallelism and "performs
//! the work in `S` using Protocol A". At that point all survivors agree on
//! the outstanding unit set `S` and the live set `T`, so we can relabel:
//! survivor ranks `0..|T|-1` play the roles of Protocol A's processes, the
//! sorted units of `S` play units `1..|S|`.
//!
//! Protocol A needs `t` a perfect square and `t | n` with `n >= t`; `|T|`
//! and `|S|` are arbitrary, so we pad — the paper's "easy modifications of
//! the protocol when these assumptions do not hold" left to the reader:
//!
//! * *virtual processes* fill `|T|` up to the next perfect square. They
//!   rank above every real process and are crashed from the start; since
//!   Protocol A natively tolerates silent processes, correctness is
//!   untouched. Messages addressed to them are simply dropped (never sent).
//! * *phantom units* pad `|S|` up to a positive multiple of the padded
//!   process count. Performing a phantom unit consumes the round but emits
//!   no work.

use doall_bounds::deadlines_ab::{dd, AbParams};
use doall_sim::{Effects, Pid, Round, Unit};

use crate::ab::{interpret, is_terminal_for, AbMsg, LastOrdinary, Op, Schedule};

use super::DMsg;

#[derive(Clone, Debug)]
enum FState {
    Passive,
    Active { ops: Schedule },
    Done,
}

/// The embedded, relabeled Protocol A machine driven by a Protocol D
/// process after the fallback trigger.
#[derive(Clone, Debug)]
pub struct FallbackMachine {
    params: AbParams,
    /// My rank within the sorted survivor set.
    rank: u64,
    /// The engine round at which this machine started (deadlines offset).
    base: Round,
    /// Sorted survivor pids: `ranks[r]` is the real pid of rank `r`.
    ranks: Vec<u64>,
    /// Sorted outstanding units: `units[u-1]` is the real unit of
    /// relabeled unit `u`.
    units: Vec<u64>,
    state: FState,
    last: LastOrdinary,
}

impl FallbackMachine {
    /// Builds the fallback machine for real process `me`, given the agreed
    /// survivor set and outstanding units, starting at engine round `base`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not in `survivors` (only agreed-live processes
    /// run the fallback) or if `units` is empty (an empty `S` skips the
    /// fallback entirely).
    pub fn new(me: u64, survivors: Vec<u64>, units: Vec<u64>, base: impl Into<Round>) -> Self {
        assert!(!units.is_empty(), "empty S never reaches the fallback");
        let rank = survivors
            .iter()
            .position(|&p| p == me)
            .expect("fallback is only run by agreed survivors") as u64;
        let t_padded = {
            let mut s = 1u64;
            while s * s < survivors.len() as u64 {
                s += 1;
            }
            s * s
        };
        let n_padded = (units.len() as u64).div_ceil(t_padded).max(1) * t_padded;
        let params = AbParams::new(n_padded, t_padded);
        FallbackMachine {
            params,
            rank,
            base: base.into(),
            ranks: survivors,
            units,
            state: FState::Passive,
            last: LastOrdinary::Fictitious,
        }
    }

    /// Whether the machine has retired.
    pub fn is_done(&self) -> bool {
        matches!(self.state, FState::Done)
    }

    /// The padded Protocol A parameters (for tests).
    pub fn params(&self) -> AbParams {
        self.params
    }

    fn rank_of(&self, pid: u64) -> Option<u64> {
        self.ranks.binary_search(&pid).ok().map(|r| r as u64)
    }

    /// Broadcasts `msg` to the given ranks, dropping virtual ones.
    fn broadcast_ranks<I: Iterator<Item = u64>>(
        &self,
        ranks: I,
        msg: AbMsg,
        eff: &mut Effects<DMsg>,
    ) {
        for r in ranks {
            if let Some(&pid) = self.ranks.get(r as usize) {
                eff.send(Pid::new(pid as usize), DMsg::Fallback(msg));
            }
        }
    }

    fn exec(&mut self, op: Op, eff: &mut Effects<DMsg>) {
        let p = self.params;
        match op {
            Op::Work { u } => {
                // Phantom units beyond |S| consume the round silently.
                if let Some(&real) = self.units.get(u as usize - 1) {
                    eff.perform(Unit::new(real as usize));
                }
            }
            Op::PartialCp { c } => {
                let end = p.group_of(self.rank) * p.sqrt_t();
                self.broadcast_ranks(self.rank + 1..end, AbMsg::Partial { c }, eff);
            }
            Op::FullCpGroup { c, g } => {
                self.broadcast_ranks(p.group_members(g), AbMsg::Full { c, g }, eff);
            }
            Op::FullCpOwn { c, g } => {
                let end = p.group_of(self.rank) * p.sqrt_t();
                self.broadcast_ranks(self.rank + 1..end, AbMsg::Full { c, g }, eff);
            }
        }
    }

    fn activate(&mut self, eff: &mut Effects<DMsg>) {
        eff.note("activate");
        let mut ops = Schedule::new(self.params, self.rank, self.last);
        if let Some(op) = ops.pop_front() {
            self.exec(op, eff);
        }
        if ops.is_empty() {
            eff.terminate();
            self.state = FState::Done;
        } else {
            self.state = FState::Active { ops };
        }
    }

    /// One engine round. `inbox` holds the fallback messages delivered this
    /// round as `(sender pid, message)` pairs.
    pub fn step(&mut self, round: Round, inbox: &[(u64, AbMsg)], eff: &mut Effects<DMsg>) {
        match &mut self.state {
            FState::Done => {}
            FState::Active { ops } => {
                let op = ops.pop_front();
                if let Some(op) = op {
                    self.exec(op, eff);
                }
                if matches!(&self.state, FState::Active { ops } if ops.is_empty()) {
                    eff.terminate();
                    self.state = FState::Done;
                }
            }
            FState::Passive => {
                for (from, msg) in inbox {
                    if is_terminal_for(self.params, self.rank, *msg) {
                        eff.terminate();
                        self.state = FState::Done;
                        return;
                    }
                    if let Some(sender_rank) = self.rank_of(*from) {
                        if let Some(last) = interpret(self.params, self.rank, sender_rank, *msg) {
                            self.last = last;
                        }
                    }
                }
                let rel = round.saturating_sub(self.base);
                if rel >= u128::from(dd(self.params, self.rank)) {
                    self.activate(eff);
                }
            }
        }
    }

    /// Earliest round at which this machine wants to act spontaneously.
    pub fn next_wakeup(&self, now: Round) -> Option<Round> {
        match self.state {
            FState::Done => None,
            FState::Active { .. } => Some(now),
            FState::Passive => Some((self.base + dd(self.params, self.rank)).max(now)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_produces_valid_protocol_a_params() {
        // 3 survivors, 5 units: pad to t = 4, n = 8.
        let m = FallbackMachine::new(7, vec![2, 7, 9], vec![10, 11, 12, 40, 41], 100u64);
        assert_eq!(m.params().t, 4);
        assert_eq!(m.params().n, 8);
        assert_eq!(m.rank, 1);
    }

    #[test]
    fn single_survivor_pads_to_one_by_one() {
        let m = FallbackMachine::new(3, vec![3], vec![9], 5u64);
        assert_eq!(m.params().t, 1);
        assert_eq!(m.params().n, 1);
        assert_eq!(m.rank, 0);
    }

    #[test]
    fn rank_zero_activates_immediately_and_performs_real_units() {
        let mut m = FallbackMachine::new(2, vec![2, 7, 9], vec![10, 11, 12, 40, 41], 100u64);
        let mut eff = Effects::new();
        m.step(Round::new(100), &[], &mut eff);
        // First op is real unit 10 (relabeled unit 1).
        assert_eq!(eff.work(), Some(Unit::new(10)));
        assert_eq!(eff.notes(), ["activate"]);
    }

    #[test]
    fn phantom_units_consume_rounds_without_work() {
        // 1 survivor, 1 real unit padded to n = 1: trivially fine; use 2
        // survivors (pad t to 4), 3 units padded to n = 4 -> 1 phantom.
        let mut m = FallbackMachine::new(0, vec![0, 1], vec![5, 6, 7], 1u64);
        let mut performed = Vec::new();
        for r in 1u64..200 {
            let mut eff = Effects::new();
            m.step(Round::from(r), &[], &mut eff);
            if let Some(u) = eff.work() {
                performed.push(u.get());
            }
            if m.is_done() {
                break;
            }
        }
        assert_eq!(performed, vec![5, 6, 7], "exactly the real units, in order");
        assert!(m.is_done());
    }

    #[test]
    fn messages_to_virtual_ranks_are_dropped() {
        // 2 survivors padded to t = 4: partial checkpoints address ranks
        // 1..3 but only rank 1 exists.
        let mut m = FallbackMachine::new(0, vec![0, 9], vec![1, 2, 3, 4], 1u64);
        let mut total_sends = 0;
        for r in 1u64..200 {
            let mut eff = Effects::new();
            m.step(Round::from(r), &[], &mut eff);
            for op in eff.sends() {
                for to in op.to.iter() {
                    assert!(to.index() == 9, "only the real survivor may be addressed");
                    total_sends += 1;
                }
            }
            if m.is_done() {
                break;
            }
        }
        assert!(total_sends > 0);
    }

    #[test]
    fn passive_rank_takes_over_after_dd() {
        let mut m = FallbackMachine::new(9, vec![2, 9], vec![1, 2, 3, 4], 50u64);
        let dd1 = dd(m.params(), 1);
        // Before the deadline: idle.
        let mut eff = Effects::new();
        m.step(Round::new(50), &[], &mut eff);
        assert!(eff.is_idle());
        assert_eq!(m.next_wakeup(Round::new(51)), Some(Round::from(50 + dd1)));
        // At the deadline: activates from scratch.
        let mut eff = Effects::new();
        m.step(Round::from(50 + dd1), &[], &mut eff);
        assert_eq!(eff.notes(), ["activate"]);
    }

    #[test]
    fn terminal_fallback_message_retires_passive_rank() {
        let mut m = FallbackMachine::new(9, vec![2, 9], vec![1, 2, 3, 4], 50u64);
        let t_sub = m.params().t; // relabeled final subchunk id
        let mut eff = Effects::new();
        m.step(Round::new(51), &[(2, AbMsg::Partial { c: t_sub })], &mut eff);
        assert!(eff.is_terminated());
        assert!(m.is_done());
    }
}
