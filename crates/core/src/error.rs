//! Configuration errors for the protocol constructors.

use std::fmt;

/// Why a protocol configuration was rejected.
///
/// The paper makes simplifying divisibility assumptions per protocol
/// ("for ease of exposition we assume that t is a perfect square…", "…a
/// power of 2"); constructors enforce them and report violations through
/// this type rather than panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `t` must be a perfect square (Protocols A and B).
    NotPerfectSquare {
        /// The offending process count.
        t: u64,
    },
    /// `t` must be a power of two of at least 2 (Protocol C).
    NotPowerOfTwo {
        /// The offending process count.
        t: u64,
    },
    /// `n` must be a multiple of `t`.
    NotDivisible {
        /// The workload size.
        n: u64,
        /// The process count.
        t: u64,
    },
    /// `n` must be at least `t` (so that `n/t >= 1`).
    WorkTooSmall {
        /// The workload size.
        n: u64,
        /// The process count.
        t: u64,
    },
    /// At least one process is required.
    NoProcesses,
    /// At least one unit of work is required.
    NoWork,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPerfectSquare { t } => {
                write!(f, "t = {t} must be a perfect square for Protocols A/B")
            }
            ConfigError::NotPowerOfTwo { t } => {
                write!(f, "t = {t} must be a power of two (>= 2) for Protocol C")
            }
            ConfigError::NotDivisible { n, t } => {
                write!(f, "n = {n} must be divisible by t = {t}")
            }
            ConfigError::WorkTooSmall { n, t } => {
                write!(f, "n = {n} must be at least t = {t}")
            }
            ConfigError::NoProcesses => write!(f, "at least one process is required"),
            ConfigError::NoWork => write!(f, "at least one unit of work is required"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::NotPerfectSquare { t: 10 };
        assert_eq!(e.to_string(), "t = 10 must be a perfect square for Protocols A/B");
        let e = ConfigError::NotDivisible { n: 10, t: 4 };
        assert!(e.to_string().contains("divisible"));
    }
}
