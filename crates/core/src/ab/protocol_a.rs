//! Protocol A (§2.1–§2.2): checkpointing with the crude deadline
//! `DD(j) = j(n + 3t)`.
//!
//! Guarantees (Theorem 2.3): in every execution at most `3n` units of work
//! are performed, at most `9t√t` messages are sent, and all processes
//! retire by round `nt + 3t²`.

use doall_bounds::deadlines_ab::{dd, AbParams};
use doall_sim::{Effects, Inbox, Protocol, Round};

use super::{exec_op, interpret, is_terminal_for, validate, AbMsg, LastOrdinary, Schedule};
use crate::error::ConfigError;

#[derive(Clone, Debug)]
enum AState {
    Passive,
    Active { ops: Schedule },
    Done,
}

/// One process of Protocol A.
///
/// Build the whole system with [`ProtocolA::processes`] and hand it to
/// [`doall_sim::run`].
///
/// # Examples
///
/// ```
/// use doall_core::ab::protocol_a::ProtocolA;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// let procs = ProtocolA::processes(32, 16)?;
/// let report = run(procs, NoFailures, RunConfig::new(32, 10_000))?;
/// assert!(report.metrics.all_work_done());
/// assert_eq!(report.metrics.work_total, 32); // no failures, no rework
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolA {
    params: AbParams,
    j: u64,
    state: AState,
    last: LastOrdinary,
    /// Set by a stale crash-recovery that found the state already
    /// [`AState::Done`]: the crash preempted the final step's terminate,
    /// so the next step must retire for real.
    retire_next_step: bool,
}

impl ProtocolA {
    /// Creates process `j` of a `(n, t)` system.
    pub fn new(params: AbParams, j: u64) -> Self {
        debug_assert!(j < params.t);
        ProtocolA {
            params,
            j,
            state: AState::Passive,
            last: LastOrdinary::Fictitious,
            retire_next_step: false,
        }
    }

    /// Creates the full vector of `t` processes for `n` units of work.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `t` is a positive perfect square,
    /// `t | n`, and `n >= t`.
    pub fn processes(n: u64, t: u64) -> Result<Vec<ProtocolA>, ConfigError> {
        let params = validate(n, t)?;
        Ok((0..t).map(|j| ProtocolA::new(params, j)).collect())
    }

    /// The deadline at which this process takes over if still passive:
    /// `DD(j) = j(n + 3t)`.
    pub fn deadline(&self) -> Round {
        Round::from(dd(self.params, self.j))
    }

    fn activate(&mut self, eff: &mut Effects<AbMsg>) {
        eff.note("activate");
        let mut ops = Schedule::new(self.params, self.j, self.last);
        if let Some(op) = ops.pop_front() {
            exec_op(op, self.params, self.j, eff);
        }
        if ops.is_empty() {
            eff.terminate();
            self.state = AState::Done;
        } else {
            self.state = AState::Active { ops };
        }
    }

    /// Digests the inbox: returns `true` if a terminal message arrived.
    fn ingest(&mut self, inbox: Inbox<'_, AbMsg>) -> bool {
        let mut terminal = false;
        // Per the paper's convention, if several ordinary messages arrive in
        // one round (impossible in a clean execution), the lowest-numbered
        // sender wins; iterating in pid order and keeping the first does it.
        let mut updated = false;
        for (from, msg) in inbox.iter() {
            if !msg.is_ordinary() {
                continue;
            }
            if is_terminal_for(self.params, self.j, *msg) {
                terminal = true;
            }
            if !updated {
                if let Some(last) = interpret(self.params, self.j, from.index() as u64, *msg) {
                    self.last = last;
                    updated = true;
                }
            }
        }
        terminal
    }
}

impl Protocol for ProtocolA {
    type Msg = AbMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, AbMsg>, eff: &mut Effects<AbMsg>) {
        if self.retire_next_step {
            self.retire_next_step = false;
            eff.terminate();
            return;
        }
        match &mut self.state {
            AState::Done => {}
            AState::Active { ops } => {
                // An active process ignores incoming messages (in a clean
                // execution there are none: all lower processes retired).
                if let Some(op) = ops.pop_front() {
                    exec_op(op, self.params, self.j, eff);
                }
                if ops.is_empty() {
                    eff.terminate();
                    self.state = AState::Done;
                }
            }
            AState::Passive => {
                if self.ingest(inbox) {
                    eff.terminate();
                    self.state = AState::Done;
                    return;
                }
                // Figure 1, main protocol: take over at round DD(j).
                if round >= self.deadline().max(Round::ONE) {
                    self.activate(eff);
                }
            }
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.retire_next_step {
            return Some(now);
        }
        match self.state {
            AState::Passive => Some(self.deadline().max(Round::ONE).max(now)),
            AState::Active { .. } => Some(now),
            AState::Done => None,
        }
    }

    fn on_recover(&mut self, _round: Round, wipe: bool) {
        if wipe {
            // Back to the initial configuration: wait out DD(j) again (it
            // has usually passed, so the next step re-activates) and redo
            // from the fictitious view. Safe — rejoining can only repeat
            // work, never lose a checkpointed unit.
            self.state = AState::Passive;
            self.last = LastOrdinary::Fictitious;
            self.retire_next_step = false;
        } else if matches!(self.state, AState::Done) {
            // The crash preempted the final step's terminate: retire for
            // real on the next step (the work really was completed).
            self.retire_next_step = true;
        }
        // Other stale state needs no adjustment: a passive process re-arms
        // its (long-past) deadline and takes over from its last checkpoint
        // view; an active one resumes its remaining schedule.
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::invariants::{
        check_activation_order, check_sequential_work, check_single_active,
    };
    use doall_sim::{
        run, CrashSchedule, CrashSpec, Deliver, NoFailures, Pid, RunConfig, Trigger,
        TriggerAdversary, TriggerRule,
    };

    use super::*;

    const N: u64 = 32;
    const T: u64 = 16;

    fn cfg() -> RunConfig {
        RunConfig::new(N as usize, 1_000_000).with_trace()
    }

    fn bounds_hold(report: &doall_sim::Report, n: u64, t: u64) {
        let b = theorems::protocol_a(n, t);
        assert!(
            report.metrics.work_total <= b.work,
            "work {} exceeds Theorem 2.3 bound {}",
            report.metrics.work_total,
            b.work
        );
        assert!(
            report.metrics.messages <= b.messages,
            "messages {} exceed Theorem 2.3 bound {}",
            report.metrics.messages,
            b.messages
        );
        assert!(
            report.metrics.rounds <= b.rounds,
            "rounds {} exceed Theorem 2.3 bound {}",
            report.metrics.rounds,
            b.rounds
        );
    }

    fn invariants_hold(report: &doall_sim::Report) {
        assert!(check_single_active(&report.trace).is_empty());
        assert!(check_activation_order(&report.trace).is_empty());
        assert!(check_sequential_work(&report.trace).is_empty());
    }

    #[test]
    fn failure_free_run_is_exact() {
        let report = run(ProtocolA::processes(N, T).unwrap(), NoFailures, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N, "no failures => no rework");
        assert_eq!(report.metrics.crashes, 0);
        assert_eq!(report.metrics.terminations, T as u32);
        // Process 0 does n work rounds + t partial + 2·√t(√t−1) full rounds.
        let sqrt_t = 4;
        let expected_rounds = N + T + 2 * sqrt_t * (sqrt_t - 1);
        assert_eq!(report.metrics.rounds, expected_rounds);
        // Exact failure-free message count: partial cps t·(√t−1) plus full
        // cps √t chunks × (√t−1) groups × (√t + √t−1).
        let expected_msgs = T * (sqrt_t - 1) + sqrt_t * (sqrt_t - 1) * (2 * sqrt_t - 1);
        assert_eq!(report.metrics.messages, expected_msgs);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn minimal_system_t1_does_all_work_silently() {
        let report =
            run(ProtocolA::processes(8, 1).unwrap(), NoFailures, RunConfig::new(8, 100)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.messages, 0);
        assert_eq!(report.metrics.work_total, 8);
    }

    #[test]
    fn silent_crash_of_process_0_hands_over_at_dd1() {
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::silent());
        let report = run(ProtocolA::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        // p1 starts from scratch at DD(1) = n + 3t.
        let activations: Vec<_> = report.trace.notes("activate").collect();
        assert_eq!(activations[0], (Round::ONE, Pid::new(0)));
        assert_eq!(activations[1], (Round::from(N + 3 * T), Pid::new(1)));
        assert_eq!(report.metrics.work_total, N, "p0 did nothing countable");
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn crash_after_checkpoint_loses_no_work() {
        // p0 dies right after its first partial checkpoint went out in
        // full; p1 resumes at subchunk 2 without redoing anything.
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: 1 },
            target: None,
            spec: CrashSpec::after_round(),
        }]);
        let report = run(ProtocolA::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N, "checkpointed work must not be redone");
        assert_eq!(report.metrics.wasted_work(), 0);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn unreported_work_is_redone_by_the_successor() {
        // p0 performs exactly one unit and dies before any checkpoint: the
        // classic "work-optimal protocols must do n + t - 1 work" scenario.
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth: 1 },
            target: None,
            spec: CrashSpec { deliver: Deliver::None, count_work: true },
        }]);
        let report = run(ProtocolA::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N + 1, "unit 1 performed twice");
        assert_eq!(report.metrics.redone_units(), vec![(doall_sim::Unit::new(1), 2)]);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn partial_broadcast_delivery_still_recovers() {
        // p0 crashes mid-partial-checkpoint: the (1) reaches only p3 (not
        // p1, p2). p1 takes over from scratch; single-active must still
        // hold thanks to DD's pessimism.
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: 1 },
            target: None,
            spec: CrashSpec::subset([Pid::new(3)]),
        }]);
        let report = run(ProtocolA::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        // p1 redoes subchunk 1 (its view is fictitious).
        assert_eq!(report.metrics.work_total, N + N / T);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn cascade_of_takeover_crashes_respects_all_bounds() {
        // Each newly-activated process dies right after performing one more
        // unit, unreported — the adversary that forces Θ(n + t) work.
        let rules: Vec<TriggerRule> = (0..T - 1)
            .map(|j| TriggerRule {
                trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: 1 },
                target: None,
                spec: CrashSpec { deliver: Deliver::None, count_work: true },
            })
            .collect();
        let report =
            run(ProtocolA::processes(N, T).unwrap(), TriggerAdversary::new(rules), cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.crashes, (T - 1) as u32);
        // Every faulty process redid unit 1: n + (t-1) total.
        assert_eq!(report.metrics.work_total, N + T - 1);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn checkpoint_boundary_crashes_drive_rework_within_3n() {
        // Kill each successive activated process right before it finishes
        // checkpointing a chunk, forcing chunk-sized rework, the worst case
        // of Theorem 2.3's accounting.
        let rules: Vec<TriggerRule> = (0..T - 1)
            .map(|j| TriggerRule {
                // Crash on the 9th send-round: subchunk cps 1-4 plus the
                // first 4 full-cp broadcasts of chunk 1, dying mid-full-cp.
                trigger: Trigger::NthSendRoundBy { pid: Pid::new(j as usize), nth: 5 },
                target: None,
                spec: CrashSpec { deliver: Deliver::Prefix(1), count_work: true },
            })
            .collect();
        let report =
            run(ProtocolA::processes(N, T).unwrap(), TriggerAdversary::new(rules), cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn random_crashes_never_violate_theorem_2_3() {
        for seed in 0..20 {
            let adv = doall_sim::RandomCrashes::new(seed, 0.002, (T - 1) as u32);
            let report = run(ProtocolA::processes(N, T).unwrap(), adv, cfg()).unwrap();
            assert!(report.has_survivor(), "budgeted adversary leaves a survivor");
            assert!(report.metrics.all_work_done(), "seed {seed}: work incomplete");
            bounds_hold(&report, N, T);
            invariants_hold(&report);
        }
    }

    #[test]
    fn worst_case_time_when_only_last_process_survives() {
        // Everybody but p_{t-1} is dead on arrival: it must wait for
        // DD(t-1) and then do everything — the Theorem 2.3(c) worst case.
        let mut adv = CrashSchedule::new();
        for j in 0..T - 1 {
            adv = adv.crash_at(Pid::new(j as usize), 1, CrashSpec::silent());
        }
        let report = run(ProtocolA::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N);
        let dd_last = (T - 1) * (N + 3 * T);
        assert!(report.metrics.rounds >= dd_last);
        bounds_hold(&report, N, T);
    }

    #[test]
    fn rejects_invalid_configurations() {
        assert!(ProtocolA::processes(10, 3).is_err());
        assert!(ProtocolA::processes(7, 4).is_err());
        assert!(ProtocolA::processes(0, 4).is_err());
    }
}
