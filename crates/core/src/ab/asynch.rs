//! The asynchronous variant of Protocol A (§2.1 of the paper).
//!
//! > "Notice that we can easily modify this algorithm to run in a
//! > completely asynchronous system equipped with an appropriate failure
//! > detection mechanism: … rather than waiting until round `DD(j)` before
//! > becoming active, process `j` waits until it has been informed that
//! > processes `1, …, j−1` crashed or terminated."
//!
//! The checkpointing logic is byte-for-byte the synchronous `DoWork` of
//! Figure 1 — the [`compile_dowork`](super::compile_dowork) schedule is
//! shared — only the
//! activation trigger changes: the retirement detector of
//! [`doall_sim::asynch`] replaces the round deadline. Because the detector
//! is *sound* (it never reports a live process), at most one process is
//! active at any time, and the Theorem 2.3 work/message bounds carry over
//! unchanged; time is no longer a meaningful measure.
//!
//! See [`asynch_b`](super::asynch_b) for the Protocol B analogue, which
//! additionally infers retirements from received checkpoints instead of
//! waiting for a detector report about every lower-numbered process.

use std::collections::BTreeSet;

use doall_bounds::AbParams;
use doall_sim::asynch::{AsyncEffects, AsyncProtocol};
use doall_sim::{Inbox, Pid};

use super::{group_span, interpret, is_terminal_for, validate, AbMsg, LastOrdinary, Op, Schedule};
use crate::error::ConfigError;

#[derive(Clone, Debug)]
pub(super) enum AsyncState {
    Passive,
    Active { ops: Schedule },
    Done,
}

/// Executes the next one-round operation of an active schedule, requesting
/// a tick continuation until the schedule is exhausted — shared by the
/// asynchronous Protocols A and B (their active phases are identical).
pub(super) fn advance_schedule(
    state: &mut AsyncState,
    params: AbParams,
    j: u64,
    eff: &mut AsyncEffects<AbMsg>,
) {
    let AsyncState::Active { ops } = state else { return };
    if let Some(op) = ops.pop_front() {
        match op {
            Op::Work { u } => eff.perform(doall_sim::Unit::new(u as usize)),
            Op::PartialCp { c } => {
                eff.multicast(super::higher_own_group(params, j), AbMsg::Partial { c });
            }
            Op::FullCpGroup { c, g } => {
                eff.multicast(group_span(params, g), AbMsg::Full { c, g });
            }
            Op::FullCpOwn { c, g } => {
                eff.multicast(super::higher_own_group(params, j), AbMsg::Full { c, g });
            }
        }
    }
    if matches!(state, AsyncState::Active { ops } if ops.is_empty()) {
        eff.terminate();
        *state = AsyncState::Done;
    } else {
        eff.continue_later();
    }
}

/// One process of the asynchronous Protocol A.
///
/// Run with [`doall_sim::asynch::run_async`].
///
/// # Examples
///
/// ```
/// use doall_core::ab::asynch::AsyncProtocolA;
/// use doall_sim::asynch::{run_async, AsyncConfig};
/// use doall_sim::NoFailures;
///
/// let procs = AsyncProtocolA::processes(32, 16)?;
/// let report = run_async(procs, NoFailures, AsyncConfig::new(32, 1))?;
/// assert!(report.metrics.all_work_done());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AsyncProtocolA {
    params: AbParams,
    j: u64,
    state: AsyncState,
    last: LastOrdinary,
    /// Detector reports received out of order (ahead of the watermark).
    retired: BTreeSet<u64>,
    /// Every pid below this is known retired — advanced incrementally so
    /// each notice costs amortized O(log t), not a rescan of `0..j`.
    retired_below: u64,
}

impl AsyncProtocolA {
    /// Creates process `j` of an `(n, t)` system.
    pub fn new(params: AbParams, j: u64) -> Self {
        AsyncProtocolA {
            params,
            j,
            state: AsyncState::Passive,
            last: LastOrdinary::Fictitious,
            retired: BTreeSet::new(),
            retired_below: 0,
        }
    }

    /// Creates the full vector of `t` processes for `n` units of work.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `t` is a positive perfect square,
    /// `t | n`, and `n >= t`.
    pub fn processes(n: u64, t: u64) -> Result<Vec<AsyncProtocolA>, ConfigError> {
        let params = validate(n, t)?;
        Ok((0..t).map(|j| AsyncProtocolA::new(params, j)).collect())
    }

    fn all_lower_retired(&mut self) -> bool {
        while self.retired_below < self.j && self.retired.remove(&self.retired_below) {
            self.retired_below += 1;
        }
        self.retired_below >= self.j
    }

    fn activate(&mut self, eff: &mut AsyncEffects<AbMsg>) {
        eff.note("activate");
        self.state = AsyncState::Active { ops: Schedule::new(self.params, self.j, self.last) };
        advance_schedule(&mut self.state, self.params, self.j, eff);
    }
}

impl AsyncProtocol for AsyncProtocolA {
    type Msg = AbMsg;

    fn on_start(&mut self, eff: &mut AsyncEffects<AbMsg>) {
        if self.j == 0 {
            self.activate(eff);
        }
    }

    fn on_messages(&mut self, inbox: Inbox<'_, AbMsg>, eff: &mut AsyncEffects<AbMsg>) {
        for (from, payload) in inbox.iter() {
            if !matches!(self.state, AsyncState::Passive) {
                return; // active/terminated processes ignore stray traffic
            }
            if is_terminal_for(self.params, self.j, *payload) {
                eff.terminate();
                self.state = AsyncState::Done;
                return;
            }
            if let Some(last) = interpret(self.params, self.j, from.index() as u64, *payload) {
                self.last = last;
            }
        }
    }

    fn on_retirement(&mut self, retired: Pid, eff: &mut AsyncEffects<AbMsg>) {
        self.retired.insert(retired.index() as u64);
        if matches!(self.state, AsyncState::Passive) && self.all_lower_retired() {
            self.activate(eff);
        }
    }

    fn on_tick(&mut self, eff: &mut AsyncEffects<AbMsg>) {
        advance_schedule(&mut self.state, self.params, self.j, eff);
    }

    fn on_recover(&mut self, wipe: bool, eff: &mut AsyncEffects<AbMsg>) {
        eff.note("rejoin");
        if wipe {
            self.state = AsyncState::Passive;
            self.last = LastOrdinary::Fictitious;
            self.retired.clear();
            self.retired_below = 0;
            if self.j == 0 {
                self.activate(eff);
            }
            // j > 0 waits: the detector replays past retirements to a
            // recovered process, so activation re-triggers via
            // on_retirement once the replayed notices land.
        } else {
            match self.state {
                // The crash severed the tick chain driving the schedule;
                // splice it back.
                AsyncState::Active { .. } => eff.continue_later(),
                // The crash preempted a same-invocation termination; the
                // work is done, so retire for real now.
                AsyncState::Done => eff.terminate(),
                AsyncState::Passive => {
                    if self.all_lower_retired() {
                        self.activate(eff);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::asynch::{run_async, AsyncConfig, AsyncCrash};
    use doall_sim::invariants::{
        check_activation_order, check_detector_soundness, check_no_zombie_actions,
        check_single_active,
    };
    use doall_sim::NoFailures;

    use super::*;

    const N: u64 = 32;
    const T: u64 = 16;

    fn cfg(seed: u64) -> AsyncConfig {
        AsyncConfig { max_delay: 7, max_events: 1_000_000, ..AsyncConfig::new(N as usize, seed) }
    }

    #[test]
    fn failure_free_async_run_matches_synchronous_counts() {
        let report =
            run_async(AsyncProtocolA::processes(N, T).unwrap(), NoFailures, cfg(1)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N);
        // Same message count as the synchronous failure-free run: 132.
        assert_eq!(report.metrics.messages, 132);
        assert!(report.has_survivor());
        assert_eq!(report.survivor_count() as u64, T);
    }

    #[test]
    fn crash_of_active_process_hands_over_via_detector() {
        // p0 dies on its 5th handler invocation (start + 4 ticks = after 5
        // operations); p1 activates once the detector informs it.
        let crash =
            AsyncCrash { pid: Pid::new(0), on_invocation: 5, deliver_prefix: 0, count_work: true };
        let report =
            run_async(AsyncProtocolA::processes(N, T).unwrap(), vec![crash], cfg(2)).unwrap();
        assert!(report.metrics.all_work_done());
        let b = theorems::protocol_a(N, T);
        assert!(report.metrics.work_total <= b.work);
        assert!(report.metrics.messages <= b.messages);
        // Activation order is preserved: p0 then p1.
        let activations: Vec<Pid> = report
            .notes
            .iter()
            .filter(|(_, _, tag)| *tag == "activate")
            .map(|(_, p, _)| *p)
            .collect();
        assert_eq!(activations, vec![Pid::new(0), Pid::new(1)]);
    }

    #[test]
    fn async_runs_are_deterministic_per_seed() {
        let run1 = run_async(AsyncProtocolA::processes(N, T).unwrap(), NoFailures, cfg(9)).unwrap();
        let run2 = run_async(AsyncProtocolA::processes(N, T).unwrap(), NoFailures, cfg(9)).unwrap();
        assert_eq!(run1.metrics, run2.metrics);
    }

    #[test]
    fn detector_soundness_preserves_single_active() {
        // Under several delay seeds with a mid-run crash, activations must
        // stay ordered by pid and never overlap (each activation happens
        // only after the previous active process truly retired) — checked
        // both directly on the notes and via the ported trace invariants.
        for seed in 0..8 {
            let crash = AsyncCrash {
                pid: Pid::new(0),
                on_invocation: 9,
                deliver_prefix: 2,
                count_work: true,
            };
            let report = run_async(
                AsyncProtocolA::processes(N, T).unwrap(),
                vec![crash],
                cfg(seed).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "seed {seed}");
            let activations: Vec<Pid> = report
                .notes
                .iter()
                .filter(|(_, _, tag)| *tag == "activate")
                .map(|(_, p, _)| *p)
                .collect();
            assert!(
                activations.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: activations not strictly ordered: {activations:?}"
            );
            assert!(check_single_active(&report.trace).is_empty(), "seed {seed}");
            assert!(check_activation_order(&report.trace).is_empty(), "seed {seed}");
            assert!(check_no_zombie_actions(&report.trace).is_empty(), "seed {seed}");
            assert!(check_detector_soundness(&report.trace).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn cascade_of_crashes_respects_work_bound() {
        // p0 dies right after performing its first unit of work.
        let crash =
            AsyncCrash { pid: Pid::new(0), on_invocation: 1, deliver_prefix: 0, count_work: true };
        let report =
            run_async(AsyncProtocolA::processes(N, T).unwrap(), vec![crash], cfg(3)).unwrap();
        assert!(report.metrics.all_work_done());
        assert!(report.metrics.work_total <= theorems::protocol_a(N, T).work);
    }
}
