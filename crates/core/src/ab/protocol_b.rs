//! Protocol B (§2.3–§2.4): Protocol A's checkpointing with message-driven
//! deadlines (`DDB`) and a polling *preactive* phase, bringing the running
//! time from `Θ(nt + t²)` down to `O(n + t)`.
//!
//! Guarantees (Theorem 2.8): at most `3n` work, `10t√t` messages (of which
//! at most `t√t` are `go ahead`s), and all processes retired by round
//! `3n + 8t`.
//!
//! How takeover works: a passive process `j` that last heard from `i` at
//! round `r'` waits `DDB(j, i)` rounds. If nothing arrives it becomes
//! *preactive*: it polls each lower-numbered process of its own group that
//! it cannot prove retired with a `go ahead` message, one every `PTO`
//! rounds. A polled process that is alive becomes active immediately (its
//! first `DoWork` operation is a broadcast to its own group, which reaches
//! the poller and demotes it back to passive); if none responds, `j`
//! becomes active at round `r' + TT(j, i)` exactly as the analysis
//! requires.

use doall_bounds::deadlines_ab::{ddb, pto, AbParams};
use doall_sim::{Effects, Inbox, Pid, Protocol, Round};

use super::{exec_op, interpret, is_terminal_for, validate, AbMsg, LastOrdinary, Schedule};
use crate::error::ConfigError;

#[derive(Clone, Debug)]
enum BState {
    Passive,
    Preactive {
        /// Round at which the preactive phase began.
        entry: Round,
        /// The next group member to poll (absolute pid).
        next_target: u64,
    },
    Active {
        ops: Schedule,
    },
    Done,
}

/// One process of Protocol B.
///
/// # Examples
///
/// ```
/// use doall_core::ab::protocol_b::ProtocolB;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// let procs = ProtocolB::processes(32, 16)?;
/// let report = run(procs, NoFailures, RunConfig::new(32, 10_000))?;
/// assert!(report.metrics.all_work_done());
/// // Theorem 2.8(c): everyone retires by round 3n + 8t.
/// assert!(report.metrics.rounds <= 3u64 * 32 + 8 * 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolB {
    params: AbParams,
    j: u64,
    state: BState,
    last: LastOrdinary,
    /// Sender of the last ordinary message (`i` in the paper); process 0
    /// fictitiously, before anything arrives.
    last_sender: u64,
    /// Round at which the last ordinary message was received (`r'`); 0 for
    /// the fictitious initial message.
    last_round: Round,
    /// Set on a stale crash-recovery when this process already knows all
    /// work is done: its terminal message may have been lost during the
    /// downtime and no one will ever send again, so retire at the next
    /// step instead of waiting forever.
    retire_next_step: bool,
}

impl ProtocolB {
    /// Creates process `j` of an `(n, t)` system.
    pub fn new(params: AbParams, j: u64) -> Self {
        debug_assert!(j < params.t);
        ProtocolB {
            params,
            j,
            state: BState::Passive,
            last: LastOrdinary::Fictitious,
            last_sender: 0,
            last_round: Round::ZERO,
            retire_next_step: false,
        }
    }

    /// Creates the full vector of `t` processes for `n` units of work.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `t` is a positive perfect square,
    /// `t | n`, and `n >= t`.
    pub fn processes(n: u64, t: u64) -> Result<Vec<ProtocolB>, ConfigError> {
        let params = validate(n, t)?;
        Ok((0..t).map(|j| ProtocolB::new(params, j)).collect())
    }

    /// The round at which this process will go preactive if it hears
    /// nothing more: `r' + DDB(j, i)`.
    pub fn preactive_deadline(&self) -> Round {
        self.last_round + ddb(self.params, self.j, self.last_sender)
    }

    fn knows_all_work_done(&self) -> bool {
        self.last.completed_subchunk() >= self.params.t
    }

    fn activate(&mut self, eff: &mut Effects<AbMsg>) {
        eff.note("activate");
        let mut ops = Schedule::new(self.params, self.j, self.last);
        if let Some(op) = ops.pop_front() {
            exec_op(op, self.params, self.j, eff);
        }
        if ops.is_empty() {
            eff.terminate();
            self.state = BState::Done;
        } else {
            self.state = BState::Active { ops };
        }
    }

    /// First pid to poll with `go ahead`s: the start of our group if the
    /// last sender was an outsider (we know nothing about our own group),
    /// or the process right after the sender if it was one of ours
    /// (everything up to the sender has provably retired — Lemma 2.7).
    fn first_poll_target(&self) -> u64 {
        let gj = self.params.group_of(self.j);
        if self.params.group_of(self.last_sender) != gj {
            (gj - 1) * self.params.sqrt_t()
        } else {
            self.last_sender + 1
        }
    }

    /// Digests the inbox. Returns `(terminal, got_ordinary, got_go_ahead)`.
    fn ingest(&mut self, round: Round, inbox: Inbox<'_, AbMsg>) -> (bool, bool, bool) {
        let mut terminal = false;
        let mut got_ordinary = false;
        let mut got_go_ahead = false;
        for (from, msg) in inbox.iter() {
            match *msg {
                AbMsg::GoAhead => got_go_ahead = true,
                msg => {
                    if is_terminal_for(self.params, self.j, msg) {
                        terminal = true;
                    }
                    if !got_ordinary {
                        if let Some(last) = interpret(self.params, self.j, from.index() as u64, msg)
                        {
                            self.last = last;
                            self.last_sender = from.index() as u64;
                            self.last_round = round;
                            got_ordinary = true;
                        }
                    }
                }
            }
        }
        (terminal, got_ordinary, got_go_ahead)
    }
}

impl Protocol for ProtocolB {
    type Msg = AbMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, AbMsg>, eff: &mut Effects<AbMsg>) {
        if self.retire_next_step {
            // Post-recovery retirement: all work was provably done before
            // the crash; the terminal message may be unrepeatable (and when
            // the crash preempted our own terminate, unrepeated by us).
            self.retire_next_step = false;
            eff.terminate();
            self.state = BState::Done;
            return;
        }
        if matches!(self.state, BState::Done) {
            return;
        }
        if let BState::Active { ops } = &mut self.state {
            // Active processes ignore incoming traffic (stray go_aheads
            // from pollers that had not yet heard our broadcasts).
            if let Some(op) = ops.pop_front() {
                exec_op(op, self.params, self.j, eff);
            }
            if ops.is_empty() {
                eff.terminate();
                self.state = BState::Done;
            }
            return;
        }

        // Passive / preactive: digest the inbox first — a message arriving
        // exactly at a deadline round cancels the takeover.
        let (terminal, got_ordinary, got_go_ahead) = self.ingest(round, inbox);
        if terminal {
            eff.terminate();
            self.state = BState::Done;
            return;
        }
        if got_ordinary {
            // "If it does get a message, then j becomes passive again."
            self.state = BState::Passive;
        }
        if got_go_ahead && !self.knows_all_work_done() {
            // Figure 2, main protocol lines 1–2.
            self.activate(eff);
            return;
        }

        // Process 0 is active from the start (it "becomes active in round
        // 0", before the execution begins).
        if self.j == 0 {
            if matches!(self.state, BState::Passive) {
                self.activate(eff);
            }
            return;
        }

        match self.state {
            BState::Passive => {
                if !self.knows_all_work_done() && round >= self.preactive_deadline() {
                    // Enter the preactive phase; its first poll (or
                    // immediate activation) happens this very round.
                    let next_target = self.first_poll_target();
                    self.state = BState::Preactive { entry: round, next_target };
                    self.preactive_tick(round, eff);
                }
            }
            BState::Preactive { .. } => {
                if !got_ordinary {
                    self.preactive_tick(round, eff);
                }
            }
            BState::Active { .. } | BState::Done => unreachable!("handled above"),
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.retire_next_step {
            return Some(now);
        }
        match self.state {
            BState::Done => None,
            BState::Active { .. } => Some(now),
            BState::Passive => {
                if self.j == 0 {
                    Some(now)
                } else if self.knows_all_work_done() {
                    // Only waiting for the final (t)/(t, g_j); purely reactive.
                    None
                } else {
                    Some(self.preactive_deadline().max(now))
                }
            }
            BState::Preactive { entry, .. } => {
                let p = pto(self.params);
                let elapsed = now.saturating_sub(entry);
                let p = u128::from(p);
                Some(entry + elapsed.div_ceil(p) * p)
            }
        }
    }

    fn on_recover(&mut self, _round: Round, wipe: bool) {
        if wipe {
            // Full reset to the initial configuration: the fictitious
            // message from process 0 at round 0 re-arms DDB, which has
            // usually long passed — the next step goes preactive and the
            // go-ahead polling re-integrates the process safely.
            self.state = BState::Passive;
            self.last = LastOrdinary::Fictitious;
            self.last_sender = 0;
            self.last_round = Round::ZERO;
            self.retire_next_step = false;
        } else if matches!(self.state, BState::Done) {
            // The crash preempted the step that reached `Done`: the engine
            // recorded the crash instead of our terminate, so retire again.
            self.retire_next_step = true;
        } else if self.knows_all_work_done() {
            // Stale state already proves all n units performed; the only
            // thing the downtime can have cost us is the terminal message,
            // which nobody will resend. Retire instead of waiting for it.
            self.retire_next_step = true;
        }
        // Other stale states need no adjustment: a passed deadline sends
        // the process into its preactive polling phase, whose go-aheads
        // either wake a live lower process or license a safe takeover.
    }
}

impl ProtocolB {
    /// One round of the preactive phase (Figure 2, `PreactivePhase`): every
    /// `PTO` rounds, poll the next candidate or — once all lower group
    /// members have been polled without response — become active.
    fn preactive_tick(&mut self, round: Round, eff: &mut Effects<AbMsg>) {
        let BState::Preactive { entry, next_target } = self.state else {
            unreachable!("preactive_tick outside preactive state");
        };
        if !(round - entry).is_multiple_of(u128::from(pto(self.params))) {
            return; // between polls, waiting for a response
        }
        if next_target < self.j {
            eff.send(Pid::new(next_target as usize), AbMsg::GoAhead);
            self.state = BState::Preactive { entry, next_target: next_target + 1 };
        } else {
            self.activate(eff);
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::invariants::{
        check_activation_order, check_sequential_work, check_single_active,
    };
    use doall_sim::{
        run, CrashSchedule, CrashSpec, Deliver, NoFailures, Pid, RandomCrashes, RunConfig, Trigger,
        TriggerAdversary, TriggerRule,
    };

    use super::*;

    const N: u64 = 32;
    const T: u64 = 16;

    fn cfg() -> RunConfig {
        RunConfig::new(N as usize, 100_000).with_trace()
    }

    fn bounds_hold(report: &doall_sim::Report, n: u64, t: u64) {
        let b = theorems::protocol_b(n, t);
        assert!(
            report.metrics.work_total <= b.work,
            "work {} exceeds Theorem 2.8 bound {}",
            report.metrics.work_total,
            b.work
        );
        assert!(
            report.metrics.messages <= b.messages,
            "messages {} exceed Theorem 2.8 bound {}",
            report.metrics.messages,
            b.messages
        );
        assert!(
            report.metrics.rounds <= b.rounds,
            "rounds {} exceed Theorem 2.8 bound {} (3n + 8t)",
            report.metrics.rounds,
            b.rounds
        );
    }

    fn invariants_hold(report: &doall_sim::Report) {
        assert!(check_single_active(&report.trace).is_empty(), "two active processes");
        assert!(check_activation_order(&report.trace).is_empty(), "activation out of order");
        assert!(check_sequential_work(&report.trace).is_empty());
    }

    #[test]
    fn failure_free_run_matches_protocol_a_exactly() {
        let report = run(ProtocolB::processes(N, T).unwrap(), NoFailures, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N);
        // Nobody ever goes preactive, so zero go_aheads...
        assert_eq!(report.metrics.messages_by_class.get("go_ahead"), None);
        // ...and the run is byte-for-byte Protocol A's failure-free run.
        let a = run(crate::ab::protocol_a::ProtocolA::processes(N, T).unwrap(), NoFailures, cfg())
            .unwrap();
        assert_eq!(report.metrics.messages, a.metrics.messages);
        assert_eq!(report.metrics.rounds, a.metrics.rounds);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn silent_crash_of_p0_hands_over_within_pto() {
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::silent());
        let report = run(ProtocolB::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        let activations: Vec<_> = report.trace.notes("activate").collect();
        // p1 takes over at round PTO = n/t + 2 — vastly sooner than
        // Protocol A's DD(1) = n + 3t.
        assert_eq!(activations[1], (Round::from(N / T + 2), Pid::new(1)));
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn go_ahead_wakes_the_lowest_alive_process() {
        // p0 and p1 die instantly; p2's self-deadline fires before p3 can
        // poll it, and every activation stays single.
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::silent()).crash_at(
            Pid::new(1),
            1,
            CrashSpec::silent(),
        );
        let report = run(ProtocolB::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        let activations: Vec<_> = report.trace.notes("activate").collect();
        assert_eq!(activations.last().unwrap().1, Pid::new(2));
        // go_aheads were sent (p2 polls p1; p3 polls p1 before hearing p2).
        assert!(report.metrics.messages_by_class.get("go_ahead").copied().unwrap_or(0) >= 1);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn partial_checkpoint_subset_delivery_keeps_single_active() {
        // p0 dies during its first partial checkpoint, reaching only p3.
        // p1 restarts from scratch while p3 knows subchunk 1 is done — the
        // exact interleaving Lemma 2.7 worries about.
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: 1 },
            target: None,
            spec: CrashSpec::subset([Pid::new(3)]),
        }]);
        let report = run(ProtocolB::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N + N / T, "p1 redoes subchunk 1 only");
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn takeover_cascade_stays_within_bounds() {
        let rules: Vec<TriggerRule> = (0..T - 1)
            .map(|j| TriggerRule {
                trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: 1 },
                target: None,
                spec: CrashSpec { deliver: Deliver::None, count_work: true },
            })
            .collect();
        let report =
            run(ProtocolB::processes(N, T).unwrap(), TriggerAdversary::new(rules), cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.crashes, (T - 1) as u32);
        assert_eq!(report.metrics.work_total, N + T - 1);
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn cross_group_takeover_uses_gto_deadlines() {
        // Kill all of group 1 at once: group 2's first member must take
        // over after GTO-based waiting, polling nobody (it is first in its
        // group).
        let mut adv = CrashSchedule::new();
        for j in 0..4u64 {
            adv = adv.crash_at(Pid::new(j as usize), 1, CrashSpec::silent());
        }
        let report = run(ProtocolB::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        let activations: Vec<_> = report.trace.notes("activate").collect();
        let (takeover_round, who) = activations[1];
        assert_eq!(who, Pid::new(4));
        // DDB(4, 0) = GTO(0); p4 is first in its group so it activates
        // immediately on going preactive.
        let p = AbParams::new(N, T);
        assert_eq!(takeover_round, ddb(p, 4, 0));
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn worst_case_time_is_linear_not_quadratic() {
        // Only the last process survives. Protocol A would need
        // DD(t-1) = (t-1)(n+3t) rounds; Protocol B must finish within
        // 3n + 8t (Theorem 2.8(c)).
        let mut adv = CrashSchedule::new();
        for j in 0..T - 1 {
            adv = adv.crash_at(Pid::new(j as usize), 1, CrashSpec::silent());
        }
        let report = run(ProtocolB::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, N);
        assert!(report.metrics.rounds <= 3 * N + 8 * T);
        invariants_hold(&report);
    }

    #[test]
    fn go_ahead_to_dead_process_times_out_to_next() {
        // Group 1 processes 0,1,2 die; p3 (last of group 1) must poll 1, 2
        // (it knows nothing about them) and then activate on its own.
        let adv = CrashSchedule::new()
            .crash_at(Pid::new(0), 1, CrashSpec::silent())
            .crash_at(Pid::new(1), 1, CrashSpec::silent())
            .crash_at(Pid::new(2), 1, CrashSpec::silent());
        let report = run(ProtocolB::processes(N, T).unwrap(), adv, cfg()).unwrap();
        assert!(report.metrics.all_work_done());
        let activations: Vec<_> = report.trace.notes("activate").collect();
        assert_eq!(activations.last().unwrap().1, Pid::new(3));
        let go_aheads = report.metrics.messages_by_class.get("go_ahead").copied().unwrap_or(0);
        assert!(go_aheads >= 2, "p3 must poll p1 and p2; saw {go_aheads}");
        bounds_hold(&report, N, T);
        invariants_hold(&report);
    }

    #[test]
    fn random_crashes_never_violate_theorem_2_8() {
        for seed in 0..20 {
            let adv = RandomCrashes::new(seed, 0.01, (T - 1) as u32);
            let report = run(ProtocolB::processes(N, T).unwrap(), adv, cfg()).unwrap();
            assert!(report.has_survivor());
            assert!(report.metrics.all_work_done(), "seed {seed}: work incomplete");
            bounds_hold(&report, N, T);
            invariants_hold(&report);
        }
    }

    #[test]
    fn larger_configuration_stays_within_bounds_under_stress() {
        let (n, t) = (256, 64);
        for seed in 0..5 {
            let adv = RandomCrashes::new(seed, 0.01, (t - 1) as u32);
            let report = run(
                ProtocolB::processes(n, t).unwrap(),
                adv,
                RunConfig::new(n as usize, 1_000_000).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "seed {seed}");
            let b = theorems::protocol_b(n, t);
            assert!(report.metrics.work_total <= b.work);
            assert!(report.metrics.messages <= b.messages);
            assert!(
                report.metrics.rounds <= b.rounds,
                "seed {seed}: {} > {}",
                report.metrics.rounds,
                b.rounds
            );
            invariants_hold(&report);
        }
    }

    #[test]
    fn rejects_invalid_configurations() {
        assert!(ProtocolB::processes(12, 6).is_err());
        assert!(ProtocolB::processes(0, 16).is_err());
    }
}
