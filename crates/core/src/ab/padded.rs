//! Protocol A for arbitrary shapes — the paper's "easy modifications of
//! the protocol when these assumptions do not hold", made concrete.
//!
//! §2.1 assumes `t` is a perfect square and `t | n` with `n >= t`. For any
//! other shape we pad:
//!
//! * **virtual processes** fill `t` up to the next perfect square
//!   `t⁺ = ⌈√t⌉²`. They are "crashed from round 0"; Protocol A natively
//!   tolerates silent processes, and since they hold the *highest* ids
//!   no real process ever waits on them. Broadcasts addressed to them are
//!   dropped unsent.
//! * **phantom units** fill `n` up to `max(t⁺, ⌈n/t⁺⌉·t⁺)`. Performing a
//!   phantom consumes the round (keeping every deadline computation of the
//!   original protocol intact) but emits no work.
//!
//! The Theorem 2.3 guarantees carry over with `n` and `t` replaced by
//! their padded values — a constant-factor slack (`t⁺ < (√t + 1)² <
//! t + 2√t + 1` and `n⁺ < n + t⁺`).

use doall_bounds::deadlines_ab::{dd, AbParams};
use doall_sim::{Effects, Inbox, Protocol, Round, Unit};

use super::{interpret, is_terminal_for, AbMsg, LastOrdinary, Op, Schedule};
use crate::error::ConfigError;

#[derive(Clone, Debug)]
enum PState {
    Passive,
    Active { ops: Schedule },
    Done,
}

/// Protocol A generalized to any `n >= 1`, `t >= 1` via padding.
///
/// # Examples
///
/// ```
/// use doall_core::ab::padded::PaddedA;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// // 10 units on 6 processes: neither square nor divisible — fine here.
/// let procs = PaddedA::processes(10, 6)?;
/// let report = run(procs, NoFailures, RunConfig::new(10, 100_000))?;
/// assert!(report.metrics.all_work_done());
/// assert_eq!(report.metrics.work_total, 10); // phantoms are not counted
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PaddedA {
    params: AbParams,
    /// Real process count (`<= params.t`).
    t_real: u64,
    /// Real unit count (`<= params.n`).
    n_real: u64,
    j: u64,
    state: PState,
    last: LastOrdinary,
}

impl PaddedA {
    /// The padded parameters actually driving the schedule.
    pub fn padded_params(&self) -> AbParams {
        self.params
    }

    /// Creates the `t` real processes for `n` real units.
    ///
    /// # Errors
    ///
    /// Rejects empty systems and workloads; any positive shape is allowed.
    pub fn processes(n: u64, t: u64) -> Result<Vec<PaddedA>, ConfigError> {
        if t == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n == 0 {
            return Err(ConfigError::NoWork);
        }
        let params = padded_params(n, t);
        Ok((0..t)
            .map(|j| PaddedA {
                params,
                t_real: t,
                n_real: n,
                j,
                state: PState::Passive,
                last: LastOrdinary::Fictitious,
            })
            .collect())
    }

    /// Multicasts to the real prefix of a padded pid range: virtual
    /// processes hold the highest ids, so clipping the span at `t_real`
    /// drops exactly the messages that must never be sent — still one
    /// O(1) span op.
    fn multicast_real(&self, targets: std::ops::Range<u64>, msg: AbMsg, eff: &mut Effects<AbMsg>) {
        let hi = targets.end.min(self.t_real);
        if targets.start < hi {
            eff.multicast(targets.start as usize..hi as usize, msg);
        }
    }

    fn exec(&mut self, op: Op, eff: &mut Effects<AbMsg>) {
        let p = self.params;
        match op {
            Op::Work { u } => {
                if u <= self.n_real {
                    eff.perform(Unit::new(u as usize));
                }
            }
            Op::PartialCp { c } => {
                let end = p.group_of(self.j) * p.sqrt_t();
                self.multicast_real(self.j + 1..end, AbMsg::Partial { c }, eff);
            }
            Op::FullCpGroup { c, g } => {
                self.multicast_real(p.group_members(g), AbMsg::Full { c, g }, eff);
            }
            Op::FullCpOwn { c, g } => {
                let end = p.group_of(self.j) * p.sqrt_t();
                self.multicast_real(self.j + 1..end, AbMsg::Full { c, g }, eff);
            }
        }
    }

    fn activate(&mut self, eff: &mut Effects<AbMsg>) {
        eff.note("activate");
        let mut ops = Schedule::new(self.params, self.j, self.last);
        if let Some(op) = ops.pop_front() {
            self.exec(op, eff);
        }
        if matches!(&self.state, PState::Active { .. }) {
            // activate() is only entered from Passive; defensive guard.
        }
        if ops.is_empty() {
            eff.terminate();
            self.state = PState::Done;
        } else {
            self.state = PState::Active { ops };
        }
    }
}

/// The padded `(n⁺, t⁺)` for a real `(n, t)`.
pub fn padded_params(n: u64, t: u64) -> AbParams {
    let mut s = 1u64;
    while s * s < t {
        s += 1;
    }
    let t_pad = s * s;
    let n_pad = n.div_ceil(t_pad).max(1) * t_pad;
    AbParams::new(n_pad, t_pad)
}

impl Protocol for PaddedA {
    type Msg = AbMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, AbMsg>, eff: &mut Effects<AbMsg>) {
        match &mut self.state {
            PState::Done => {}
            PState::Active { ops } => {
                let op = ops.pop_front();
                let empty = ops.is_empty();
                if let Some(op) = op {
                    self.exec(op, eff);
                }
                if empty {
                    eff.terminate();
                    self.state = PState::Done;
                }
            }
            PState::Passive => {
                let mut terminal = false;
                let mut updated = false;
                for (from, msg) in inbox.iter() {
                    if is_terminal_for(self.params, self.j, *msg) {
                        terminal = true;
                    }
                    if !updated {
                        if let Some(last) =
                            interpret(self.params, self.j, from.index() as u64, *msg)
                        {
                            self.last = last;
                            updated = true;
                        }
                    }
                }
                if terminal {
                    eff.terminate();
                    self.state = PState::Done;
                    return;
                }
                if round >= Round::from(dd(self.params, self.j).max(1)) {
                    self.activate(eff);
                }
            }
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        match self.state {
            PState::Done => None,
            PState::Active { .. } => Some(now),
            PState::Passive => Some(Round::from(dd(self.params, self.j).max(1)).max(now)),
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::invariants::{check_activation_order, check_single_active};
    use doall_sim::{run, CrashSchedule, CrashSpec, NoFailures, RunConfig};
    use doall_workload_free::*;

    // No dependency on doall-workload from core: tiny local helper.
    mod doall_workload_free {
        pub use doall_sim::Pid;
    }

    use super::*;

    fn cfg(n: u64) -> RunConfig {
        RunConfig::new(n as usize, 10_000_000).with_trace()
    }

    #[test]
    fn padding_shapes_are_minimal_squares() {
        assert_eq!(padded_params(10, 6).t, 9);
        assert_eq!(padded_params(10, 6).n, 18);
        assert_eq!(padded_params(5, 3).t, 4);
        assert_eq!(padded_params(5, 3).n, 8);
        // Already-valid shapes pass through unchanged.
        assert_eq!(padded_params(32, 16).t, 16);
        assert_eq!(padded_params(32, 16).n, 32);
        assert_eq!(padded_params(1, 1).t, 1);
        assert_eq!(padded_params(1, 1).n, 1);
    }

    #[test]
    fn awkward_shapes_complete_failure_free() {
        for (n, t) in [(1, 1), (1, 2), (3, 2), (7, 3), (10, 6), (11, 7), (13, 5), (100, 11)] {
            let report = run(PaddedA::processes(n, t).unwrap(), NoFailures, cfg(n)).unwrap();
            assert!(report.metrics.all_work_done(), "shape ({n},{t})");
            assert_eq!(report.metrics.work_total, n, "shape ({n},{t}): phantoms not counted");
        }
    }

    #[test]
    fn awkward_shapes_survive_crash_cascades() {
        for (n, t) in [(7, 3), (10, 6), (13, 5), (23, 7)] {
            let mut adv = CrashSchedule::new();
            for j in 0..t - 1 {
                adv = adv.crash_at(Pid::new(j as usize), 1 + j * 3, CrashSpec::silent());
            }
            let report = run(PaddedA::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
            assert!(report.metrics.all_work_done(), "shape ({n},{t})");
            assert!(check_single_active(&report.trace).is_empty(), "shape ({n},{t})");
            assert!(check_activation_order(&report.trace).is_empty(), "shape ({n},{t})");
        }
    }

    #[test]
    fn padded_bounds_hold_in_padded_terms() {
        // Theorem 2.3 in padded parameters covers the real run.
        let (n, t) = (10u64, 6u64);
        let p = padded_params(n, t);
        let mut adv = CrashSchedule::new();
        for j in 0..t - 1 {
            adv = adv.crash_at(Pid::new(j as usize), 2 + j, CrashSpec::silent());
        }
        let report = run(PaddedA::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        let b = theorems::protocol_a(p.n, p.t);
        assert!(report.metrics.work_total <= b.work);
        assert!(report.metrics.messages <= b.messages);
        assert!(report.metrics.rounds <= b.rounds);
    }

    #[test]
    fn no_message_ever_targets_a_virtual_process() {
        let (n, t) = (10u64, 6u64); // padded to t=9: ranks 6..8 are virtual
        let report = run(
            PaddedA::processes(n, t).unwrap(),
            CrashSchedule::new().crash_at(Pid::new(0), 4, CrashSpec::prefix(1)),
            cfg(n),
        )
        .unwrap();
        for event in report.trace.events() {
            if let doall_sim::Event::Send { to, .. } = event {
                assert!(to.index() < t as usize, "message to virtual process {to}");
            }
        }
        assert!(report.metrics.all_work_done());
    }
}
