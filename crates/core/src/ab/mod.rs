//! Machinery shared by Protocols A and B (§2 of the paper).
//!
//! Both protocols keep **at most one active process** at a time. The active
//! process works through the `t` *subchunks* (of `n/t` units each), doing a
//! *partial checkpoint* — a broadcast of `(c)` to the higher-numbered
//! members of its own group — after each subchunk `c`, and a *full
//! checkpoint* after each *chunk* (every `√t`-th subchunk): for each group
//! `g` above its own it broadcasts `(c, g)` to group `g` and then
//! checkpoints that fact, with the same message, to its own group.
//!
//! The two protocols differ only in *when a passive process takes over*:
//! Protocol A uses the crude global deadline `DD(j) = j(n + 3t)`; Protocol
//! B uses the per-edge deadline `DDB(j, i)` plus a polling `go ahead` phase
//! (see [`protocol_b`]).
//!
//! This module holds the piece they share: the message type, the
//! sequential `DoWork` procedure of Figure 1 compiled into a queue of
//! one-round operations, and the takeover-restart logic that interprets
//! the last ordinary message received.

pub mod asynch;
pub mod asynch_b;
pub mod padded;
pub mod protocol_a;
pub mod protocol_b;

use std::collections::VecDeque;
use std::fmt;

use doall_bounds::AbParams;
use doall_sim::{Classify, Effects, Unit};

use crate::error::ConfigError;

/// Messages exchanged by Protocols A and B.
///
/// `Partial(c)` is the paper's `(c)`; `Full { c, g }` is `(c, g)`;
/// `GoAhead` exists only in Protocol B.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbMsg {
    /// `(c)` — subchunk `c` has been performed (partial checkpoint to the
    /// sender's own group).
    Partial {
        /// The completed subchunk, `1..=t`.
        c: u64,
    },
    /// `(c, g)` — subchunk `c` has been performed and group `g` is being
    /// (or has been) informed of it.
    Full {
        /// The completed subchunk (always a multiple of `√t`).
        c: u64,
        /// The group being informed.
        g: u64,
    },
    /// Protocol B's poll: "you are the lowest process I cannot prove
    /// retired — take over if you are alive".
    GoAhead,
}

impl AbMsg {
    /// Whether this is an *ordinary* message in the paper's sense
    /// (everything except `go ahead`).
    pub fn is_ordinary(&self) -> bool {
        !matches!(self, AbMsg::GoAhead)
    }

    /// The subchunk the message reports, if ordinary.
    pub fn subchunk(&self) -> Option<u64> {
        match self {
            AbMsg::Partial { c } | AbMsg::Full { c, .. } => Some(*c),
            AbMsg::GoAhead => None,
        }
    }
}

impl Classify for AbMsg {
    fn class(&self) -> &'static str {
        match self {
            AbMsg::Partial { .. } | AbMsg::Full { .. } => "ordinary",
            AbMsg::GoAhead => "go_ahead",
        }
    }
}

impl fmt::Display for AbMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbMsg::Partial { c } => write!(f, "({c})"),
            AbMsg::Full { c, g } => write!(f, "({c},{g})"),
            AbMsg::GoAhead => write!(f, "go_ahead"),
        }
    }
}

/// Validates the shared Protocol A/B parameters and returns the parameter
/// pack from `doall-bounds`.
///
/// # Errors
///
/// See [`ConfigError`]: `t` must be a positive perfect square, `n` a
/// multiple of `t`, and `n >= t`.
pub fn validate(n: u64, t: u64) -> Result<AbParams, ConfigError> {
    if t == 0 {
        return Err(ConfigError::NoProcesses);
    }
    if n == 0 {
        return Err(ConfigError::NoWork);
    }
    if !doall_bounds::is_perfect_square(t) {
        return Err(ConfigError::NotPerfectSquare { t });
    }
    if !n.is_multiple_of(t) {
        return Err(ConfigError::NotDivisible { n, t });
    }
    if n < t {
        return Err(ConfigError::WorkTooSmall { n, t });
    }
    Ok(AbParams::new(n, t))
}

/// The last ordinary message a process holds, which determines where it
/// restarts when it becomes active (the `DoWork` dispatch of Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LastOrdinary {
    /// Nothing real received: the paper's fictitious `(0, g_j)` message
    /// from process 0 at round 0. Restart from scratch, *without*
    /// checkpointing the empty subchunk 0 (Lemma 2.1's `n + 3t` lifetime
    /// bound, which the deadlines depend on, leaves no room for it).
    Fictitious,
    /// Last received `(c)` — a partial checkpoint within our group.
    Partial {
        /// Reported subchunk.
        c: u64,
    },
    /// Last received `(c, g)` from process `k`: a full-checkpoint message;
    /// its meaning depends on whether `k` was in our group.
    Full {
        /// Reported subchunk.
        c: u64,
        /// Group stamped in the message.
        g: u64,
        /// Whether the sender was in our own group (then `g` is a group
        /// *above* ours that the sender had just informed); otherwise
        /// `g == g_j` and we were the ones being informed.
        sender_in_own_group: bool,
    },
}

impl LastOrdinary {
    /// The subchunk this knowledge says is complete (0 for none).
    pub fn completed_subchunk(&self) -> u64 {
        match self {
            LastOrdinary::Fictitious => 0,
            LastOrdinary::Partial { c } => *c,
            LastOrdinary::Full { c, .. } => *c,
        }
    }
}

/// One one-round operation of an active process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Perform work unit `u`.
    Work {
        /// One-based unit id.
        u: u64,
    },
    /// Partial checkpoint: broadcast `(c)` to the higher-numbered members
    /// of our own group.
    PartialCp {
        /// The just-completed subchunk.
        c: u64,
    },
    /// Full-checkpoint step 1: broadcast `(c, g)` to all of group `g`.
    FullCpGroup {
        /// The completed subchunk (a multiple of `√t`).
        c: u64,
        /// The group being informed.
        g: u64,
    },
    /// Full-checkpoint step 2: broadcast `(c, g)` to the higher-numbered
    /// members of our own group ("the checkpointing of a checkpoint").
    FullCpOwn {
        /// The completed subchunk.
        c: u64,
        /// The group that was just informed.
        g: u64,
    },
}

/// Compiles Figure 1's `DoWork` for process `j`, given its last ordinary
/// message, into the exact sequence of one-round operations it will
/// execute while active.
pub fn compile_dowork(p: AbParams, j: u64, last: LastOrdinary) -> VecDeque<Op> {
    let sqrt_t = p.sqrt_t();
    let gj = p.group_of(j);
    let mut ops = VecDeque::new();

    // Resume the checkpointing that the previous active process may have
    // been in the middle of.
    let c = last.completed_subchunk();
    match last {
        LastOrdinary::Fictitious => {
            // Nothing has provably happened; start working immediately.
        }
        LastOrdinary::Partial { c } => {
            ops.push_back(Op::PartialCp { c });
            if c % sqrt_t == 0 && c > 0 {
                push_full_checkpoint(&mut ops, p, c, gj + 1);
            }
        }
        LastOrdinary::Full { c, g, sender_in_own_group } => {
            if sender_in_own_group {
                // k ∈ g_j, so g > g_j: k had informed group g and was telling
                // us; make sure the rest of our group knows, then continue
                // the full checkpoint with group g + 1.
                ops.push_back(Op::FullCpOwn { c, g });
                push_full_checkpoint(&mut ops, p, c, g + 1);
            } else {
                // k ∉ g_j, so g == g_j: we were being informed that subchunk
                // c is complete. Tell the rest of our group, then continue
                // the full checkpoint from the next group up.
                ops.push_back(Op::PartialCp { c });
                push_full_checkpoint(&mut ops, p, c, g + 1);
            }
        }
    }

    // Figure 1 lines 10–14: perform the remaining subchunks.
    for s in c + 1..=p.t {
        for u in p.subchunk_units(s) {
            ops.push_back(Op::Work { u });
        }
        ops.push_back(Op::PartialCp { c: s });
        if s % sqrt_t == 0 {
            push_full_checkpoint(&mut ops, p, s, gj + 1);
        }
    }

    ops
}

fn push_full_checkpoint(ops: &mut VecDeque<Op>, p: AbParams, c: u64, from_group: u64) {
    for g in from_group..=p.sqrt_t() {
        ops.push_back(Op::FullCpGroup { c, g });
        ops.push_back(Op::FullCpOwn { c, g });
    }
}

/// A lazily-expanded `DoWork` schedule: pops the exact op sequence of
/// [`compile_dowork`] while materialising only the restart prologue plus
/// one subchunk at a time — `O(n/t + √t)` resident ops instead of
/// `O(n + t√t)`, which is what lets a lone survivor chew through
/// `n = 10^8` units without holding a gigabyte of op queue.
#[derive(Clone, Debug)]
pub struct Schedule {
    p: AbParams,
    /// The owner's group (fixed; checkpoint targets depend on it).
    gj: u64,
    /// The restart prologue, then at most one expanded subchunk.
    buf: VecDeque<Op>,
    /// Next subchunk to expand into `buf`; `> p.t` once exhausted.
    next_s: u64,
}

impl Schedule {
    /// Builds process `j`'s schedule given its last ordinary message —
    /// the lazy equivalent of [`compile_dowork`]`(p, j, last)`.
    pub fn new(p: AbParams, j: u64, last: LastOrdinary) -> Self {
        let sqrt_t = p.sqrt_t();
        let gj = p.group_of(j);
        let mut buf = VecDeque::new();

        // Resume the checkpointing that the previous active process may
        // have been in the middle of (same dispatch as `compile_dowork`).
        let c = last.completed_subchunk();
        match last {
            LastOrdinary::Fictitious => {}
            LastOrdinary::Partial { c } => {
                buf.push_back(Op::PartialCp { c });
                if c % sqrt_t == 0 && c > 0 {
                    push_full_checkpoint(&mut buf, p, c, gj + 1);
                }
            }
            LastOrdinary::Full { c, g, sender_in_own_group } => {
                if sender_in_own_group {
                    buf.push_back(Op::FullCpOwn { c, g });
                    push_full_checkpoint(&mut buf, p, c, g + 1);
                } else {
                    buf.push_back(Op::PartialCp { c });
                    push_full_checkpoint(&mut buf, p, c, g + 1);
                }
            }
        }
        Schedule { p, gj, buf, next_s: c + 1 }
    }

    /// Expands the next subchunk (Figure 1 lines 10–14) into the buffer.
    fn refill(&mut self) {
        let s = self.next_s;
        if s > self.p.t {
            return;
        }
        self.next_s += 1;
        for u in self.p.subchunk_units(s) {
            self.buf.push_back(Op::Work { u });
        }
        self.buf.push_back(Op::PartialCp { c: s });
        if s.is_multiple_of(self.p.sqrt_t()) {
            push_full_checkpoint(&mut self.buf, self.p, s, self.gj + 1);
        }
    }

    /// The next one-round operation, or `None` once the schedule is done.
    pub fn pop_front(&mut self) -> Option<Op> {
        if self.buf.is_empty() {
            self.refill();
        }
        self.buf.pop_front()
    }

    /// Whether every operation has been popped.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.next_s > self.p.t
    }
}

/// Executes one compiled operation, emitting its work or broadcast. Every
/// broadcast here targets a contiguous pid range, so each is recorded as a
/// single O(1) span multicast — the payload is stored once regardless of
/// the group width.
pub fn exec_op(op: Op, p: AbParams, j: u64, eff: &mut Effects<AbMsg>) {
    match op {
        Op::Work { u } => eff.perform(Unit::new(u as usize)),
        Op::PartialCp { c } => {
            eff.multicast(higher_own_group(p, j), AbMsg::Partial { c });
        }
        Op::FullCpGroup { c, g } => {
            eff.multicast(group_span(p, g), AbMsg::Full { c, g });
        }
        Op::FullCpOwn { c, g } => {
            eff.multicast(higher_own_group(p, j), AbMsg::Full { c, g });
        }
    }
}

/// The recipients of an own-group broadcast: processes `j+1 ..= g_j·√t − 1`
/// (all lower-numbered members are known to have retired), as a contiguous
/// pid range.
pub fn higher_own_group(p: AbParams, j: u64) -> std::ops::Range<usize> {
    let end = p.group_of(j) * p.sqrt_t();
    j as usize + 1..end as usize
}

/// The pids of group `g` as a contiguous range.
pub fn group_span(p: AbParams, g: u64) -> std::ops::Range<usize> {
    let members = p.group_members(g);
    members.start as usize..members.end as usize
}

/// Whether an incoming ordinary message tells `j` to terminate: `(t)` from
/// a partial checkpoint, or `(t, g_j)` from a full checkpoint.
pub fn is_terminal_for(p: AbParams, j: u64, msg: AbMsg) -> bool {
    match msg {
        AbMsg::Partial { c } => c == p.t,
        AbMsg::Full { c, g } => c == p.t && g == p.group_of(j),
        AbMsg::GoAhead => false,
    }
}

/// Interprets a received ordinary message as [`LastOrdinary`] knowledge
/// for process `j` (given the sender `k`).
pub fn interpret(p: AbParams, j: u64, k: u64, msg: AbMsg) -> Option<LastOrdinary> {
    match msg {
        AbMsg::Partial { c } => Some(LastOrdinary::Partial { c }),
        AbMsg::Full { c, g } => {
            Some(LastOrdinary::Full { c, g, sender_in_own_group: p.group_of(k) == p.group_of(j) })
        }
        AbMsg::GoAhead => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> AbParams {
        // t = 16 (√t = 4 groups of 4), n = 32 (subchunks of 2 units).
        AbParams::new(32, 16)
    }

    #[test]
    fn message_classes_match_the_paper() {
        assert_eq!(AbMsg::Partial { c: 3 }.class(), "ordinary");
        assert_eq!(AbMsg::Full { c: 4, g: 2 }.class(), "ordinary");
        assert_eq!(AbMsg::GoAhead.class(), "go_ahead");
        assert!(AbMsg::Partial { c: 3 }.is_ordinary());
        assert!(!AbMsg::GoAhead.is_ordinary());
    }

    #[test]
    fn fresh_schedule_does_all_work_in_order() {
        let ops = compile_dowork(p(), 0, LastOrdinary::Fictitious);
        // First op is work on unit 1 — no zero-checkpoints.
        assert_eq!(ops[0], Op::Work { u: 1 });
        let units: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Work { u } => Some(*u),
                _ => None,
            })
            .collect();
        assert_eq!(units, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn fresh_schedule_length_matches_lemma_2_1() {
        // Lemma 2.1: n work + t partial-checkpoint rounds + at most 2t
        // full-checkpoint rounds => fewer than n + 3t rounds.
        let p = p();
        let ops = compile_dowork(p, 0, LastOrdinary::Fictitious);
        assert!(ops.len() as u64 <= p.n + 3 * p.t);
        let partials = ops.iter().filter(|o| matches!(o, Op::PartialCp { .. })).count() as u64;
        assert_eq!(partials, p.t);
        let fulls = ops
            .iter()
            .filter(|o| matches!(o, Op::FullCpGroup { .. } | Op::FullCpOwn { .. }))
            .count() as u64;
        // √t full checkpoints; the one by group 1 has √t−1 target groups,
        // each costing 2 rounds.
        assert_eq!(fulls, 2 * (p.sqrt_t() - 1) * p.sqrt_t());
    }

    #[test]
    fn partial_restart_resumes_after_reported_subchunk() {
        // Last heard (5): redo partial checkpoint of 5, then work from
        // subchunk 6 (units 11, 12 with n/t = 2).
        let ops = compile_dowork(p(), 1, LastOrdinary::Partial { c: 5 });
        assert_eq!(ops[0], Op::PartialCp { c: 5 });
        assert_eq!(ops[1], Op::Work { u: 11 });
        assert_eq!(ops[2], Op::Work { u: 12 });
        assert_eq!(ops[3], Op::PartialCp { c: 6 });
    }

    #[test]
    fn partial_restart_on_chunk_boundary_refires_full_checkpoint() {
        // c = 4 is a multiple of √t = 4: the previous active process may
        // have died before full-checkpointing chunk 1.
        let ops = compile_dowork(p(), 1, LastOrdinary::Partial { c: 4 });
        assert_eq!(ops[0], Op::PartialCp { c: 4 });
        assert_eq!(ops[1], Op::FullCpGroup { c: 4, g: 2 });
        assert_eq!(ops[2], Op::FullCpOwn { c: 4, g: 2 });
        assert_eq!(ops[3], Op::FullCpGroup { c: 4, g: 3 });
    }

    #[test]
    fn full_restart_from_outside_sender_informs_own_group_first() {
        // j = 9 lives in group 3; it last heard (8, 3) from process 2
        // (group 1). It must partial-checkpoint 8 to its own group and
        // continue the full checkpoint with group 4.
        let p = p();
        let last = interpret(p, 9, 2, AbMsg::Full { c: 8, g: 3 }).unwrap();
        assert_eq!(last, LastOrdinary::Full { c: 8, g: 3, sender_in_own_group: false });
        let ops = compile_dowork(p, 9, last);
        assert_eq!(ops[0], Op::PartialCp { c: 8 });
        assert_eq!(ops[1], Op::FullCpGroup { c: 8, g: 4 });
        assert_eq!(ops[2], Op::FullCpOwn { c: 8, g: 4 });
        // Then work resumes at subchunk 9 (unit 17).
        assert_eq!(ops[3], Op::Work { u: 17 });
    }

    #[test]
    fn full_restart_from_own_group_continues_checkpoint_chain() {
        // j = 9 (group 3) heard (8, 4) from 8 (group 3): 8 had informed
        // group 4 and was checkpointing that to its own group.
        let p = p();
        let last = interpret(p, 9, 8, AbMsg::Full { c: 8, g: 4 }).unwrap();
        assert_eq!(last, LastOrdinary::Full { c: 8, g: 4, sender_in_own_group: true });
        let ops = compile_dowork(p, 9, last);
        assert_eq!(ops[0], Op::FullCpOwn { c: 8, g: 4 });
        // g + 1 = 5 > √t: full checkpoint finished; straight to work.
        assert_eq!(ops[1], Op::Work { u: 17 });
    }

    #[test]
    fn restart_with_all_work_done_only_finishes_checkpoints() {
        // c = t = 16, message (16, 3) from an own-group sender: complete
        // the checkpoint of groups 4.. and then terminate (no work ops).
        let p = p();
        let last = LastOrdinary::Full { c: 16, g: 3, sender_in_own_group: true };
        let ops = compile_dowork(p, 5, last);
        assert!(ops.iter().all(|o| !matches!(o, Op::Work { .. })));
        assert_eq!(ops[0], Op::FullCpOwn { c: 16, g: 3 });
        assert_eq!(ops[1], Op::FullCpGroup { c: 16, g: 4 });
    }

    #[test]
    fn exec_partial_cp_broadcasts_to_higher_own_group_as_one_span() {
        let mut eff = Effects::new();
        exec_op(Op::PartialCp { c: 2 }, p(), 5, &mut eff);
        // Group 2 is processes 4..=7; j = 5 informs 6, 7 — one op, the
        // payload stored once.
        assert_eq!(eff.sends().len(), 1);
        let to: Vec<usize> = eff.sends()[0].to.iter().map(doall_sim::Pid::index).collect();
        assert_eq!(to, vec![6, 7]);
        assert_eq!(eff.sends()[0].payload, AbMsg::Partial { c: 2 });
        assert_eq!(eff.send_count(), 2, "message counts stay per-recipient");
    }

    #[test]
    fn exec_full_cp_group_broadcasts_to_whole_target_group_as_one_span() {
        let mut eff = Effects::new();
        exec_op(Op::FullCpGroup { c: 4, g: 3 }, p(), 0, &mut eff);
        assert_eq!(eff.sends().len(), 1);
        let to: Vec<usize> = eff.sends()[0].to.iter().map(doall_sim::Pid::index).collect();
        assert_eq!(to, vec![8, 9, 10, 11]);
        assert_eq!(eff.send_count(), 4);
    }

    #[test]
    fn exec_work_performs_the_unit() {
        let mut eff = Effects::new();
        exec_op(Op::Work { u: 7 }, p(), 0, &mut eff);
        assert_eq!(eff.work(), Some(Unit::new(7)));
        assert!(eff.sends().is_empty());
    }

    #[test]
    fn terminal_messages_follow_the_paper() {
        let p = p();
        assert!(is_terminal_for(p, 5, AbMsg::Partial { c: 16 }));
        assert!(!is_terminal_for(p, 5, AbMsg::Partial { c: 15 }));
        // j = 5 is in group 2.
        assert!(is_terminal_for(p, 5, AbMsg::Full { c: 16, g: 2 }));
        assert!(!is_terminal_for(p, 5, AbMsg::Full { c: 16, g: 3 }));
        assert!(!is_terminal_for(p, 5, AbMsg::GoAhead));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert_eq!(validate(10, 0), Err(ConfigError::NoProcesses));
        assert_eq!(validate(0, 4), Err(ConfigError::NoWork));
        assert_eq!(validate(10, 5), Err(ConfigError::NotPerfectSquare { t: 5 }));
        assert_eq!(validate(10, 4), Err(ConfigError::NotDivisible { n: 10, t: 4 }));
        assert!(validate(2, 4).is_err());
        assert!(validate(8, 4).is_ok());
    }

    #[test]
    fn lazy_schedule_matches_compile_dowork_everywhere() {
        // Every (j, LastOrdinary) shape over several parameter packs: the
        // lazy schedule must pop the byte-identical op sequence, while
        // never buffering more than a prologue plus one subchunk.
        for (n, t) in [(1, 1), (8, 4), (32, 16), (81, 9)] {
            let p = AbParams::new(n, t);
            let mut lasts = vec![LastOrdinary::Fictitious];
            for c in 1..=p.t {
                lasts.push(LastOrdinary::Partial { c });
                for g in 1..=p.sqrt_t() {
                    lasts.push(LastOrdinary::Full { c, g, sender_in_own_group: true });
                    lasts.push(LastOrdinary::Full { c, g, sender_in_own_group: false });
                }
            }
            let resident_cap = (p.subchunk_size() + 6 * p.sqrt_t() + 2) as usize;
            for j in 0..t {
                for &last in &lasts {
                    let expect: Vec<Op> = compile_dowork(p, j, last).into();
                    let mut sched = Schedule::new(p, j, last);
                    assert_eq!(sched.is_empty(), expect.is_empty());
                    let mut got = Vec::new();
                    while let Some(op) = sched.pop_front() {
                        got.push(op);
                        assert!(sched.buf.len() <= resident_cap, "n={n} t={t} j={j}");
                    }
                    assert!(sched.is_empty());
                    assert_eq!(got, expect, "n={n} t={t} j={j} last={last:?}");
                }
            }
        }
    }

    #[test]
    fn schedule_covers_every_unit_exactly_once_from_any_restart() {
        let p = p();
        for c in 0..=p.t {
            let last = if c == 0 { LastOrdinary::Fictitious } else { LastOrdinary::Partial { c } };
            let ops = compile_dowork(p, 3, last);
            let units: Vec<u64> = ops
                .iter()
                .filter_map(|op| match op {
                    Op::Work { u } => Some(*u),
                    _ => None,
                })
                .collect();
            let expected: Vec<u64> = (c * p.subchunk_size() + 1..=p.n).collect();
            assert_eq!(units, expected, "restart at subchunk {c}");
        }
    }
}
