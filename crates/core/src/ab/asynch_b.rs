//! The asynchronous analogue of Protocol B — a **labeled extension**
//! beyond the paper's text, in the spirit of §2.1's asynchronous remark
//! (the paper only spells the remark out for Protocol A).
//!
//! Synchronous Protocol B improves on A by replacing the crude global
//! deadline `DD(j)` with *message-driven* knowledge: per-edge deadlines
//! `DDB(j, i)` plus a polling `go ahead` phase that probes whether the
//! lowest un-provably-retired process is still alive. In a fully
//! asynchronous system neither mechanism survives — there are no rounds to
//! count deadlines in, and a poll without a timeout proves nothing. What
//! *does* survive is B's key idea: **messages carry retirement knowledge**.
//!
//! By the activation discipline (every process activates only after all
//! lower-numbered processes retired — Lemma 2.2, preserved here by
//! induction), an ordinary checkpoint received from process `i` proves
//! that every process `k < i` has already retired, with no detector
//! involvement. `AsyncProtocolB` therefore activates once every `k < j` is
//! *known* retired, where known = reported by the retirement detector
//! **or** inferred from the highest ordinary sender heard from. Protocol
//! A's variant waits for explicit reports on all `j` predecessors; B's
//! never waits on a report the message flow already implies, so its
//! takeover can only be earlier (never later) on the same schedule — and
//! the `go ahead` machinery disappears entirely: `AsyncProtocolB` sends
//! **zero** `go_ahead` messages in every execution.
//!
//! The checkpointing schedule is untouched (shared
//! [`compile_dowork`](super::compile_dowork)), so
//! Theorem 2.3/2.8's work bound (`≤ 3n`) and the ordinary-message bound
//! (`≤ 9t√t`) carry over exactly as for the asynchronous Protocol A.

use std::collections::BTreeSet;

use doall_bounds::AbParams;
use doall_sim::asynch::{AsyncEffects, AsyncProtocol};
use doall_sim::{Inbox, Pid};

use super::asynch::{advance_schedule, AsyncState};
use super::{interpret, is_terminal_for, validate, AbMsg, LastOrdinary, Schedule};
use crate::error::ConfigError;

/// One process of the asynchronous Protocol B.
///
/// Run with [`doall_sim::asynch::run_async`].
///
/// # Examples
///
/// ```
/// use doall_core::ab::asynch_b::AsyncProtocolB;
/// use doall_sim::asynch::{run_async, AsyncConfig};
/// use doall_sim::NoFailures;
///
/// let procs = AsyncProtocolB::processes(32, 16)?;
/// let report = run_async(procs, NoFailures, AsyncConfig::new(32, 1))?;
/// assert!(report.metrics.all_work_done());
/// // No go_ahead ever: the detector replaced the polling phase.
/// assert_eq!(report.metrics.messages_by_class.get("go_ahead"), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AsyncProtocolB {
    params: AbParams,
    j: u64,
    state: AsyncState,
    last: LastOrdinary,
    /// Detector reports received ahead of the `known_below` watermark.
    reported: BTreeSet<u64>,
    /// Everything below this pid is known retired by *inference*: an
    /// ordinary message from `i` proves all `k < i` retired (Lemma 2.2).
    inferred_below: u64,
    /// Everything below this pid is known retired (by report or
    /// inference) — advanced incrementally so each notice or message
    /// batch costs amortized O(log t), not a rescan of `0..j`.
    known_below: u64,
}

impl AsyncProtocolB {
    /// Creates process `j` of an `(n, t)` system.
    pub fn new(params: AbParams, j: u64) -> Self {
        AsyncProtocolB {
            params,
            j,
            state: AsyncState::Passive,
            last: LastOrdinary::Fictitious,
            reported: BTreeSet::new(),
            inferred_below: 0,
            known_below: 0,
        }
    }

    /// Creates the full vector of `t` processes for `n` units of work.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `t` is a positive perfect square,
    /// `t | n`, and `n >= t`.
    pub fn processes(n: u64, t: u64) -> Result<Vec<AsyncProtocolB>, ConfigError> {
        let params = validate(n, t)?;
        Ok((0..t).map(|j| AsyncProtocolB::new(params, j)).collect())
    }

    /// Whether every process below `j` is known retired, by report or by
    /// message inference (watermark advanced incrementally).
    fn all_lower_known_retired(&mut self) -> bool {
        self.known_below = self.known_below.max(self.inferred_below);
        while self.known_below < self.j && self.reported.remove(&self.known_below) {
            self.known_below += 1;
        }
        self.known_below >= self.j
    }

    fn maybe_activate(&mut self, eff: &mut AsyncEffects<AbMsg>) {
        if matches!(self.state, AsyncState::Passive) && self.all_lower_known_retired() {
            eff.note("activate");
            self.state = AsyncState::Active { ops: Schedule::new(self.params, self.j, self.last) };
            advance_schedule(&mut self.state, self.params, self.j, eff);
        }
    }
}

impl AsyncProtocol for AsyncProtocolB {
    type Msg = AbMsg;

    fn on_start(&mut self, eff: &mut AsyncEffects<AbMsg>) {
        if self.j == 0 {
            self.maybe_activate(eff);
        }
    }

    fn on_messages(&mut self, inbox: Inbox<'_, AbMsg>, eff: &mut AsyncEffects<AbMsg>) {
        for (from, payload) in inbox.iter() {
            if !matches!(self.state, AsyncState::Passive) {
                return; // active/terminated processes ignore stray traffic
            }
            if is_terminal_for(self.params, self.j, *payload) {
                eff.terminate();
                self.state = AsyncState::Done;
                return;
            }
            if let Some(last) = interpret(self.params, self.j, from.index() as u64, *payload) {
                self.last = last;
                // The sender was active when it sent this, so everything
                // below it has retired. (Senders are always lower-numbered
                // here — checkpoints flow upward — but cap at `j` anyway:
                // inference must never cover `j` itself.)
                self.inferred_below = self.inferred_below.max((from.index() as u64).min(self.j));
            }
        }
        // Fresh inference may cover exactly the pids whose detector
        // reports this process was still waiting on.
        self.maybe_activate(eff);
    }

    fn on_retirement(&mut self, retired: Pid, eff: &mut AsyncEffects<AbMsg>) {
        self.reported.insert(retired.index() as u64);
        self.maybe_activate(eff);
    }

    fn on_tick(&mut self, eff: &mut AsyncEffects<AbMsg>) {
        advance_schedule(&mut self.state, self.params, self.j, eff);
    }

    fn on_recover(&mut self, wipe: bool, eff: &mut AsyncEffects<AbMsg>) {
        eff.note("rejoin");
        if wipe {
            self.state = AsyncState::Passive;
            self.last = LastOrdinary::Fictitious;
            self.reported.clear();
            self.inferred_below = 0;
            self.known_below = 0;
            // Re-learn retirements from the detector's replay (and any
            // later checkpoints); p0 needs no predecessors at all.
            self.maybe_activate(eff);
        } else {
            match self.state {
                // The crash severed the tick chain driving the schedule;
                // splice it back.
                AsyncState::Active { .. } => eff.continue_later(),
                // The crash preempted a same-invocation termination; the
                // work is done, so retire for real now.
                AsyncState::Done => eff.terminate(),
                AsyncState::Passive => self.maybe_activate(eff),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::asynch::{
        run_async, AsyncConfig, AsyncCrashSchedule, AsyncRandomCrashes, AsyncReport,
    };
    use doall_sim::invariants::{
        check_activation_order, check_detector_soundness, check_single_active,
    };
    use doall_sim::{CrashSpec, NoFailures};

    use super::super::asynch::AsyncProtocolA;
    use super::*;

    const N: u64 = 32;
    const T: u64 = 16;

    fn cfg(seed: u64) -> AsyncConfig {
        AsyncConfig { max_delay: 7, max_events: 1_000_000, ..AsyncConfig::new(N as usize, seed) }
    }

    fn activation_of(report: &AsyncReport, pid: Pid) -> Option<doall_sim::asynch::Time> {
        report
            .notes
            .iter()
            .find(|(_, p, tag)| *p == pid && *tag == "activate")
            .map(|(time, _, _)| *time)
    }

    #[test]
    fn failure_free_matches_async_protocol_a_exactly() {
        let b = run_async(AsyncProtocolB::processes(N, T).unwrap(), NoFailures, cfg(1)).unwrap();
        let a = run_async(AsyncProtocolA::processes(N, T).unwrap(), NoFailures, cfg(1)).unwrap();
        assert!(b.metrics.all_work_done());
        assert_eq!(b.metrics, a.metrics, "identical schedule, identical delays");
        assert_eq!(b.metrics.messages, 132);
        assert_eq!(b.metrics.messages_by_class.get("go_ahead"), None);
    }

    #[test]
    fn bounds_hold_under_random_crashes() {
        for seed in 0..12 {
            let adv = AsyncRandomCrashes::new(seed, 0.01, (T - 1) as u32);
            let report =
                run_async(AsyncProtocolB::processes(N, T).unwrap(), adv, cfg(seed).with_trace())
                    .unwrap();
            assert!(report.metrics.all_work_done(), "seed {seed}");
            assert!(report.has_survivor(), "seed {seed}");
            let bound = theorems::protocol_a(N, T);
            assert!(report.metrics.work_total <= bound.work, "seed {seed}");
            assert!(report.metrics.messages <= bound.messages, "seed {seed}");
            assert_eq!(report.metrics.messages_by_class.get("go_ahead"), None, "seed {seed}");
            assert!(check_single_active(&report.trace).is_empty(), "seed {seed}");
            assert!(check_activation_order(&report.trace).is_empty(), "seed {seed}");
            assert!(check_detector_soundness(&report.trace).is_empty(), "seed {seed}");
        }
    }

    /// The takeover scenario where inference beats the detector: p0 dies
    /// mid-schedule, p1 takes over and checkpoints at least once, then p1
    /// dies too. Successor p2 needs {p0, p1} known-retired. Having heard a
    /// checkpoint *from p1*, AsyncProtocolB infers p0's retirement and
    /// waits only for the detector's report on p1, while AsyncProtocolA
    /// waits for both reports. Consequence: on every seed B's p2 activates
    /// no later than A's, and on some seed strictly earlier.
    #[test]
    fn message_inference_activates_no_later_than_protocol_a() {
        // p0 dies mid-schedule (after a few checkpoints), p1 takes over,
        // checkpoints at least once, then dies too; p2 succeeds it.
        let adv =
            || {
                AsyncCrashSchedule::new()
                    .crash_at(Pid::new(0), 4, CrashSpec::after_round())
                    .crash_at(Pid::new(1), 6, CrashSpec::after_round())
            };
        // Bimodal delays (fast hops vs 32-step stragglers) make "the
        // report on long-dead p0 is still in flight when p1's report
        // lands" a common occurrence instead of a 1-in-100 coincidence.
        let cfg = |seed| {
            AsyncConfig::new(N as usize, seed).with_delay(doall_sim::asynch::DelayDist::Bimodal, 32)
        };
        let mut strictly_earlier = 0u32;
        for seed in 0..40 {
            let b = run_async(AsyncProtocolB::processes(N, T).unwrap(), adv(), cfg(seed)).unwrap();
            let a = run_async(AsyncProtocolA::processes(N, T).unwrap(), adv(), cfg(seed)).unwrap();
            assert!(b.metrics.all_work_done(), "seed {seed}");
            assert!(a.metrics.all_work_done(), "seed {seed}");
            let (Some(tb), Some(ta)) =
                (activation_of(&b, Pid::new(2)), activation_of(&a, Pid::new(2)))
            else {
                continue; // p2 never needed to take over under this seed
            };
            // Up to p2's activation the two executions are identical, so
            // the activation times are directly comparable: B's weaker
            // (report-or-inference) predicate can only fire earlier.
            assert!(tb <= ta, "seed {seed}: B activated at {tb}, after A's {ta}");
            if tb < ta {
                strictly_earlier += 1;
            }
        }
        assert!(
            strictly_earlier > 0,
            "inference never beat the detector on any seed — the extension is vacuous"
        );
    }

    #[test]
    fn rejects_invalid_configurations() {
        assert!(AsyncProtocolB::processes(12, 6).is_err());
        assert!(AsyncProtocolB::processes(0, 16).is_err());
    }
}
