//! # doall-core
//!
//! The Do-All protocols of Dwork, Halpern & Waarts (PODC 1992).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ab;
pub mod baseline;
pub mod c;
pub mod d;
pub mod error;
pub mod intervals;

pub use ab::asynch::AsyncProtocolA;
pub use ab::asynch_b::AsyncProtocolB;
pub use ab::padded::PaddedA;
pub use ab::protocol_a::ProtocolA;
pub use ab::protocol_b::ProtocolB;
pub use baseline::{AsyncReplicate, Lockstep, NaiveSpread, ReplicateAll};
pub use c::protocol_c::ProtocolC;
pub use d::ProtocolD;
pub use error::ConfigError;
pub use intervals::IntervalSet;
