//! The "everyone does everything" baseline (§1).

use doall_sim::{Classify, Effects, Inbox, Protocol, Round, Unit};

use crate::error::ConfigError;

/// No messages are ever sent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NoMsg {}

impl Classify for NoMsg {}

/// §1's first trivial solution: each process performs units `1..=n` in
/// order, one per round, and terminates. Zero messages, perfect fault
/// tolerance, `Θ(tn)` work.
///
/// # Examples
///
/// ```
/// use doall_core::baseline::ReplicateAll;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// let report = run(ReplicateAll::processes(10, 4)?, NoFailures, RunConfig::new(10, 100))?;
/// assert_eq!(report.metrics.work_total, 40); // t * n
/// assert_eq!(report.metrics.messages, 0);
/// assert_eq!(report.metrics.rounds, 10u64); // n rounds
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ReplicateAll {
    n: u64,
    next: u64,
}

impl ReplicateAll {
    /// Creates the `t` processes for `n` units.
    ///
    /// # Errors
    ///
    /// Rejects empty systems and empty workloads.
    pub fn processes(n: u64, t: u64) -> Result<Vec<ReplicateAll>, ConfigError> {
        if t == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n == 0 {
            return Err(ConfigError::NoWork);
        }
        Ok((0..t).map(|_| ReplicateAll { n, next: 1 }).collect())
    }
}

impl Protocol for ReplicateAll {
    type Msg = NoMsg;

    fn step(&mut self, _round: Round, _inbox: Inbox<'_, NoMsg>, eff: &mut Effects<NoMsg>) {
        eff.perform(Unit::new(self.next as usize));
        if self.next == self.n {
            eff.terminate();
        } else {
            self.next += 1;
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        Some(now)
    }

    fn on_recover(&mut self, _round: Round, wipe: bool) {
        if wipe {
            // Start over from unit 1; stale state needs nothing — the next
            // step re-performs `next` (and re-terminates when `next == n`).
            self.next = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_sim::{run, CrashSchedule, CrashSpec, NoFailures, Pid, RunConfig};

    use super::*;

    #[test]
    fn tolerates_any_crashes_with_one_survivor() {
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::silent()).crash_at(
            Pid::new(1),
            3,
            CrashSpec::silent(),
        );
        let report =
            run(ReplicateAll::processes(6, 3).unwrap(), adv, RunConfig::new(6, 100)).unwrap();
        assert!(report.metrics.all_work_done());
        // p0 did 0 units, p1 did 2, p2 did 6.
        assert_eq!(report.metrics.work_total, 8);
    }

    #[test]
    fn failure_free_costs_t_times_n() {
        let report =
            run(ReplicateAll::processes(5, 4).unwrap(), NoFailures, RunConfig::new(5, 100))
                .unwrap();
        assert_eq!(report.metrics.work_total, 20);
        assert_eq!(report.metrics.effort(), 20);
        assert_eq!(report.metrics.rounds, 5u64);
    }

    #[test]
    fn rejects_empty_configs() {
        assert!(ReplicateAll::processes(0, 3).is_err());
        assert!(ReplicateAll::processes(3, 0).is_err());
    }
}
