//! The "one worker, checkpoint everything to everyone" baseline (§1).

use doall_sim::{Classify, Effects, Inbox, Protocol, Round, Unit};

use crate::error::ConfigError;

/// Progress announcements of the lockstep baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMsg {
    /// "Units `1..=c` have been performed."
    Done {
        /// Units completed so far.
        c: u64,
    },
}

impl Classify for LockMsg {
    fn class(&self) -> &'static str {
        "checkpoint"
    }
}

/// §1's second trivial solution: exactly one process works at a time and
/// broadcasts a checkpoint to *all* other processes after *every* unit.
/// Work is near-optimal (`<= n + t − 1`: each takeover redoes at most the
/// one unreported unit) but the message bill is `Θ(tn)`.
///
/// Takeover uses a crude Protocol A-style deadline: process `j` takes over
/// at round `j · 2(n + 1)` if it has not yet seen the final checkpoint.
///
/// # Examples
///
/// ```
/// use doall_core::baseline::Lockstep;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// let report = run(Lockstep::processes(10, 4)?, NoFailures, RunConfig::new(10, 1000))?;
/// assert_eq!(report.metrics.work_total, 10);
/// assert_eq!(report.metrics.messages, 10 * 3); // n checkpoints × (t-1)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Lockstep {
    n: u64,
    t: u64,
    j: u64,
    /// Highest prefix of units known complete.
    known: u64,
    /// `Some(next_action)` once active: alternates work and checkpoint.
    active: Option<ActivePhase>,
    done: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActivePhase {
    Work,
    Checkpoint,
}

impl Lockstep {
    /// Creates the `t` processes for `n` units.
    ///
    /// # Errors
    ///
    /// Rejects empty systems and empty workloads.
    pub fn processes(n: u64, t: u64) -> Result<Vec<Lockstep>, ConfigError> {
        if t == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n == 0 {
            return Err(ConfigError::NoWork);
        }
        Ok((0..t).map(|j| Lockstep { n, t, j, known: 0, active: None, done: false }).collect())
    }

    /// The takeover deadline of process `j`: an active process alternates
    /// work and checkpoint rounds, so it lives at most `2n` rounds; one
    /// round of slack separates consecutive turns.
    fn deadline(&self) -> Round {
        Round::from(self.j * (2 * self.n + 2))
    }
}

impl Protocol for Lockstep {
    type Msg = LockMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, LockMsg>, eff: &mut Effects<LockMsg>) {
        if self.done {
            return;
        }
        for (_, msg) in inbox.iter() {
            let LockMsg::Done { c } = *msg;
            self.known = self.known.max(c);
        }
        if self.active.is_none() {
            if self.known == self.n {
                eff.terminate();
                self.done = true;
                return;
            }
            if round >= self.deadline().max(Round::ONE) {
                self.active = Some(ActivePhase::Work);
                eff.note("activate");
            } else {
                return;
            }
        }
        match self.active.expect("just set") {
            ActivePhase::Work => {
                eff.perform(Unit::new(self.known as usize + 1));
                self.known += 1;
                self.active = Some(ActivePhase::Checkpoint);
            }
            ActivePhase::Checkpoint => {
                eff.multicast_except(
                    0..self.t as usize,
                    self.j as usize,
                    LockMsg::Done { c: self.known },
                );
                if self.known == self.n {
                    eff.terminate();
                    self.done = true;
                } else {
                    self.active = Some(ActivePhase::Work);
                }
            }
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.done {
            None
        } else if self.active.is_some() {
            Some(now)
        } else {
            Some(self.deadline().max(Round::ONE).max(now))
        }
    }

    fn on_recover(&mut self, _round: Round, wipe: bool) {
        if wipe {
            self.known = 0;
            self.active = None;
            self.done = false;
        } else if self.done {
            // The crash preempted the step that set `done`: the engine
            // recorded the crash instead of our terminate. `known == n`
            // still holds, so the next step re-derives the retirement.
            self.done = false;
            self.active = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_sim::invariants::check_single_active;
    use doall_sim::{
        run, CrashSchedule, CrashSpec, Deliver, NoFailures, Pid, RunConfig, Trigger,
        TriggerAdversary, TriggerRule,
    };

    use super::*;

    fn cfg(n: u64) -> RunConfig {
        RunConfig::new(n as usize, 1_000_000).with_trace()
    }

    #[test]
    fn failure_free_counts_match_section_1() {
        let (n, t) = (20u64, 5u64);
        let report = run(Lockstep::processes(n, t).unwrap(), NoFailures, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, n);
        // "the number of messages sent is almost tn".
        assert_eq!(report.metrics.messages, n * (t - 1));
        // 2n active rounds plus one round for the final checkpoint to
        // reach and retire the passive processes.
        assert_eq!(report.metrics.rounds, u128::from(2 * n + 1));
    }

    #[test]
    fn takeover_cascade_stays_under_n_plus_t() {
        // Each active process dies right after one unreported unit.
        let (n, t) = (12u64, 4u64);
        let rules: Vec<TriggerRule> = (0..t - 1)
            .map(|j| TriggerRule {
                trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: 1 },
                target: None,
                spec: CrashSpec { deliver: Deliver::None, count_work: true },
            })
            .collect();
        let report =
            run(Lockstep::processes(n, t).unwrap(), TriggerAdversary::new(rules), cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, n + t - 1);
        assert!(check_single_active(&report.trace).is_empty());
    }

    #[test]
    fn checkpointed_work_is_never_redone() {
        let (n, t) = (12u64, 4u64);
        // Round 10 is a checkpoint round: the crash happens after the
        // checkpoint of unit 5 is fully delivered.
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 10, CrashSpec::after_round());
        let report = run(Lockstep::processes(n, t).unwrap(), adv, cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.wasted_work(), 0);
    }
}
