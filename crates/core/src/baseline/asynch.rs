//! The "everyone does everything" baseline on the asynchronous plane.

use doall_sim::asynch::{AsyncEffects, AsyncProtocol};
use doall_sim::{Inbox, Pid, Unit};

use super::replicate::NoMsg;
use crate::error::ConfigError;

/// §1's first trivial solution, event-driven: each process performs units
/// `1..=n` in order, one per event (self-scheduled ticks keep it
/// interruptible by crashes), and terminates. Zero messages, perfect fault
/// tolerance, `Θ(tn)` work — the effort floor the asynchronous A/B
/// variants are measured against in experiment `e14`.
///
/// # Examples
///
/// ```
/// use doall_core::baseline::AsyncReplicate;
/// use doall_sim::asynch::{run_async, AsyncConfig};
/// use doall_sim::NoFailures;
///
/// let report = run_async(AsyncReplicate::processes(10, 4)?, NoFailures, AsyncConfig::new(10, 0))?;
/// assert_eq!(report.metrics.work_total, 40); // t * n
/// assert_eq!(report.metrics.messages, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AsyncReplicate {
    n: u64,
    next: u64,
}

impl AsyncReplicate {
    /// Creates the `t` processes for `n` units.
    ///
    /// # Errors
    ///
    /// Rejects empty systems and empty workloads.
    pub fn processes(n: u64, t: u64) -> Result<Vec<AsyncReplicate>, ConfigError> {
        if t == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n == 0 {
            return Err(ConfigError::NoWork);
        }
        Ok((0..t).map(|_| AsyncReplicate { n, next: 1 }).collect())
    }

    fn step(&mut self, eff: &mut AsyncEffects<NoMsg>) {
        eff.perform(Unit::new(self.next as usize));
        if self.next == self.n {
            eff.terminate();
        } else {
            self.next += 1;
            eff.continue_later();
        }
    }
}

impl AsyncProtocol for AsyncReplicate {
    type Msg = NoMsg;

    fn on_start(&mut self, eff: &mut AsyncEffects<NoMsg>) {
        self.step(eff);
    }

    fn on_messages(&mut self, _inbox: Inbox<'_, NoMsg>, _eff: &mut AsyncEffects<NoMsg>) {
        unreachable!("NoMsg is uninhabited: nothing can ever be sent");
    }

    fn on_retirement(&mut self, _retired: Pid, _eff: &mut AsyncEffects<NoMsg>) {}

    fn on_tick(&mut self, eff: &mut AsyncEffects<NoMsg>) {
        self.step(eff);
    }
}

#[cfg(test)]
mod tests {
    use doall_sim::asynch::{run_async, AsyncConfig, AsyncCrashSchedule};
    use doall_sim::{CrashSpec, NoFailures};

    use super::*;

    #[test]
    fn failure_free_costs_t_times_n() {
        let report =
            run_async(AsyncReplicate::processes(5, 4).unwrap(), NoFailures, AsyncConfig::new(5, 3))
                .unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, 20);
        assert_eq!(report.metrics.messages, 0);
        assert_eq!(report.survivor_count(), 4);
    }

    #[test]
    fn tolerates_crashes_with_one_survivor() {
        // p0 dies on its 1st event (0 units counted), p1 on its 3rd
        // (2 units counted: the crashing invocation's unit is suppressed).
        let adv = AsyncCrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::silent()).crash_at(
            Pid::new(1),
            3,
            CrashSpec::silent(),
        );
        // Fixed late notices keep the invocation numbering purely
        // start+ticks (a notice handler is an invocation too and would
        // otherwise shift which tick the crash lands on).
        let cfg = AsyncConfig::new(6, 1).with_delay(doall_sim::asynch::DelayDist::Fixed, 8);
        let report = run_async(AsyncReplicate::processes(6, 3).unwrap(), adv, cfg).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, 2 + 6);
        assert_eq!(report.metrics.crashes, 2);
    }

    #[test]
    fn rejects_empty_configs() {
        assert!(AsyncReplicate::processes(0, 3).is_err());
        assert!(AsyncReplicate::processes(3, 0).is_err());
    }
}
