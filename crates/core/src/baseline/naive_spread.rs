//! The §3 strawman: spread knowledge round-robin, with **no fault
//! detection**.
//!
//! > "The problem with this naïve algorithm is that it requires `O(n + t²)`
//! > work and `O(n + t²)` messages in the worst case."
//!
//! Process 0 performs unit `i` and reports units `1..=i` to process
//! `i mod t`. On a crash, the most knowledgeable survivor takes over (the
//! deadlines below arrange exactly that) — but it has no way to know
//! whether the processes after its last report are dead, so it re-informs
//! (and re-does) everything past its own knowledge. A cascade of crashes
//! among the top half of the processes then costs `Θ(t²)` wasted work and
//! messages — the motivation for Protocol C, which treats fault detection
//! itself as work.

use doall_bounds::{mul_saturating, pow2_saturating};
use doall_sim::{Classify, Effects, Inbox, Pid, Protocol, Round, Unit};

use crate::error::ConfigError;

/// Messages of the naive-spread strawman.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpreadMsg {
    /// "Units `1..=c` have been performed."
    Progress {
        /// Highest completed unit.
        c: u64,
    },
    /// All `n` units are done; everyone may stop.
    Finished,
}

impl Classify for SpreadMsg {
    fn class(&self) -> &'static str {
        match self {
            SpreadMsg::Progress { .. } => "progress",
            SpreadMsg::Finished => "finished",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Work,
    Report,
}

#[derive(Clone, Debug)]
enum SState {
    Passive { deadline: Round },
    Active { phase: Phase },
    Done,
}

/// One process of the §3 strawman.
///
/// # Examples
///
/// ```
/// use doall_core::baseline::NaiveSpread;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// let report = run(NaiveSpread::processes(8, 4)?, NoFailures, RunConfig::new(8, 1 << 40))?;
/// assert!(report.metrics.all_work_done());
/// assert_eq!(report.metrics.work_total, 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct NaiveSpread {
    n: u64,
    t: u64,
    j: u64,
    /// Highest prefix of units known complete.
    known: u64,
    state: SState,
    /// Set by a stale crash-recovery that found the state already
    /// [`SState::Done`]: the crash preempted the final step's terminate,
    /// so the next step must retire for real.
    retire_next_step: bool,
}

impl NaiveSpread {
    /// Creates the `t` processes for `n` units.
    ///
    /// # Errors
    ///
    /// Rejects empty systems and workloads, and requires `n >= t` so the
    /// round-robin reporting covers every process.
    pub fn processes(n: u64, t: u64) -> Result<Vec<NaiveSpread>, ConfigError> {
        if t == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if n == 0 {
            return Err(ConfigError::NoWork);
        }
        if n < t {
            return Err(ConfigError::WorkTooSmall { n, t });
        }
        Ok((0..t)
            .map(|j| {
                let state = if j == 0 {
                    SState::Active { phase: Phase::Work }
                } else {
                    SState::Passive { deadline: Round::from(deadline_d(n, t, j, 0)) }
                };
                NaiveSpread { n, t, j, known: 0, state, retire_next_step: false }
            })
            .collect())
    }
}

/// The takeover deadline: the same exponential shape as Protocol C's
/// `D(i, m)` (the strawman is "Protocol C without fault detection"), with
/// `K = 2t + 4` — an active process reports round-robin over all `t`
/// processes, so everyone alive hears within `2t` rounds.
///
/// Distinctness of deadlines (hence a single active process) holds because
/// a process only ever learns `m ≡ pid (mod t)`: reports for unit `u` go
/// to process `u mod t`.
fn deadline_d(n: u64, t: u64, i: u64, m: u64) -> u64 {
    let k = 2 * t + 4;
    let nt = n + t;
    if m >= 1 {
        mul_saturating(&[k, nt - m, pow2_saturating(nt - 1 - m)])
    } else {
        mul_saturating(&[k, t - i, nt, pow2_saturating(nt - 1)])
    }
}

impl Protocol for NaiveSpread {
    type Msg = SpreadMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, SpreadMsg>, eff: &mut Effects<SpreadMsg>) {
        if self.retire_next_step {
            // Post-recovery retirement: the crash preempted the step that
            // reached `Done`, so the engine never saw our terminate — and
            // a `Finished` that triggered it will never be resent.
            self.retire_next_step = false;
            eff.terminate();
            self.state = SState::Done;
            return;
        }
        if matches!(self.state, SState::Done) {
            return;
        }
        if let SState::Passive { .. } = self.state {
            let mut heard = false;
            for (_, msg) in inbox.iter() {
                match *msg {
                    SpreadMsg::Finished => {
                        eff.terminate();
                        self.state = SState::Done;
                        return;
                    }
                    SpreadMsg::Progress { c } => {
                        self.known = self.known.max(c);
                        heard = true;
                    }
                }
            }
            if heard {
                self.state = SState::Passive {
                    deadline: round
                        .saturating_add(u128::from(deadline_d(self.n, self.t, self.j, self.known))),
                };
                return;
            }
            let SState::Passive { deadline } = self.state else { unreachable!() };
            if round >= deadline {
                eff.note("activate");
                self.state = SState::Active { phase: Phase::Work };
            } else {
                return;
            }
        }
        let SState::Active { phase } = self.state else { unreachable!() };
        match phase {
            Phase::Work => {
                eff.perform(Unit::new(self.known as usize + 1));
                self.known += 1;
                self.state = SState::Active { phase: Phase::Report };
            }
            Phase::Report => {
                if self.known == self.n {
                    // Tell everyone to stop, then retire.
                    eff.multicast_except(0..self.t as usize, self.j as usize, SpreadMsg::Finished);
                    eff.terminate();
                    self.state = SState::Done;
                } else {
                    // Report units 1..=known to process (known mod t) —
                    // dead or alive; there is no fault detection here.
                    let target = self.known % self.t;
                    if target != self.j {
                        eff.send(Pid::new(target as usize), SpreadMsg::Progress { c: self.known });
                    }
                    self.state = SState::Active { phase: Phase::Work };
                }
            }
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.retire_next_step {
            return Some(now);
        }
        match self.state {
            SState::Done => None,
            SState::Active { .. } => Some(now),
            SState::Passive { deadline } => Some(deadline.max(now)),
        }
    }

    fn on_recover(&mut self, _round: Round, wipe: bool) {
        if wipe {
            self.known = 0;
            self.state = if self.j == 0 {
                SState::Active { phase: Phase::Work }
            } else {
                SState::Passive { deadline: Round::from(deadline_d(self.n, self.t, self.j, 0)) }
            };
            self.retire_next_step = false;
        } else if matches!(self.state, SState::Done) {
            self.retire_next_step = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use doall_sim::invariants::check_single_active;
    use doall_sim::{
        run, CrashSpec, Deliver, NoFailures, RunConfig, Trigger, TriggerAdversary, TriggerRule,
    };

    use super::*;

    fn cfg(n: u64) -> RunConfig {
        RunConfig::new(n as usize, u64::MAX - 1).with_trace()
    }

    /// The §3 cascade: p0 dies after unit `t-1`; the top half crashes; each
    /// successive most-knowledgeable survivor redoes the suffix and dies.
    fn cascade(_n: u64, t: u64) -> TriggerAdversary {
        let mut rules = vec![TriggerRule {
            trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth: t - 1 },
            target: None,
            spec: CrashSpec { deliver: Deliver::All, count_work: true },
        }];
        for j in t / 2 + 1..t {
            rules.push(TriggerRule {
                trigger: Trigger::AtRound(Round::from(2 * t)),
                target: Some(Pid::new(j as usize)),
                spec: CrashSpec::silent(),
            });
        }
        for j in (2..=t / 2).rev() {
            // Process j knows units 1..=j; it redoes j+1..=t-1 and dies.
            rules.push(TriggerRule {
                trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: t - 1 - j },
                target: None,
                spec: CrashSpec { deliver: Deliver::None, count_work: true },
            });
        }
        TriggerAdversary::new(rules)
    }

    #[test]
    fn failure_free_run_is_cheap() {
        let report = run(NaiveSpread::processes(12, 4).unwrap(), NoFailures, cfg(12)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(report.metrics.work_total, 12);
        // n - 1 reports (some to self are skipped) + final broadcast.
        assert!(report.metrics.messages <= 12 + 4);
        assert!(check_single_active(&report.trace).is_empty());
    }

    #[test]
    fn most_knowledgeable_survivor_takes_over() {
        // p0 dies after reporting unit 3 to p3 (t = 4): p3 must take over,
        // not p1.
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: 3 },
            target: None,
            spec: CrashSpec { deliver: Deliver::All, count_work: true },
        }]);
        let report = run(NaiveSpread::processes(8, 4).unwrap(), adv, cfg(8)).unwrap();
        assert!(report.metrics.all_work_done());
        let first = report.trace.notes("activate").next().unwrap();
        assert_eq!(first.1, Pid::new(3));
        assert!(check_single_active(&report.trace).is_empty());
    }

    #[test]
    fn cascade_costs_quadratic_rework() {
        let (n, t) = (16u64, 16u64);
        let report = run(NaiveSpread::processes(n, t).unwrap(), cascade(n, t), cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        // Each of the ~t/2 successive actives redoes a Θ(t) suffix.
        assert!(
            report.metrics.wasted_work() as u64 >= t * t / 8,
            "expected quadratic waste, saw {}",
            report.metrics.wasted_work()
        );
        assert!(check_single_active(&report.trace).is_empty());
    }

    #[test]
    fn quadratic_waste_grows_with_t_unlike_protocol_c() {
        let waste = |t: u64| {
            let report = run(NaiveSpread::processes(t, t).unwrap(), cascade(t, t), cfg(t)).unwrap();
            assert!(report.metrics.all_work_done());
            report.metrics.wasted_work()
        };
        let (w8, w16) = (waste(8), waste(16));
        // Quadratic: quadrupling expected when t doubles (allow slack).
        assert!(w16 >= 3 * w8, "waste should grow superlinearly: {w8} -> {w16}");
    }

    #[test]
    fn rejects_undersized_workloads() {
        assert!(NaiveSpread::processes(3, 4).is_err());
        assert!(NaiveSpread::processes(0, 4).is_err());
        assert!(NaiveSpread::processes(4, 0).is_err());
    }
}
