//! Baseline algorithms the paper compares against.
//!
//! * [`ReplicateAll`] — §1's first trivial solution: every process performs
//!   every unit. No messages, but `Θ(tn)` work.
//! * [`Lockstep`] — §1's second trivial solution: a single worker
//!   checkpoints to *everyone* after *every* unit. Work-optimal
//!   (`n + t − 1`) but `Θ(tn)` messages.
//! * [`NaiveSpread`] — the §3 strawman: spread knowledge round-robin with
//!   no fault detection. `Θ(n + t²)` work and messages in the worst case —
//!   the motivation for Protocol C's recursive fault detection.
//! * [`AsyncReplicate`] — `ReplicateAll` on the asynchronous plane: the
//!   `Θ(tn)` effort floor for experiment `e14`.

pub mod asynch;
pub mod lockstep;
pub mod naive_spread;
pub mod replicate;

pub use asynch::AsyncReplicate;
pub use lockstep::Lockstep;
pub use naive_spread::NaiveSpread;
pub use replicate::ReplicateAll;
