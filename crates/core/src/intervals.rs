//! Compressed sorted `u64` sets, stored as maximal half-open runs.
//!
//! Protocol D's state — the outstanding-unit set `S` and the live set `T`
//! — starts as a dense range and evolves by removing contiguous shares and
//! intersecting views, so it stays describable by a handful of runs even
//! when `|S| = 10^8`. [`IntervalSet`] keeps exactly that representation:
//! a sorted vector of disjoint, non-adjacent `[lo, hi)` runs. Point
//! queries are `O(log r)`, set algebra is `O(r)`, and memory is
//! `O(r)` — for `r` runs, independent of cardinality.

use std::ops::Range;

/// A set of `u64` values stored as sorted, disjoint, non-adjacent
/// half-open runs.
///
/// # Examples
///
/// ```
/// use doall_core::intervals::IntervalSet;
///
/// let mut s = IntervalSet::from_range(1..101);
/// assert_eq!(s.len(), 100);
/// assert!(s.remove(37));
/// assert!(!s.contains(37));
/// assert_eq!(s.len(), 99);
/// assert_eq!(s.runs().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct IntervalSet {
    /// Sorted, disjoint, non-adjacent, each with `lo < hi`.
    runs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet { runs: Vec::new() }
    }

    /// The set holding exactly the values of `range`.
    pub fn from_range(range: Range<u64>) -> Self {
        if range.start >= range.end {
            return Self::new();
        }
        IntervalSet { runs: vec![(range.start, range.end)] }
    }

    /// Number of elements (not runs). `O(runs)`.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|&(lo, hi)| hi - lo).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The underlying runs, each a half-open `(lo, hi)` pair.
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// Index of the run containing `v`, if any; `Err` holds the insertion
    /// point among runs otherwise.
    fn find(&self, v: u64) -> Result<usize, usize> {
        let i = self.runs.partition_point(|&(lo, _)| lo <= v);
        if i > 0 && v < self.runs[i - 1].1 {
            Ok(i - 1)
        } else {
            Err(i)
        }
    }

    /// Membership test. `O(log runs)`.
    pub fn contains(&self, v: u64) -> bool {
        self.find(v).is_ok()
    }

    /// Inserts `v`; returns whether it was newly added.
    pub fn insert(&mut self, v: u64) -> bool {
        let i = match self.find(v) {
            Ok(_) => return false,
            Err(i) => i,
        };
        let glue_left = i > 0 && self.runs[i - 1].1 == v;
        let glue_right = i < self.runs.len() && v + 1 == self.runs[i].0;
        match (glue_left, glue_right) {
            (true, true) => {
                self.runs[i - 1].1 = self.runs[i].1;
                self.runs.remove(i);
            }
            (true, false) => self.runs[i - 1].1 += 1,
            (false, true) => self.runs[i].0 -= 1,
            (false, false) => self.runs.insert(i, (v, v + 1)),
        }
        true
    }

    /// Removes `v`; returns whether it was present.
    pub fn remove(&mut self, v: u64) -> bool {
        let i = match self.find(v) {
            Ok(i) => i,
            Err(_) => return false,
        };
        let (lo, hi) = self.runs[i];
        match (v == lo, v + 1 == hi) {
            (true, true) => {
                self.runs.remove(i);
            }
            (true, false) => self.runs[i].0 += 1,
            (false, true) => self.runs[i].1 -= 1,
            (false, false) => {
                self.runs[i].1 = v;
                self.runs.insert(i + 1, (v + 1, hi));
            }
        }
        true
    }

    /// The smallest element, if any.
    pub fn min(&self) -> Option<u64> {
        self.runs.first().map(|&(lo, _)| lo)
    }

    /// Removes and returns the smallest element.
    pub fn pop_min(&mut self) -> Option<u64> {
        let &(lo, hi) = self.runs.first()?;
        if lo + 1 == hi {
            self.runs.remove(0);
        } else {
            self.runs[0].0 = lo + 1;
        }
        Some(lo)
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|&(lo, hi)| lo..hi)
    }

    /// Number of elements strictly below `v`. For `v` in the set this is
    /// its 0-based position in ascending order. `O(runs)`.
    pub fn rank(&self, v: u64) -> u64 {
        self.runs.iter().take_while(|&&(lo, _)| lo < v).map(|&(lo, hi)| hi.min(v) - lo).sum()
    }

    /// The sub-set holding the elements at ascending positions
    /// `start..start + count` (clamped to the set's size). `O(runs)`.
    pub fn slice_by_rank(&self, start: u64, count: u64) -> IntervalSet {
        let mut out = IntervalSet::new();
        let mut skip = start;
        let mut want = count;
        for &(lo, hi) in &self.runs {
            if want == 0 {
                break;
            }
            let span = hi - lo;
            if skip >= span {
                skip -= span;
                continue;
            }
            let take_lo = lo + skip;
            let take_hi = hi.min(take_lo + want);
            out.runs.push((take_lo, take_hi));
            want -= take_hi - take_lo;
            skip = 0;
        }
        out
    }

    /// In-place intersection with `other`. `O(runs + other.runs)`.
    pub fn intersect(&mut self, other: &IntervalSet) {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (alo, ahi) = self.runs[i];
            let (blo, bhi) = other.runs[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo < hi {
                out.push((lo, hi));
            }
            if ahi <= bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        self.runs = out;
    }

    /// In-place union with `other`. `O(runs + other.runs)`.
    pub fn union_with(&mut self, other: &IntervalSet) {
        if other.runs.is_empty() {
            return;
        }
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut i, mut j) = (0, 0);
        let push = |run: (u64, u64), out: &mut Vec<(u64, u64)>| match out.last_mut() {
            Some(last) if run.0 <= last.1 => last.1 = last.1.max(run.1),
            _ => out.push(run),
        };
        while i < self.runs.len() || j < other.runs.len() {
            let take_a =
                j >= other.runs.len() || (i < self.runs.len() && self.runs[i].0 <= other.runs[j].0);
            if take_a {
                push(self.runs[i], &mut out);
                i += 1;
            } else {
                push(other.runs[j], &mut out);
                j += 1;
            }
        }
        self.runs = out;
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<(u64, u64)>()
    }
}

impl FromIterator<u64> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut s = IntervalSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(s: &IntervalSet) -> Vec<u64> {
        s.iter().collect()
    }

    #[test]
    fn range_round_trip() {
        let s = IntervalSet::from_range(3..9);
        assert_eq!(dense(&s), vec![3, 4, 5, 6, 7, 8]);
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
        assert!(IntervalSet::from_range(5..5).is_empty());
    }

    #[test]
    fn insert_merges_neighbors() {
        let mut s: IntervalSet = [1u64, 3, 5].into_iter().collect();
        assert_eq!(s.runs().len(), 3);
        assert!(s.insert(2));
        assert!(s.insert(4));
        assert!(!s.insert(3));
        assert_eq!(s.runs(), &[(1, 6)]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn remove_splits_runs() {
        let mut s = IntervalSet::from_range(0..10);
        assert!(s.remove(0)); // shrink left
        assert!(s.remove(9)); // shrink right
        assert!(s.remove(5)); // split
        assert!(!s.remove(5));
        assert_eq!(s.runs(), &[(1, 5), (6, 9)]);
        assert_eq!(dense(&s), vec![1, 2, 3, 4, 6, 7, 8]);
        for v in dense(&s) {
            assert!(s.contains(v));
        }
        assert!(!s.contains(0) && !s.contains(5) && !s.contains(9) && !s.contains(42));
    }

    #[test]
    fn pop_min_drains_in_order() {
        let mut s: IntervalSet = [7u64, 2, 9, 3].into_iter().collect();
        let mut drained = Vec::new();
        while let Some(v) = s.pop_min() {
            drained.push(v);
        }
        assert_eq!(drained, vec![2, 3, 7, 9]);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
    }

    #[test]
    fn rank_and_slice() {
        let mut s = IntervalSet::from_range(10..20);
        s.remove(13); // {10,11,12,14,...,19}
        assert_eq!(s.rank(10), 0);
        assert_eq!(s.rank(12), 2);
        assert_eq!(s.rank(14), 3);
        assert_eq!(s.rank(100), 9);
        assert_eq!(dense(&s.slice_by_rank(0, 3)), vec![10, 11, 12]);
        assert_eq!(dense(&s.slice_by_rank(2, 3)), vec![12, 14, 15]);
        assert_eq!(dense(&s.slice_by_rank(7, 99)), vec![18, 19]);
        assert!(s.slice_by_rank(9, 5).is_empty());
    }

    #[test]
    fn intersect_two_pointer() {
        let mut a = IntervalSet::from_range(0..10);
        a.remove(4);
        let mut b = IntervalSet::from_range(2..14);
        b.remove(7);
        a.intersect(&b);
        assert_eq!(dense(&a), vec![2, 3, 5, 6, 8, 9]);
        a.intersect(&IntervalSet::new());
        assert!(a.is_empty());
    }

    #[test]
    fn union_coalesces() {
        let mut a: IntervalSet = [1u64, 2, 3, 10].into_iter().collect();
        let b: IntervalSet = [4u64, 5, 9, 11, 20].into_iter().collect();
        a.union_with(&b);
        assert_eq!(dense(&a), vec![1, 2, 3, 4, 5, 9, 10, 11, 20]);
        assert_eq!(a.runs(), &[(1, 6), (9, 12), (20, 21)]);
        let before = a.clone();
        a.union_with(&IntervalSet::new());
        assert_eq!(a, before);
    }

    #[test]
    fn giant_range_stays_tiny() {
        // The whole point: 10^8 outstanding units in one run, carving a
        // contiguous share out of the middle costs two runs, not 800 MB.
        let mut s = IntervalSet::from_range(1..100_000_001);
        for v in 50_000_000..50_001_000 {
            s.remove(v);
        }
        assert_eq!(s.len(), 100_000_000 - 1000);
        assert_eq!(s.runs().len(), 2);
        assert!(s.bytes() < 1024);
    }

    #[test]
    fn matches_btreeset_on_random_ops() {
        // xorshift-driven differential against the std set.
        let mut model = std::collections::BTreeSet::new();
        let mut s = IntervalSet::new();
        let mut x = 0x243f6a8885a308d3u64;
        for step in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 64;
            if x & (1 << 40) == 0 {
                assert_eq!(s.insert(v), model.insert(v), "step {step}");
            } else {
                assert_eq!(s.remove(v), model.remove(&v), "step {step}");
            }
            assert_eq!(s.len(), model.len() as u64, "step {step}");
        }
        assert_eq!(dense(&s), model.iter().copied().collect::<Vec<_>>());
        // Algebra against the model too.
        let other: IntervalSet = (0..64u64).filter(|v| v % 3 != 0).collect();
        let mut inter = s.clone();
        inter.intersect(&other);
        let expect: Vec<u64> = model.iter().copied().filter(|v| v % 3 != 0).collect();
        assert_eq!(dense(&inter), expect);
        let mut uni = s.clone();
        uni.union_with(&other);
        let mut expect: std::collections::BTreeSet<u64> = model.clone();
        expect.extend((0..64u64).filter(|v| v % 3 != 0));
        assert_eq!(dense(&uni), expect.into_iter().collect::<Vec<_>>());
    }
}
