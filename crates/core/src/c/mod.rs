//! Protocol C (§3): work-optimal Do-All with only `O(n + t log t)`
//! messages — `O(t log t)` in the Corollary 3.9 variant.
//!
//! Processes are organized into `log t` levels of groups: level `h` has
//! groups of size `2^{log t − h + 1}`, so level `log t` pairs each process
//! with a buddy while level 1 is the whole system. *Fault detection is
//! treated as work*: polling the members of `G^i_h` is "work on level
//! `h`", reported — exactly like real work — to a round-robin pointer into
//! the next smaller group `G^i_{h+1}`. Real work is "level 0", reported to
//! `G^i_1`.
//!
//! Knowledge is spread as uniformly as possible: every ordinary message
//! carries the sender's entire *view* (the failure set `F`, plus a pointer
//! and round stamp per group), and the recipient merges it. The *reduced
//! view* — units known done plus failures known — totally orders the
//! processes (Lemma 3.4) and drives the exponential takeover deadlines
//! `D(i, m)`.

pub mod protocol_c;

use std::collections::BTreeSet;
use std::fmt;

use doall_bounds::CParams;
use doall_sim::{Classify, Round};

use crate::error::ConfigError;

/// Validates Protocol C parameters.
///
/// # Errors
///
/// `t` must be a power of two with `t >= 2`; `n >= 1`; for the C′ variant
/// (`stride > 1`), `t` must divide `n`.
pub fn validate_c(n: u64, t: u64, prime: bool) -> Result<CParams, ConfigError> {
    if t == 0 {
        return Err(ConfigError::NoProcesses);
    }
    if n == 0 {
        return Err(ConfigError::NoWork);
    }
    if !t.is_power_of_two() || t < 2 {
        return Err(ConfigError::NotPowerOfTwo { t });
    }
    if prime {
        if !n.is_multiple_of(t) {
            return Err(ConfigError::NotDivisible { n, t });
        }
        if n < t {
            return Err(ConfigError::WorkTooSmall { n, t });
        }
        Ok(CParams::protocol_c_prime(n, t))
    } else {
        Ok(CParams::protocol_c(n, t))
    }
}

/// The binary group hierarchy of §3.1.
///
/// Groups are identified by `(level, block)`: level `h ∈ 1..=log t` has
/// `t / 2^{log t − h + 1}` blocks of size `2^{log t − h + 1}`. Each process
/// belongs to exactly one group per level, `G^i_h`.
///
/// # Examples
///
/// ```
/// use doall_core::c::Groups;
///
/// let g = Groups::new(8);
/// assert_eq!(g.levels(), 3);
/// // Level 3 groups are buddy pairs; process 5's buddy group is {4, 5}.
/// assert_eq!(g.members(3, g.block_of(5, 3)).collect::<Vec<_>>(), vec![4, 5]);
/// // Level 1 is everyone.
/// assert_eq!(g.members(1, 0).count(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Groups {
    t: u64,
    levels: u32,
}

impl Groups {
    /// Creates the hierarchy for `t` processes (`t` a power of two `>= 2`).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two at least 2.
    pub fn new(t: u64) -> Self {
        assert!(t.is_power_of_two() && t >= 2, "t = {t} must be a power of two >= 2");
        Groups { t, levels: t.trailing_zeros() }
    }

    /// Number of levels, `log₂ t`.
    pub fn levels(self) -> u32 {
        self.levels
    }

    /// Number of processes.
    pub fn t(self) -> u64 {
        self.t
    }

    /// Size of groups at level `h`.
    pub fn size(self, h: u32) -> u64 {
        debug_assert!((1..=self.levels).contains(&h), "level {h} out of range");
        1 << (self.levels - h + 1)
    }

    /// Block index of process `i` at level `h`.
    pub fn block_of(self, i: u64, h: u32) -> u64 {
        i / self.size(h)
    }

    /// Members of group `(h, block)` in increasing pid order.
    pub fn members(self, h: u32, block: u64) -> impl DoubleEndedIterator<Item = u64> + Clone {
        let s = self.size(h);
        block * s..(block + 1) * s
    }

    /// Total number of groups across all levels (`t − 1`).
    pub fn group_count(self) -> usize {
        (self.t - 1) as usize
    }

    /// Flat index of group `(h, block)` into view arrays: levels are laid
    /// out from 1 upward (`t/2^{log t}` = 1 group for level 1 first).
    pub fn flat_index(self, h: u32, block: u64) -> usize {
        // Level h has t / size(h) = 2^{h-1} blocks; levels 1..h-1 contribute
        // 2^0 + 2^1 + ... + 2^{h-2} = 2^{h-1} - 1 groups.
        ((1u64 << (h - 1)) - 1 + block) as usize
    }

    /// The cyclic successor of `after` within group `(h, block)`, skipping
    /// `me` and every member of `f`; `None` if no eligible member remains.
    pub fn successor(
        self,
        h: u32,
        block: u64,
        after: u64,
        me: u64,
        f: &BTreeSet<u64>,
    ) -> Option<u64> {
        let s = self.size(h);
        let base = block * s;
        let start = after - base;
        (1..=s).map(|k| base + (start + k) % s).find(|&cand| cand != me && !f.contains(&cand))
    }

    /// The first eligible poll/report target at or after `point` in cyclic
    /// order (i.e. `point` itself if eligible, else its successor).
    pub fn normalize(
        self,
        h: u32,
        block: u64,
        point: u64,
        me: u64,
        f: &BTreeSet<u64>,
    ) -> Option<u64> {
        if point != me && !f.contains(&point) {
            Some(point)
        } else {
            self.successor(h, block, point, me, f)
        }
    }
}

/// A process's knowledge: the triple `(F_i, point_i, round_i)` of §3.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// Processes known to have retired.
    pub f: BTreeSet<u64>,
    /// `point[G_0]`: the next unit of work to perform (`n + 1` = all done).
    pub point_work: u64,
    /// Round at which the last known unit of work was performed (a wide
    /// virtual-time stamp: honest `t = 64` runs reach rounds beyond 2⁶⁴).
    pub round_work: Round,
    /// Per-group pointer: successor of the last member known to have
    /// received an ordinary message from a process working on the group
    /// one level down. Indexed by [`Groups::flat_index`].
    pub point: Vec<u64>,
    /// Per-group round stamp for `point`, on the wide clock.
    pub round: Vec<Round>,
}

impl View {
    /// The initial view of process `me`: nothing done, nobody failed, every
    /// pointer at the lowest-numbered group member other than `me`.
    pub fn initial(groups: Groups, me: u64) -> Self {
        let mut point = vec![0; groups.group_count()];
        let round = vec![Round::ZERO; groups.group_count()];
        for h in 1..=groups.levels() {
            for block in 0..(groups.t() / groups.size(h)) {
                let lowest = groups
                    .members(h, block)
                    .find(|&p| p != me)
                    .expect("groups have at least 2 members");
                point[groups.flat_index(h, block)] = lowest;
            }
        }
        View { f: BTreeSet::new(), point_work: 1, round_work: Round::ZERO, point, round }
    }

    /// The reduced view: units known done plus failures known
    /// (`point[G_0] − 1 + |F|`).
    pub fn reduced(&self) -> u64 {
        self.point_work - 1 + self.f.len() as u64
    }

    /// Whether this view is at least as knowledgeable as `other`
    /// (failure-set superset and pointwise-later round stamps).
    pub fn dominates(&self, other: &View) -> bool {
        self.f.is_superset(&other.f)
            && self.round_work >= other.round_work
            && self.point_work >= other.point_work
            && self.round.iter().zip(&other.round).all(|(a, b)| a >= b)
    }

    /// Merges a received view into this one (adopting, per group, the
    /// pointer with the later round stamp). Returns `true` if anything
    /// changed.
    pub fn merge(&mut self, other: &View) -> bool {
        let mut changed = false;
        if !other.f.is_subset(&self.f) {
            self.f.extend(other.f.iter().copied());
            changed = true;
        }
        if other.round_work > self.round_work
            || (other.round_work == self.round_work && other.point_work > self.point_work)
        {
            self.round_work = other.round_work;
            self.point_work = other.point_work;
            changed = true;
        }
        for idx in 0..self.point.len() {
            if other.round[idx] > self.round[idx] {
                self.round[idx] = other.round[idx];
                self.point[idx] = other.point[idx];
                changed = true;
            }
        }
        changed
    }
}

/// Messages of Protocol C.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CMsg {
    /// An ordinary message: a (real or fault-detection) work report
    /// carrying the sender's entire view.
    Ordinary(Box<View>),
    /// The fault-detection poll, "Are you alive?".
    AreYouAlive,
    /// The response to a poll.
    Alive,
}

impl Classify for CMsg {
    fn class(&self) -> &'static str {
        match self {
            CMsg::Ordinary(_) => "ordinary",
            CMsg::AreYouAlive => "poll",
            CMsg::Alive => "alive",
        }
    }
}

impl fmt::Display for CMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CMsg::Ordinary(v) => write!(f, "ordinary(m={})", v.reduced()),
            CMsg::AreYouAlive => write!(f, "are-you-alive?"),
            CMsg::Alive => write!(f, "alive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_shape_for_t8() {
        let g = Groups::new(8);
        assert_eq!(g.levels(), 3);
        assert_eq!(g.size(1), 8);
        assert_eq!(g.size(2), 4);
        assert_eq!(g.size(3), 2);
        assert_eq!(g.group_count(), 7);
    }

    #[test]
    fn every_process_has_one_group_per_level() {
        let g = Groups::new(16);
        for i in 0..16 {
            for h in 1..=4 {
                let b = g.block_of(i, h);
                assert!(g.members(h, b).any(|m| m == i));
            }
        }
    }

    #[test]
    fn nested_groups_halve_upward() {
        // G^i_{h+1} ⊂ G^i_h for every i and h.
        let g = Groups::new(16);
        for i in 0..16 {
            for h in 1..4 {
                let outer: Vec<u64> = g.members(h, g.block_of(i, h)).collect();
                let inner: Vec<u64> = g.members(h + 1, g.block_of(i, h + 1)).collect();
                assert!(inner.iter().all(|m| outer.contains(m)));
                assert_eq!(inner.len() * 2, outer.len());
            }
        }
    }

    #[test]
    fn flat_indices_are_a_bijection() {
        let g = Groups::new(16);
        let mut seen = std::collections::BTreeSet::new();
        for h in 1..=g.levels() {
            for b in 0..(g.t() / g.size(h)) {
                assert!(seen.insert(g.flat_index(h, b)));
            }
        }
        assert_eq!(seen.len(), g.group_count());
        assert_eq!(*seen.iter().max().unwrap(), g.group_count() - 1);
    }

    #[test]
    fn successor_cycles_and_skips() {
        let g = Groups::new(8);
        // Level 2, block 0 = {0,1,2,3}; me = 1, f = {2}.
        let f: BTreeSet<u64> = [2].into_iter().collect();
        assert_eq!(g.successor(2, 0, 0, 1, &f), Some(3));
        assert_eq!(g.successor(2, 0, 3, 1, &f), Some(0)); // wraps

        // Everyone else failed: no successor.
        let all: BTreeSet<u64> = [0, 2, 3].into_iter().collect();
        assert_eq!(g.successor(2, 0, 0, 1, &all), None);
    }

    #[test]
    fn normalize_keeps_eligible_pointers() {
        let g = Groups::new(8);
        let f: BTreeSet<u64> = [0].into_iter().collect();
        assert_eq!(g.normalize(2, 0, 3, 1, &f), Some(3));
        assert_eq!(g.normalize(2, 0, 0, 1, &f), Some(2)); // 0 failed -> 2
        assert_eq!(g.normalize(2, 0, 1, 1, &f), Some(2)); // me -> 2
    }

    #[test]
    fn initial_view_points_at_lowest_non_self() {
        let g = Groups::new(4);
        let v = View::initial(g, 0);
        // Level 2 block 0 = {0,1}: lowest non-0 is 1.
        assert_eq!(v.point[g.flat_index(2, 0)], 1);
        // Level 1 = {0..3}: lowest non-0 is 1.
        assert_eq!(v.point[g.flat_index(1, 0)], 1);
        let v2 = View::initial(g, 1);
        assert_eq!(v2.point[g.flat_index(2, 0)], 0);
        assert_eq!(v.reduced(), 0);
    }

    #[test]
    fn merge_takes_later_round_stamps() {
        let g = Groups::new(4);
        let mut a = View::initial(g, 0);
        let mut b = View::initial(g, 1);
        b.f.insert(2);
        b.point_work = 5;
        b.round_work = Round::from(9u64);
        b.point[0] = 3;
        b.round[0] = Round::from(9u64);
        assert!(a.merge(&b));
        assert_eq!(a.point_work, 5);
        assert!(a.f.contains(&2));
        assert_eq!(a.point[0], 3);
        assert_eq!(a.reduced(), 5);
        // Merging an older view changes nothing.
        assert!(!a.merge(&View::initial(g, 1)));
        // And the merged view dominates both sources.
        assert!(a.dominates(&b));
        assert!(a.dominates(&View::initial(g, 0)));
        // b does not dominate a in the f-component... (a == b ∪ older now)
        b.f.insert(3);
        assert!(!a.dominates(&b));
    }

    #[test]
    fn reduced_view_counts_work_and_failures() {
        let g = Groups::new(4);
        let mut v = View::initial(g, 0);
        assert_eq!(v.reduced(), 0);
        v.point_work = 4;
        assert_eq!(v.reduced(), 3);
        v.f.insert(1);
        v.f.insert(2);
        assert_eq!(v.reduced(), 5);
    }

    #[test]
    fn validate_c_enforces_assumptions() {
        assert!(validate_c(10, 6, false).is_err());
        assert!(validate_c(10, 0, false).is_err());
        assert!(validate_c(0, 4, false).is_err());
        assert!(validate_c(10, 4, false).is_ok()); // C: no divisibility needed
        assert!(validate_c(10, 4, true).is_err()); // C': needs t | n
        assert!(validate_c(12, 4, true).is_ok());
    }

    #[test]
    fn message_classes() {
        let g = Groups::new(4);
        assert_eq!(CMsg::Ordinary(Box::new(View::initial(g, 0))).class(), "ordinary");
        assert_eq!(CMsg::AreYouAlive.class(), "poll");
        assert_eq!(CMsg::Alive.class(), "alive");
    }
}
