//! The Protocol C per-process state machine (Figure 3 + the inactive-side
//! deadline rules of §3.1).

use doall_bounds::CParams;
use doall_sim::{Effects, Inbox, Pid, Protocol, Round, Unit};

use super::{validate_c, CMsg, Groups, View};
use crate::error::ConfigError;

#[derive(Clone, Debug, PartialEq, Eq)]
enum CState {
    /// Waiting for messages; becomes active at `deadline`.
    Passive {
        deadline: Round,
    },
    /// Active, about to send an `Are you alive?` poll at level `h`
    /// (`h = 0` means fault detection is complete — fall through to work).
    DetectSend {
        h: u32,
    },
    /// Active, waiting for the response from `target` (polled at `sent_at`;
    /// the verdict is in at `sent_at + 2`).
    DetectWait {
        h: u32,
        target: u64,
        sent_at: Round,
    },
    /// Active at level 0: perform the next unit of real work.
    Work,
    /// Active at level 0: report progress to the level-1 pointer.
    Report,
    Done,
}

/// One process of Protocol C (or C′ when built with
/// [`ProtocolC::processes_prime`]).
///
/// # Examples
///
/// ```
/// use doall_core::c::protocol_c::ProtocolC;
/// use doall_sim::{run, NoFailures, RunConfig};
///
/// let procs = ProtocolC::processes(8, 4)?;
/// let report = run(procs, NoFailures, RunConfig::new(8, u64::MAX))?;
/// assert!(report.metrics.all_work_done());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolC {
    params: CParams,
    groups: Groups,
    j: u64,
    view: View,
    state: CState,
    units_since_report: u64,
    /// Set by a stale crash-recovery that found the state already
    /// [`CState::Done`]: the crash preempted the final step's terminate,
    /// so the next step must retire for real.
    retire_next_step: bool,
}

impl ProtocolC {
    /// Creates process `j` of an `(n, t)` system.
    pub fn new(params: CParams, j: u64) -> Self {
        let groups = Groups::new(params.t);
        let state = if j == 0 {
            // "Initially process 0 is active": it starts fault detection at
            // the deepest level in round 1.
            CState::DetectSend { h: groups.levels() }
        } else {
            CState::Passive { deadline: Round::ZERO.saturating_add(params.d(j, 0)) }
        };
        ProtocolC {
            params,
            groups,
            j,
            view: View::initial(groups, j),
            state,
            units_since_report: 0,
            retire_next_step: false,
        }
    }

    /// Creates the `t` processes of Protocol C for `n` units of work
    /// (reporting after every unit).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `t` is a power of two (`>= 2`).
    pub fn processes(n: u64, t: u64) -> Result<Vec<ProtocolC>, ConfigError> {
        let params = validate_c(n, t, false)?;
        Ok((0..t).map(|j| ProtocolC::new(params, j)).collect())
    }

    /// Creates the `t` processes of the Corollary 3.9 variant C′
    /// (reporting to `G_1` only after every `n/t` units of real work),
    /// which sends only `O(t log t)` messages.
    ///
    /// # Errors
    ///
    /// As [`ProtocolC::processes`], plus `t` must divide `n`.
    pub fn processes_prime(n: u64, t: u64) -> Result<Vec<ProtocolC>, ConfigError> {
        let params = validate_c(n, t, true)?;
        Ok((0..t).map(|j| ProtocolC::new(params, j)).collect())
    }

    /// This process's current view (for tests and diagnostics).
    pub fn view(&self) -> &View {
        &self.view
    }

    fn n(&self) -> u64 {
        self.params.n
    }

    fn level_pointer(&self, h: u32) -> u64 {
        self.view.point[self.groups.flat_index(h, self.groups.block_of(self.j, h))]
    }

    /// Sends an ordinary report to the current pointer of our level-`h`
    /// group (normalized past known failures), stamping the pointer state
    /// into the outgoing view so the recipient learns it was served.
    /// Returns `true` if a message went out.
    fn send_report(&mut self, h: u32, round: Round, eff: &mut Effects<CMsg>) -> bool {
        let block = self.groups.block_of(self.j, h);
        let idx = self.groups.flat_index(h, block);
        let Some(target) =
            self.groups.normalize(h, block, self.view.point[idx], self.j, &self.view.f)
        else {
            return false; // everyone else in the group is known retired
        };
        let next = self
            .groups
            .successor(h, block, target, self.j, &self.view.f)
            .expect("target itself is eligible, so a successor exists");
        self.view.round[idx] = round;
        self.view.point[idx] = next;
        eff.send(Pid::new(target as usize), CMsg::Ordinary(Box::new(self.view.clone())));
        true
    }

    /// Drives the active state machine for this round. May consume the
    /// round with a send/work op, or fall through several bookkeeping-only
    /// transitions first.
    fn dispatch(&mut self, round: Round, inbox: Inbox<'_, CMsg>, eff: &mut Effects<CMsg>) {
        loop {
            match self.state.clone() {
                CState::DetectSend { h: 0 } => {
                    self.state = CState::Work;
                }
                CState::DetectSend { h } => {
                    let block = self.groups.block_of(self.j, h);
                    let point = self.level_pointer(h);
                    match self.groups.normalize(h, block, point, self.j, &self.view.f) {
                        Some(target) => {
                            eff.send(Pid::new(target as usize), CMsg::AreYouAlive);
                            self.state = CState::DetectWait { h, target, sent_at: round };
                            return;
                        }
                        None => {
                            // Everyone else here is known retired; descend.
                            self.state = CState::DetectSend { h: h - 1 };
                        }
                    }
                }
                CState::DetectWait { h, target, sent_at } => {
                    if round < sent_at + 2u64 {
                        return; // the response round
                    }
                    let responded = inbox.iter().any(|(from, msg)| {
                        from.index() as u64 == target && matches!(msg, CMsg::Alive)
                    });
                    if responded {
                        // Someone in G^i_h is alive: this level is covered.
                        self.state = CState::DetectSend { h: h - 1 };
                        continue;
                    }
                    // Failure detected.
                    self.view.f.insert(target);
                    let block = self.groups.block_of(self.j, h);
                    let has_more = self
                        .groups
                        .successor(h, block, target, self.j, &self.view.f)
                        .map(|next| {
                            let idx = self.groups.flat_index(h, block);
                            self.view.point[idx] = next;
                        })
                        .is_some();
                    let next_state = if has_more {
                        CState::DetectSend { h }
                    } else {
                        CState::DetectSend { h: h - 1 }
                    };
                    // Report the failure one level up (not at the top level).
                    if h != self.groups.levels() && self.send_report(h + 1, round, eff) {
                        self.state = next_state;
                        return; // the report consumed this round's send
                    }
                    self.state = next_state;
                }
                CState::Work => {
                    if self.view.point_work > self.n() {
                        // Nothing left (knowledge might have said so already
                        // at activation); retire quietly.
                        eff.terminate();
                        self.state = CState::Done;
                        return;
                    }
                    let unit = self.view.point_work;
                    eff.perform(Unit::new(unit as usize));
                    self.view.point_work += 1;
                    self.view.round_work = round;
                    self.units_since_report += 1;
                    let all_done = self.view.point_work > self.n();
                    if all_done || self.units_since_report >= self.params.report_stride {
                        self.state = CState::Report;
                    }
                    return;
                }
                CState::Report => {
                    self.send_report(1, round, eff);
                    self.units_since_report = 0;
                    if self.view.point_work > self.n() {
                        // Figure 3: once point[G_0] = n + 1, halt (right
                        // after the final report).
                        eff.terminate();
                        self.state = CState::Done;
                    } else {
                        self.state = CState::Work;
                    }
                    return;
                }
                CState::Passive { .. } | CState::Done => return,
            }
        }
    }
}

impl Protocol for ProtocolC {
    type Msg = CMsg;

    fn step(&mut self, round: Round, inbox: Inbox<'_, CMsg>, eff: &mut Effects<CMsg>) {
        if self.retire_next_step {
            // Post-recovery retirement: the crash preempted the step that
            // reached `Done`, so the engine never saw our terminate.
            self.retire_next_step = false;
            eff.terminate();
            self.state = CState::Done;
            return;
        }
        if matches!(self.state, CState::Done) {
            return;
        }

        let passive = matches!(self.state, CState::Passive { .. });
        if passive {
            // Inactive non-retired processes answer polls...
            for (from, msg) in inbox.iter() {
                if matches!(msg, CMsg::AreYouAlive) {
                    eff.send(from, CMsg::Alive);
                }
            }
            // ...and merge ordinary messages, resetting their deadline.
            let mut got_ordinary = false;
            for (from, msg) in inbox.iter() {
                if let CMsg::Ordinary(view) = msg {
                    debug_assert!(
                        view.dominates(&self.view) || self.view.dominates(view),
                        "Lemma 3.4(c) violated: incomparable views at {} (from {})",
                        self.j,
                        from,
                    );
                    self.view.merge(view);
                    got_ordinary = true;
                }
            }
            if got_ordinary {
                if self.view.point_work > self.n() {
                    // All work done: halt.
                    eff.terminate();
                    self.state = CState::Done;
                    return;
                }
                let m = self.view.reduced();
                self.state =
                    CState::Passive { deadline: round.saturating_add(self.params.d(self.j, m)) };
                return;
            }
            let CState::Passive { deadline } = self.state else { unreachable!() };
            if round >= deadline {
                eff.note("activate");
                self.state = CState::DetectSend { h: self.groups.levels() };
                self.dispatch(round, inbox, eff);
            }
            return;
        }

        // Active: drive the Figure 3 machine. Incoming ordinary messages
        // cannot occur while active (Lemma 3.4: the active process is the
        // most knowledgeable, nobody else sends); polls cannot occur either
        // (only active processes poll, and there is at most one).
        self.dispatch(round, inbox, eff);
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.retire_next_step {
            return Some(now);
        }
        match self.state {
            CState::Done => None,
            CState::Passive { deadline } => Some(deadline.max(now)),
            CState::DetectWait { sent_at, .. } => Some((sent_at + 2u64).max(now)),
            _ => Some(now),
        }
    }

    fn on_recover(&mut self, _round: Round, wipe: bool) {
        if wipe {
            // Full reset to the initial configuration. The initial deadline
            // has usually long passed, so the next step goes active and the
            // `Are you alive?` sweep re-integrates the process safely.
            *self = ProtocolC::new(self.params, self.j);
        } else if matches!(self.state, CState::Done) {
            // The crash preempted the step that reached `Done`: the engine
            // recorded the crash instead of our terminate, so retire again.
            self.retire_next_step = true;
        }
        // Other stale states need no adjustment: a passed deadline simply
        // activates the process, whose fault-detection sweep resynchronises
        // its view before it performs any work.
    }
}

#[cfg(test)]
mod tests {
    use doall_bounds::theorems;
    use doall_sim::invariants::{check_sequential_work, check_single_active};
    use doall_sim::{
        run, CrashSchedule, CrashSpec, Deliver, NoFailures, Pid, RunConfig, Trigger,
        TriggerAdversary, TriggerRule,
    };

    use super::*;

    fn cfg(n: u64) -> RunConfig {
        RunConfig::new(n as usize, u64::MAX - 1).with_trace()
    }

    fn bounds_hold(report: &doall_sim::Report, n: u64, t: u64) {
        let b = theorems::protocol_c(n, t);
        assert!(
            report.metrics.work_total <= b.work,
            "work {} exceeds Theorem 3.8 bound {}",
            report.metrics.work_total,
            b.work
        );
        assert!(
            report.metrics.messages <= b.messages,
            "messages {} exceed Theorem 3.8 bound {}",
            report.metrics.messages,
            b.messages
        );
        assert!(report.metrics.rounds <= b.rounds, "rounds exceed Theorem 3.8 bound");
    }

    fn invariants_hold(report: &doall_sim::Report) {
        assert!(
            check_single_active(&report.trace).is_empty(),
            "two simultaneously active processes (Lemma 3.4(d) violated)"
        );
        assert!(check_sequential_work(&report.trace).is_empty());
    }

    #[test]
    fn failure_free_small_run_completes_exactly() {
        let report = run(ProtocolC::processes(8, 4).unwrap(), NoFailures, cfg(8)).unwrap();
        assert!(report.metrics.all_work_done());
        // p0 does all 8 units; survivors that time out uninformed redo a
        // bounded suffix.
        assert!(report.metrics.work_total >= 8);
        assert_eq!(report.metrics.crashes, 0);
        bounds_hold(&report, 8, 4);
        invariants_hold(&report);
    }

    #[test]
    fn failure_free_run_is_deterministic() {
        let a = run(ProtocolC::processes(8, 4).unwrap(), NoFailures, cfg(8)).unwrap();
        let b = run(ProtocolC::processes(8, 4).unwrap(), NoFailures, cfg(8)).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn dead_process_zero_makes_highest_process_take_over() {
        // D(i, 0) decreases with i: with no knowledge anywhere, the
        // highest-numbered process must be the first to time out.
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::silent());
        let report = run(ProtocolC::processes(8, 4).unwrap(), adv, cfg(8)).unwrap();
        assert!(report.metrics.all_work_done());
        let first_takeover = report.trace.notes("activate").next().unwrap();
        assert_eq!(first_takeover.1, Pid::new(3));
        bounds_hold(&report, 8, 4);
        invariants_hold(&report);
    }

    #[test]
    fn crash_mid_work_is_recovered_by_most_knowledgeable() {
        // p0 dies right after performing unit 3 unreported. The last
        // process it reported to (unit 2's recipient) knows most and must
        // take over before anyone less knowledgeable.
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth: 3 },
            target: None,
            spec: CrashSpec { deliver: Deliver::None, count_work: true },
        }]);
        let report = run(ProtocolC::processes(8, 4).unwrap(), adv, cfg(8)).unwrap();
        assert!(report.metrics.all_work_done());
        // Unit 3 was performed by p0 (counted) and redone by the successor.
        assert!(report.metrics.work_by_unit[2] >= 2);
        bounds_hold(&report, 8, 4);
        invariants_hold(&report);
    }

    #[test]
    fn cascade_of_takeover_crashes_respects_theorem_3_8() {
        // Every process crashes right after its first unit of real work —
        // maximal unreported-work waste.
        let rules: Vec<TriggerRule> = (0..7)
            .map(|j| TriggerRule {
                trigger: Trigger::NthWorkBy { pid: Pid::new(j), nth: 1 },
                target: None,
                spec: CrashSpec { deliver: Deliver::None, count_work: true },
            })
            .collect();
        let report =
            run(ProtocolC::processes(8, 8).unwrap(), TriggerAdversary::new(rules), cfg(8)).unwrap();
        assert!(report.metrics.all_work_done());
        // Not every trigger fires: a process that learns all work is done
        // halts without ever working, so its crash never happens. But the
        // first worker always crashes, and nobody survives *and* works.
        assert!(report.metrics.crashes >= 1 && report.metrics.crashes < 8);
        assert_eq!(report.metrics.crashes + report.metrics.terminations, 8);
        bounds_hold(&report, 8, 8);
        invariants_hold(&report);
    }

    #[test]
    fn fault_detection_prevents_quadratic_rework() {
        // The §3 strawman scenario: p0 performs a prefix then dies; half
        // the processes die silently. Fault detection must keep total work
        // within n + 2t (the naive algorithm would pay Θ(n + t²)).
        let t: u64 = 8;
        let n: u64 = 16;
        let mut rules = vec![TriggerRule {
            trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth: (t - 1) },
            target: None,
            spec: CrashSpec { deliver: Deliver::None, count_work: true },
        }];
        for j in t / 2 + 1..t {
            rules.push(TriggerRule {
                trigger: Trigger::AtRound(Round::from(2u64)),
                target: Some(Pid::new(j as usize)),
                spec: CrashSpec::silent(),
            });
        }
        let report =
            run(ProtocolC::processes(n, t).unwrap(), TriggerAdversary::new(rules), cfg(n)).unwrap();
        assert!(report.metrics.all_work_done());
        bounds_hold(&report, n, t);
        invariants_hold(&report);
    }

    #[test]
    fn crash_sweep_never_produces_two_actives() {
        // Kill the active process after its k-th operation for a sweep of
        // k: the successor's deadline arithmetic (Lemma 3.4) must hold at
        // every cut point.
        for k in 1..=14 {
            let adv = TriggerAdversary::new(vec![TriggerRule {
                trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: k },
                target: None,
                spec: CrashSpec { deliver: Deliver::Prefix(0), count_work: true },
            }]);
            let report = run(ProtocolC::processes(6, 4).unwrap(), adv, cfg(6)).unwrap();
            assert!(report.metrics.all_work_done(), "k = {k}");
            invariants_hold(&report);
            bounds_hold(&report, 6, 4);
        }
    }

    #[test]
    fn partial_report_delivery_keeps_views_ordered() {
        // p0 crashes while sending a report: the report still reaches its
        // single recipient or nobody — knowledge stays totally ordered
        // either way (the merge debug_assert checks Lemma 3.4(c) live).
        for prefix in [0usize, 1] {
            let adv = TriggerAdversary::new(vec![TriggerRule {
                trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: 4 },
                target: None,
                spec: CrashSpec { deliver: Deliver::Prefix(prefix), count_work: true },
            }]);
            let report = run(ProtocolC::processes(6, 4).unwrap(), adv, cfg(6)).unwrap();
            assert!(report.metrics.all_work_done(), "prefix = {prefix}");
            invariants_hold(&report);
        }
    }

    #[test]
    fn c_prime_reports_once_per_stride() {
        let report = run(ProtocolC::processes_prime(32, 4).unwrap(), NoFailures, cfg(32)).unwrap();
        assert!(report.metrics.all_work_done());
        let b = theorems::protocol_c_prime(32, 4);
        assert!(
            report.metrics.messages <= b.messages,
            "C' messages {} exceed Corollary 3.9 bound {}",
            report.metrics.messages,
            b.messages
        );
        // Far fewer ordinary messages than units of work.
        let ordinary = report.metrics.messages_by_class.get("ordinary").copied().unwrap_or(0);
        assert!(ordinary < 32, "stride reporting must beat per-unit reporting");
        invariants_hold(&report);
    }

    #[test]
    fn c_prime_message_savings_grow_with_n() {
        // Same t, quadruple n: C's messages grow linearly, C′'s stay flat.
        let msgs = |n: u64, prime: bool| {
            let procs = if prime {
                ProtocolC::processes_prime(n, 4).unwrap()
            } else {
                ProtocolC::processes(n, 4).unwrap()
            };
            run(procs, NoFailures, cfg(n)).unwrap().metrics.messages
        };
        let (c_small, c_big) = (msgs(16, false), msgs(64, false));
        let (cp_small, cp_big) = (msgs(16, true), msgs(64, true));
        assert!(c_big >= c_small + 40, "C grows with n: {c_small} -> {c_big}");
        assert!(cp_big <= cp_small + 8, "C' stays near-flat: {cp_small} -> {cp_big}");
    }

    #[test]
    fn survivors_eventually_halt_even_if_never_informed() {
        // Crash the active process right after its final report: the
        // remaining processes must time out, re-detect, possibly redo a
        // suffix, and still all retire.
        let adv = TriggerAdversary::new(vec![TriggerRule {
            trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth: 6 },
            target: None,
            spec: CrashSpec { deliver: Deliver::None, count_work: true },
        }]);
        let report = run(ProtocolC::processes(6, 4).unwrap(), adv, cfg(6)).unwrap();
        assert!(report.metrics.all_work_done());
        assert_eq!(
            report.metrics.crashes + report.metrics.terminations,
            4,
            "every process must retire"
        );
        bounds_hold(&report, 6, 4);
    }

    #[test]
    fn rejects_invalid_configurations() {
        assert!(ProtocolC::processes(8, 6).is_err());
        assert!(ProtocolC::processes(8, 0).is_err());
        assert!(ProtocolC::processes(0, 4).is_err());
        assert!(ProtocolC::processes_prime(10, 4).is_err());
        assert!(ProtocolC::processes_prime(12, 4).is_ok());
    }
}
