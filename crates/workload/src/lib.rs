//! # doall-workload
//!
//! Workload scenarios for the Do-All protocol suite: named crash schedules
//! (the adversaries behind the paper's worst-case arguments) and realistic
//! idempotent task bindings (the valve bank and boolean-formula sweeps of
//! §1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod scenario;
pub mod tasks;

#[allow(deprecated)]
pub use scenario::AsyncScenario;
pub use scenario::Scenario;
pub use tasks::{FormulaSweep, IdempotentTask, ValveBank};
