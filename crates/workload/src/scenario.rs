//! Named failure scenarios: the crash schedules the paper's proofs and
//! examples revolve around, packaged for reuse by tests, examples and the
//! experiment harness.
//!
//! Since PR 10 there is **one** scenario vocabulary for both planes: every
//! [`Scenario`] lowers to a synchronous adversary via
//! [`Scenario::adversary`] *and* to an asynchronous one via
//! [`Scenario::async_adversary`]. The old `AsyncScenario` twin enum is a
//! deprecated alias kept for source compatibility.

use doall_sim::asynch::{
    AsyncAdversary, AsyncCrashSchedule, AsyncRandomCrashes, AsyncTrigger, AsyncTriggerAdversary,
    AsyncTriggerRule,
};
use doall_sim::chaos::{ChaosCase, ChaosConfig};
use doall_sim::{
    Adversary, CrashSchedule, CrashSpec, Deliver, FaultKind, FaultPlan, NoFailures, Pid,
    RandomCrashes, Round, Trigger, TriggerAdversary, TriggerRule,
};

/// A named, parameterized failure scenario, usable on **either plane**.
///
/// Each variant builds a fresh adversary via [`Scenario::adversary`]
/// (synchronous rounds) or [`Scenario::async_adversary`] (event-driven
/// timestamps); the same scenario value can drive any protocol
/// (adversaries are generic in the message type).
///
/// Round-indexed parameters are interpreted on the asynchronous plane as
/// virtual **timestamps** (crash injections, omission windows) or
/// **handler-invocation ordinals** (slowdown windows) — the same reading
/// [`FaultPlan`] itself uses on that plane. Behaviour-triggered scenarios
/// ([`TakeoverCascade`](Scenario::TakeoverCascade),
/// [`KillNthActivation`](Scenario::KillNthActivation)) carry over exactly.
///
/// # Examples
///
/// ```
/// use doall_workload::Scenario;
/// use doall_core::ProtocolB;
/// use doall_sim::{run, RunConfig};
///
/// let scenario = Scenario::TakeoverCascade { victims: 15 };
/// let report = run(
///     ProtocolB::processes(32, 16)?,
///     scenario.adversary::<doall_core::ab::AbMsg>(),
///     RunConfig::new(32, 100_000),
/// )?;
/// assert!(report.metrics.all_work_done());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Scenario {
    /// No process ever fails.
    FailureFree,
    /// Processes `0..k` crash silently in round 1 (dead on arrival). On
    /// the asynchronous plane they crash on their first handler
    /// invocation (their start signal).
    DeadOnArrival {
        /// Number of initial victims.
        k: u64,
    },
    /// Every process among the first `victims` crashes immediately after
    /// performing its first unit of work, unreported — the scenario behind
    /// the `n + t − 1` work lower bound. Behaviour-triggered, so it means
    /// the same thing on both planes.
    TakeoverCascade {
        /// Number of cascade victims (use `t − 1` to spare one survivor).
        victims: u64,
    },
    /// Each of the first `victims` processes dies on its `nth` *sending*
    /// round, delivering only a length-`prefix` prefix of that broadcast —
    /// the mid-checkpoint splits of §2's analysis. Asynchronous handlers
    /// have no sending rounds, so there the crash strikes the victim's
    /// `nth` handler invocation instead (same prefix semantics).
    CheckpointSplit {
        /// Number of victims.
        victims: u64,
        /// Which sending round (sync) / handler invocation (async) kills
        /// each victim (1-based).
        nth_send: u64,
        /// How many messages of the final broadcast escape.
        prefix: usize,
    },
    /// The §3 strawman cascade: process 0 dies after performing `t − 1`
    /// units; the top half of the processes dies; each successive
    /// most-knowledgeable survivor redoes the suffix and dies too. The
    /// asynchronous lowering keeps the work-triggered rules and kills the
    /// top half on their start signal (asynchronous time has no round
    /// `2t` to anchor the mid-run extinction to).
    Strawman {
        /// System size `t` (used to derive the victim set).
        t: u64,
    },
    /// Seeded random crashes with budget `max_crashes`. Per-round
    /// per-process probability on the synchronous plane, per-handler-
    /// invocation probability on the asynchronous one.
    Random {
        /// RNG seed (runs are reproducible).
        seed: u64,
        /// Per-round (sync) / per-invocation (async) crash probability.
        p: f64,
        /// Total crash budget (use `t − 1` for a guaranteed survivor).
        max_crashes: u32,
    },
    /// Kills the `nth` process ever to emit the `"activate"` note, right
    /// on its activation with nothing delivered — the takeover-cascade
    /// driver in note-speak, identical on both planes (the sync lowering
    /// rides [`Trigger::NthNote`], the async one
    /// [`AsyncTrigger::NthNote`]).
    KillNthActivation {
        /// Which activation to strike (1-based).
        nth: u64,
    },
    /// Crash `k` processes (pids `from..from+k`) at the given round — the
    /// mass-extinction trigger for Protocol D's fallback. Asynchronously,
    /// `round` is the injection timestamp.
    MassExtinction {
        /// First victim pid.
        from: u64,
        /// Number of victims.
        k: u64,
        /// Round (sync) / timestamp (async) at which they all die.
        round: u64,
    },
    /// The wide-clock *deep idle* scenario: every passive process (pids
    /// `1..=k`) crashes silently at one far-future instant, astronomically
    /// beyond the active process's completion round. Between completion
    /// and the extinction the system is perfectly silent, so the engine
    /// must cross the whole stretch in a single sparse fast-forward jump —
    /// with instants beyond 2⁶⁴ only representable on the 128-bit clock.
    /// Already-retired victims are ignored, so the scenario composes with
    /// protocols that terminate some of the passive processes early.
    DeepIdle {
        /// Number of victims (pids `1..=k`).
        k: u64,
        /// The extinction instant (typically `Round::new(1 << 100)`).
        round: Round,
    },
    /// Beyond fail-stop: `pid` crashes silently at `round` and restarts
    /// `downtime` rounds later — wiped to its initial state or stale —
    /// then must rejoin without violating task-completion safety.
    CrashRecovery {
        /// The victim.
        pid: u64,
        /// The crash round (sync) / timestamp (async).
        round: u64,
        /// Rounds / time units of downtime before the restart.
        downtime: u64,
        /// Whether the restart loses all protocol state.
        wipe: bool,
    },
    /// Beyond fail-stop: `pid` runs at `1/factor` speed for `rounds`
    /// rounds starting at `from` (handler-invocation ordinals on the
    /// asynchronous plane). Wrapper-enforced — callers must also wrap the
    /// processes with [`Scenario::fault_plan`]'s [`FaultPlan::wrap`] /
    /// [`FaultPlan::wrap_async`]; the adversary half of the plan is a
    /// no-op for this kind.
    Slowdown {
        /// The degraded process.
        pid: u64,
        /// First round (sync) / invocation ordinal (async) of the window.
        from: u64,
        /// Slow-down factor (`4` = quarter speed).
        factor: u64,
        /// Length of the window in rounds / invocations.
        rounds: u64,
    },
    /// Beyond fail-stop: messages sent by (`send = true`) or addressed to
    /// (`send = false`) `pid` are silently dropped for `rounds` rounds
    /// (time units) starting at `from`; the process itself keeps running.
    Omission {
        /// The afflicted process.
        pid: u64,
        /// Send-side (`true`) or receive-side (`false`) omission.
        send: bool,
        /// First round (sync) / timestamp (async) of the omission window.
        from: u64,
        /// Length of the window in rounds / time units.
        rounds: u64,
    },
    /// A seeded random chaos storm from the
    /// [`chaos`](doall_sim::chaos) generator: crashes, recoveries,
    /// slowdowns and omissions composed under budget constraints (never
    /// all `t` processes permanently crashed, windows bounded, at most
    /// one crash-kind fault per process). If the generated plan contains
    /// [`Slow`](FaultKind::Slow) faults, callers must also wrap the
    /// processes with [`FaultPlan::wrap`] / [`FaultPlan::wrap_async`] on
    /// this plan.
    Chaos {
        /// The generator seed (runs are reproducible).
        seed: u64,
        /// System size the storm is budgeted for.
        t: u64,
        /// Workload size.
        n: u64,
    },
}

impl Scenario {
    /// Builds the **synchronous** adversary for this scenario.
    pub fn adversary<M>(&self) -> Box<dyn Adversary<M>>
    where
        M: 'static,
    {
        match *self {
            Scenario::FailureFree => Box::new(NoFailures),
            Scenario::DeadOnArrival { k } => {
                let mut s = CrashSchedule::new();
                for j in 0..k {
                    s = s.crash_at(Pid::new(j as usize), 1, CrashSpec::silent());
                }
                Box::new(s)
            }
            Scenario::TakeoverCascade { victims } => {
                let rules = (0..victims)
                    .map(|j| TriggerRule {
                        trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: 1 },
                        target: None,
                        spec: CrashSpec { deliver: Deliver::None, count_work: true },
                    })
                    .collect();
                Box::new(TriggerAdversary::new(rules))
            }
            Scenario::CheckpointSplit { victims, nth_send, prefix } => {
                let rules = (0..victims)
                    .map(|j| TriggerRule {
                        trigger: Trigger::NthSendRoundBy {
                            pid: Pid::new(j as usize),
                            nth: nth_send,
                        },
                        target: None,
                        spec: CrashSpec { deliver: Deliver::Prefix(prefix), count_work: true },
                    })
                    .collect();
                Box::new(TriggerAdversary::new(rules))
            }
            Scenario::Strawman { t } => {
                let mut rules = vec![TriggerRule {
                    trigger: Trigger::NthWorkBy {
                        pid: Pid::new(0),
                        nth: t.saturating_sub(1).max(1),
                    },
                    target: None,
                    spec: CrashSpec { deliver: Deliver::All, count_work: true },
                }];
                for j in t / 2 + 1..t {
                    rules.push(TriggerRule {
                        trigger: Trigger::AtRound(Round::from(2 * t)),
                        target: Some(Pid::new(j as usize)),
                        spec: CrashSpec::silent(),
                    });
                }
                for j in (2..=t / 2).rev() {
                    let redo = t.saturating_sub(1 + j);
                    if redo == 0 {
                        continue;
                    }
                    rules.push(TriggerRule {
                        trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: redo },
                        target: None,
                        spec: CrashSpec { deliver: Deliver::None, count_work: true },
                    });
                }
                Box::new(TriggerAdversary::new(rules))
            }
            Scenario::Random { seed, p, max_crashes } => {
                Box::new(RandomCrashes::new(seed, p, max_crashes))
            }
            Scenario::KillNthActivation { nth } => {
                Box::new(TriggerAdversary::new(vec![TriggerRule {
                    trigger: Trigger::NthNote { tag: "activate", nth },
                    target: None,
                    spec: CrashSpec { deliver: Deliver::None, count_work: true },
                }]))
            }
            Scenario::MassExtinction { from, k, round } => {
                let mut s = CrashSchedule::new();
                for j in from..from + k {
                    s = s.crash_at(Pid::new(j as usize), round, CrashSpec::silent());
                }
                Box::new(s)
            }
            Scenario::DeepIdle { k, round } => {
                let mut s = CrashSchedule::new();
                for j in 1..=k {
                    s = s.crash_at(Pid::new(j as usize), round, CrashSpec::silent());
                }
                Box::new(s)
            }
            Scenario::CrashRecovery { .. }
            | Scenario::Slowdown { .. }
            | Scenario::Omission { .. }
            | Scenario::Chaos { .. } => Box::new(self.fault_plan()),
        }
    }

    /// Builds the **asynchronous** adversary for this scenario.
    ///
    /// Every variant lowers: behaviour-triggered scenarios carry over
    /// exactly; round-indexed ones read their rounds as timestamps (or,
    /// for [`Slowdown`](Scenario::Slowdown), invocation ordinals); the
    /// [`Strawman`](Scenario::Strawman) and
    /// [`CheckpointSplit`](Scenario::CheckpointSplit) interpretations are
    /// documented on the variants.
    pub fn async_adversary<M>(&self) -> Box<dyn AsyncAdversary<M>>
    where
        M: 'static,
    {
        match *self {
            Scenario::FailureFree => Box::new(NoFailures),
            Scenario::DeadOnArrival { k } => {
                let mut s = AsyncCrashSchedule::new();
                for j in 0..k {
                    s = s.crash_at(Pid::new(j as usize), 1, CrashSpec::silent());
                }
                Box::new(s)
            }
            Scenario::TakeoverCascade { victims } => {
                let rules = (0..victims)
                    .map(|j| AsyncTriggerRule {
                        trigger: AsyncTrigger::NthWorkBy { pid: Pid::new(j as usize), nth: 1 },
                        spec: CrashSpec { deliver: Deliver::None, count_work: true },
                    })
                    .collect();
                Box::new(AsyncTriggerAdversary::new(rules))
            }
            Scenario::CheckpointSplit { victims, nth_send, prefix } => {
                let rules = (0..victims)
                    .map(|j| AsyncTriggerRule {
                        trigger: AsyncTrigger::NthInvocationOf {
                            pid: Pid::new(j as usize),
                            nth: nth_send,
                        },
                        spec: CrashSpec { deliver: Deliver::Prefix(prefix), count_work: true },
                    })
                    .collect();
                Box::new(AsyncTriggerAdversary::new(rules))
            }
            Scenario::Strawman { t } => {
                let mut rules = vec![AsyncTriggerRule {
                    trigger: AsyncTrigger::NthWorkBy {
                        pid: Pid::new(0),
                        nth: t.saturating_sub(1).max(1),
                    },
                    spec: CrashSpec { deliver: Deliver::All, count_work: true },
                }];
                for j in t / 2 + 1..t {
                    rules.push(AsyncTriggerRule {
                        trigger: AsyncTrigger::NthInvocationOf {
                            pid: Pid::new(j as usize),
                            nth: 1,
                        },
                        spec: CrashSpec::silent(),
                    });
                }
                for j in (2..=t / 2).rev() {
                    let redo = t.saturating_sub(1 + j);
                    if redo == 0 {
                        continue;
                    }
                    rules.push(AsyncTriggerRule {
                        trigger: AsyncTrigger::NthWorkBy { pid: Pid::new(j as usize), nth: redo },
                        spec: CrashSpec { deliver: Deliver::None, count_work: true },
                    });
                }
                Box::new(AsyncTriggerAdversary::new(rules))
            }
            Scenario::Random { seed, p, max_crashes } => {
                Box::new(AsyncRandomCrashes::new(seed, p, max_crashes))
            }
            Scenario::KillNthActivation { nth } => {
                Box::new(AsyncTriggerAdversary::new(vec![AsyncTriggerRule {
                    trigger: AsyncTrigger::NthNote { tag: "activate", nth },
                    spec: CrashSpec { deliver: Deliver::None, count_work: true },
                }]))
            }
            Scenario::MassExtinction { from, k, round } => {
                let faults =
                    (from..from + k).map(|j| FaultKind::Crash(Pid::new(j as usize)).at(round));
                Box::new(FaultPlan::new(faults))
            }
            Scenario::DeepIdle { k, round } => {
                let faults = (1..=k).map(|j| FaultKind::Crash(Pid::new(j as usize)).at(round));
                Box::new(FaultPlan::new(faults))
            }
            Scenario::CrashRecovery { .. }
            | Scenario::Slowdown { .. }
            | Scenario::Omission { .. }
            | Scenario::Chaos { .. } => Box::new(self.fault_plan()),
        }
    }

    /// The catalog [`FaultPlan`] behind this scenario — empty for the
    /// fail-stop scenarios. For [`Slowdown`](Scenario::Slowdown) the plan
    /// must *also* wrap the processes ([`FaultPlan::wrap`] /
    /// [`FaultPlan::wrap_async`]); for the other fault scenarios the plan
    /// doubles as the adversary that [`Scenario::adversary`] and
    /// [`Scenario::async_adversary`] already return.
    pub fn fault_plan(&self) -> FaultPlan {
        match *self {
            Scenario::CrashRecovery { pid, round, downtime, wipe } => {
                FaultPlan::new([FaultKind::CrashRecover {
                    pid: Pid::new(pid as usize),
                    downtime,
                    wipe,
                }
                .at(round)])
            }
            Scenario::Slowdown { pid, from, factor, rounds } => {
                FaultPlan::new([FaultKind::Slow { pid: Pid::new(pid as usize), factor }
                    .at(from)
                    .for_rounds(rounds)])
            }
            Scenario::Omission { pid, send, from, rounds } => {
                let p = Pid::new(pid as usize);
                let kind = if send { FaultKind::OmitSends(p) } else { FaultKind::OmitRecv(p) };
                FaultPlan::new([kind.at(from).for_rounds(rounds)])
            }
            Scenario::Chaos { seed, t, n } => {
                ChaosCase::generate(seed, &ChaosConfig::new(t as usize, n as usize)).plan()
            }
            _ => FaultPlan::default(),
        }
    }

    /// A short, stable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            Scenario::FailureFree => "failure-free".into(),
            Scenario::DeadOnArrival { k } => format!("dead-on-arrival({k})"),
            Scenario::TakeoverCascade { victims } => format!("takeover-cascade({victims})"),
            Scenario::CheckpointSplit { victims, nth_send, prefix } => {
                format!("checkpoint-split({victims},{nth_send},{prefix})")
            }
            Scenario::Strawman { t } => format!("strawman({t})"),
            Scenario::Random { seed, p, max_crashes } => {
                format!("random(seed={seed},p={p},f<={max_crashes})")
            }
            Scenario::KillNthActivation { nth } => format!("kill-activation({nth})"),
            Scenario::MassExtinction { from, k, round } => {
                format!("mass-extinction({from}..{},r={round})", from + k)
            }
            Scenario::DeepIdle { k, round } => {
                let r = round.get();
                if r.is_power_of_two() {
                    format!("deep-idle({k},r=2^{})", r.trailing_zeros())
                } else {
                    format!("deep-idle({k},r={round})")
                }
            }
            Scenario::CrashRecovery { pid, round, downtime, wipe } => {
                let mode = if *wipe { "wipe" } else { "stale" };
                format!("crash-recovery({pid},r={round},down={downtime},{mode})")
            }
            Scenario::Slowdown { pid, from, factor, rounds } => {
                format!("slowdown({pid},x{factor},r={from}+{rounds})")
            }
            Scenario::Omission { pid, send, from, rounds } => {
                let side = if *send { "send" } else { "recv" };
                format!("omit-{side}({pid},r={from}+{rounds})")
            }
            Scenario::Chaos { seed, t, n } => format!("chaos(seed={seed},t={t},n={n})"),
        }
    }
}

/// The pre-PR10 asynchronous twin of [`Scenario`], now the same type.
///
/// The old `AsyncScenario` field vocabulary (`at`, `count`, `duration`)
/// folded into the synchronous names (`round`, `rounds`); construct a
/// [`Scenario`] and call [`Scenario::async_adversary`] instead.
#[deprecated(
    since = "0.1.0",
    note = "the scenario enums are unified; use `Scenario` and `Scenario::async_adversary`"
)]
pub type AsyncScenario = Scenario;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scenario::FailureFree.label(), "failure-free");
        assert_eq!(Scenario::DeadOnArrival { k: 3 }.label(), "dead-on-arrival(3)");
        assert_eq!(Scenario::KillNthActivation { nth: 2 }.label(), "kill-activation(2)");
        assert_eq!(
            Scenario::MassExtinction { from: 2, k: 6, round: 2 }.label(),
            "mass-extinction(2..8,r=2)"
        );
        assert_eq!(
            Scenario::DeepIdle { k: 255, round: Round::new(1 << 100) }.label(),
            "deep-idle(255,r=2^100)"
        );
        assert_eq!(Scenario::DeepIdle { k: 3, round: Round::new(12) }.label(), "deep-idle(3,r=12)");
        assert_eq!(
            Scenario::CrashRecovery { pid: 0, round: 4, downtime: 6, wipe: false }.label(),
            "crash-recovery(0,r=4,down=6,stale)"
        );
        assert_eq!(
            Scenario::Slowdown { pid: 1, from: 2, factor: 4, rounds: 12 }.label(),
            "slowdown(1,x4,r=2+12)"
        );
        assert_eq!(
            Scenario::Omission { pid: 3, send: true, from: 1, rounds: 9 }.label(),
            "omit-send(3,r=1+9)"
        );
        assert_eq!(
            Scenario::Chaos { seed: 11, t: 16, n: 256 }.label(),
            "chaos(seed=11,t=16,n=256)"
        );
    }

    #[test]
    fn chaos_scenarios_generate_nonempty_deterministic_plans() {
        let s = Scenario::Chaos { seed: 3, t: 8, n: 64 };
        assert!(!s.fault_plan().is_empty());
        assert_eq!(s.fault_plan().len(), s.fault_plan().len());
    }

    #[test]
    fn fault_plans_match_their_scenarios() {
        assert!(Scenario::FailureFree.fault_plan().is_empty());
        assert!(Scenario::Random { seed: 1, p: 0.1, max_crashes: 3 }.fault_plan().is_empty());
        let plan = Scenario::Slowdown { pid: 1, from: 2, factor: 4, rounds: 12 }.fault_plan();
        assert_eq!(plan.len(), 1);
        let plan =
            Scenario::CrashRecovery { pid: 0, round: 9, downtime: 40, wipe: true }.fault_plan();
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn adversaries_build_for_any_message_type_on_both_planes() {
        for s in [
            Scenario::FailureFree,
            Scenario::DeadOnArrival { k: 2 },
            Scenario::TakeoverCascade { victims: 3 },
            Scenario::CheckpointSplit { victims: 2, nth_send: 1, prefix: 1 },
            Scenario::Strawman { t: 8 },
            Scenario::Random { seed: 1, p: 0.1, max_crashes: 3 },
            Scenario::KillNthActivation { nth: 1 },
            Scenario::MassExtinction { from: 0, k: 2, round: 5 },
            Scenario::DeepIdle { k: 2, round: Round::new(1 << 100) },
            Scenario::CrashRecovery { pid: 0, round: 4, downtime: 6, wipe: true },
            Scenario::Slowdown { pid: 1, from: 2, factor: 4, rounds: 12 },
            Scenario::Omission { pid: 3, send: false, from: 1, rounds: 9 },
            Scenario::Chaos { seed: 5, t: 8, n: 64 },
        ] {
            let _a = s.adversary::<u32>();
            let _b = s.adversary::<String>();
            let _c = s.async_adversary::<u32>();
            let _d = s.async_adversary::<String>();
        }
    }
}
