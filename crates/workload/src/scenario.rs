//! Named failure scenarios: the crash schedules the paper's proofs and
//! examples revolve around, packaged for reuse by tests, examples and the
//! experiment harness.

use doall_sim::asynch::{
    AsyncAdversary, AsyncCrashSchedule, AsyncRandomCrashes, AsyncTrigger, AsyncTriggerAdversary,
    AsyncTriggerRule,
};
use doall_sim::{
    Adversary, CrashSchedule, CrashSpec, Deliver, NoFailures, Pid, RandomCrashes, Round, Trigger,
    TriggerAdversary, TriggerRule,
};

/// A named, parameterized failure scenario.
///
/// Each variant builds a fresh adversary via [`Scenario::adversary`]; the
/// same scenario value can drive any protocol (adversaries are generic in
/// the message type).
///
/// # Examples
///
/// ```
/// use doall_workload::Scenario;
/// use doall_core::ProtocolB;
/// use doall_sim::{run, RunConfig};
///
/// let scenario = Scenario::TakeoverCascade { victims: 15 };
/// let report = run(
///     ProtocolB::processes(32, 16)?,
///     scenario.adversary::<doall_core::ab::AbMsg>(),
///     RunConfig::new(32, 100_000),
/// )?;
/// assert!(report.metrics.all_work_done());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Scenario {
    /// No process ever fails.
    FailureFree,
    /// Processes `0..k` crash silently in round 1 (dead on arrival).
    DeadOnArrival {
        /// Number of initial victims.
        k: u64,
    },
    /// Every process among the first `victims` crashes immediately after
    /// performing its first unit of work, unreported — the scenario behind
    /// the `n + t − 1` work lower bound.
    TakeoverCascade {
        /// Number of cascade victims (use `t − 1` to spare one survivor).
        victims: u64,
    },
    /// Each of the first `victims` processes dies on its `nth` *sending*
    /// round, delivering only a length-`prefix` prefix of that broadcast —
    /// the mid-checkpoint splits of §2's analysis.
    CheckpointSplit {
        /// Number of victims.
        victims: u64,
        /// Which sending round kills each victim (1-based).
        nth_send: u64,
        /// How many messages of the final broadcast escape.
        prefix: usize,
    },
    /// The §3 strawman cascade: process 0 dies after performing `t − 1`
    /// units; the top half of the processes dies; each successive
    /// most-knowledgeable survivor redoes the suffix and dies too.
    Strawman {
        /// System size `t` (used to derive the victim set).
        t: u64,
    },
    /// Seeded random crashes with budget `max_crashes`.
    Random {
        /// RNG seed (runs are reproducible).
        seed: u64,
        /// Per-round per-process crash probability.
        p: f64,
        /// Total crash budget (use `t − 1` for a guaranteed survivor).
        max_crashes: u32,
    },
    /// Crash `k` processes (pids `from..from+k`) at the given round — the
    /// mass-extinction trigger for Protocol D's fallback.
    MassExtinction {
        /// First victim pid.
        from: u64,
        /// Number of victims.
        k: u64,
        /// Round at which they all die.
        round: u64,
    },
    /// The wide-clock *deep idle* scenario: every passive process (pids
    /// `1..=k`) crashes silently at one far-future instant, astronomically
    /// beyond the active process's completion round. Between completion
    /// and the extinction the system is perfectly silent, so the engine
    /// must cross the whole stretch in a single sparse fast-forward jump —
    /// with instants beyond 2⁶⁴ only representable on the 128-bit clock.
    /// Already-retired victims are ignored, so the scenario composes with
    /// protocols that terminate some of the passive processes early.
    DeepIdle {
        /// Number of victims (pids `1..=k`).
        k: u64,
        /// The extinction instant (typically `Round::new(1 << 100)`).
        round: Round,
    },
}

impl Scenario {
    /// Builds the adversary for this scenario.
    pub fn adversary<M>(&self) -> Box<dyn Adversary<M>>
    where
        M: 'static,
    {
        match *self {
            Scenario::FailureFree => Box::new(NoFailures),
            Scenario::DeadOnArrival { k } => {
                let mut s = CrashSchedule::new();
                for j in 0..k {
                    s = s.crash_at(Pid::new(j as usize), 1, CrashSpec::silent());
                }
                Box::new(s)
            }
            Scenario::TakeoverCascade { victims } => {
                let rules = (0..victims)
                    .map(|j| TriggerRule {
                        trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: 1 },
                        target: None,
                        spec: CrashSpec { deliver: Deliver::None, count_work: true },
                    })
                    .collect();
                Box::new(TriggerAdversary::new(rules))
            }
            Scenario::CheckpointSplit { victims, nth_send, prefix } => {
                let rules = (0..victims)
                    .map(|j| TriggerRule {
                        trigger: Trigger::NthSendRoundBy {
                            pid: Pid::new(j as usize),
                            nth: nth_send,
                        },
                        target: None,
                        spec: CrashSpec { deliver: Deliver::Prefix(prefix), count_work: true },
                    })
                    .collect();
                Box::new(TriggerAdversary::new(rules))
            }
            Scenario::Strawman { t } => {
                let mut rules = vec![TriggerRule {
                    trigger: Trigger::NthWorkBy {
                        pid: Pid::new(0),
                        nth: t.saturating_sub(1).max(1),
                    },
                    target: None,
                    spec: CrashSpec { deliver: Deliver::All, count_work: true },
                }];
                for j in t / 2 + 1..t {
                    rules.push(TriggerRule {
                        trigger: Trigger::AtRound(Round::from(2 * t)),
                        target: Some(Pid::new(j as usize)),
                        spec: CrashSpec::silent(),
                    });
                }
                for j in (2..=t / 2).rev() {
                    let redo = t.saturating_sub(1 + j);
                    if redo == 0 {
                        continue;
                    }
                    rules.push(TriggerRule {
                        trigger: Trigger::NthWorkBy { pid: Pid::new(j as usize), nth: redo },
                        target: None,
                        spec: CrashSpec { deliver: Deliver::None, count_work: true },
                    });
                }
                Box::new(TriggerAdversary::new(rules))
            }
            Scenario::Random { seed, p, max_crashes } => {
                Box::new(RandomCrashes::new(seed, p, max_crashes))
            }
            Scenario::MassExtinction { from, k, round } => {
                let mut s = CrashSchedule::new();
                for j in from..from + k {
                    s = s.crash_at(Pid::new(j as usize), round, CrashSpec::silent());
                }
                Box::new(s)
            }
            Scenario::DeepIdle { k, round } => {
                let mut s = CrashSchedule::new();
                for j in 1..=k {
                    s = s.crash_at(Pid::new(j as usize), round, CrashSpec::silent());
                }
                Box::new(s)
            }
        }
    }

    /// A short, stable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            Scenario::FailureFree => "failure-free".into(),
            Scenario::DeadOnArrival { k } => format!("dead-on-arrival({k})"),
            Scenario::TakeoverCascade { victims } => format!("takeover-cascade({victims})"),
            Scenario::CheckpointSplit { victims, nth_send, prefix } => {
                format!("checkpoint-split({victims},{nth_send},{prefix})")
            }
            Scenario::Strawman { t } => format!("strawman({t})"),
            Scenario::Random { seed, p, max_crashes } => {
                format!("random(seed={seed},p={p},f<={max_crashes})")
            }
            Scenario::MassExtinction { from, k, round } => {
                format!("mass-extinction({from}..{},r={round})", from + k)
            }
            Scenario::DeepIdle { k, round } => {
                let r = round.get();
                if r.is_power_of_two() {
                    format!("deep-idle({k},r=2^{})", r.trailing_zeros())
                } else {
                    format!("deep-idle({k},r={round})")
                }
            }
        }
    }
}

/// A named, parameterized failure scenario for the **asynchronous** plane,
/// where crashes strike handler invocations instead of rounds. The
/// synchronous [`Scenario`] vocabulary carries over where it translates;
/// round-indexed scenarios do not (asynchronous time is untimed), and a
/// note-triggered kill takes their place.
///
/// # Examples
///
/// ```
/// use doall_workload::AsyncScenario;
///
/// let scenario = AsyncScenario::DeadOnArrival { k: 3 };
/// let _adv = scenario.adversary::<u32>();
/// assert_eq!(scenario.label(), "dead-on-arrival(3)");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum AsyncScenario {
    /// No process ever fails.
    FailureFree,
    /// Processes `0..k` crash silently on their very first handler
    /// invocation (their start signal) — dead on arrival.
    DeadOnArrival {
        /// Number of initial victims.
        k: u64,
    },
    /// Seeded random crashes: each handler invocation of an alive process
    /// crashes with probability `p` (random prefix of its sends escapes),
    /// up to `max_crashes`, sparing a lone survivor.
    Random {
        /// RNG seed (runs are reproducible).
        seed: u64,
        /// Per-invocation crash probability.
        p: f64,
        /// Total crash budget (use `t − 1` for a guaranteed survivor).
        max_crashes: u32,
    },
    /// Kills the `nth` process ever to emit the `"activate"` note, right
    /// on its activation event with nothing delivered — the takeover
    /// cascade driver of the asynchronous plane.
    KillNthActivation {
        /// Which activation to strike (1-based).
        nth: u64,
    },
}

impl AsyncScenario {
    /// Builds the adversary for this scenario.
    pub fn adversary<M>(&self) -> Box<dyn AsyncAdversary<M>>
    where
        M: 'static,
    {
        match *self {
            AsyncScenario::FailureFree => Box::new(NoFailures),
            AsyncScenario::DeadOnArrival { k } => {
                let mut s = AsyncCrashSchedule::new();
                for j in 0..k {
                    s = s.crash_at(Pid::new(j as usize), 1, CrashSpec::silent());
                }
                Box::new(s)
            }
            AsyncScenario::Random { seed, p, max_crashes } => {
                Box::new(AsyncRandomCrashes::new(seed, p, max_crashes))
            }
            AsyncScenario::KillNthActivation { nth } => {
                Box::new(AsyncTriggerAdversary::new(vec![AsyncTriggerRule {
                    trigger: AsyncTrigger::NthNote { tag: "activate", nth },
                    spec: CrashSpec { deliver: Deliver::None, count_work: true },
                }]))
            }
        }
    }

    /// A short, stable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            AsyncScenario::FailureFree => "failure-free".into(),
            AsyncScenario::DeadOnArrival { k } => format!("dead-on-arrival({k})"),
            AsyncScenario::Random { seed, p, max_crashes } => {
                format!("random(seed={seed},p={p},f<={max_crashes})")
            }
            AsyncScenario::KillNthActivation { nth } => format!("kill-activation({nth})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_labels_are_stable() {
        assert_eq!(AsyncScenario::FailureFree.label(), "failure-free");
        assert_eq!(AsyncScenario::KillNthActivation { nth: 2 }.label(), "kill-activation(2)");
    }

    #[test]
    fn async_adversaries_build_for_any_message_type() {
        for s in [
            AsyncScenario::FailureFree,
            AsyncScenario::DeadOnArrival { k: 2 },
            AsyncScenario::Random { seed: 1, p: 0.1, max_crashes: 3 },
            AsyncScenario::KillNthActivation { nth: 1 },
        ] {
            let _a = s.adversary::<u32>();
            let _b = s.adversary::<String>();
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scenario::FailureFree.label(), "failure-free");
        assert_eq!(Scenario::DeadOnArrival { k: 3 }.label(), "dead-on-arrival(3)");
        assert_eq!(
            Scenario::MassExtinction { from: 2, k: 6, round: 2 }.label(),
            "mass-extinction(2..8,r=2)"
        );
        assert_eq!(
            Scenario::DeepIdle { k: 255, round: Round::new(1 << 100) }.label(),
            "deep-idle(255,r=2^100)"
        );
        assert_eq!(Scenario::DeepIdle { k: 3, round: Round::new(12) }.label(), "deep-idle(3,r=12)");
    }

    #[test]
    fn adversaries_build_for_any_message_type() {
        for s in [
            Scenario::FailureFree,
            Scenario::DeadOnArrival { k: 2 },
            Scenario::TakeoverCascade { victims: 3 },
            Scenario::CheckpointSplit { victims: 2, nth_send: 1, prefix: 1 },
            Scenario::Strawman { t: 8 },
            Scenario::Random { seed: 1, p: 0.1, max_crashes: 3 },
            Scenario::MassExtinction { from: 0, k: 2, round: 5 },
            Scenario::DeepIdle { k: 2, round: Round::new(1 << 100) },
        ] {
            let _a = s.adversary::<u32>();
            let _b = s.adversary::<String>();
        }
    }
}
