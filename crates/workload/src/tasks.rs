//! Realistic idempotent workloads.
//!
//! §1 of the paper defines work broadly but insists on *idempotence*:
//! "operations that can be repeated without harm … verifying a step in a
//! formal proof, evaluating a boolean formula at a particular assignment,
//! sensing the status of a valve, closing a valve". These bindings give
//! the examples something real to execute: replay a run's
//! [`Trace`] against a task and the task's final state
//! is identical no matter how many times units were repeated.
//!
//! [`Trace`]: doall_sim::Trace

use doall_sim::{Event, Trace, Unit};

/// An idempotent batch task: executing unit `u` twice must leave the same
/// state as executing it once.
pub trait IdempotentTask {
    /// Number of units.
    fn units(&self) -> usize;

    /// Executes one unit (must be idempotent).
    fn execute(&mut self, unit: Unit);

    /// Whether every unit's effect is in place.
    fn complete(&self) -> bool;

    /// Replays every work event of a trace, in order.
    fn replay(&mut self, trace: &Trace) -> usize
    where
        Self: Sized,
    {
        let mut executed = 0;
        for event in trace.events() {
            if let Event::Work { unit, .. } = event {
                self.execute(*unit);
                executed += 1;
            }
        }
        executed
    }
}

/// The paper's motivating example: a bank of reactor valves that must all
/// be verified closed before fuel is added.
///
/// # Examples
///
/// ```
/// use doall_workload::{IdempotentTask, ValveBank};
/// use doall_sim::Unit;
///
/// let mut bank = ValveBank::new(3);
/// bank.execute(Unit::new(2));
/// bank.execute(Unit::new(2)); // repeating is harmless
/// assert!(!bank.complete());
/// bank.execute(Unit::new(1));
/// bank.execute(Unit::new(3));
/// assert!(bank.complete());
/// assert_eq!(bank.closed_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct ValveBank {
    closed: Vec<bool>,
    close_operations: u64,
}

impl ValveBank {
    /// A bank of `n` open valves.
    pub fn new(n: usize) -> Self {
        ValveBank { closed: vec![false; n], close_operations: 0 }
    }

    /// Valves currently closed.
    pub fn closed_count(&self) -> usize {
        self.closed.iter().filter(|c| **c).count()
    }

    /// Total close operations issued (counts repeats — the "work" cost).
    pub fn operations(&self) -> u64 {
        self.close_operations
    }
}

impl IdempotentTask for ValveBank {
    fn units(&self) -> usize {
        self.closed.len()
    }

    fn execute(&mut self, unit: Unit) {
        self.close_operations += 1;
        self.closed[unit.zero_based()] = true; // closing twice is harmless
    }

    fn complete(&self) -> bool {
        self.closed.iter().all(|c| *c)
    }
}

/// Exhaustive evaluation of a boolean formula: unit `u` evaluates the
/// formula on the `u`-th assignment (a SAT sweep split across idle
/// workstations — the paper's LAN motivation).
#[derive(Clone, Debug)]
pub struct FormulaSweep {
    vars: u32,
    /// CNF clauses: each literal is `(var, polarity)`.
    clauses: Vec<Vec<(u32, bool)>>,
    satisfying: Vec<Option<bool>>,
}

impl FormulaSweep {
    /// Builds a sweep over all `2^vars` assignments of the given CNF.
    ///
    /// # Panics
    ///
    /// Panics if `vars > 20` (the sweep is meant for example-sized runs).
    pub fn new(vars: u32, clauses: Vec<Vec<(u32, bool)>>) -> Self {
        assert!(vars <= 20, "sweep of 2^{vars} assignments is too large for an example");
        FormulaSweep { vars, clauses, satisfying: vec![None; 1 << vars] }
    }

    /// Number of satisfying assignments found so far.
    pub fn satisfying_count(&self) -> usize {
        self.satisfying.iter().filter(|s| **s == Some(true)).count()
    }

    fn eval(&self, assignment: usize) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&(var, polarity)| {
                let bit = (assignment >> var) & 1 == 1;
                bit == polarity
            })
        })
    }
}

impl IdempotentTask for FormulaSweep {
    fn units(&self) -> usize {
        1 << self.vars
    }

    fn execute(&mut self, unit: Unit) {
        let assignment = unit.zero_based();
        // Re-evaluating yields the same verdict: idempotent by construction.
        self.satisfying[assignment] = Some(self.eval(assignment));
    }

    fn complete(&self) -> bool {
        self.satisfying.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valve_bank_is_idempotent() {
        let mut bank = ValveBank::new(4);
        for _ in 0..3 {
            bank.execute(Unit::new(2));
        }
        assert_eq!(bank.closed_count(), 1);
        assert_eq!(bank.operations(), 3);
        assert!(!bank.complete());
    }

    #[test]
    fn formula_sweep_counts_satisfying_assignments() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1): exactly the two assignments 01 and 10.
        let mut sweep =
            FormulaSweep::new(2, vec![vec![(0, true), (1, true)], vec![(0, false), (1, false)]]);
        for u in 1..=4 {
            sweep.execute(Unit::new(u));
        }
        assert!(sweep.complete());
        assert_eq!(sweep.satisfying_count(), 2);
    }

    #[test]
    fn formula_sweep_is_idempotent() {
        let mut sweep = FormulaSweep::new(1, vec![vec![(0, true)]]);
        sweep.execute(Unit::new(2));
        sweep.execute(Unit::new(2));
        assert_eq!(sweep.satisfying_count(), 1);
        assert!(!sweep.complete());
    }

    #[test]
    fn replay_applies_trace_work_events() {
        use doall_core::ReplicateAll;
        use doall_sim::{run, NoFailures, RunConfig};

        let report = run(
            ReplicateAll::processes(4, 2).unwrap(),
            NoFailures,
            RunConfig::new(4, 100).with_trace(),
        )
        .unwrap();
        let mut bank = ValveBank::new(4);
        let executed = bank.replay(&report.trace);
        assert_eq!(executed, 8); // 2 processes × 4 units, all idempotent
        assert!(bank.complete());
        assert_eq!(bank.closed_count(), 4);
    }
}
