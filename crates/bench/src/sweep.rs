//! Parallel scenario-sweep runner.
//!
//! Experiment grids are embarrassingly parallel: every cell is an
//! independent, deterministic simulation. This module fans a cell list
//! across `std::thread` workers (the vendored shims have no registry
//! access, so no rayon) while keeping the *output* fully deterministic:
//! results come back in input order regardless of which worker ran what,
//! and randomized cells derive their seeds from the cell index via
//! [`cell_seed`], never from scheduling.
//!
//! Scheduling is a work-stealing deque per worker. Cells are dealt up
//! front — heaviest first, snake-wise across workers, using the caller's
//! per-cell time-budget estimates ([`map_cells_weighted`]; the unweighted
//! entry points assume uniform cost) — so the expensive cells start
//! immediately instead of landing on whichever worker drains the queue
//! last. A worker pops its own deque from the front (its heaviest
//! remaining cell) and, when empty, steals from the *back* of a victim's
//! deque (the victim's cheapest cell, minimising disruption to the
//! victim's own plan). Weights steer wall-clock only: results are sorted
//! back into input order, so every schedule yields the same output.
//!
//! ```
//! use doall_bench::sweep;
//!
//! let squares = sweep::map_cells((0u64..16).collect(), |_, x| x * x);
//! assert_eq!(squares[5], 25);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of worker threads a sweep will use: the `DOALL_SWEEP_THREADS`
/// environment variable if set (0 or 1 disables parallelism), otherwise
/// the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("DOALL_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over every cell of `inputs`, fanning cells across worker
/// threads, and returns the results **in input order**.
///
/// `f` receives the cell index alongside the cell, so randomized cells can
/// derive a deterministic seed with [`cell_seed`]. A panic in any cell
/// (experiments panic on violated invariants) propagates to the caller
/// once the scope joins.
pub fn map_cells<I, R, F>(inputs: Vec<I>, f: F) -> Vec<R>
where
    I: Send + Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    map_cells_with(worker_count(), inputs, f)
}

/// [`map_cells`] with an explicit worker count (tests and callers that
/// manage their own parallelism budget). `workers <= 1` runs inline.
pub fn map_cells_with<I, R, F>(workers: usize, inputs: Vec<I>, f: F) -> Vec<R>
where
    I: Send + Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    map_cells_weighted_with(workers, inputs, |_, _| 1, f)
}

/// [`map_cells`] with per-cell **time-budget estimates**: `weight` returns
/// the caller's guess at a cell's relative wall-clock cost (any monotone
/// proxy works — `n * t`, fault count, event count). The scheduler starts
/// the heaviest cells first (longest-processing-time-first keeps the
/// finish line flat when cell costs are skewed by orders of magnitude),
/// but weights never affect the *results*: output is in input order and
/// identical to the inline run for any weight function.
pub fn map_cells_weighted<I, R, F, W>(inputs: Vec<I>, weight: W, f: F) -> Vec<R>
where
    I: Send + Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
    W: Fn(usize, &I) -> u64,
{
    map_cells_weighted_with(worker_count(), inputs, weight, f)
}

/// [`map_cells_weighted`] with an explicit worker count. `workers <= 1`
/// runs inline in input order.
pub fn map_cells_weighted_with<I, R, F, W>(
    workers: usize,
    inputs: Vec<I>,
    weight: W,
    f: F,
) -> Vec<R>
where
    I: Send + Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
    W: Fn(usize, &I) -> u64,
{
    let workers = workers.min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    // Deal every cell up front, heaviest first (ties keep input order),
    // snake-wise across the workers so each deque gets a comparable total
    // budget: worker 0 receives ranks 0, 2w-1, 2w, 4w-1, …
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let budgets: Vec<u64> = inputs.iter().enumerate().map(|(i, c)| weight(i, c)).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(budgets[i]), i));
    let mut deal: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (rank, &i) in order.iter().enumerate() {
        let (lap, pos) = (rank / workers, rank % workers);
        let k = if lap % 2 == 0 { pos } else { workers - 1 - pos };
        deal[k].push_back(i);
    }
    let deques: Vec<Mutex<VecDeque<usize>>> = deal.into_iter().map(Mutex::new).collect();
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(inputs.len()));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|k| {
                let (deques, results, inputs, f) = (&deques, &results, &inputs, &f);
                s.spawn(move || loop {
                    // Own deque front first (the heaviest cell this worker
                    // was dealt); once drained, steal the cheapest cell
                    // from the back of the nearest non-empty victim. Every
                    // cell exists before the scope starts and deques only
                    // shrink, so a full empty sweep means done.
                    let mut job = deques[k].lock().expect("sweep deque poisoned").pop_front();
                    if job.is_none() {
                        for d in 1..workers {
                            let victim = (k + d) % workers;
                            job = deques[victim].lock().expect("sweep deque poisoned").pop_back();
                            if job.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(i) = job else { break };
                    let r = f(i, &inputs[i]);
                    results.lock().expect("sweep worker poisoned the result lock").push((i, r));
                })
            })
            .collect();
        // Explicit joins so a cell's panic payload (not a generic scope
        // message) reaches the caller, as the experiment binaries expect.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let mut out = results.into_inner().expect("sweep result lock poisoned");
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Derives a deterministic per-cell seed from a base seed and the cell
/// index (SplitMix64 finalizer). Two cells never share a seed, and the
/// seed does not depend on worker scheduling.
pub fn cell_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..64).collect();
        let out = map_cells(inputs.clone(), |_, x| x * 3);
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_path_matches_inline_path() {
        // Force real worker threads even on a single-core machine, with
        // uneven per-cell runtimes so cells genuinely interleave.
        let inputs: Vec<u64> = (0..97).collect();
        let slow_square = |_: usize, x: &u64| {
            if x.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * x
        };
        let threaded = map_cells_with(8, inputs.clone(), slow_square);
        let inline = map_cells_with(1, inputs, slow_square);
        assert_eq!(threaded, inline);
    }

    #[test]
    fn index_is_passed_alongside_the_cell() {
        let out = map_cells(vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = map_cells(Vec::<u8>::new(), |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..100).map(|i| cell_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision");
        assert_eq!(cell_seed(7, 42), cell_seed(7, 42));
        assert_ne!(cell_seed(7, 42), cell_seed(8, 42));
    }

    #[test]
    fn weighted_path_matches_inline_for_any_weights() {
        let inputs: Vec<u64> = (0..61).collect();
        let inline: Vec<u64> = inputs.iter().map(|x| x + 100).collect();
        // Skewed, uniform, and adversarially inverted weights all yield
        // the same in-order output — weights steer scheduling only.
        for weight in
            [(|_: usize, x: &u64| x * x) as fn(usize, &u64) -> u64, |_, _| 1, |_, x| u64::MAX - x]
        {
            let out = map_cells_weighted_with(4, inputs.clone(), weight, |_, x| x + 100);
            assert_eq!(out, inline);
        }
    }

    #[test]
    fn heavy_cells_are_dealt_across_workers() {
        // One heavy straggler plus many light cells: the heavy cell must
        // not serialize the sweep behind the light ones. We can't observe
        // the schedule directly, but we can check the whole sweep with
        // stealing finishes and stays correct under real contention.
        let inputs: Vec<u64> = (0..32).collect();
        let cost = |x: u64| if x == 31 { 2_000 } else { 10 };
        let out = map_cells_weighted_with(
            4,
            inputs.clone(),
            |_, &x| cost(x),
            |_, &x| {
                std::thread::sleep(std::time::Duration::from_micros(cost(x)));
                x * 2
            },
        );
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cell 3 exploded")]
    fn worker_panics_propagate_to_the_caller() {
        let _ = map_cells((0..8).collect::<Vec<u64>>(), |i, _| {
            assert!(i != 3, "cell {i} exploded");
            i
        });
    }
}
