//! Parallel scenario-sweep runner.
//!
//! Experiment grids are embarrassingly parallel: every cell is an
//! independent, deterministic simulation. This module fans a cell list
//! across `std::thread` workers (the vendored shims have no registry
//! access, so no rayon) while keeping the *output* fully deterministic:
//! results come back in input order regardless of which worker ran what,
//! and randomized cells derive their seeds from the cell index via
//! [`cell_seed`], never from scheduling.
//!
//! ```
//! use doall_bench::sweep;
//!
//! let squares = sweep::map_cells((0u64..16).collect(), |_, x| x * x);
//! assert_eq!(squares[5], 25);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a sweep will use: the `DOALL_SWEEP_THREADS`
/// environment variable if set (0 or 1 disables parallelism), otherwise
/// the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("DOALL_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over every cell of `inputs`, fanning cells across worker
/// threads, and returns the results **in input order**.
///
/// `f` receives the cell index alongside the cell, so randomized cells can
/// derive a deterministic seed with [`cell_seed`]. A panic in any cell
/// (experiments panic on violated invariants) propagates to the caller
/// once the scope joins.
pub fn map_cells<I, R, F>(inputs: Vec<I>, f: F) -> Vec<R>
where
    I: Send + Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    map_cells_with(worker_count(), inputs, f)
}

/// [`map_cells`] with an explicit worker count (tests and callers that
/// manage their own parallelism budget). `workers <= 1` runs inline.
pub fn map_cells_with<I, R, F>(workers: usize, inputs: Vec<I>, f: F) -> Vec<R>
where
    I: Send + Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let workers = workers.min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(inputs.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let r = f(i, &inputs[i]);
                results.lock().expect("sweep worker poisoned the result lock").push((i, r));
            });
        }
    });
    let mut out = results.into_inner().expect("sweep result lock poisoned");
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Derives a deterministic per-cell seed from a base seed and the cell
/// index (SplitMix64 finalizer). Two cells never share a seed, and the
/// seed does not depend on worker scheduling.
pub fn cell_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..64).collect();
        let out = map_cells(inputs.clone(), |_, x| x * 3);
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_path_matches_inline_path() {
        // Force real worker threads even on a single-core machine, with
        // uneven per-cell runtimes so cells genuinely interleave.
        let inputs: Vec<u64> = (0..97).collect();
        let slow_square = |_: usize, x: &u64| {
            if x.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * x
        };
        let threaded = map_cells_with(8, inputs.clone(), slow_square);
        let inline = map_cells_with(1, inputs, slow_square);
        assert_eq!(threaded, inline);
    }

    #[test]
    fn index_is_passed_alongside_the_cell() {
        let out = map_cells(vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = map_cells(Vec::<u8>::new(), |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..100).map(|i| cell_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision");
        assert_eq!(cell_seed(7, 42), cell_seed(7, 42));
        assert_ne!(cell_seed(7, 42), cell_seed(8, 42));
    }

    #[test]
    #[should_panic(expected = "cell 3 exploded")]
    fn worker_panics_propagate_to_the_caller() {
        let _ = map_cells((0..8).collect::<Vec<u64>>(), |i, _| {
            assert!(i != 3, "cell {i} exploded");
            i
        });
    }
}
