//! Chaos campaign driver: seeded random fault plans thrown at every
//! Do-All protocol on both execution planes, with invariant checking,
//! greedy auto-shrinking of failures, and replayable repro files.
//!
//! ```sh
//! cargo run --release -p doall-bench --bin chaos                  # default seed bank
//! cargo run --release -p doall-bench --bin chaos -- --smoke       # CI per-PR leg
//! cargo run --release -p doall-bench --bin chaos -- --smoke --shards 4   # sharded stepping
//! cargo run --release -p doall-bench --bin chaos -- --seeds chaos-seeds.txt
//! cargo run --release -p doall-bench --bin chaos -- --replay target/chaos/repro.txt
//! ```
//!
//! `--shards K` runs every sync-plane cell with K-way sharded stepping
//! (overriding `DOALL_ENGINE_SHARDS`; the async plane has no shards) —
//! reports are bit-identical to sequential (`tests/shard_differential.rs`),
//! so the campaign's pass/fail verdict and any shrunken repro are too.
//!
//! The campaign itself fans out across the work-stealing sweep scheduler
//! ([`doall_bench::sweep`]): each seed × grid cell — run plus, on failure,
//! its shrink search — is one weighted sweep cell. Results are reported in
//! campaign order and every cell is deterministic, so the parallel
//! campaign's output matches the serial one (`DOALL_SWEEP_THREADS=1`).
//!
//! Per (seed × protocol × plane) the driver generates a valid fault plan
//! from the [`doall_sim::chaos`] budgeted generator, runs the protocol
//! under it with the watchdog armed, and checks:
//!
//! * **liveness** — the run completes (a watchdog stall, deadlock, or
//!   round/event-limit exit fails the case with its diagnosis);
//! * **the Do-All contract** — if anyone terminated, every unit was
//!   performed, and nobody retired before global completion;
//! * **engine invariants** — no zombie actions, recovery silence,
//!   detector soundness.
//!
//! Any failure is auto-shrunk to a minimal still-failing case and written
//! as a `doall-chaos-repro v1` file (under `--out-dir`, default
//! `target/chaos`); `--replay FILE` re-runs such a file and exits 0 iff
//! the failure still reproduces.

use doall_bench::sweep;
use doall_core::{AsyncProtocolA, AsyncProtocolB, ProtocolA, ProtocolB, ProtocolC, ProtocolD};
use doall_sim::asynch::{run_async, AsyncConfig, AsyncProtocol, DelayDist};
use doall_sim::chaos::{contract_violations, shrink, ChaosCase, ChaosConfig, Plane, Repro};
use doall_sim::{invariants, run, Protocol, Round, RunConfig, Trace};

/// Executed-round (sync) / virtual-time (async) no-progress window before
/// the watchdog declares livelock.
const STALL_WINDOW: u64 = 4_096;

/// The protocol × plane grid every seed is thrown at.
const GRID: [(&str, Plane); 6] = [
    ("A", Plane::Sync),
    ("B", Plane::Sync),
    ("C", Plane::Sync),
    ("D", Plane::Sync),
    ("A", Plane::Async),
    ("B", Plane::Async),
];

/// Trace-level checks shared by both planes.
fn trace_violations(trace: &Trace, n: usize, out: &mut Vec<String>) {
    for (what, found) in [
        ("zombie", invariants::check_no_zombie_actions(trace)),
        ("recovery-silence", invariants::check_recovery_silence(trace)),
        ("detector", invariants::check_detector_soundness(trace)),
        ("retirement", invariants::check_termination_after_completion(trace, n)),
    ] {
        out.extend(found.into_iter().map(|v| format!("{what}: {v}")));
    }
}

/// Runs `case` on the sync plane; `None` = shape not runnable (invalid
/// plan for this `t`, or a constructor that rejects the shape) — which a
/// shrink oracle must treat as "does not fail".
fn sync_violations<P, F>(build: &F, case: &ChaosCase, shards: Option<usize>) -> Option<Vec<String>>
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
    F: Fn(u64, u64) -> Option<Vec<P>>,
{
    let plan = case.plan();
    if plan.validate(case.t).is_err() {
        return None;
    }
    let procs = plan.wrap(build(case.n as u64, case.t as u64)?);
    // No round cap: Protocol C legitimately retires at ~2^90-round
    // deadlines crossed by sparse fast-forward. Liveness is the watchdog's
    // job — its window counts *executed* rounds only — plus the engine's
    // deadlock detection.
    let mut cfg = RunConfig::new(case.n, Round::MAX).with_trace().with_stall_window(STALL_WINDOW);
    if let Some(shards) = shards {
        cfg = cfg.with_shards(shards);
    }
    Some(match run(procs, plan, cfg) {
        Ok(report) => {
            let mut v = contract_violations(report.survivor_count(), &report.metrics);
            trace_violations(&report.trace, case.n, &mut v);
            v
        }
        Err(e) => vec![format!("liveness: {e}")],
    })
}

/// Runs `case` on the async plane (uniform delivery delays seeded by the
/// case's own seed, so shrink candidates replay deterministically).
fn async_violations<P, F>(build: &F, case: &ChaosCase) -> Option<Vec<String>>
where
    P: AsyncProtocol,
    P::Msg: 'static,
    F: Fn(u64, u64) -> Option<Vec<P>>,
{
    let plan = case.plan();
    if plan.validate(case.t).is_err() {
        return None;
    }
    let procs = plan.wrap_async(build(case.n as u64, case.t as u64)?);
    let cfg = AsyncConfig::new(case.n, case.seed)
        .with_delay(DelayDist::Uniform, 4)
        .with_trace()
        .with_stall_window(STALL_WINDOW);
    Some(match run_async(procs, plan, cfg) {
        Ok(report) => {
            let survivors = report.terminated.iter().filter(|&&t| t).count();
            let mut v = contract_violations(survivors, &report.metrics);
            trace_violations(&report.trace, case.n, &mut v);
            v
        }
        Err(e) => vec![format!("liveness: {e}")],
    })
}

/// Dispatches a case to one cell of [`GRID`]. `shards` applies to the
/// sync plane only (the async engine has no sharded stepping).
fn case_violations(
    protocol: &str,
    plane: Plane,
    case: &ChaosCase,
    shards: Option<usize>,
) -> Option<Vec<String>> {
    match (protocol, plane) {
        ("A", Plane::Sync) => {
            sync_violations(&|n, t| ProtocolA::processes(n, t).ok(), case, shards)
        }
        ("B", Plane::Sync) => {
            sync_violations(&|n, t| ProtocolB::processes(n, t).ok(), case, shards)
        }
        ("C", Plane::Sync) => {
            sync_violations(&|n, t| ProtocolC::processes(n, t).ok(), case, shards)
        }
        ("D", Plane::Sync) => {
            sync_violations(&|n, t| ProtocolD::processes(n, t).ok(), case, shards)
        }
        ("A", Plane::Async) => async_violations(&|n, t| AsyncProtocolA::processes(n, t).ok(), case),
        ("B", Plane::Async) => async_violations(&|n, t| AsyncProtocolB::processes(n, t).ok(), case),
        _ => None,
    }
}

fn replay(path: &str) -> i32 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let repro = Repro::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    match case_violations(&repro.protocol, repro.plane, &repro.case, None) {
        Some(v) if !v.is_empty() => {
            println!("{path}: failure reproduces on {} ({}):", repro.protocol, repro.plane);
            for violation in v {
                println!("  {violation}");
            }
            0
        }
        Some(_) => {
            println!("{path}: run is clean — the repro is stale");
            1
        }
        None => {
            println!("{path}: shape not runnable (bad t / invalid plan)");
            1
        }
    }
}

fn load_seeds(path: &str) -> Vec<u64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().unwrap_or_else(|_| panic!("bad seed line in {path}: `{l}`")))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));

    if let Some(path) = opt("--replay") {
        std::process::exit(replay(path));
    }

    let smoke = flag("--smoke");
    let shards: Option<usize> =
        opt("--shards").map(|s| s.parse().expect("--shards takes a number"));
    let out_dir = opt("--out-dir").cloned().unwrap_or_else(|| "target/chaos".to_string());
    let seeds: Vec<u64> = match opt("--seeds") {
        Some(path) => load_seeds(path),
        None => {
            let count: u64 = opt("--count")
                .map(|c| c.parse().expect("--count takes a number"))
                .unwrap_or(if smoke { 8 } else { 24 });
            (0..count).collect()
        }
    };

    // t = 16 satisfies every constructor: perfect square (A, B), power of
    // two (C), anything (D and the async pair).
    let cfg = ChaosConfig::new(16, 64);
    // The seed × grid campaign is embarrassingly parallel: every cell is
    // one deterministic run (plus, on failure, its deterministic shrink),
    // so it fans out through the weighted sweep scheduler. Faults are a
    // rough time-budget proxy (more faults = longer runs and, above all, a
    // longer shrink search); the async plane pays extra for its event
    // queue. Reporting stays in campaign order — the sweep returns results
    // in input order regardless of which worker ran what — and repro files
    // are written from this thread, so the output and any written repros
    // are byte-identical to a serial campaign. `DOALL_SWEEP_THREADS=1`
    // forces the inline path.
    let cells: Vec<(ChaosCase, &str, Plane)> = seeds
        .iter()
        .map(|&seed| ChaosCase::generate(seed, &cfg))
        .flat_map(|case| GRID.map(|(protocol, plane)| (case.clone(), protocol, plane)))
        .collect();
    let outcomes = sweep::map_cells_weighted(
        cells,
        |_, (case, _, plane)| {
            (case.faults.len() as u64 + 1) * if *plane == Plane::Async { 2 } else { 1 }
        },
        |_, (case, protocol, plane)| {
            let violations = case_violations(protocol, *plane, case, shards);
            let shrunk = match &violations {
                Some(v) if !v.is_empty() => Some(shrink(case, |c| {
                    case_violations(protocol, *plane, c, shards).is_some_and(|v| !v.is_empty())
                })),
                _ => None,
            };
            (case.clone(), *protocol, *plane, violations, shrunk)
        },
    );
    let mut failures = 0usize;
    for (case, protocol, plane, violations, shrunk) in &outcomes {
        let seed = case.seed;
        match violations {
            None => eprintln!("seed {seed} {plane}/{protocol}: not runnable (skipped)"),
            Some(v) if v.is_empty() => {
                eprintln!("seed {seed} {plane}/{protocol}: ok ({} fault(s))", case.faults.len());
            }
            Some(v) => {
                failures += 1;
                eprintln!("seed {seed} {plane}/{protocol}: FAIL");
                for violation in v {
                    eprintln!("    {violation}");
                }
                let min = shrunk.clone().expect("failing cell was shrunk in the sweep");
                let repro = Repro { protocol: protocol.to_string(), plane: *plane, case: min };
                let mut text = repro.emit();
                for violation in v {
                    text.push_str(&format!("# violation: {violation}\n"));
                }
                std::fs::create_dir_all(&out_dir).expect("create --out-dir");
                let path = format!("{out_dir}/repro-{plane}-{protocol}-seed{seed}.txt");
                std::fs::write(&path, text).expect("write repro file");
                eprintln!(
                    "    shrunk {} -> {} fault(s) (t={}, n={}); wrote {path}",
                    case.faults.len(),
                    repro.case.faults.len(),
                    repro.case.t,
                    repro.case.n,
                );
            }
        }
    }
    eprintln!(
        "chaos campaign: {} seed(s) x {} grid cells = {} runs, {failures} failure(s)",
        seeds.len(),
        GRID.len(),
        outcomes.len(),
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
