//! Headless perf baseline: runs the criterion-style engine/protocol
//! benchmarks without the bench harness and emits one JSON measurement
//! block (see `BENCH_PR9.json` for the committed baseline).
//!
//! ```sh
//! cargo run --release -p doall-bench --bin perf_baseline              # JSON to stdout
//! cargo run --release -p doall-bench --bin perf_baseline -- --out f.json
//! cargo run --release -p doall-bench --bin perf_baseline -- --smoke   # CI: tiny shapes
//! cargo run --release -p doall-bench --bin perf_baseline -- --smoke --compare BENCH_PR2.json
//! ```
//!
//! `--compare FILE` is the CI regression guard: every measured cell whose
//! id also appears in the baseline file must (a) report **identical
//! message counts** (the simulator is deterministic, so any drift is a
//! correctness bug), (b) be no more than 30% slower in mean wall-clock
//! per iteration (`mean_ms`), and (c) when both sides report a non-zero
//! `mem_bytes` (peak engine bytes: SoA columns + in-flight buffers), use
//! no more than 30% more memory.
//! Any violation exits non-zero. Cells absent from the baseline (new
//! cells, or smoke-shrunk shapes with different ids) are skipped.

use std::time::{Duration, Instant};

use doall_core::{
    AsyncProtocolA, AsyncProtocolB, Lockstep, NaiveSpread, ProtocolA, ProtocolB, ProtocolC,
    ProtocolD, ReplicateAll,
};
use doall_sim::asynch::{reference, run_async, AsyncConfig, AsyncProtocol, DelayDist};
use doall_sim::chaos::{shrink, ChaosCase, ChaosConfig};
use doall_sim::{run, Engine, Metrics, NoFailures, Protocol, Round, RunConfig};
use doall_workload::Scenario;

struct Measurement {
    id: String,
    n: u64,
    t: u64,
    scenario: String,
    iters: u64,
    total: Duration,
    metrics: Metrics,
    /// Peak engine bytes (SoA columns + in-flight buffers) of the last run.
    /// Both planes carry the probe; `0` only for the per-recipient-clone
    /// reference scheduler (no engine to meter).
    mem_bytes: u64,
    /// Rounds (sync) or timestamp batches (async) the engine actually
    /// stepped — the denominator for per-round rates. `metrics.rounds` is
    /// the *simulated* clock, which fast-forward jumps can push to 2^100
    /// while the host executes a handful of dense rounds; rating against it
    /// yields nonsense like 0.0 ns/round.
    executed: u64,
}

impl Measurement {
    /// Executed rounds (or async batches) per iteration; falls back to the
    /// simulated clock for runs predating the counter (never in this
    /// binary's own output).
    fn executed_rounds(&self) -> f64 {
        if self.executed > 0 {
            self.executed as f64
        } else {
            self.metrics.rounds.as_f64()
        }
    }

    /// Executed rounds per wall-clock second — host throughput, immune to
    /// fast-forward inflation of the simulated clock.
    fn rounds_per_sec(&self) -> f64 {
        let secs = self.total.as_secs_f64() / self.iters as f64;
        self.executed_rounds() / secs
    }

    fn ns_per_round(&self) -> f64 {
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        ns / self.executed_rounds()
    }

    /// Mean wall-clock per iteration, in milliseconds — the quantity the
    /// `--compare` regression guard checks (meaningful even for
    /// fast-forward-dominated cells whose ns_per_round rounds to 0).
    fn mean_ms(&self) -> f64 {
        self.total.as_secs_f64() * 1e3 / self.iters as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"id\": \"{}\", \"n\": {}, \"t\": {}, \"scenario\": \"{}\", ",
                "\"iters\": {}, \"mean_ms\": {:.3}, \"sim_rounds\": {}, ",
                "\"executed_rounds\": {}, ",
                "\"ns_per_round\": {:.1}, \"rounds_per_sec\": {:.0}, ",
                "\"work_total\": {}, \"messages\": {}, \"mem_bytes\": {}}}"
            ),
            self.id,
            self.n,
            self.t,
            self.scenario,
            self.iters,
            self.total.as_secs_f64() * 1e3 / self.iters as f64,
            // Raw count, not Display: the wide-clock hint (`… (2^100)`)
            // would corrupt the JSON.
            self.metrics.rounds.get(),
            self.executed,
            self.ns_per_round(),
            self.rounds_per_sec(),
            self.metrics.work_total,
            self.metrics.messages,
            self.mem_bytes,
        )
    }
}

/// Warm up once, then iterate for at least 5 iterations *and* at least
/// ~250 ms (whichever keeps going longer), capped by `max_iters` — the
/// floor stops a single noisy fast iteration from tripping the 30%
/// `--compare` gate, the cap keeps the giant scale cells to one timed
/// run. `run_once` returns the run's metrics, its peak engine bytes (`0`
/// where no probe exists), and the executed round/batch count; all runs
/// are deterministic, so every iteration yields identical values.
fn measure_with(
    id: String,
    n: u64,
    t: u64,
    label: String,
    max_iters: u64,
    run_once: impl Fn() -> (Metrics, u64, u64),
) -> Measurement {
    let budget = Duration::from_millis(250);
    let min_iters = 5u64;
    eprintln!("running {id} (n={n}, t={t}, {label})...");
    let (mut metrics, mut mem_bytes, mut executed) = run_once(); // warmup
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < max_iters && (iters < min_iters || start.elapsed() < budget) {
        (metrics, mem_bytes, executed) = run_once();
        iters += 1;
    }
    Measurement {
        id,
        n,
        t,
        scenario: label,
        iters,
        total: start.elapsed(),
        metrics,
        mem_bytes,
        executed,
    }
}

fn measure<P, F>(
    id: impl Into<String>,
    n: u64,
    t: u64,
    scenario: &Scenario,
    max_iters: u64,
    build: F,
) -> Measurement
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
    F: Fn() -> Vec<P>,
{
    measure_with(id.into(), n, t, scenario.label(), max_iters, || {
        let report =
            run(build(), scenario.adversary::<P::Msg>(), RunConfig::new(n as usize, Round::MAX))
                .expect("benchmark run must complete");
        (report.metrics, report.mem.engine_bytes(), report.executed_rounds)
    })
}

/// [`measure`] for the asynchronous plane: `arena` picks the production
/// op-arena engine or the per-recipient-clone reference scheduler (the
/// `async_storm_ref/*` "before" cells).
#[allow(clippy::too_many_arguments)] // mirrors `measure` plus the cfg + engine pick
fn measure_async<P, F>(
    id: impl Into<String>,
    n: u64,
    t: u64,
    scenario: &Scenario,
    cfg: AsyncConfig,
    max_iters: u64,
    arena: bool,
    build: F,
) -> Measurement
where
    P: AsyncProtocol,
    P::Msg: 'static,
    F: Fn() -> Vec<P>,
{
    measure_with(id.into(), n, t, scenario.label(), max_iters, || {
        let adversary = scenario.async_adversary::<P::Msg>();
        let report = if arena {
            run_async(build(), adversary, cfg.clone())
        } else {
            reference::run_async_reference(build(), adversary, cfg.clone())
        };
        let report = report.expect("benchmark run must complete");
        // The reference scheduler has no engine to meter, so its
        // `mem.engine_bytes()` stays 0 and the --compare memory gate
        // skips it; the op-arena engine reports its real peak.
        (report.metrics, report.mem.engine_bytes(), report.executed)
    })
}

/// The asynchronous cells: a small always-on pair (smoke + full share the
/// shape, so the CI `--compare` gate covers the async plane too) and, in
/// full mode, the broadcast-heavy t = 1024 storm cells measured on both
/// the op-arena engine (`async_storm/*`) and the per-recipient-clone
/// reference scheduler (`async_storm_ref/*` — the "before"). Message
/// counts between each twin pair are asserted bit-identical in `main`.
fn async_cells(smoke: bool) -> Vec<Measurement> {
    // Budget-bound (see `measure_with`): cheap cells fill the 250 ms
    // budget instead of stopping at a noise-dominated handful of runs.
    let iters = u64::MAX;
    let cfg = |n: u64| AsyncConfig::new(n as usize, 7).with_delay(DelayDist::Uniform, 4);
    let ff = Scenario::FailureFree;
    let mut out = vec![
        measure_async("async/protocol_a", 64, 16, &ff, cfg(64), iters, true, || {
            AsyncProtocolA::processes(64, 16).unwrap()
        }),
        measure_async("async/protocol_b", 64, 16, &ff, cfg(64), iters, true, || {
            AsyncProtocolB::processes(64, 16).unwrap()
        }),
        // Fault-catalog cell: crash-recovery on the event-driven plane
        // (revival scheduling, detector replay, dead-lettered downtime).
        measure_async(
            "fault_async/recovery_b",
            64,
            16,
            &Scenario::CrashRecovery { pid: 0, round: 9, downtime: 40, wipe: false },
            cfg(64),
            iters,
            true,
            || AsyncProtocolB::processes(64, 16).unwrap(),
        ),
    ];
    if !smoke {
        // Storm shapes: one active process span-broadcasting its way
        // through t = 1024 (31- and 32-wide checkpoint multicasts), plus
        // the detector's O(t²) notice traffic after 992 crashes.
        let doa = Scenario::DeadOnArrival { k: 992 };
        for (arena, prefix) in [(true, "async_storm"), (false, "async_storm_ref")] {
            out.push(measure_async(
                format!("{prefix}/protocol_a_t1024"),
                2_048,
                1_024,
                &ff,
                cfg(2_048),
                10,
                arena,
                || AsyncProtocolA::processes(2_048, 1_024).unwrap(),
            ));
            out.push(measure_async(
                format!("{prefix}/protocol_b_t1024"),
                2_048,
                1_024,
                &doa,
                cfg(2_048),
                10,
                arena,
                || AsyncProtocolB::processes(2_048, 1_024).unwrap(),
            ));
        }
    }
    out
}

/// The scale cells (PR 8, curve since PR 9): the e17 giant coordinator-D
/// shape — `t = 2^17` processes stepping through `n = 2^27` units, 134M
/// protocol steps — run at shards ∈ {1, 2, 4, 8}. One timed iteration
/// each (a run takes tens of seconds); `main` asserts every sharded cell's
/// metrics are bit-identical to the shards1 twin and prints the speedup
/// curve (which scales with the cores the host actually has — a
/// single-core CI container records parity, i.e. the sharding overhead
/// bound; on a ≥4-core host the 4-shard cell must clear 2×), and the
/// shards1 cell's `mem_bytes` is the committed peak-engine-memory anchor
/// for the `--compare` gate.
fn scale_cells() -> Vec<Measurement> {
    let (n, t) = (1u64 << 27, 1u64 << 17);
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            measure_with(
                format!("scale/d_coord_t131072_shards{shards}"),
                n,
                t,
                "failure-free".into(),
                1,
                || {
                    let cfg = RunConfig::new(n as usize, Round::MAX).with_shards(shards);
                    let report =
                        run(ProtocolD::processes_with_coordinator(n, t).unwrap(), NoFailures, cfg)
                            .expect("scale run must complete");
                    (report.metrics, report.mem.engine_bytes(), report.executed_rounds)
                },
            )
        })
        .collect()
}

/// `chaos/shrink_b`: times one end-to-end shrinker pass — scan seeds for
/// the first chaos case that crashes somebody in a Protocol B run, then
/// greedily shrink it under that engine-backed oracle (dozens of full
/// runs per pass). Reports the minimal case's run metrics.
fn chaos_shrink_cell(iters: u64) -> Measurement {
    let cfg = ChaosConfig::new(16, 64);
    let run_case = |case: &ChaosCase| -> Option<(Metrics, u64, u64)> {
        let plan = case.plan();
        plan.validate(case.t).ok()?;
        let procs = plan.wrap(ProtocolB::processes(case.n as u64, case.t as u64).ok()?);
        run(procs, plan, RunConfig::new(case.n, Round::MAX))
            .ok()
            .map(|r| (r.metrics, r.mem.engine_bytes(), r.executed_rounds))
    };
    let fails = move |case: &ChaosCase| run_case(case).is_some_and(|(m, ..)| m.crashes >= 1);
    measure_with("chaos/shrink_b".into(), 64, 16, "chaos-shrink(oracle=B)".into(), iters, || {
        let case = (1u64..).map(|s| ChaosCase::generate(s, &cfg)).find(&fails).unwrap();
        let min = shrink(&case, &fails);
        run_case(&min).expect("minimal case must be runnable")
    })
}

/// `snapshot/resume_b`: times a Protocol B run that is paused at round 8,
/// deep-copied into a snapshot, resumed from it, and run to completion —
/// the checkpoint/restore hot path on the sync plane.
fn snapshot_resume_cell(iters: u64) -> Measurement {
    let plan = ChaosCase::generate(5, &ChaosConfig::new(16, 64)).plan();
    measure_with("snapshot/resume_b".into(), 64, 16, "snapshot(pause=8)".into(), iters, || {
        let procs = plan.wrap(ProtocolB::processes(64, 16).unwrap());
        let cfg = RunConfig::new(64, Round::MAX);
        let mut engine = Engine::new(procs, plan.clone(), cfg).expect("plan validates");
        if !engine.run_until(Some(Round::new(8))).expect("run must not stall") {
            engine = Engine::resume(engine.snapshot());
            engine.run_until(None).expect("resumed run must complete");
        }
        let report = engine.into_report().0;
        (report.metrics, report.mem.engine_bytes(), report.executed_rounds)
    })
}

/// `serve/*`: fleet-throughput cells for the service plane (PR 10). One
/// iteration runs a whole [`doall_service::Session`] — arrival sort,
/// admission, the
/// discrete-event schedule, and every job's engine run — so `mean_ms` is
/// the cost of serving the stream end to end. Per-job engine metrics are
/// arrival-independent (each admitted job runs to completion on its own
/// engine), so the summed `messages` count is deterministic and the
/// `--compare` bit-identity gate covers the service plane too; `mem_bytes`
/// stays 0 (no single engine to meter). Always on: smoke and full share
/// the shapes.
fn serve_cells() -> Vec<Measurement> {
    use doall_service::{Admission, ArrivalModel, JobSpec, Pool, Session};

    let iters = u64::MAX;
    let fold = |fleet: &doall_service::FleetReport| {
        let m = Metrics {
            rounds: Round::new(fleet.metrics.horizon),
            work_total: fleet.metrics.work_total,
            messages: fleet.metrics.messages,
            ..Default::default()
        };
        let executed: u64 = fleet
            .records
            .iter()
            .filter_map(|r| r.report.as_ref())
            .map(|rep| match rep {
                doall_service::JobReport::Sync(r) => r.executed_rounds,
                doall_service::JobReport::Async(r) => r.executed,
            })
            .sum();
        (m, 0u64, executed)
    };
    vec![
        // 200 Protocol B jobs, Poisson arrivals, 3:1 failure-free vs
        // half-dead-on-arrival, four concurrent jobs on a 64-slot pool.
        measure_with(
            "serve/poisson_b_mix200".into(),
            64,
            16,
            "poisson(gap=3) x 200 B jobs".into(),
            iters,
            || {
                let mut session = Session::new(Pool::new(64), Admission::new(200));
                let arrivals = ArrivalModel::Poisson { mean_gap: 3.0 };
                for (i, at) in arrivals.times(18, 200).into_iter().enumerate() {
                    let scenario = if i % 4 == 3 {
                        Scenario::DeadOnArrival { k: 8 }
                    } else {
                        Scenario::FailureFree
                    };
                    let spec =
                        JobSpec::new(ProtocolB::processes(64, 16).unwrap(), 64).scenario(scenario);
                    session.submit(at, spec.into_job());
                }
                let fleet = session.run();
                assert_eq!(fleet.metrics.completed, 200, "ample cap: every job served");
                fold(&fleet)
            },
        ),
        // 100 asynchronous Protocol B jobs under a fixed delay: per-job
        // counts are e14's exact failure-free cell, so the fleet total is
        // an exact multiple — any drift trips the message-identity gate.
        measure_with(
            "serve/poisson_async_b100".into(),
            32,
            16,
            "poisson(gap=5) x 100 async-B jobs".into(),
            iters,
            || {
                let mut session = Session::new(Pool::new(64), Admission::new(100));
                let arrivals = ArrivalModel::Poisson { mean_gap: 5.0 };
                for at in arrivals.times(41, 100) {
                    let spec = JobSpec::new(AsyncProtocolB::processes(32, 16).unwrap(), 32)
                        .delay(DelayDist::Fixed, 1);
                    session.submit(at, spec.into_async_job());
                }
                let fleet = session.run();
                assert_eq!(fleet.metrics.completed, 100, "ample cap: every job served");
                assert_eq!(fleet.metrics.messages, 100 * 132, "e14's exact cell, times 100");
                fold(&fleet)
            },
        ),
    ]
}

fn cells(smoke: bool) -> Vec<Measurement> {
    // Cheap cells are budget-bound (the 250 ms per-cell budget in
    // `measure_with`): micro-runs in the tens of microseconds need
    // thousands of iterations before their mean is stable enough for the
    // --compare regression guard's 30% threshold. Expensive cells below
    // pass explicit small caps instead.
    let iters = u64::MAX;
    // Smoke mode shrinks the big shape so the whole bin finishes fast.
    // (A/B need a perfect-square t; C a power of two: 16, 64, 256, 1024
    // satisfy both.)
    let (t_big, t_mid) = if smoke { (64, 16) } else { (256, 16) };
    let n_of = |t: u64| 4 * t;
    let ff = Scenario::FailureFree;
    let mut out = vec![
        measure("failure_free/protocol_a", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolA::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure("failure_free/protocol_b", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolB::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure("failure_free/protocol_c", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolC::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure("failure_free/protocol_d", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolD::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure(
            "takeover_cascade/protocol_b",
            n_of(t_mid),
            t_mid,
            &Scenario::TakeoverCascade { victims: t_mid - 1 },
            iters,
            || ProtocolB::processes(n_of(t_mid), t_mid).unwrap(),
        ),
        measure("engine/replicate_all", 1_000, 16, &ff, iters, || {
            ReplicateAll::processes(1_000, 16).unwrap()
        }),
        measure("engine/lockstep", 512, 32, &ff, iters, || Lockstep::processes(512, 32).unwrap()),
        // The acceptance shape: the `protocols` bench scaling cell at
        // t = 256 (smoke mode shrinks t, so the id is derived from it).
        measure(
            format!("protocol_b_scaling/t{t_big}"),
            n_of(t_big),
            t_big,
            &Scenario::DeadOnArrival { k: t_big / 2 },
            iters,
            || ProtocolB::processes(n_of(t_big), t_big).unwrap(),
        ),
        measure(
            format!("failure_free/protocol_b_t{t_big}"),
            n_of(t_big),
            t_big,
            &ff,
            iters,
            || ProtocolB::processes(n_of(t_big), t_big).unwrap(),
        ),
    ];
    // Fault-catalog cells: the beyond-fail-stop models under the timer.
    // Always on (smoke and full share the shapes), so the CI --compare
    // gate gets a deterministic message count and a timing reference for
    // the omission filter, the degraded wrapper, and the revival path.
    let omit = Scenario::Omission { pid: 0, send: true, from: 1, rounds: 8 };
    out.push(measure("fault/omit_send_b", 64, 16, &omit, iters, || {
        ProtocolB::processes(64, 16).unwrap()
    }));
    let slow = Scenario::Slowdown { pid: 0, from: 2, factor: 4, rounds: 32 };
    out.push(measure("fault/slowdown_b", 64, 16, &slow, iters, || {
        slow.fault_plan().wrap(ProtocolB::processes(64, 16).unwrap())
    }));
    let recover = Scenario::CrashRecovery { pid: 0, round: 3, downtime: 16, wipe: false };
    out.push(measure("fault/recovery_b", 64, 16, &recover, iters, || {
        ProtocolB::processes(64, 16).unwrap()
    }));
    // Robustness-tooling cells (PR 7), always on so the --compare gate
    // covers them: the chaos shrinker driven by an engine-backed oracle,
    // and a mid-run snapshot/resume round-trip. Both report the metrics of
    // their final full run, so message counts stay comparable.
    out.push(chaos_shrink_cell(iters));
    out.push(snapshot_resume_cell(iters));
    // Sparse-jump cells (PR 5): the wide virtual-time clock under load.
    // The deep-idle cell simulates a run that *ends at round 2^100* —
    // ~10^30 rounds crossed in a single O(1) fast-forward jump after the
    // active process finishes (mean_ms measures the dense prefix; the
    // jump itself is free). The t = 64 cell runs honest Protocol C with a
    // straggler parked on its exact ~5.6×10^25-round zero-view deadline.
    out.push(measure(
        "deep_idle/protocol_c_t256",
        256,
        256,
        &Scenario::DeepIdle { k: 255, round: Round::new(1 << 100) },
        iters,
        || ProtocolC::processes(256, 256).unwrap(),
    ));
    out.push(measure(
        "wide_clock/protocol_c_doa_t64",
        8,
        64,
        &Scenario::DeadOnArrival { k: 63 },
        iters,
        || ProtocolC::processes(8, 64).unwrap(),
    ));
    if !smoke {
        out.push(measure(
            "deep_idle/protocol_c_t1024",
            1_024,
            1_024,
            &Scenario::DeepIdle { k: 1_023, round: Round::new(1 << 100) },
            20,
            || ProtocolC::processes(1_024, 1_024).unwrap(),
        ));
        // Peak shapes: affordable only with the allocation-free hot loop.
        out.push(measure(
            "peak/protocol_b_t1024",
            2_048,
            1_024,
            &Scenario::DeadOnArrival { k: 1_023 },
            3,
            || ProtocolB::processes(2_048, 1_024).unwrap(),
        ));
        out.push(measure("peak/protocol_a_t1024", 2_048, 1_024, &ff, 3, || {
            ProtocolA::processes(2_048, 1_024).unwrap()
        }));
        // Broadcast-D's t² view-carrying messages are infeasible at t=1024;
        // the §4 coordinator variant (2(t−1) messages per phase) scales.
        out.push(measure("peak/protocol_d_coord_t1024", 2_048, 1_024, &ff, 3, || {
            ProtocolD::processes_with_coordinator(2_048, 1_024).unwrap()
        }));
        // Message-storm cells: runs whose cost is dominated by the message
        // plane rather than by protocol stepping. Protocol B with only the
        // last group alive spends its rounds on span broadcasts to its own
        // group (one partial checkpoint per subchunk, 31 recipients each);
        // lockstep broadcasts to everyone after every unit; naive-spread
        // fires a unicast per unit plus one final t-wide broadcast.
        out.push(measure(
            "storm/protocol_b_t1024",
            4_096,
            1_024,
            &Scenario::DeadOnArrival { k: 992 },
            20,
            || ProtocolB::processes(4_096, 1_024).unwrap(),
        ));
        out.push(measure("storm/naive_spread_t1024", 4_096, 1_024, &ff, 20, || {
            NaiveSpread::processes(4_096, 1_024).unwrap()
        }));
        out.push(measure("storm/lockstep_t512", 2_048, 512, &ff, 20, || {
            Lockstep::processes(2_048, 512).unwrap()
        }));
        out.extend(scale_cells());
    }
    out.extend(async_cells(smoke));
    out.extend(serve_cells());
    out
}

/// Every `async_storm/*` arena cell must report exactly the messages of
/// its `async_storm_ref/*` per-recipient twin: the arena changes the
/// representation, never the semantics. Returns the number of mismatches.
fn check_async_twins(results: &[Measurement]) -> usize {
    let mut mismatches = 0;
    for m in results {
        let Some(suffix) = m.id.strip_prefix("async_storm/") else { continue };
        let Some(twin) = results.iter().find(|r| r.id == format!("async_storm_ref/{suffix}"))
        else {
            continue;
        };
        // Full-struct equality: totals, per-class counts, dead letters,
        // per-unit multiplicities, final timestamp — anything less would
        // let a misclassifying arena path slip past the gate at storm
        // scale (the differential proptest only covers small t).
        if m.metrics != twin.metrics {
            eprintln!(
                "twin check: {}: FAIL arena metrics diverged from reference\n  arena:     {:?}\n  reference: {:?}",
                m.id, m.metrics, twin.metrics,
            );
            mismatches += 1;
        } else {
            eprintln!("twin check: {}: ok (all metrics bit-identical to reference)", m.id);
        }
    }
    mismatches
}

/// Every `scale/*_shardsK` cell (K > 1) must report exactly the metrics
/// of its `*_shards1` twin — sharded stepping is a wall-clock knob, never
/// a semantic one. Prints the speedup curve over the shards1 twin, and
/// applies the **core-count-aware parallel-efficiency gate**: a host with
/// at least 4 cores must see the 4-shard cell run at least 2× faster than
/// sequential (half-efficiency at 4 lanes); hosts with fewer cores can
/// only record the sharding overhead bound, so a shortfall there is
/// expected parity, not a failure. Returns the number of violations
/// (metric mismatches plus efficiency-gate failures).
fn check_scale_twins(results: &[Measurement]) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut violations = 0;
    for m in results {
        let Some((prefix, shards)) = m.id.rsplit_once("_shards") else { continue };
        if !m.id.starts_with("scale/") || shards == "1" {
            continue;
        }
        let Some(twin) = results.iter().find(|r| r.id == format!("{prefix}_shards1")) else {
            continue;
        };
        if m.metrics != twin.metrics {
            eprintln!(
                "scale twin check: {}: FAIL sharded metrics diverged from sequential\n  sharded:    {:?}\n  sequential: {:?}",
                m.id, m.metrics, twin.metrics,
            );
            violations += 1;
            continue;
        }
        let speedup = twin.mean_ms() / m.mean_ms();
        let gated = shards == "4" && cores >= 4;
        let verdict = if speedup >= 2.0 {
            "ok"
        } else if cores < 2 {
            "parity expected: single-core host, sharding needs cores to pay off"
        } else if gated {
            violations += 1;
            "FAIL efficiency gate: >=4-core host must clear 2x at 4 shards"
        } else {
            "WARN speedup below 2x"
        };
        eprintln!(
            "scale twin check: {}: metrics bit-identical, {speedup:.2}x speedup over shards1 on {cores} core(s) ({verdict})",
            m.id,
        );
    }
    violations
}

/// One baseline entry scraped from a committed BENCH_*.json file.
struct BaselineEntry {
    id: String,
    mean_ms: f64,
    messages: u64,
    /// Peak engine bytes; absent in pre-PR8 baselines and zero for cells
    /// without the probe — both mean "don't gate memory".
    mem_bytes: u64,
}

/// Extracts `{"id": ..., "mean_ms": ..., "messages": ...}` result objects
/// from one of this binary's own output files (or a committed before/after
/// bundle that embeds them). No vendored JSON parser exists in this offline
/// workspace, so this scrapes the known flat-object format; when an id
/// occurs several times (a bundle's `before` and `after` blocks), the
/// **last** occurrence wins — the bundles list `after` last.
fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    let mut by_id: Vec<BaselineEntry> = Vec::new();
    for obj in text.split('{').filter(|o| o.contains("\"ns_per_round\"")) {
        let field = |key: &str| -> Option<&str> {
            let at = obj.find(&format!("\"{key}\":"))?;
            let rest = obj[at..].split(':').nth(1)?;
            Some(rest.split([',', '}']).next()?.trim())
        };
        let (Some(id), Some(ms), Some(msgs)) = (field("id"), field("mean_ms"), field("messages"))
        else {
            continue;
        };
        let id = id.trim_matches('"').to_string();
        let (Ok(mean_ms), Ok(messages)) = (ms.parse::<f64>(), msgs.parse::<u64>()) else {
            continue;
        };
        let mem_bytes = field("mem_bytes").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        if let Some(e) = by_id.iter_mut().find(|e| e.id == id) {
            e.mean_ms = mean_ms;
            e.messages = messages;
            e.mem_bytes = mem_bytes;
        } else {
            by_id.push(BaselineEntry { id, mean_ms, messages, mem_bytes });
        }
    }
    by_id
}

/// Checks measurements against a baseline file; returns the number of
/// violations (regressions > 30% or message-count drift).
fn compare(results: &[Measurement], baseline_path: &str) -> usize {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&text);
    assert!(!baseline.is_empty(), "no result entries found in {baseline_path}");
    let mut violations = 0;
    for m in results {
        let Some(b) = baseline.iter().find(|b| b.id == m.id) else {
            eprintln!("compare: {id}: not in baseline, skipped", id = m.id);
            continue;
        };
        if m.metrics.messages != b.messages {
            eprintln!(
                "compare: {}: FAIL message count drifted ({} != baseline {})",
                m.id, m.metrics.messages, b.messages
            );
            violations += 1;
            continue;
        }
        if b.mem_bytes > 0 && m.mem_bytes > 0 {
            let mem_ratio = m.mem_bytes as f64 / b.mem_bytes as f64;
            if mem_ratio > 1.30 {
                eprintln!(
                    "compare: {}: FAIL {} engine bytes vs baseline {} ({mem_ratio:.2}x > 1.30x)",
                    m.id, m.mem_bytes, b.mem_bytes
                );
                violations += 1;
                continue;
            }
        }
        let ratio = m.mean_ms() / b.mean_ms;
        if ratio > 1.30 {
            eprintln!(
                "compare: {}: FAIL {:.3} ms vs baseline {:.3} ms ({ratio:.2}x > 1.30x)",
                m.id,
                m.mean_ms(),
                b.mean_ms
            );
            violations += 1;
        } else {
            eprintln!("compare: {}: ok ({:.2}x of baseline {:.3} ms)", m.id, ratio, b.mean_ms);
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();
    let baseline =
        args.iter().position(|a| a == "--compare").and_then(|i| args.get(i + 1)).cloned();

    let results = cells(smoke);
    let twin_mismatches = check_async_twins(&results);
    if twin_mismatches > 0 {
        eprintln!("twin check: {twin_mismatches} async arena/reference cell(s) drifted");
        std::process::exit(1);
    }
    let scale_violations = check_scale_twins(&results);
    if scale_violations > 0 {
        eprintln!(
            "scale twin check: {scale_violations} sharded cell(s) drifted from sequential or missed the efficiency gate"
        );
        std::process::exit(1);
    }
    // `host_cores` stamps the measuring host into the committed baseline:
    // the scale-cell speedup curve is only meaningful relative to the core
    // count that produced it (a single-core container records parity).
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let body: Vec<String> = results.iter().map(Measurement::to_json).collect();
    let json = format!(
        "{{\n  \"suite\": \"doall perf baseline\",\n  \"mode\": \"{}\",\n  \"host_cores\": {},\n  \"results\": [\n{}\n  ]\n}}",
        if smoke { "smoke" } else { "full" },
        host_cores,
        body.join(",\n"),
    );
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n")).expect("write output file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = baseline {
        let violations = compare(&results, &path);
        if violations > 0 {
            eprintln!("compare: {violations} cell(s) regressed vs {path}");
            std::process::exit(1);
        }
        eprintln!("compare: all measured cells within 30% of {path}");
    }
}
