//! Headless perf baseline: runs the criterion-style engine/protocol
//! benchmarks without the bench harness and emits one JSON measurement
//! block (see `BENCH_PR2.json` for the committed before/after pair).
//!
//! ```sh
//! cargo run --release -p doall-bench --bin perf_baseline              # JSON to stdout
//! cargo run --release -p doall-bench --bin perf_baseline -- --out f.json
//! cargo run --release -p doall-bench --bin perf_baseline -- --smoke   # CI: tiny shapes, 1 iter
//! ```

use std::time::{Duration, Instant};

use doall_core::{Lockstep, ProtocolA, ProtocolB, ProtocolC, ProtocolD, ReplicateAll};
use doall_sim::{run, Metrics, Protocol, RunConfig};
use doall_workload::Scenario;

struct Measurement {
    id: String,
    n: u64,
    t: u64,
    scenario: String,
    iters: u64,
    total: Duration,
    metrics: Metrics,
}

impl Measurement {
    /// Simulated rounds per wall-clock second (fast-forwarded rounds count;
    /// for dense cells this equals executed rounds per second).
    fn rounds_per_sec(&self) -> f64 {
        let secs = self.total.as_secs_f64() / self.iters as f64;
        self.metrics.rounds as f64 / secs
    }

    fn ns_per_round(&self) -> f64 {
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        ns / self.metrics.rounds as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"id\": \"{}\", \"n\": {}, \"t\": {}, \"scenario\": \"{}\", ",
                "\"iters\": {}, \"mean_ms\": {:.3}, \"sim_rounds\": {}, ",
                "\"ns_per_round\": {:.1}, \"rounds_per_sec\": {:.0}, ",
                "\"work_total\": {}, \"messages\": {}}}"
            ),
            self.id,
            self.n,
            self.t,
            self.scenario,
            self.iters,
            self.total.as_secs_f64() * 1e3 / self.iters as f64,
            self.metrics.rounds,
            self.ns_per_round(),
            self.rounds_per_sec(),
            self.metrics.work_total,
            self.metrics.messages,
        )
    }
}

/// Warm up once, then iterate until ~300 ms or `max_iters`, whichever
/// comes first. Returns the metrics of the last run (all runs are
/// deterministic, so every iteration yields identical metrics).
fn measure<P, F>(
    id: impl Into<String>,
    n: u64,
    t: u64,
    scenario: &Scenario,
    max_iters: u64,
    build: F,
) -> Measurement
where
    P: Protocol,
    P::Msg: 'static,
    F: Fn() -> Vec<P>,
{
    let id = id.into();
    let budget = Duration::from_millis(300);
    let run_once = || {
        run(build(), scenario.adversary::<P::Msg>(), RunConfig::new(n as usize, u64::MAX - 1))
            .expect("benchmark run must complete")
    };
    eprintln!("running {id} (n={n}, t={t}, {})...", scenario.label());
    let mut metrics = run_once().metrics; // warmup
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < max_iters && (iters == 0 || start.elapsed() < budget) {
        metrics = run_once().metrics;
        iters += 1;
    }
    Measurement { id, n, t, scenario: scenario.label(), iters, total: start.elapsed(), metrics }
}

fn cells(smoke: bool) -> Vec<Measurement> {
    let iters = if smoke { 1 } else { 200 };
    // Smoke mode shrinks the big shape so the whole bin finishes fast.
    // (A/B need a perfect-square t; C a power of two: 16, 64, 256, 1024
    // satisfy both.)
    let (t_big, t_mid) = if smoke { (64, 16) } else { (256, 16) };
    let n_of = |t: u64| 4 * t;
    let ff = Scenario::FailureFree;
    let mut out = vec![
        measure("failure_free/protocol_a", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolA::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure("failure_free/protocol_b", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolB::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure("failure_free/protocol_c", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolC::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure("failure_free/protocol_d", n_of(t_mid), t_mid, &ff, iters, || {
            ProtocolD::processes(n_of(t_mid), t_mid).unwrap()
        }),
        measure(
            "takeover_cascade/protocol_b",
            n_of(t_mid),
            t_mid,
            &Scenario::TakeoverCascade { victims: t_mid - 1 },
            iters,
            || ProtocolB::processes(n_of(t_mid), t_mid).unwrap(),
        ),
        measure("engine/replicate_all", 1_000, 16, &ff, iters, || {
            ReplicateAll::processes(1_000, 16).unwrap()
        }),
        measure("engine/lockstep", 512, 32, &ff, iters, || Lockstep::processes(512, 32).unwrap()),
        // The acceptance shape: the `protocols` bench scaling cell at
        // t = 256 (smoke mode shrinks t, so the id is derived from it).
        measure(
            format!("protocol_b_scaling/t{t_big}"),
            n_of(t_big),
            t_big,
            &Scenario::DeadOnArrival { k: t_big / 2 },
            if smoke { 1 } else { 20 },
            || ProtocolB::processes(n_of(t_big), t_big).unwrap(),
        ),
        measure(
            format!("failure_free/protocol_b_t{t_big}"),
            n_of(t_big),
            t_big,
            &ff,
            if smoke { 1 } else { 20 },
            || ProtocolB::processes(n_of(t_big), t_big).unwrap(),
        ),
    ];
    if !smoke {
        // Peak shapes: affordable only with the allocation-free hot loop.
        out.push(measure(
            "peak/protocol_b_t1024",
            2_048,
            1_024,
            &Scenario::DeadOnArrival { k: 1_023 },
            3,
            || ProtocolB::processes(2_048, 1_024).unwrap(),
        ));
        out.push(measure("peak/protocol_a_t1024", 2_048, 1_024, &ff, 3, || {
            ProtocolA::processes(2_048, 1_024).unwrap()
        }));
        // Broadcast-D's t² view-carrying messages are infeasible at t=1024;
        // the §4 coordinator variant (2(t−1) messages per phase) scales.
        out.push(measure("peak/protocol_d_coord_t1024", 2_048, 1_024, &ff, 3, || {
            ProtocolD::processes_with_coordinator(2_048, 1_024).unwrap()
        }));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    let results = cells(smoke);
    let body: Vec<String> = results.iter().map(Measurement::to_json).collect();
    let json = format!(
        "{{\n  \"suite\": \"doall perf baseline\",\n  \"mode\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}",
        if smoke { "smoke" } else { "full" },
        body.join(",\n"),
    );
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n")).expect("write output file");
        eprintln!("wrote {path}");
    }
}
