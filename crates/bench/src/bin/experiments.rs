//! CLI for the experiment suite: `experiments [id ...]` (default: all).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcomes = if args.is_empty() {
        doall_bench::all()
    } else {
        let mut outcomes = Vec::new();
        for id in &args {
            match doall_bench::by_id(id) {
                Some(o) => outcomes.push(o),
                None => {
                    eprintln!("unknown experiment id: {id} (expected e1..e16)");
                    return ExitCode::FAILURE;
                }
            }
        }
        outcomes
    };

    let mut all_pass = true;
    for o in &outcomes {
        println!("== {} — {}", o.id.to_uppercase(), o.claim);
        println!("{}", o.rendered);
        println!("   result: {}\n", if o.pass { "PASS (all bounds hold)" } else { "FAIL" });
        all_pass &= o.pass;
    }
    println!(
        "{} / {} experiments passed",
        outcomes.iter().filter(|o| o.pass).count(),
        outcomes.len()
    );
    if all_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
