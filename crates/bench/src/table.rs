//! Minimal fixed-width text tables for experiment output.

/// A simple left-padded text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("  ");
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(&format!("  {}\n", "-".repeat(total.saturating_sub(2))));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a measured/bound pair with its tightness ratio. Accepts any
/// mix of `u64`, `u128` and [`Round`](doall_sim::Round)-backed values so
/// wide-clock round counts render alongside 64-bit work/message counts;
/// a saturated (`u128::MAX`) bound prints as `inf`.
pub fn vs(measured: impl Into<u128>, bound: impl Into<u128>) -> String {
    let (measured, bound) = (measured.into(), bound.into());
    if bound == 0 {
        return format!("{measured}/0");
    }
    if bound == u128::MAX {
        return format!("{measured}/inf");
    }
    format!("{measured}/{bound} ({:.0}%)", measured as f64 * 100.0 / bound as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("123456"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_rows_panic() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn vs_formats_ratio() {
        assert_eq!(vs(50u64, 100u64), "50/100 (50%)");
        assert_eq!(vs(3u64, u128::MAX), "3/inf");
        // Wide-clock round counts mix freely with 64-bit counters.
        assert_eq!(
            vs(doall_sim::Round::new(1 << 70), 1u128 << 71),
            format!("{}/{} (50%)", 1u128 << 70, 1u128 << 71)
        );
    }
}
