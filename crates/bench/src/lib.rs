//! # doall-bench
//!
//! The experiment harness that regenerates every quantitative claim of
//! Dwork, Halpern & Waarts (PODC 1992). See `DESIGN.md` §4 for the
//! claim-to-experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! Run all experiments:
//!
//! ```sh
//! cargo run --release -p doall-bench --bin experiments
//! ```
//!
//! or one of them: `… --bin experiments -- e3`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod sweep;
pub mod table;

pub use experiments::{all, by_id, Outcome};
pub use table::Table;
