//! The experiment suite: one function per quantitative claim of the paper
//! (see DESIGN.md §4 and EXPERIMENTS.md). Each experiment sweeps
//! parameters, drives the adversaries its claim is about, prints a
//! `measured vs bound` table and returns whether every bound held.
//!
//! Grids fan their cells across threads via [`crate::sweep`] (every cell
//! is an independent deterministic simulation), which is what makes the
//! large shapes — `t = 1024` for Protocols A, B, C, C′ and coordinator-D,
//! and `n = 10⁶` for Protocol B — affordable inside the default suite.
//! Protocol C's deadlines grow as `K(n+t−m)2^{n+t−1−m}` rounds; on the
//! 128-bit virtual-time clock the tower is exact up to `n + t ≈ 128`
//! (honest `t = 64` grids, ~10²⁵-round waits crossed in one sparse
//! fast-forward jump each), and the *deep idle* scenario carries C and
//! C′ to `t = 256` and `t = 1024` with exactly derivable counts (see
//! EXPERIMENTS.md §e3/§e4).

use doall_agreement::{BaSystem, Engine, FloodingBa};
use doall_bounds::deadlines_ab::{ddb, tt, AbParams};
use doall_bounds::theorems::{self, Bounds};
use doall_core::{
    AsyncProtocolA, AsyncProtocolB, AsyncReplicate, Lockstep, NaiveSpread, ProtocolA, ProtocolB,
    ProtocolC, ProtocolD, ReplicateAll,
};
use doall_service::{Admission, ArrivalModel, JobSpec, Pool, Session};
use doall_sim::asynch::{run_async, AsyncConfig, AsyncProtocol, DelayDist};
use doall_sim::chaos;
use doall_sim::invariants::{check_degraded_rate, check_recovery_silence};
use doall_sim::{run, Metrics, NoFailures, Pid, Protocol, Report, Round, RunConfig};
use doall_workload::Scenario;

use crate::sweep;
use crate::table::{vs, Table};

/// One experiment's outcome.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Experiment id (`e1` … `e12`).
    pub id: &'static str,
    /// The paper claim being reproduced.
    pub claim: &'static str,
    /// Rendered result table.
    pub rendered: String,
    /// Whether every measured value respected its bound.
    pub pass: bool,
}

fn run_protocol<P: Protocol + Send>(procs: Vec<P>, scenario: &Scenario, n: u64) -> Metrics
where
    P::Msg: Send + Sync + 'static,
{
    let report = run(procs, scenario.adversary::<P::Msg>(), RunConfig::new(n as usize, Round::MAX))
        .unwrap_or_else(|e| panic!("{}: {e}", scenario.label()));
    assert!(report.metrics.all_work_done(), "incomplete work under {}", scenario.label());
    report.metrics
}

fn check(m: &Metrics, b: &Bounds, pass: &mut bool) {
    if !within(m, b) {
        *pass = false;
    }
}

fn within(m: &Metrics, b: &Bounds) -> bool {
    m.work_total <= b.work && m.messages <= b.messages && m.rounds <= b.rounds
}

/// The standard measured-vs-bound row shared by the A/B/C grids.
fn bound_row(n: u64, t: u64, scenario: &Scenario, m: &Metrics, b: &Bounds) -> [String; 6] {
    [
        n.to_string(),
        t.to_string(),
        scenario.label(),
        vs(m.work_total, b.work),
        vs(m.messages, b.messages),
        vs(m.rounds, b.rounds),
    ]
}

fn ab_scenarios(t: u64, seed: u64) -> Vec<Scenario> {
    vec![
        Scenario::FailureFree,
        Scenario::DeadOnArrival { k: t - 1 },
        Scenario::TakeoverCascade { victims: t - 1 },
        Scenario::CheckpointSplit { victims: t / 2, nth_send: 2, prefix: 1 },
        Scenario::Random { seed, p: 0.02, max_crashes: (t - 1) as u32 },
    ]
}

/// The A/B grid: the classic shapes under every adversary, plus the
/// large shapes the parallel sweep makes affordable (trigger-based
/// adversaries scan their rule lists per step, so the t = 1024 cells
/// stick to the schedule-driven scenarios).
fn ab_grid(big_n: bool) -> Vec<(u64, u64, Scenario)> {
    let mut cells = Vec::new();
    for (i, (n, t)) in [(16, 16), (32, 16), (128, 16), (64, 64), (256, 64)].into_iter().enumerate()
    {
        for scenario in ab_scenarios(t, sweep::cell_seed(7, i as u64)) {
            cells.push((n, t, scenario));
        }
    }
    cells.push((2_048, 1_024, Scenario::FailureFree));
    cells.push((2_048, 1_024, Scenario::DeadOnArrival { k: 1_023 }));
    if big_n {
        cells.push((1_000_000, 64, Scenario::DeadOnArrival { k: 63 }));
    }
    cells
}

/// E1 — Theorem 2.3: Protocol A within `3n` work, `9t√t` messages,
/// `nt + 3t²` rounds, across shapes and adversaries.
pub fn e1() -> Outcome {
    let mut table = Table::new(["n", "t", "scenario", "work/bound", "msgs/bound", "rounds/bound"]);
    let mut pass = true;
    let rows = sweep::map_cells(ab_grid(false), |_, (n, t, scenario)| {
        let m = run_protocol(ProtocolA::processes(*n, *t).unwrap(), scenario, *n);
        let b = theorems::protocol_a(*n, *t);
        (bound_row(*n, *t, scenario, &m, &b), within(&m, &b))
    });
    for (cols, ok) in rows {
        pass &= ok;
        table.row(cols);
    }
    Outcome {
        id: "e1",
        claim:
            "Theorem 2.3: Protocol A does <= 3n work, <= 9t*sqrt(t) messages, retires by nt + 3t^2",
        rendered: table.render(),
        pass,
    }
}

/// E2 — Theorem 2.8: Protocol B within `3n` work, `10t√t` messages,
/// `3n + 8t` rounds.
pub fn e2() -> Outcome {
    let mut table = Table::new(["n", "t", "scenario", "work/bound", "msgs/bound", "rounds/bound"]);
    let mut pass = true;
    let rows = sweep::map_cells(ab_grid(true), |_, (n, t, scenario)| {
        let m = run_protocol(ProtocolB::processes(*n, *t).unwrap(), scenario, *n);
        let b = theorems::protocol_b(*n, *t);
        (bound_row(*n, *t, scenario, &m, &b), within(&m, &b))
    });
    for (cols, ok) in rows {
        pass &= ok;
        table.row(cols);
    }
    // Peak multicast-pressure cell (PR 3): n = 2^20 ≈ 10^6 units on
    // t = 1024 processes with every group but the last dead on arrival.
    // The lone live group's active process fires one 31-recipient partial
    // checkpoint per subchunk (1024 of them), and its 31 live peers each
    // poll it once with a `go ahead` — so the exact expected traffic is
    // t(√t − 1) = 31744 ordinary messages plus 31 go_aheads (derivation in
    // EXPERIMENTS.md §e2).
    {
        let (n, t) = (1u64 << 20, 1_024u64);
        let scenario = Scenario::DeadOnArrival { k: 992 };
        let m = run_protocol(ProtocolB::processes(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_b(n, t);
        table.row(bound_row(n, t, &scenario, &m, &b));
        let ordinary = m.messages_by_class.get("ordinary").copied().unwrap_or(0);
        let go_aheads = m.messages_by_class.get("go_ahead").copied().unwrap_or(0);
        pass &= within(&m, &b)
            && ordinary == t * 31
            && go_aheads == 31
            && m.messages == ordinary + go_aheads;
    }
    Outcome {
        id: "e2",
        claim:
            "Theorem 2.8: Protocol B does <= 3n work, <= 10t*sqrt(t) messages, retires by 3n + 8t",
        rendered: table.render(),
        pass,
    }
}

/// E3 — Theorem 3.8: Protocol C within `n + 2t` real work and
/// `n + 8t log t` messages. Rounds are exponential by design; the wide
/// clock runs honest grids to `t = 64` (`n + t ≤ 128` keeps the tower
/// exact) and the deep-idle scenario carries C — with a coordinator-D
/// companion — to `t = 256` and `t = 1024` with exact counts.
pub fn e3() -> Outcome {
    let mut table = Table::new(["n", "t", "scenario", "work/bound", "msgs/bound", "rounds/bound"]);
    let mut pass = true;
    let mut cells = Vec::new();
    for (n, t) in [(8, 4), (16, 8), (16, 16), (24, 8), (32, 16)] {
        for scenario in [
            Scenario::FailureFree,
            Scenario::DeadOnArrival { k: t - 1 },
            Scenario::TakeoverCascade { victims: t - 1 },
            Scenario::Random { seed: 3, p: 0.02, max_crashes: (t - 1) as u32 },
        ] {
            cells.push((n, t, scenario));
        }
    }
    // The old 64-bit ceiling cells. Crash scenarios force a straggler to
    // wait out the *zero-view* deadline K(t−i)(n+t)2^{n+t−1}, which only
    // fits 64 bits for n + t ≲ 48; failure-free runs retire on the much
    // smaller informed deadlines and reached t = 32.
    cells.push((32, 32, Scenario::FailureFree));
    cells.push((48, 16, Scenario::FailureFree));
    // Honest t = 64 grids, newly reachable on the 128-bit clock: the
    // whole tower is exact while K·t·(n+t)·2^{n+t−1} fits 128 bits
    // (n + t ≲ 107 at t = 64; these shapes stay at n + t ≤ 96), so the
    // scenarios
    // that park a straggler on the ~10²⁵-round zero-view deadline run to
    // completion — each silent stretch is one sparse fast-forward jump.
    cells.push((8, 64, Scenario::FailureFree));
    cells.push((8, 64, Scenario::DeadOnArrival { k: 63 }));
    cells.push((8, 64, Scenario::TakeoverCascade { victims: 63 }));
    cells.push((16, 64, Scenario::DeadOnArrival { k: 63 }));
    cells.push((32, 64, Scenario::FailureFree));
    let rows = sweep::map_cells(cells, |_, (n, t, scenario)| {
        let m = run_protocol(ProtocolC::processes(*n, *t).unwrap(), scenario, *n);
        let b = theorems::protocol_c(*n, *t);
        (bound_row(*n, *t, scenario, &m, &b), within(&m, &b))
    });
    for (cols, ok) in rows {
        pass &= ok;
        table.row(cols);
    }
    // Deep-idle exact cells: every passive process vanishes at round 2¹⁰⁰
    // (representable only on the wide clock) long after p0 has finished
    // everything. The counts are exactly derivable (EXPERIMENTS.md §e3):
    // 2 log t fault-detection messages plus n reports, exactly n units of
    // work, zero dead letters, and the run ends at exactly round 2¹⁰⁰ —
    // the post-completion silence is one O(1) sparse jump over ~10³⁰
    // rounds.
    for (n, t) in [(256u64, 256u64), (1_024, 1_024)] {
        let log_t = u64::from(t.trailing_zeros());
        let scenario = Scenario::DeepIdle { k: t - 1, round: Round::new(1 << 100) };
        let m = run_protocol(ProtocolC::processes(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_c(n, t);
        table.row(bound_row(n, t, &scenario, &m, &b));
        pass &= within(&m, &b)
            && m.work_total == n
            && m.messages == n + 2 * log_t
            && m.rounds == Round::new(1 << 100)
            && m.dead_letters == 0;
    }
    // Coordinator-D companions at the same scale: the §4 closing-remark
    // variant is the only D flavour whose message complexity survives
    // t = 1024, and its failure-free counts are exact — n units, one
    // agreement phase of 2(t − 1) messages, n/t + 3 rounds.
    for (n, t) in [(1_024u64, 256u64), (4_096, 1_024)] {
        let scenario = Scenario::FailureFree;
        let m = run_protocol(ProtocolD::processes_with_coordinator(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_d_failure_free(n, t);
        pass &= m.work_total == n
            && m.messages == 2 * (t - 1)
            && m.rounds == n / t + 3
            && m.messages <= b.messages;
        table.row([
            n.to_string(),
            t.to_string(),
            "coordinator-D failure-free".into(),
            vs(m.work_total, b.work),
            vs(m.messages, b.messages),
            format!("{} (expect {})", m.rounds, n / t + 3),
        ]);
    }
    Outcome {
        id: "e3",
        claim:
            "Theorem 3.8: Protocol C does <= n + 2t real work and sends <= n + 8t*log(t) messages (honest t = 64; deep-idle + coordinator-D to t = 1024, exact counts)",
        rendered: table.render(),
        pass,
    }
}

/// E4 — Corollary 3.9: C′ sends `O(t log t)` messages — flat in `n`,
/// near-linear in `t` — while Protocol C's messages grow with `n`. The
/// deep-idle scenario extends the comparison to `t = 256` and `t = 1024`
/// with exact counts: C sends `n + 2 log t`, C′ exactly `t + 2 log t`.
pub fn e4() -> Outcome {
    let mut table = Table::new(["n", "t", "C msgs", "C' msgs", "C' bound (3t+8t log t)"]);
    let mut pass = true;
    let mut c_prime_by_n: Vec<(u64, u64)> = Vec::new();
    let shapes: Vec<(u64, u64)> =
        vec![(16, 4), (32, 4), (64, 4), (16, 8), (32, 8), (64, 8), (32, 16), (64, 32)];
    let rows = sweep::map_cells(shapes, |_, &(n, t)| {
        let c = run_protocol(ProtocolC::processes(n, t).unwrap(), &Scenario::FailureFree, n);
        let cp = run_protocol(ProtocolC::processes_prime(n, t).unwrap(), &Scenario::FailureFree, n);
        let b = theorems::protocol_c_prime(n, t);
        (n, t, c.messages, cp.messages, b.messages)
    });
    for (n, t, c_msgs, cp_msgs, bound) in rows {
        if cp_msgs > bound {
            pass = false;
        }
        if t == 4 {
            c_prime_by_n.push((n, cp_msgs));
        }
        table.row([
            n.to_string(),
            t.to_string(),
            c_msgs.to_string(),
            cp_msgs.to_string(),
            vs(cp_msgs, bound),
        ]);
    }
    // The shape claim: C' messages must not grow with n (t fixed).
    if let (Some(first), Some(last)) = (c_prime_by_n.first(), c_prime_by_n.last()) {
        if last.1 > first.1 + 8 {
            pass = false;
        }
    }
    // Wide-clock cells: under the deep-idle scenario the failure-free
    // message counts are exact at t = 256 and t = 1024 (EXPERIMENTS.md
    // §e4) — C pays one report per unit (n + 2 log t total), C′ one per
    // n/t-stride (t + 2 log t total, flat in n), far below the
    // 3t + 8t log t bound.
    for (n, t) in [(512u64, 256u64), (2_048, 1_024)] {
        let log_t = u64::from(t.trailing_zeros());
        let scenario = Scenario::DeepIdle { k: t - 1, round: Round::new(1 << 100) };
        let c = run_protocol(ProtocolC::processes(n, t).unwrap(), &scenario, n);
        let cp = run_protocol(ProtocolC::processes_prime(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_c_prime(n, t);
        pass &= c.messages == n + 2 * log_t
            && cp.messages == t + 2 * log_t
            && cp.messages <= b.messages;
        table.row([
            n.to_string(),
            t.to_string(),
            format!("{} (expect {})", c.messages, n + 2 * log_t),
            format!("{} (expect {})", cp.messages, t + 2 * log_t),
            vs(cp.messages, b.messages),
        ]);
    }
    Outcome {
        id: "e4",
        claim:
            "Corollary 3.9: C' (report every n/t units) sends O(t log t) messages, independent of n",
        rendered: table.render(),
        pass,
    }
}

/// E5 — Theorem 4.1(1): Protocol D with `f` spread-out failures stays
/// within `2n` work, `(4f+2)t²` messages, `(f+1)n/t + 4f + 2` rounds.
pub fn e5() -> Outcome {
    let mut table = Table::new(["n", "t", "f", "work/bound", "msgs/bound", "rounds/bound"]);
    let mut pass = true;
    let (n, t) = (128u64, 8u64);
    let rows = sweep::map_cells((0..=5u64).collect(), |_, &f| {
        // One crash per phase: victim j dies during work phase j+1.
        let mut sched = doall_sim::CrashSchedule::new();
        let phase_len = n / t + 4;
        for j in 0..f {
            sched = sched.crash_at(
                doall_sim::Pid::new(j as usize),
                1 + j * phase_len,
                doall_sim::CrashSpec::silent(),
            );
        }
        let report =
            run(ProtocolD::processes(n, t).unwrap(), sched, RunConfig::new(n as usize, 1_000_000))
                .expect("protocol D run");
        assert!(report.metrics.all_work_done());
        report.metrics
    });
    for m in rows {
        let f_actual = u64::from(m.crashes);
        let b = theorems::protocol_d_normal(n, t, f_actual);
        check(&m, &b, &mut pass);
        table.row([
            n.to_string(),
            t.to_string(),
            f_actual.to_string(),
            vs(m.work_total, b.work),
            vs(m.messages, b.messages),
            vs(m.rounds, b.rounds),
        ]);
    }
    Outcome {
        id: "e5",
        claim: "Theorem 4.1(1): Protocol D with f failures (<= half per phase): 2n work, (4f+2)t^2 messages, (f+1)n/t+4f+2 rounds",
        rendered: table.render(),
        pass,
    }
}

/// E6 — Theorem 4.1(2): losing more than half the live processes in one
/// phase triggers the Protocol A fallback; the case-2 envelope holds.
pub fn e6() -> Outcome {
    let mut table =
        Table::new(["n", "t", "killed", "fellback", "work/bound", "msgs/bound", "rounds/bound"]);
    let mut pass = true;
    let shapes: Vec<(u64, u64, u64)> = vec![(64, 8, 6), (64, 8, 7), (128, 16, 12), (60, 6, 4)];
    let rows = sweep::map_cells(shapes, |_, &(n, t, kill)| {
        let scenario = Scenario::MassExtinction { from: t - kill, k: kill, round: 2 };
        let report = run(
            ProtocolD::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, 10_000_000).with_trace(),
        )
        .expect("protocol D run");
        assert!(report.metrics.all_work_done());
        let fellback = report.trace.notes("fallback").count() > 0;
        (n, t, kill, fellback, report.metrics)
    });
    for (n, t, kill, fellback, m) in rows {
        let b = theorems::protocol_d_fallback(n, t, u64::from(m.crashes));
        check(&m, &b, &mut pass);
        if !fellback {
            pass = false; // losing > half must trigger the fallback
        }
        table.row([
            n.to_string(),
            t.to_string(),
            kill.to_string(),
            fellback.to_string(),
            vs(m.work_total, b.work),
            vs(m.messages, b.messages),
            vs(m.rounds, b.rounds),
        ]);
    }
    Outcome {
        id: "e6",
        claim: "Theorem 4.1(2): > half the live set lost in a phase => revert to Protocol A; 4n work, (4f+2)t^2 + 9t*sqrt(t)/(2*sqrt(2)) messages",
        rendered: table.render(),
        pass,
    }
}

/// E7 — §4 exact small-failure numbers: failure-free D takes exactly `n`
/// work, `n/t + 2` rounds, `< 2t²` messages; one failure stays within
/// `n + n/t` work, `5t²` messages, `n/t + ⌈n/(t(t−1))⌉ + 6` rounds.
pub fn e7() -> Outcome {
    let mut table = Table::new(["n", "t", "case", "work/bound", "msgs/bound", "rounds/bound"]);
    let mut pass = true;
    let shapes: Vec<(u64, u64)> = vec![(100, 10), (64, 8), (256, 16)];
    let rows = sweep::map_cells(shapes, |_, &(n, t)| {
        let ff = run_protocol(ProtocolD::processes(n, t).unwrap(), &Scenario::FailureFree, n);
        let one =
            run_protocol(ProtocolD::processes(n, t).unwrap(), &Scenario::DeadOnArrival { k: 1 }, n);
        (n, t, ff, one)
    });
    for (n, t, m_ff, m_one) in rows {
        let b = theorems::protocol_d_failure_free(n, t);
        check(&m_ff, &b, &mut pass);
        if m_ff.rounds != b.rounds || m_ff.work_total != n {
            pass = false; // the failure-free claim is exact
        }
        table.row([
            n.to_string(),
            t.to_string(),
            "failure-free".into(),
            vs(m_ff.work_total, b.work),
            vs(m_ff.messages, b.messages),
            vs(m_ff.rounds, b.rounds),
        ]);

        let b = theorems::protocol_d_one_failure(n, t);
        check(&m_one, &b, &mut pass);
        table.row([
            n.to_string(),
            t.to_string(),
            "one failure".into(),
            vs(m_one.work_total, b.work),
            vs(m_one.messages, b.messages),
            vs(m_one.rounds, b.rounds),
        ]);
    }
    Outcome {
        id: "e7",
        claim: "§4: failure-free D = exactly n work, n/t + 2 rounds, <= 2t^2 messages; one failure <= n + n/t work, 5t^2 messages, n/t + ceil(n/(t(t-1))) + 6 rounds",
        rendered: table.render(),
        pass,
    }
}

/// E8 — the §1/§6 comparison: effort across the whole suite. The claims:
/// baselines pay Θ(tn) effort; A, B, C, C′ and D stay work-optimal with
/// small message terms.
pub fn e8() -> Outcome {
    let mut table = Table::new(["scenario", "algorithm", "work", "messages", "rounds", "effort"]);
    let (n, t) = (32u64, 16u64);
    let mut pass = true;
    let algs = [
        "replicate-all",
        "lockstep",
        "naive-spread",
        "protocol-A",
        "protocol-B",
        "protocol-C",
        "protocol-C'",
        "protocol-D",
    ];
    let mut cells: Vec<(Scenario, &str)> = Vec::new();
    for scenario in [Scenario::FailureFree, Scenario::TakeoverCascade { victims: t - 1 }] {
        for alg in algs {
            cells.push((scenario.clone(), alg));
        }
    }
    let rows = sweep::map_cells(cells, |_, (scenario, alg)| {
        let m = match *alg {
            "replicate-all" => run_protocol(ReplicateAll::processes(n, t).unwrap(), scenario, n),
            "lockstep" => run_protocol(Lockstep::processes(n, t).unwrap(), scenario, n),
            "naive-spread" => run_protocol(NaiveSpread::processes(n, t).unwrap(), scenario, n),
            "protocol-A" => run_protocol(ProtocolA::processes(n, t).unwrap(), scenario, n),
            "protocol-B" => run_protocol(ProtocolB::processes(n, t).unwrap(), scenario, n),
            "protocol-C" => run_protocol(ProtocolC::processes(n, t).unwrap(), scenario, n),
            "protocol-C'" => run_protocol(ProtocolC::processes_prime(n, t).unwrap(), scenario, n),
            "protocol-D" => run_protocol(ProtocolD::processes(n, t).unwrap(), scenario, n),
            other => unreachable!("unknown algorithm {other}"),
        };
        (scenario.label(), *alg, m)
    });
    let mut efforts: Vec<(String, u64)> = Vec::new();
    for (label, name, m) in rows {
        efforts.push((format!("{label}/{name}"), m.effort()));
        table.row([
            label,
            name.to_string(),
            m.work_total.to_string(),
            m.messages.to_string(),
            m.rounds.to_string(),
            m.effort().to_string(),
        ]);
    }
    // Shape check: under failures, every work-optimal protocol beats both
    // trivial baselines on effort.
    let effort_of =
        |key: &str| efforts.iter().find(|(k, _)| k == key).map(|(_, e)| *e).expect("row present");
    let cascade = format!("takeover-cascade({})", t - 1);
    for alg in ["protocol-A", "protocol-B", "protocol-C", "protocol-C'", "protocol-D"] {
        if effort_of(&format!("{cascade}/{alg}")) >= effort_of(&format!("{cascade}/lockstep")) {
            pass = false;
        }
    }
    // Message-storm cell (PR 3): the strawman at t = 1024 — one unicast
    // report per unit except the three self-addressed ones (known ≡ 0 mod
    // t while p0 is active), plus the final (t − 1)-wide `Finished` span:
    // (n − 1 − 3) + (t − 1) = 5115 messages exactly (EXPERIMENTS.md §e8).
    {
        let (n, t) = (4_096u64, 1_024u64);
        let m = run_protocol(NaiveSpread::processes(n, t).unwrap(), &Scenario::FailureFree, n);
        let expected = (n - 1 - 3) + (t - 1);
        if m.messages != expected {
            pass = false;
        }
        table.row([
            "failure-free".into(),
            format!("naive-spread (t={t})"),
            m.work_total.to_string(),
            format!("{} (expect {expected})", m.messages),
            m.rounds.to_string(),
            m.effort().to_string(),
        ]);
    }
    Outcome {
        id: "e8",
        claim: "§1: trivial solutions cost Θ(tn) effort; the protocol suite is work-optimal with small message terms",
        rendered: table.render(),
        pass,
    }
}

/// E9 — §5: Byzantine agreement message complexity: via B `O(n + t√t)`,
/// via C `O(n + t log t)`, both far below flooding; agreement and validity
/// hold under crash schedules.
pub fn e9() -> Outcome {
    let mut table = Table::new(["n", "t", "engine", "messages/bound", "agreement", "validity"]);
    let mut pass = true;
    let shapes: Vec<(u64, u64, u64)> = vec![(64, 8, 7), (128, 8, 7), (256, 15, 15)];
    let results = sweep::map_cells(shapes, |_, &(n, t_b, t_c)| {
        let mut rows: Vec<[String; 6]> = Vec::new();
        let mut ok = true;
        for scenario in
            [Scenario::FailureFree, Scenario::Random { seed: 5, p: 0.01, max_crashes: 3 }]
        {
            let outcome = BaSystem::new(n, t_b, Engine::B)
                .unwrap()
                .general_value(9)
                .run(scenario.adversary())
                .expect("BA run");
            let bound = theorems::ba_via_b_messages(n, t_b);
            if outcome.metrics.messages > bound || !outcome.agreement() || !outcome.validity() {
                ok = false;
            }
            rows.push([
                n.to_string(),
                t_b.to_string(),
                format!("B ({})", scenario.label()),
                vs(outcome.metrics.messages, bound),
                outcome.agreement().to_string(),
                outcome.validity().to_string(),
            ]);
        }
        let outcome = BaSystem::new(n, t_c, Engine::C)
            .unwrap()
            .general_value(9)
            .run(NoFailures)
            .expect("BA run");
        let bound = theorems::ba_via_c_messages(n, t_c);
        if outcome.metrics.messages > bound || !outcome.agreement() {
            ok = false;
        }
        rows.push([
            n.to_string(),
            t_c.to_string(),
            "C (failure-free)".into(),
            vs(outcome.metrics.messages, bound),
            outcome.agreement().to_string(),
            outcome.validity().to_string(),
        ]);
        let (decisions, m) = FloodingBa::run_system(n, t_b, 9, NoFailures).expect("flooding");
        let agreed = decisions.iter().flatten().all(|v| *v == 9);
        rows.push([
            n.to_string(),
            t_b.to_string(),
            "flooding".into(),
            vs(m.messages, theorems::ba_flooding_messages(n, t_b)),
            agreed.to_string(),
            agreed.to_string(),
        ]);
        (rows, ok)
    });
    for (rows, ok) in results {
        pass &= ok;
        for row in rows {
            table.row(row);
        }
    }
    Outcome {
        id: "e9",
        claim: "§5: BA via B costs O(n + t*sqrt(t)) messages, via C O(n + t log t); both beat Θ(n²t) flooding",
        rendered: table.render(),
        pass,
    }
}

/// E10 — §3: the naive-spread strawman wastes `Θ(t²)` work under the
/// cascade scenario while Protocol C (same scenario) stays `O(n + t)` —
/// fault detection pays for itself.
pub fn e10() -> Outcome {
    let mut table = Table::new(["t", "n", "naive wasted work", "C wasted work", "C bound (n+2t)"]);
    let mut pass = true;
    let mut naive_waste = Vec::new();
    // n + t is capped at 32: the strawman's takeover deadlines are
    // exponential in n + t - 1 - m and overflow 64-bit rounds beyond that
    // (the algorithm would genuinely take ~10^21 rounds).
    for t in [4u64, 8, 16] {
        let n = t;
        let scenario = Scenario::Strawman { t };
        let naive = run_protocol(NaiveSpread::processes(n, t).unwrap(), &scenario, n);
        let c = run_protocol(ProtocolC::processes(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_c(n, t);
        if c.work_total > b.work {
            pass = false;
        }
        naive_waste.push(naive.wasted_work());
        table.row([
            t.to_string(),
            n.to_string(),
            naive.wasted_work().to_string(),
            c.wasted_work().to_string(),
            vs(c.work_total, b.work),
        ]);
    }
    // Quadratic growth for the strawman: doubling t should ~quadruple waste.
    if naive_waste[2] < 3 * naive_waste[1] || naive_waste[1] < 3 * naive_waste[0] {
        pass = false;
    }
    Outcome {
        id: "e10",
        claim: "§3: without fault detection the cascade costs Θ(t²) wasted work; Protocol C holds at O(n + t)",
        rendered: table.render(),
        pass,
    }
}

/// E11 — §2.3: Protocol A's takeover latency is `Θ(nt + t²)` in the worst
/// case while Protocol B's is `O(n + t)`; the gap must widen linearly in t.
pub fn e11() -> Outcome {
    let mut table = Table::new(["n", "t", "A rounds", "B rounds", "A/B ratio"]);
    let mut pass = true;
    let mut ratios = Vec::new();
    for t in [16u64, 64, 144] {
        let n = t;
        let scenario = Scenario::DeadOnArrival { k: t - 1 };
        let a = run_protocol(ProtocolA::processes(n, t).unwrap(), &scenario, n);
        let b = run_protocol(ProtocolB::processes(n, t).unwrap(), &scenario, n);
        let ratio = a.rounds.as_f64() / b.rounds.as_f64();
        ratios.push(ratio);
        if b.rounds > 3 * n + 8 * t {
            pass = false;
        }
        table.row([
            n.to_string(),
            t.to_string(),
            a.rounds.to_string(),
            b.rounds.to_string(),
            format!("{ratio:.1}x"),
        ]);
    }
    if !(ratios.windows(2).all(|w| w[1] > w[0])) {
        pass = false; // the gap must grow with t
    }
    Outcome {
        id: "e11",
        claim: "§2.3: worst-case takeover latency — Protocol A Θ(nt + t²) vs Protocol B O(n + t), gap growing with t",
        rendered: table.render(),
        pass,
    }
}

/// E12 — Lemma 2.5 deadline identities, exhaustively over small shapes.
pub fn e12() -> Outcome {
    let mut table = Table::new(["n", "t", "triples checked", "identity (a)", "identity (b)"]);
    let mut pass = true;
    for (n, t) in [(16u64, 16u64), (32, 16), (36, 36), (100, 25)] {
        let p = AbParams::new(n, t);
        let mut checked = 0u64;
        let mut ok_a = true;
        let mut ok_b = true;
        for k in 0..t {
            for j in k + 1..t {
                for l in j + 1..t {
                    checked += 1;
                    if tt(p, j, k) + tt(p, l, j) != tt(p, l, k) {
                        ok_a = false;
                    }
                    if p.group_of(j) < p.group_of(l) && tt(p, j, k) + ddb(p, l, j) != ddb(p, l, k) {
                        ok_b = false;
                    }
                }
            }
        }
        if !ok_a || !ok_b {
            pass = false;
        }
        table.row([
            n.to_string(),
            t.to_string(),
            checked.to_string(),
            ok_a.to_string(),
            ok_b.to_string(),
        ]);
    }
    Outcome {
        id: "e12",
        claim:
            "Lemma 2.5: TT(j,k) + TT(l,j) = TT(l,k); TT(j,k) + DDB(l,j) = DDB(l,k) when g(j) < g(l)",
        rendered: table.render(),
        pass,
    }
}

/// E13 — ablation beyond the paper's analysis: the §4 closing-remark
/// coordinator optimization cuts failure-free agreement traffic from
/// `≈ 2t²` to exactly `2(t − 1)` messages, and survives coordinator
/// crashes by reverting to the broadcast exchange.
pub fn e13() -> Outcome {
    let mut table =
        Table::new(["n", "t", "scenario", "broadcast-D msgs", "coordinator-D msgs", "saving"]);
    let mut pass = true;
    let mut cells: Vec<(u64, u64, Scenario, bool)> = Vec::new();
    for (n, t) in [(100u64, 10u64), (256, 16), (64, 32)] {
        for scenario in [
            Scenario::FailureFree,
            Scenario::DeadOnArrival { k: 1 },
            Scenario::MassExtinction { from: 0, k: 1, round: 2 }, // kills the coordinator
        ] {
            cells.push((n, t, scenario, true));
        }
    }
    // The large-shape cell: broadcast-D's t² view-carrying messages are
    // infeasible at t = 1024, which is exactly the coordinator variant's
    // selling point — run it alone and check the exact 2(t−1) claim.
    cells.push((2_048, 1_024, Scenario::FailureFree, false));
    let rows = sweep::map_cells(cells, |_, (n, t, scenario, with_broadcast)| {
        let b = with_broadcast
            .then(|| run_protocol(ProtocolD::processes(*n, *t).unwrap(), scenario, *n));
        let c = run_protocol(ProtocolD::processes_with_coordinator(*n, *t).unwrap(), scenario, *n);
        (*n, *t, scenario.clone(), b, c)
    });
    for (n, t, scenario, b, c) in rows {
        if matches!(scenario, Scenario::FailureFree) && c.messages != 2 * (t - 1) {
            pass = false; // the claim is exact
        }
        let (b_msgs, saving) = match &b {
            Some(b) => {
                if c.messages > b.messages.max(2 * (t - 1)) * 2 {
                    pass = false; // never catastrophically worse
                }
                let saving = if c.messages == 0 {
                    "inf".to_string()
                } else {
                    format!("{:.1}x", b.messages as f64 / c.messages as f64)
                };
                (b.messages.to_string(), saving)
            }
            None => ("- (t^2 infeasible)".into(), "-".into()),
        };
        table.row([
            n.to_string(),
            t.to_string(),
            scenario.label(),
            b_msgs,
            c.messages.to_string(),
            saving,
        ]);
    }
    Outcome {
        id: "e13",
        claim: "§4 closing remark (extension): coordinator-based agreement = exactly 2(t-1) failure-free messages, broadcast fallback on coordinator death",
        rendered: table.render(),
        pass,
    }
}

/// Runs one asynchronous-plane protocol cell and returns its metrics.
fn run_async_protocol<P: AsyncProtocol>(
    procs: Vec<P>,
    scenario: &Scenario,
    cfg: AsyncConfig,
) -> Metrics
where
    P::Msg: 'static,
{
    let report = run_async(procs, scenario.async_adversary::<P::Msg>(), cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", scenario.label()));
    assert!(report.metrics.all_work_done(), "incomplete work under {}", scenario.label());
    assert!(report.has_survivor(), "no survivor under {}", scenario.label());
    report.metrics
}

/// E14 — §2.1's asynchronous remark, promoted to a full plane: Protocol A,
/// the detector-driven Protocol B analogue (labeled extension, like e13),
/// and the replicate baseline, swept across delay distributions ×
/// adversaries. The work/message bounds of Theorem 2.3 carry over (for B
/// with **zero** `go ahead`s — the detector replaced the polling phase);
/// under a fixed delay the failure-free counts equal the synchronous ones
/// exactly; and the baselines still pay the Θ(tn) effort the protocols
/// avoid.
pub fn e14() -> Outcome {
    let mut table =
        Table::new(["n", "t", "protocol", "delay", "scenario", "work/bound", "msgs/bound"]);
    let mut pass = true;

    let dists: [(DelayDist, u64); 4] = [
        (DelayDist::Uniform, 4),
        (DelayDist::Fixed, 1),
        (DelayDist::Uniform, 32),
        (DelayDist::Bimodal, 16),
    ];
    let protocols = ["async-A", "async-B", "async-replicate"];
    let mut cells: Vec<(u64, u64, &str, DelayDist, u64, Scenario)> = Vec::new();
    for (si, (n, t)) in [(32u64, 16u64), (256, 64)].into_iter().enumerate() {
        for (dist, max_delay) in dists {
            for scenario in [
                Scenario::FailureFree,
                Scenario::DeadOnArrival { k: t - 1 },
                Scenario::Random {
                    seed: sweep::cell_seed(14, si as u64),
                    p: 0.002,
                    max_crashes: (t - 1) as u32,
                },
                Scenario::KillNthActivation { nth: 1 },
            ] {
                for proto in protocols {
                    cells.push((n, t, proto, dist, max_delay, scenario.clone()));
                }
            }
        }
    }
    // The broadcast-heavy big shapes (affordable thanks to the op arena):
    // failure-free A at t = 1024, and B with all but the last group dead.
    cells.push((2_048, 1_024, "async-A", DelayDist::Uniform, 4, Scenario::FailureFree));
    cells.push((
        2_048,
        1_024,
        "async-B",
        DelayDist::Uniform,
        4,
        Scenario::DeadOnArrival { k: 992 },
    ));

    let rows = sweep::map_cells(cells, |i, (n, t, proto, dist, max_delay, scenario)| {
        let cfg = AsyncConfig::new(*n as usize, sweep::cell_seed(41, i as u64))
            .with_delay(*dist, *max_delay);
        let m = match *proto {
            "async-A" => {
                run_async_protocol(AsyncProtocolA::processes(*n, *t).unwrap(), scenario, cfg)
            }
            "async-B" => {
                run_async_protocol(AsyncProtocolB::processes(*n, *t).unwrap(), scenario, cfg)
            }
            "async-replicate" => {
                run_async_protocol(AsyncReplicate::processes(*n, *t).unwrap(), scenario, cfg)
            }
            other => unreachable!("unknown protocol {other}"),
        };
        // Work/message envelopes per protocol: A and B inherit Theorem
        // 2.3's 3n / 9t√t (B sends no go_aheads, so its ordinary bound is
        // the whole story); replicate is bounded by t·n work and silence.
        let (work_bound, msg_bound) = match *proto {
            "async-replicate" => (n * t, 0),
            _ => {
                let b = theorems::protocol_a(*n, *t);
                (b.work, b.messages)
            }
        };
        let mut ok = m.work_total <= work_bound && m.messages <= msg_bound;
        if *proto == "async-B" && m.messages_by_class.contains_key("go_ahead") {
            ok = false;
        }
        let row = [
            n.to_string(),
            t.to_string(),
            proto.to_string(),
            dist.label(*max_delay),
            scenario.label(),
            vs(m.work_total, work_bound),
            vs(m.messages, msg_bound),
        ];
        (row, ok, m)
    });
    for (row, ok, _m) in rows {
        pass &= ok;
        table.row(row);
    }

    // The exact cell (derived in EXPERIMENTS.md §e14): under a fixed delay
    // the failure-free asynchronous A and B report exactly the synchronous
    // counts — 32 work and 132 messages at (n, t) = (32, 16).
    {
        let (n, t) = (32u64, 16u64);
        let sync_a = run_protocol(ProtocolA::processes(n, t).unwrap(), &Scenario::FailureFree, n);
        let cfg = || AsyncConfig::new(n as usize, 0).with_delay(DelayDist::Fixed, 1);
        let a = run_async_protocol(
            AsyncProtocolA::processes(n, t).unwrap(),
            &Scenario::FailureFree,
            cfg(),
        );
        let b = run_async_protocol(
            AsyncProtocolB::processes(n, t).unwrap(),
            &Scenario::FailureFree,
            cfg(),
        );
        pass &= a.work_total == n && a.messages == 132 && a.messages == sync_a.messages;
        pass &= b.work_total == n && b.messages == 132;
        table.row([
            n.to_string(),
            t.to_string(),
            "A/B async==sync".into(),
            "fixed(1)".into(),
            "failure-free".into(),
            format!("{} (expect {n})", a.work_total),
            format!("{} (expect 132)", a.messages),
        ]);
    }

    // The effort story carries over: the replicate baseline pays Θ(tn)
    // where the checkpointing protocols pay n + O(t√t).
    {
        let (n, t) = (256u64, 64u64);
        let cfg = || AsyncConfig::new(n as usize, 7).with_delay(DelayDist::Uniform, 4);
        let rep = run_async_protocol(
            AsyncReplicate::processes(n, t).unwrap(),
            &Scenario::FailureFree,
            cfg(),
        );
        let a = run_async_protocol(
            AsyncProtocolA::processes(n, t).unwrap(),
            &Scenario::FailureFree,
            cfg(),
        );
        if rep.effort() < 4 * a.effort() {
            pass = false; // tn = 16384 must dwarf n + O(t√t) ≈ 2900
        }
        table.row([
            n.to_string(),
            t.to_string(),
            "effort: replicate vs A".into(),
            "uniform(1..=4)".into(),
            "failure-free".into(),
            format!("{} vs {}", rep.effort(), a.effort()),
            format!("{:.1}x", rep.effort() as f64 / a.effort() as f64),
        ]);
    }

    Outcome {
        id: "e14",
        claim: "§2.1 async plane: A and B-analogue keep <= 3n work and <= 9t*sqrt(t) messages (B with zero go_aheads) across delay distributions x adversaries; fixed-delay failure-free counts equal the synchronous ones exactly",
        rendered: table.render(),
        pass,
    }
}

/// Runs one fault-catalog cell: wraps the processes with the scenario's
/// [`FaultPlan`] (slowdown windows are wrapper-enforced), drives the same
/// plan as the adversary, and returns the traced report.
fn run_fault_cell<P: Protocol + Send>(procs: Vec<P>, scenario: &Scenario, n: u64) -> Report
where
    P::Msg: Send + Sync + 'static,
{
    let plan = scenario.fault_plan();
    run(
        plan.wrap(procs),
        scenario.adversary::<P::Msg>(),
        RunConfig::new(n as usize, Round::MAX).with_trace(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", scenario.label()))
}

/// The e15 fault catalog: two crash-recovery flavours (stale and wiped
/// restart), a quarter-speed degradation window, and one omission window
/// per direction.
fn fault_catalog_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::CrashRecovery { pid: 0, round: 3, downtime: 5, wipe: false },
        Scenario::CrashRecovery { pid: 0, round: 2, downtime: 8, wipe: true },
        Scenario::Slowdown { pid: 0, from: 2, factor: 4, rounds: 16 },
        Scenario::Omission { pid: 0, send: true, from: 1, rounds: 6 },
        Scenario::Omission { pid: 1, send: false, from: 2, rounds: 6 },
    ]
}

/// The exact (32, 16) reference counts for every e15 catalog cell —
/// `(work, msgs, rounds, omissions, recoveries)` — derived by running the
/// cells once and transcribing the metrics (EXPERIMENTS.md §e15). The
/// scenario index matches [`fault_catalog_scenarios`] order.
/// One pinned e15 cell: `(protocol, scenario index, (work, msgs, rounds,
/// omissions, recoveries))`.
type E15Pin = (&'static str, usize, (u64, u64, u64, u64, u64));

static E15_EXPECTED: &[E15Pin] = &[
    ("A", 0, (32, 132, 76, 0, 1)),
    ("A", 1, (34, 132, 81, 0, 1)),
    ("A", 2, (32, 132, 84, 0, 0)),
    ("A", 3, (32, 126, 72, 6, 0)),
    ("A", 4, (32, 132, 72, 2, 0)),
    ("B", 0, (62, 238, 77, 0, 1)),
    ("B", 1, (66, 238, 81, 0, 1)),
    ("B", 2, (64, 238, 84, 0, 0)),
    ("B", 3, (64, 232, 75, 6, 0)),
    ("B", 4, (64, 236, 75, 2, 0)),
];

/// E15 — beyond fail-stop: the named-fault catalog's crash-recovery,
/// slowdown, and omission models on Protocols A and B, swept up to
/// `t = 1024`. Every cell is invariant-checked (all `n` tasks performed,
/// no activity during a victim's downtime, a degraded process never acts
/// faster than its rated factor), and every `(32, 16)` cell is pinned to
/// exact transcribed counts — recovery, degradation, and omission are
/// deterministic, so any drift is a semantics change, not noise.
pub fn e15() -> Outcome {
    let mut table =
        Table::new(["n", "t", "protocol", "scenario", "work", "msgs", "om/rec", "checks"]);
    let mut pass = true;

    let mut cells: Vec<(u64, u64, &'static str, usize, Scenario)> = Vec::new();
    for (n, t) in [(32u64, 16u64), (256, 64), (2_048, 1_024)] {
        for (si, scenario) in fault_catalog_scenarios().into_iter().enumerate() {
            for proto in ["A", "B"] {
                cells.push((n, t, proto, si, scenario.clone()));
            }
        }
    }
    let rows = sweep::map_cells(cells, |_, (n, t, proto, si, scenario)| {
        let report = match *proto {
            "A" => run_fault_cell(ProtocolA::processes(*n, *t).unwrap(), scenario, *n),
            "B" => run_fault_cell(ProtocolB::processes(*n, *t).unwrap(), scenario, *n),
            other => unreachable!("unknown protocol {other}"),
        };
        let m = &report.metrics;
        let mut ok = true;
        let mut checks: Vec<&'static str> = Vec::new();
        if m.all_work_done() {
            checks.push("done");
        } else {
            ok = false;
            checks.push("INCOMPLETE");
        }
        if check_recovery_silence(&report.trace).is_empty() {
            checks.push("silent-downtime");
        } else {
            ok = false;
            checks.push("DOWNTIME-ACTIVITY");
        }
        if let Scenario::Slowdown { pid, from, factor, rounds } = scenario {
            let until = Round::new(u128::from(from + rounds));
            let rate = check_degraded_rate(
                &report.trace,
                Pid::new(*pid as usize),
                Round::new(u128::from(*from)),
                until,
                *factor,
            );
            if rate.is_empty() {
                checks.push("rate<=1/factor");
            } else {
                ok = false;
                checks.push("RATE-VIOLATION");
            }
        }
        if *n == 32 {
            let (_, _, exp) = E15_EXPECTED
                .iter()
                .find(|(p, s, _)| p == proto && s == si)
                .expect("every (32,16) cell is pinned");
            let got = (m.work_total, m.messages, m.rounds, m.omissions, m.recoveries);
            let want = (exp.0, exp.1, Round::from(exp.2), exp.3, exp.4 as u32);
            if got == want {
                checks.push("exact");
            } else {
                ok = false;
                checks.push("DRIFTED");
            }
        }
        let row = [
            n.to_string(),
            t.to_string(),
            proto.to_string(),
            scenario.label(),
            m.work_total.to_string(),
            m.messages.to_string(),
            format!("{}/{}", m.omissions, m.recoveries),
            checks.join(","),
        ];
        (row, ok)
    });
    for (row, ok) in rows {
        pass &= ok;
        table.row(row);
    }

    Outcome {
        id: "e15",
        claim: "fault catalog beyond fail-stop: crash-recovery (stale/wiped), slowdown, and omission on A and B up to t = 1024 complete all n tasks under invariant checks, with every (32,16) cell pinned to exact counts",
        rendered: table.render(),
        pass,
    }
}

/// E16 — robustness tooling (extension; DESIGN.md §2.11): the chaos
/// shrinker and the checkpoint layer, pinned end-to-end. Stage 1 scans
/// chaos seeds for the first generated fault plan under which a Protocol
/// B run records a crash, then greedily shrinks it against that
/// engine-backed oracle; the surviving seed, the minimal case's shape,
/// its single fault, and the minimal run's exact metrics are all pinned
/// (the generator, the shrinker, and the engine are deterministic, so
/// any drift is a semantics change). Stage 2 round-trips the minimal
/// case through the `doall-chaos-repro v1` codec. Stage 3 pauses a run
/// under the *original* (unshrunk) plan at round 8, snapshots, resumes,
/// and requires the resumed report bit-identical to the straight run.
pub fn e16() -> Outcome {
    let mut table = Table::new(["stage", "t", "n", "faults", "detail", "ok"]);
    let mut pass = true;
    let cfg = chaos::ChaosConfig::new(16, 64);

    let run_case = |case: &chaos::ChaosCase| -> Option<Metrics> {
        let plan = case.plan();
        plan.validate(case.t).ok()?;
        let procs = plan.wrap(ProtocolB::processes(case.n as u64, case.t as u64).ok()?);
        run(procs, plan, RunConfig::new(case.n, Round::MAX)).ok().map(|r| r.metrics)
    };
    let fails = |case: &chaos::ChaosCase| run_case(case).is_some_and(|m| m.crashes >= 1);

    // Stage 1: find + shrink. Seed 1 is pinned as the first plan that
    // crashes anybody (seed 0 is reserved for the empty plan elsewhere).
    let case = (1u64..).map(|s| chaos::ChaosCase::generate(s, &cfg)).find(fails).unwrap();
    let found_ok = case.seed == 1;
    table.row([
        "find".to_string(),
        case.t.to_string(),
        case.n.to_string(),
        case.faults.len().to_string(),
        format!("seed {}", case.seed),
        found_ok.to_string(),
    ]);
    pass &= found_ok;

    let min = chaos::shrink(&case, fails);
    let metrics = run_case(&min).expect("minimal case must be runnable");
    // Pinned minimal repro: `crash p8 @1` alone on the smallest legal
    // Protocol B shape (t must stay a perfect square dividing n, so the
    // halving passes stop at t = n = 16), and the survivors' takeover
    // still performs all 16 units with the standard 132 messages.
    let min_fault = format!("{:?}", min.faults);
    let min_ok = min.faults.len() == 1
        && min.t == 16
        && min.n == 16
        && min_fault == "[Fault { kind: Crash(Pid(8)), at: Round(1), until: None }]"
        && fails(&min)
        && (metrics.work_total, metrics.messages, metrics.crashes) == (16, 132, 1);
    table.row([
        "shrink".to_string(),
        min.t.to_string(),
        min.n.to_string(),
        min.faults.len().to_string(),
        format!(
            "work={} msgs={} crashes={}",
            metrics.work_total, metrics.messages, metrics.crashes
        ),
        min_ok.to_string(),
    ]);
    pass &= min_ok;

    // Stage 2: the repro codec round-trips the minimal case exactly.
    let repro =
        chaos::Repro { protocol: "B".to_string(), plane: chaos::Plane::Sync, case: min.clone() };
    let parsed = chaos::Repro::parse(&repro.emit()).expect("emitted repro must parse");
    let codec_ok = parsed.case == min && parsed.protocol == "B";
    table.row([
        "repro".to_string(),
        min.t.to_string(),
        min.n.to_string(),
        min.faults.len().to_string(),
        "emit -> parse".to_string(),
        codec_ok.to_string(),
    ]);
    pass &= codec_ok;

    // Stage 3: checkpoint differential under the unshrunk plan.
    let straight = {
        let plan = case.plan();
        let procs = plan.wrap(ProtocolB::processes(64, 16).unwrap());
        run(procs, plan, RunConfig::new(64, Round::MAX)).unwrap()
    };
    let resumed = {
        let plan = case.plan();
        let procs = plan.wrap(ProtocolB::processes(64, 16).unwrap());
        let mut engine =
            doall_sim::Engine::new(procs, plan, RunConfig::new(64, Round::MAX)).unwrap();
        if !engine.run_until(Some(Round::new(8))).unwrap() {
            engine = doall_sim::Engine::resume(engine.snapshot());
            engine.run_until(None).unwrap();
        }
        engine.into_report().0
    };
    let snap_ok = straight == resumed;
    table.row([
        "snapshot".to_string(),
        "16".to_string(),
        "64".to_string(),
        case.faults.len().to_string(),
        "pause@8 == straight".to_string(),
        snap_ok.to_string(),
    ]);
    pass &= snap_ok;

    Outcome {
        id: "e16",
        claim: "robustness tooling: the chaos shrinker reduces the first crashing plan to a pinned one-fault repro, the repro codec round-trips it, and snapshot/resume is bit-identical mid-fault-plan",
        rendered: table.render(),
        pass,
    }
}

/// E17 — the scale axis (DESIGN.md §2.12): the sharded engine, the
/// struct-of-arrays process table, and run-compressed protocol state
/// carry the *same exact closed-form counts* two orders of magnitude past
/// the e3/e6 shapes — `t = 2^16`–`2^17` processes and `n = 2^27`–`10^8`
/// units — while per-process engine state stays inside its 32-byte
/// budget. Each giant cell is paired with a small cell that validates the
/// identical formula on the honest grid first. Registered in [`by_id`]
/// only, *not* in [`all`]: the giant cells are the CI scale-smoke leg,
/// not part of the default suite. Derivations: EXPERIMENTS.md §e17.
pub fn e17() -> Outcome {
    let mut table =
        Table::new(["cell", "n", "t", "work", "msgs (expect)", "rounds (expect)", "soa B/proc"]);
    let mut pass = true;

    // Protocol B with every process except p0 dead at round 1: the lone
    // survivor works through the entire Figure-1 schedule alone, so the
    // counts are exact —
    //   messages = t(√t−1) + √t(√t−1)(2√t−1)   (partial + full checkpoints)
    //   rounds   = n + t + 2√t(√t−1)           (one op per round)
    // and every message is a dead letter *except* the final FullCpOwn
    // multicast (√t−1 messages): the survivor terminates right after
    // sending it, the run ends with it still in flight, and dead letters
    // are counted at delivery. The giant cell uses t = 2^16, not 2^17,
    // because B's t must be a perfect square (EXPERIMENTS.md).
    let b_msgs = |t: u64| {
        let s = t.isqrt();
        t * (s - 1) + s * (s - 1) * (2 * s - 1)
    };
    let b_rounds = |n: u64, t: u64| {
        let s = t.isqrt();
        n + t + 2 * s * (s - 1)
    };
    for (cell, n, t) in
        [("B lone-survivor", 64u64, 16u64), ("B lone-survivor (giant)", 1 << 27, 1 << 16)]
    {
        let scenario = Scenario::MassExtinction { from: 1, k: t - 1, round: 1 };
        let report = run(
            ProtocolB::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, Round::MAX),
        )
        .unwrap();
        let m = &report.metrics;
        pass &= m.work_total == n
            && m.messages == b_msgs(t)
            && m.rounds == b_rounds(n, t)
            && m.dead_letters == m.messages - (t.isqrt() - 1)
            && u64::from(m.crashes) == t - 1
            && m.terminations == 1
            && report.mem.soa_bytes <= 32 * t;
        table.row([
            cell.to_string(),
            n.to_string(),
            t.to_string(),
            vs(m.work_total, n),
            format!("{} (expect {})", m.messages, b_msgs(t)),
            format!("{} (expect {})", m.rounds, b_rounds(n, t)),
            format!("{}", report.mem.soa_bytes.div_ceil(t)),
        ]);
    }

    // Coordinator-D failure-free counts are exact at any scale: one
    // agreement phase of 2(t−1) messages, then ⌈n/t⌉ work rounds and the
    // 3-round agree/decide envelope. The t = 2^17 cell is the sharded-
    // stepping showcase (all t processes step every work round — the
    // perf_baseline shard-speedup pair); the n = 10^8 cell is the
    // workload ceiling, with interval-compressed shares keeping every
    // process's state at a handful of runs.
    for (cell, n, t) in [
        ("coordinator-D", 4_096u64, 1_024u64),
        ("coordinator-D (giant t)", 1 << 27, 1 << 17),
        ("coordinator-D (giant n)", 100_000_000, 1_024),
    ] {
        let report = run(
            ProtocolD::processes_with_coordinator(n, t).unwrap(),
            NoFailures,
            RunConfig::new(n as usize, Round::MAX),
        )
        .unwrap();
        let m = &report.metrics;
        let rounds = n.div_ceil(t) + 3;
        pass &= m.work_total == n
            && m.messages == 2 * (t - 1)
            && m.rounds == rounds
            && m.dead_letters == 0
            && m.crashes == 0
            && u64::from(m.terminations) == t
            && report.mem.soa_bytes <= 32 * t;
        table.row([
            cell.to_string(),
            n.to_string(),
            t.to_string(),
            vs(m.work_total, n),
            format!("{} (expect {})", m.messages, 2 * (t - 1)),
            format!("{} (expect {})", m.rounds, rounds),
            format!("{}", report.mem.soa_bytes.div_ceil(t)),
        ]);
    }

    Outcome {
        id: "e17",
        claim: "scale axis: exact closed-form counts survive t = 2^16..2^17 and n = 2^27..10^8 (lone-survivor B, coordinator-D), with per-process engine state <= 32 bytes",
        rendered: table.render(),
        pass,
    }
}

/// E18 — the service plane (§1's job-stream setting): Poisson and bursty
/// streams of Do-All jobs multiplexed over one shared slot pool, on both
/// engine planes. Because every job runs to completion on its own engine,
/// per-job metrics are independent of *when* the job starts — so fleet
/// work and message totals are exact multiples of the single-job counts
/// (pinned below), while the time-axis aggregates (p50/p99, utilization)
/// come from the deterministic discrete-event schedule. Poisson instants
/// go through `ln`, so only order-safe inequalities are asserted on that
/// stream; every exact pin sits on a float-free quantity.
pub fn e18() -> Outcome {
    let mut table = Table::new([
        "stream",
        "plane",
        "jobs",
        "served",
        "p50/p99 rounds",
        "work vs bound",
        "detail",
    ]);
    let mut pass = true;

    // Stream 1: 500 Protocol B jobs, Poisson arrivals, 3 in 4 failure-free
    // and every fourth with half the processes dead on arrival. The pool
    // holds four concurrent 16-process jobs; the cap is ample, so every
    // job is served and Theorem 2.8's envelopes bound the whole fleet.
    {
        let (n, t) = (64u64, 16u64);
        let bound = theorems::protocol_b(n, t);
        let jobs = 500usize;
        let mut session = Session::new(Pool::new(64), Admission::new(jobs));
        let arrivals = ArrivalModel::Poisson { mean_gap: 3.0 };
        for (i, at) in arrivals.times(18, jobs).into_iter().enumerate() {
            let scenario = if i % 4 == 3 {
                Scenario::DeadOnArrival { k: t / 2 }
            } else {
                Scenario::FailureFree
            };
            let spec = JobSpec::new(ProtocolB::processes(n, t).unwrap(), n as usize)
                .scenario(scenario)
                .label(format!("b{i}"));
            session.submit(at, spec.into_job());
        }
        let fleet = session.run();
        let ok = fleet.metrics.completed == jobs
            && fleet.metrics.rejected == 0
            && fleet.metrics.p99_rounds <= bound.rounds
            && fleet.metrics.work_total <= jobs as u64 * bound.work
            && fleet.metrics.messages <= jobs as u64 * bound.messages;
        pass &= ok;
        table.row([
            arrivals.label(),
            "sync B".into(),
            jobs.to_string(),
            fleet.metrics.completed.to_string(),
            format!("{}/{}", fleet.metrics.p50_rounds, fleet.metrics.p99_rounds),
            format!("{} <= {}", fleet.metrics.work_total, jobs as u64 * bound.work),
            format!("util {:.2}", fleet.metrics.utilization),
        ]);
    }

    // Stream 2: 500 asynchronous Protocol B jobs, Poisson arrivals, fixed
    // delay 1 — each job reports e14's exact failure-free counts (32
    // work, 132 messages, one fixed final timestamp), so the fleet totals
    // are exact multiples: work = 500·32 = 16 000 and messages =
    // 500·132 = 66 000, with p50 = p99 = the single-job time.
    {
        let (n, t) = (32u64, 16u64);
        let jobs = 500usize;
        let single = JobSpec::new(AsyncProtocolB::processes(n, t).unwrap(), n as usize)
            .delay(DelayDist::Fixed, 1)
            .run_async()
            .unwrap();
        let single_time = single.metrics.rounds.get();
        let mut session = Session::new(Pool::new(64), Admission::new(jobs));
        let arrivals = ArrivalModel::Poisson { mean_gap: 5.0 };
        for (i, at) in arrivals.times(41, jobs).into_iter().enumerate() {
            let spec = JobSpec::new(AsyncProtocolB::processes(n, t).unwrap(), n as usize)
                .delay(DelayDist::Fixed, 1)
                .label(format!("ab{i}"));
            session.submit(at, spec.into_async_job());
        }
        let fleet = session.run();
        let ok = fleet.metrics.completed == jobs
            && fleet.metrics.work_total == jobs as u64 * n
            && fleet.metrics.messages == jobs as u64 * 132
            && fleet.metrics.p50_rounds == single_time
            && fleet.metrics.p99_rounds == single_time;
        pass &= ok;
        table.row([
            arrivals.label(),
            "async B".into(),
            jobs.to_string(),
            fleet.metrics.completed.to_string(),
            format!(
                "{}/{} (expect {single_time})",
                fleet.metrics.p50_rounds, fleet.metrics.p99_rounds
            ),
            format!("{} (expect {})", fleet.metrics.work_total, jobs as u64 * n),
            format!("{} msgs (expect {})", fleet.metrics.messages, jobs as u64 * 132),
        ]);
    }

    // Stream 3: a float-free bursty Protocol D stream with every count
    // exact (EXPERIMENTS.md §e18). 120 failure-free (64, 16) jobs, four
    // per burst, one burst every 10 rounds, on a 64-slot pool: each burst
    // starts immediately (4·16 = 64 slots), finishes in exactly
    // n/t + 2 = 6 rounds (e7's pin), and is long gone before the next.
    //   p50 = p99 = 6,  work = 120·64 = 7 680,  horizon = 29·10 + 6 = 296.
    {
        let (n, t) = (64u64, 16u64);
        let jobs = 120usize;
        let arrivals = ArrivalModel::Bursty { burst: 4, period: 10 };
        let mut session = Session::new(Pool::new(64), Admission::new(jobs));
        for (i, at) in arrivals.times(0, jobs).into_iter().enumerate() {
            let spec = JobSpec::new(ProtocolD::processes(n, t).unwrap(), n as usize)
                .label(format!("d{i}"));
            session.submit(at, spec.into_job());
        }
        let fleet = session.run();
        let ok = fleet.metrics.completed == jobs
            && fleet.metrics.p50_rounds == 6
            && fleet.metrics.p99_rounds == 6
            && fleet.metrics.work_total == jobs as u64 * n
            && fleet.metrics.horizon == 296
            && fleet.metrics.deferred == 0;
        pass &= ok;
        table.row([
            arrivals.label(),
            "sync D".into(),
            jobs.to_string(),
            fleet.metrics.completed.to_string(),
            format!("{}/{} (expect 6/6)", fleet.metrics.p50_rounds, fleet.metrics.p99_rounds),
            format!("{} (expect {})", fleet.metrics.work_total, jobs as u64 * n),
            format!("horizon {} (expect 296)", fleet.metrics.horizon),
        ]);
    }

    // Stream 4: a bursty asynchronous stream under random uniform delays —
    // Theorem 2.3's envelopes still cap every job, hence the fleet.
    {
        let (n, t) = (32u64, 16u64);
        let bound = theorems::protocol_a(n, t);
        let jobs = 64usize;
        let arrivals = ArrivalModel::Bursty { burst: 8, period: 50 };
        let mut session = Session::new(Pool::new(64), Admission::new(jobs));
        for (i, at) in arrivals.times(0, jobs).into_iter().enumerate() {
            let spec = JobSpec::new(AsyncProtocolA::processes(n, t).unwrap(), n as usize)
                .seed(sweep::cell_seed(18, i as u64))
                .delay(DelayDist::Uniform, 4)
                .label(format!("aa{i}"));
            session.submit(at, spec.into_async_job());
        }
        let fleet = session.run();
        let ok = fleet.metrics.completed == jobs
            && fleet.metrics.work_total <= jobs as u64 * bound.work
            && fleet.metrics.messages <= jobs as u64 * bound.messages;
        pass &= ok;
        table.row([
            arrivals.label(),
            "async A".into(),
            jobs.to_string(),
            fleet.metrics.completed.to_string(),
            format!("{}/{}", fleet.metrics.p50_rounds, fleet.metrics.p99_rounds),
            format!("{} <= {}", fleet.metrics.work_total, jobs as u64 * bound.work),
            format!("util {:.2}", fleet.metrics.utilization),
        ]);
    }

    // Stream 5: exact admission arithmetic. Five 16-wide bursts at t = 0
    // into a 16-slot pool with a queue cap of 2: one starts, two defer,
    // two bounce — and the admitted three serialize, so the sojourns are
    // exactly 6, 12, 18 (p50 = 12, p99 = 18).
    {
        let (n, t) = (64u64, 16u64);
        let jobs = 5usize;
        let mut session = Session::new(Pool::new(16), Admission::new(2));
        for i in 0..jobs {
            let spec = JobSpec::new(ProtocolD::processes(n, t).unwrap(), n as usize)
                .label(format!("q{i}"));
            session.submit(0, spec.into_job());
        }
        let fleet = session.run();
        let ok = fleet.metrics.completed == 3
            && fleet.metrics.rejected == 2
            && fleet.metrics.deferred == 2
            && fleet.metrics.max_queue_depth == 2
            && fleet.metrics.p50_sojourn == 12
            && fleet.metrics.p99_sojourn == 18;
        pass &= ok;
        table.row([
            "burst(5@0)".into(),
            "sync D".into(),
            jobs.to_string(),
            format!("{} (expect 3)", fleet.metrics.completed),
            format!(
                "sojourn {}/{} (expect 12/18)",
                fleet.metrics.p50_sojourn, fleet.metrics.p99_sojourn
            ),
            format!("rejected {} (expect 2)", fleet.metrics.rejected),
            format!("queue depth {} (expect 2)", fleet.metrics.max_queue_depth),
        ]);
    }

    Outcome {
        id: "e18",
        claim: "service plane (§1's stream setting): Poisson + bursty streams on both planes stay inside the per-job theorem envelopes; float-free cells pin exact fleet counts (D bursty: p50=p99=6, work=7680, horizon=296; async fixed-delay: 16000 work / 66000 messages; admission 3+2 split with sojourns 12/18)",
        rendered: table.render(),
        pass,
    }
}

/// Every experiment, in order. Runs them sequentially: the grids *inside*
/// each experiment already fan out across all sweep workers, and nesting
/// a second level of parallelism on top would multiply the thread count
/// past the core count instead of speeding anything up.
/// `e17` (the scale-smoke leg) is deliberately excluded — run it by id.
pub fn all() -> Vec<Outcome> {
    vec![
        e1(),
        e2(),
        e3(),
        e4(),
        e5(),
        e6(),
        e7(),
        e8(),
        e9(),
        e10(),
        e11(),
        e12(),
        e13(),
        e14(),
        e15(),
        e16(),
        e18(),
    ]
}

/// Runs one experiment by id.
pub fn by_id(id: &str) -> Option<Outcome> {
    match id {
        "e1" => Some(e1()),
        "e2" => Some(e2()),
        "e3" => Some(e3()),
        "e4" => Some(e4()),
        "e5" => Some(e5()),
        "e6" => Some(e6()),
        "e7" => Some(e7()),
        "e8" => Some(e8()),
        "e9" => Some(e9()),
        "e10" => Some(e10()),
        "e11" => Some(e11()),
        "e12" => Some(e12()),
        "e13" => Some(e13()),
        "e14" => Some(e14()),
        "e15" => Some(e15()),
        "e16" => Some(e16()),
        "e17" => Some(e17()),
        "e18" => Some(e18()),
        _ => None,
    }
}
