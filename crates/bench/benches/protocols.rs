//! Criterion wall-clock benchmarks: simulator throughput for each protocol
//! (not a paper claim — the paper's "time" is rounds, measured by the
//! experiments — but a library-quality requirement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doall_core::{ProtocolA, ProtocolB, ProtocolC, ProtocolD};
use doall_sim::{run, RunConfig};
use doall_workload::Scenario;

fn bench_failure_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure_free");
    let (n, t) = (256u64, 16u64);
    group.bench_function(BenchmarkId::new("protocol_a", format!("n{n}_t{t}")), |b| {
        b.iter(|| {
            run(
                ProtocolA::processes(n, t).unwrap(),
                Scenario::FailureFree.adversary(),
                RunConfig::new(n as usize, 1_000_000),
            )
            .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("protocol_b", format!("n{n}_t{t}")), |b| {
        b.iter(|| {
            run(
                ProtocolB::processes(n, t).unwrap(),
                Scenario::FailureFree.adversary(),
                RunConfig::new(n as usize, 1_000_000),
            )
            .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("protocol_c", format!("n{n}_t{t}")), |b| {
        b.iter(|| {
            run(
                ProtocolC::processes(n, t).unwrap(),
                Scenario::FailureFree.adversary(),
                RunConfig::new(n as usize, u64::MAX - 1),
            )
            .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("protocol_d", format!("n{n}_t{t}")), |b| {
        b.iter(|| {
            run(
                ProtocolD::processes(n, t).unwrap(),
                Scenario::FailureFree.adversary(),
                RunConfig::new(n as usize, 1_000_000),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_crash_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("takeover_cascade");
    let (n, t) = (64u64, 16u64);
    let scenario = Scenario::TakeoverCascade { victims: t - 1 };
    group.bench_function(BenchmarkId::new("protocol_a", format!("n{n}_t{t}")), |b| {
        b.iter(|| {
            run(
                ProtocolA::processes(n, t).unwrap(),
                scenario.adversary(),
                RunConfig::new(n as usize, 1_000_000),
            )
            .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("protocol_b", format!("n{n}_t{t}")), |b| {
        b.iter(|| {
            run(
                ProtocolB::processes(n, t).unwrap(),
                scenario.adversary(),
                RunConfig::new(n as usize, 1_000_000),
            )
            .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("protocol_d", format!("n{n}_t{t}")), |b| {
        b.iter(|| {
            run(
                ProtocolD::processes(n, t).unwrap(),
                scenario.adversary(),
                RunConfig::new(n as usize, 1_000_000),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_b_scaling");
    for t in [16u64, 64, 256] {
        let n = 4 * t;
        group.bench_function(BenchmarkId::from_parameter(format!("n{n}_t{t}")), |b| {
            b.iter(|| {
                run(
                    ProtocolB::processes(n, t).unwrap(),
                    Scenario::DeadOnArrival { k: t / 2 }.adversary(),
                    RunConfig::new(n as usize, 10_000_000),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_failure_free, bench_crash_recovery, bench_scaling);
criterion_main!(benches);
