//! Criterion benchmarks for the §5 Byzantine-agreement reduction vs the
//! flooding baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doall_agreement::{BaSystem, Engine, FloodingBa};
use doall_sim::NoFailures;

fn bench_ba(c: &mut Criterion) {
    let mut group = c.benchmark_group("byzantine_agreement");
    let (n, t) = (64u64, 8u64);
    group.bench_function(BenchmarkId::new("via_protocol_b", format!("n{n}_t{t}")), |b| {
        let system = BaSystem::new(n, t, Engine::B).unwrap().general_value(1);
        b.iter(|| system.run(NoFailures).unwrap())
    });
    group.bench_function(BenchmarkId::new("via_protocol_a", format!("n{n}_t{t}")), |b| {
        let system = BaSystem::new(n, t, Engine::A).unwrap().general_value(1);
        b.iter(|| system.run(NoFailures).unwrap())
    });
    group.bench_function(BenchmarkId::new("via_protocol_c", format!("n{n}_t7")), |b| {
        let system = BaSystem::new(n, 7, Engine::C).unwrap().general_value(1);
        b.iter(|| system.run(NoFailures).unwrap())
    });
    group.bench_function(BenchmarkId::new("flooding", format!("n{n}_t{t}")), |b| {
        b.iter(|| FloodingBa::run_system(n, t, 1, NoFailures).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ba);
criterion_main!(benches);
