//! Criterion benchmarks of the engine itself: raw stepping throughput and
//! the fast-forward optimization that makes Protocol C's exponential
//! deadlines simulable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doall_core::{Lockstep, ProtocolC, ReplicateAll};
use doall_sim::{run, NoFailures, RunConfig};
use doall_workload::Scenario;

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    // Dense stepping: t processes × n rounds of pure work.
    for (n, t) in [(1_000u64, 16u64), (1_000, 64)] {
        group.bench_function(BenchmarkId::new("replicate_all", format!("n{n}_t{t}")), |b| {
            b.iter(|| {
                run(
                    ReplicateAll::processes(n, t).unwrap(),
                    NoFailures,
                    RunConfig::new(n as usize, 10_000_000),
                )
                .unwrap()
            })
        });
    }
    // Message-heavy stepping: a broadcast every other round.
    group.bench_function(BenchmarkId::new("lockstep", "n512_t32"), |b| {
        b.iter(|| {
            run(Lockstep::processes(512, 32).unwrap(), NoFailures, RunConfig::new(512, 10_000_000))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_forward");
    // Protocol C under dead-on-arrival: the run spans ~10^13 simulated
    // rounds; finishing at all (let alone in microseconds) is the
    // fast-forward path at work.
    group.bench_function("protocol_c_exponential_idle", |b| {
        b.iter(|| {
            run(
                ProtocolC::processes(16, 8).unwrap(),
                Scenario::DeadOnArrival { k: 7 }.adversary(),
                RunConfig::new(16, u64::MAX - 1),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_fast_forward);
criterion_main!(benches);
